"""Shared infrastructure for the evaluation benchmarks.

Each ``test_figNN_*`` module regenerates one table/figure of the paper's
§5 on the simulated hardware.  Results are cached per session (the same
TensorIR/TVM tuning results feed Figures 10 and 11, and the end-to-end
figures share per-graph-op and fused-group results), printed as the
paper's rows/series,
and written under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import pytest

from repro.baselines import (
    AmosBaseline,
    AnsorBaseline,
    ArmComputeLibrary,
    CutlassLibrary,
    OpResult,
    System,
    TensorIRSystem,
    TensorRTLibrary,
    TorchLikeFramework,
    UnsupportedWorkload,
)
from repro.frontend import CPU_WORKLOADS, GPU_WORKLOADS
from repro.meta import TuneConfig, TuningDatabase, TuningSession
from repro.sim import SimCPU, SimGPU

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: trial budgets (kept modest so the whole harness runs in minutes; the
#: orderings are stable well below these budgets)
TENSORIR_TRIALS = 32
TVM_TRIALS = 48
NETWORK_TRIALS = 14
NETWORK_TVM_TRIALS = 16
#: worker-pool width for the end-to-end TuningSessions
SESSION_WORKERS = 4


def write_table(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, name), "w") as f:
        f.write(text)
    print("\n" + text)


def format_table(title: str, columns: List[str], rows: List[Tuple]) -> str:
    widths = [max(len(str(r[i])) for r in rows + [tuple(columns)]) for i in range(len(columns))]
    lines = [title, ""]
    lines.append("  ".join(str(c).rjust(w) for c, w in zip(columns, widths)))
    for row in rows:
        lines.append("  ".join(str(v).rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


class OpMatrix:
    """Lazily-computed (system x workload) result matrix with caching."""

    def __init__(self, target, workloads):
        self.target = target
        self.workloads = workloads
        self._cache: Dict[Tuple[str, str], Optional[OpResult]] = {}
        self._funcs: Dict[str, object] = {}

    def func(self, workload: str):
        if workload not in self._funcs:
            self._funcs[workload] = self.workloads[workload]()
        return self._funcs[workload]

    def result(self, system: System, workload: str) -> Optional[OpResult]:
        key = (system.name, workload)
        if key not in self._cache:
            try:
                self._cache[key] = system.compile_op(self.func(workload), self.target, seed=0)
            except UnsupportedWorkload:
                self._cache[key] = None
        return self._cache[key]


@pytest.fixture(scope="session")
def gpu_matrix() -> OpMatrix:
    return OpMatrix(SimGPU(), GPU_WORKLOADS)


@pytest.fixture(scope="session")
def cpu_matrix() -> OpMatrix:
    return OpMatrix(SimCPU(), CPU_WORKLOADS)


@pytest.fixture(scope="session")
def gpu_systems() -> Dict[str, System]:
    return {
        "TensorIR": TensorIRSystem(trials=TENSORIR_TRIALS),
        "TVM": AnsorBaseline(trials=TVM_TRIALS),
        "AMOS": AmosBaseline(),
        "CUTLASS": CutlassLibrary(),
        "TensorRT": TensorRTLibrary(),
        "PyTorch": TorchLikeFramework(),
    }


@pytest.fixture(scope="session")
def cpu_systems() -> Dict[str, System]:
    return {
        "TensorIR": TensorIRSystem(trials=TENSORIR_TRIALS),
        "TVM": AnsorBaseline(trials=TVM_TRIALS),
        "ArmComputeLib": ArmComputeLibrary(),
        "PyTorch": TorchLikeFramework(),
    }


class GraphOpCache:
    """Per-op results for baseline systems over dataflow-graph ops,
    cached by workload identity so duplicates (within or across
    networks) are compiled once."""

    def __init__(self, target):
        self.target = target
        self._cache: Dict[Tuple, Optional[float]] = {}

    def latency(self, system: System, func) -> Optional[float]:
        from repro.meta import workload_key

        key = (system.name, workload_key(func, self.target))
        if key not in self._cache:
            try:
                result = system.compile_op(func, self.target, seed=0)
                self._cache[key] = result.seconds
            except UnsupportedWorkload:
                self._cache[key] = None
        return self._cache[key]


@pytest.fixture(scope="session")
def gpu_graph_op_cache() -> GraphOpCache:
    return GraphOpCache(SimGPU())


@pytest.fixture(scope="session")
def cpu_graph_op_cache() -> GraphOpCache:
    return GraphOpCache(SimCPU())


@pytest.fixture(scope="session")
def gpu_graph_sessions():
    """Fused TensorIR end-to-end results for the GPU figures.

    Each network's dataflow graph is partitioned into fusion groups;
    every group is a first-class tuning task, and a database shared
    across networks replays identical fused groups instead of
    re-searching them.  Returns ``(plan, report)`` per network.
    """
    from repro.frontend import fuse_graph, gpu_graph

    database = TuningDatabase()
    cache = {}

    def get(name):
        if name not in cache:
            plan = fuse_graph(gpu_graph(name))
            session = TuningSession(
                SimGPU(),
                TuneConfig(trials=NETWORK_TRIALS, seed=0),
                database=database,
                workers=SESSION_WORKERS,
            )
            session.add_graph(plan)
            cache[name] = (plan, session.run())
        return cache[name]

    return get


@pytest.fixture(scope="session")
def cpu_graph_sessions():
    """Fused TensorIR end-to-end results for the CPU figure."""
    from repro.frontend import cpu_graph, fuse_graph

    database = TuningDatabase()
    cache = {}

    def get(name):
        if name not in cache:
            plan = fuse_graph(cpu_graph(name))
            session = TuningSession(
                SimCPU(),
                TuneConfig(trials=NETWORK_TRIALS, seed=0),
                database=database,
                workers=SESSION_WORKERS,
            )
            session.add_graph(plan)
            cache[name] = (plan, session.run())
        return cache[name]

    return get


@pytest.fixture(scope="session")
def net_gpu_systems() -> Dict[str, System]:
    """Lighter trial budgets for the per-layer end-to-end sweeps."""
    return {
        "TensorIR": TensorIRSystem(trials=NETWORK_TRIALS),
        "TVM": AnsorBaseline(trials=NETWORK_TVM_TRIALS),
        "AMOS": AmosBaseline(),
        "TensorRT": TensorRTLibrary(),
        "PyTorch": TorchLikeFramework(),
    }


@pytest.fixture(scope="session")
def net_cpu_systems() -> Dict[str, System]:
    return {
        "TensorIR": TensorIRSystem(trials=NETWORK_TRIALS),
        "TVM": AnsorBaseline(trials=NETWORK_TVM_TRIALS),
        "PyTorch": TorchLikeFramework(),
    }
