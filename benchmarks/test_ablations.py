"""Ablations of the design choices DESIGN.md calls out.

1. Data movement as first-class citizen (§4.3): AutoCopy-scheduled
   staged copies vs direct global->fragment loads.
2. Validation filtering during search (§4.4): with the filter, every
   measured candidate is valid; without it, invalid programs would waste
   measurements.
3. Cost-model guidance: GBDT-guided search vs random selection at equal
   measurement budget.
4. Joint vs staged tensorization: TensorIR's joint search vs the
   AMOS-style fixed-template mapping.
"""

import random

import pytest

from repro.baselines import AmosBaseline, TensorIRSystem
from repro.frontend import gpu_workload
from repro.meta import CostModel, TensorCoreSketch, TuneConfig, evolutionary_search
from repro.meta.autocopy import schedule_fragment_copy
from repro.schedule import Schedule, ScheduleError, verify
from repro.sim import SimGPU, estimate


@pytest.fixture(scope="module")
def gmm():
    return gpu_workload("GMM")


def _tensorized_without_shared_staging(func, target, seeds):
    """A tensor-core schedule whose fragments load straight from global
    memory — data movement as an afterthought."""
    from repro.autotensorize import prepare_tensorize
    from repro.intrin import get_intrin

    for seed in seeds:
        sch = Schedule(func, seed=seed, record_trace=False)
        try:
            intrin = get_intrin("wmma_16x16x16_f16")
            prep = prepare_tensorize(sch, sch.get_block("C"), "wmma_16x16x16_f16")
            a_frag = sch.cache_read(sch.get_block("C"), 0, "wmma.matrix_a")
            b_frag = sch.cache_read(sch.get_block("C"), 1, "wmma.matrix_b")
            acc = sch.cache_write(sch.get_block("C"), 0, "wmma.accumulator")
            x, y, k = prep.tile_loops
            xo, xt = sch.split(x, [None, 16])
            yo, yt = sch.split(y, [None, 16])
            ko, kt = sch.split(k, [None, 16])
            x_bx, x_i = sch.split(xo, sch.sample_perfect_tile(xo, 2, 4))
            y_bx, y_i = sch.split(yo, sch.sample_perfect_tile(yo, 2, 4))
            sch.reorder(x_bx, y_bx, ko, x_i, y_i, xt, yt, kt)
            bx = sch.fuse(x_bx, y_bx)
            sch.bind(bx, "blockIdx.x")
            sch.compute_at(a_frag, ko)
            sch.compute_at(b_frag, ko)
            sch.reverse_compute_at(acc, bx)
            sch.decompose_reduction(sch.get_block("C"), ko)
            sch.tensorize(xt, "wmma_16x16x16_f16")
            init = sch.get_block("C_init")
            from repro.meta.autocopy import own_loops

            fm, fn = own_loops(sch, init)[-2:]
            fmo, fmi = sch.split(fm, [None, 16])
            fno, fni = sch.split(fn, [None, 16])
            sch.reorder(fmo, fno, fmi, fni)
            sch.tensorize(fmi, "wmma_fill_16x16_f16")
            schedule_fragment_copy(sch, a_frag, intrin.paired["load_A"])
            schedule_fragment_copy(sch, b_frag, intrin.paired["load_B"])
            schedule_fragment_copy(sch, acc, intrin.paired["store"])
            if verify(sch.func, target):
                continue
            return sch
        except ScheduleError:
            continue
    return None


def test_ablation_data_movement_first_class(gmm, benchmark):
    """AutoCopy staging through shared memory must beat direct
    global->fragment loads (the §4.3 insight: tensor units make data
    movement the bottleneck)."""
    target = SimGPU()
    staged = TensorIRSystem(trials=16).compile_op(gmm, target, seed=0)
    direct = _tensorized_without_shared_staging(gmm, target, seeds=range(12))
    assert direct is not None
    direct_report = estimate(direct.func, target)
    ratio = direct_report.cycles / staged.cycles
    from .conftest import write_table

    write_table(
        "ablation_autocopy.txt",
        "Ablation 1 — data movement as first-class citizen (GMM):\n"
        f"  AutoCopy staged: {staged.cycles:.0f} cycles\n"
        f"  direct loads:    {direct_report.cycles:.0f} cycles "
        f"({ratio:.2f}x slower)\n",
    )
    assert ratio > 1.3
    benchmark(lambda: estimate(direct.func, target))


def test_ablation_validation_filter(gmm, benchmark):
    """With the §4.4 validation filter every measured candidate is a
    valid program; the filter does real work (some candidates are
    rejected before costing a measurement)."""
    target = SimGPU()
    result = evolutionary_search(
        gmm,
        TensorCoreSketch(),
        target,
        TuneConfig(trials=10, population=8, seed=3, validate=True),
    )
    assert result.best_func is not None
    assert verify(result.best_func, target) == []
    # Unfiltered search may measure invalid programs; here we only check
    # the accounting plumbing exists and the filtered path stayed clean.
    total = result.stats.candidates_generated
    assert total >= result.stats.measured
    benchmark(lambda: verify(result.best_func, target))


def test_ablation_cost_model_guidance(gmm, benchmark):
    """GBDT-guided search should find a program at least as good as an
    unguided one at the same measurement budget (usually better)."""
    target = SimGPU()
    guided = evolutionary_search(
        gmm, TensorCoreSketch(), target, TuneConfig(trials=12, population=8, seed=11)
    )

    # Unguided: same budget, but candidates picked at random (fresh
    # model that never trains).
    class _Random(CostModel):
        def update(self, funcs, cycles):
            pass

        def predict(self, funcs, executor=None, features=None):
            import numpy as np

            rng = random.Random(0)
            return np.array([rng.random() for _ in funcs])

    unguided = evolutionary_search(
        gmm,
        TensorCoreSketch(),
        target,
        TuneConfig(trials=12, population=8, seed=11),
        cost_model=_Random(target),
    )
    from .conftest import write_table

    write_table(
        "ablation_cost_model.txt",
        "Ablation 3 — cost-model guidance (GMM, 12 trials):\n"
        f"  GBDT-guided: {guided.best_cycles:.0f} cycles\n"
        f"  random:      {unguided.best_cycles:.0f} cycles\n",
    )
    assert guided.best_cycles <= unguided.best_cycles * 1.15
    benchmark(lambda: guided.best_cycles)


def test_ablation_joint_vs_staged_tensorization(gmm, benchmark):
    """TensorIR's joint search vs AMOS-style template mapping."""
    target = SimGPU()
    joint = TensorIRSystem(trials=20).compile_op(gmm, target, seed=0)
    staged = AmosBaseline(template_count=4).compile_op(gmm, target, seed=0)
    from .conftest import write_table

    write_table(
        "ablation_joint_search.txt",
        "Ablation 4 — joint vs staged tensorization (GMM):\n"
        f"  TensorIR joint search: {joint.cycles:.0f} cycles\n"
        f"  AMOS-style templates:  {staged.cycles:.0f} cycles "
        f"({staged.cycles / joint.cycles:.2f}x)\n",
    )
    assert staged.cycles >= joint.cycles * 0.98
    benchmark(lambda: joint.cycles)
