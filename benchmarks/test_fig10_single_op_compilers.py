"""Figure 10: single-operator comparison against ML compilers (GPU).

Paper result: TensorIR outperforms TVM (Ansor) and AMOS across the eight
workloads, by up to 7.5x, because the baselines either cannot use the
tensor unit (TVM) or use it with template data movement (AMOS).  DEP has
no matmul-intrinsic mapping, so all systems run the scalar pipeline and
land close together.
"""

import pytest

from repro.sim import SimGPU, estimate

WORKLOADS = ["C1D", "C2D", "C3D", "DEP", "DIL", "GMM", "GRP", "T2D"]


@pytest.fixture(scope="module")
def table(gpu_matrix, gpu_systems):
    systems = [gpu_systems[n] for n in ("TensorIR", "TVM", "AMOS")]
    rows = {}
    for wl in WORKLOADS:
        rows[wl] = {s.name: gpu_matrix.result(s, wl) for s in systems}
    return rows


def test_fig10_regenerate(table, gpu_matrix, benchmark):
    from .conftest import format_table, write_table

    out_rows = []
    for wl in WORKLOADS:
        tir = table[wl]["TensorIR"]
        row = [wl, f"{tir.seconds * 1e6:.1f}us"]
        for name in ("TVM", "AMOS"):
            r = table[wl][name]
            row.append(f"{r.cycles / tir.cycles:.2f}x" if r else "n/a")
        out_rows.append(tuple(row))
    text = format_table(
        "Figure 10 — single op vs ML compilers (SimGPU, fp16).\n"
        "Columns: TensorIR latency; baseline-over-TensorIR slowdown.",
        ["op", "TensorIR", "TVM", "AMOS"],
        out_rows,
    )
    write_table("figure10.txt", text)
    # Timed kernel: one performance-model evaluation of the best program.
    best = table["GMM"]["TensorIR"]
    func = gpu_matrix.func("GMM")
    benchmark(lambda: estimate(func, SimGPU()))


def test_fig10_tensorir_wins_heavy_ops(table):
    # The headline: big speedups over TVM on the tensorizable heavy ops.
    for wl in ("C2D", "C3D", "GMM", "GRP", "DIL"):
        tir = table[wl]["TensorIR"].cycles
        tvm = table[wl]["TVM"].cycles
        assert tvm / tir > 2.0, f"{wl}: expected >2x win over TVM, got {tvm / tir:.2f}"


def test_fig10_dep_is_close(table):
    # DEP cannot be tensorized: all compilers use the scalar pipeline
    # and land within ~2x of each other (paper: TVM does well on DEP).
    tir = table["DEP"]["TensorIR"].cycles
    tvm = table["DEP"]["TVM"].cycles
    assert 0.4 < tvm / tir < 2.5


def test_fig10_beats_amos(table):
    # AMOS maps to the tensor unit but without joint data-movement
    # search: never faster than TensorIR, and slower somewhere.
    slower = 0
    for wl in WORKLOADS:
        amos = table[wl]["AMOS"]
        tir = table[wl]["TensorIR"]
        assert amos.cycles >= tir.cycles * 0.98, wl
        if amos.cycles > tir.cycles * 1.02:
            slower += 1
    assert slower >= 2
