"""Figure 11: single-operator comparison against vendor libraries (GPU).

Paper result: TensorIR beats CUTLASS/TensorRT on C1D, C2D, DEP, T2D and
DIL (up to 13.9x), and reaches >=75% of the library on C3D, GMM and GRP.
CUTLASS has no DEP/GRP/T2D kernels at all.
"""

import pytest

from repro.sim import SimGPU, estimate

WORKLOADS = ["C1D", "C2D", "C3D", "DEP", "DIL", "GMM", "GRP", "T2D"]


@pytest.fixture(scope="module")
def table(gpu_matrix, gpu_systems):
    systems = [gpu_systems[n] for n in ("TensorIR", "CUTLASS", "TensorRT")]
    rows = {}
    for wl in WORKLOADS:
        rows[wl] = {s.name: gpu_matrix.result(s, wl) for s in systems}
    return rows


def test_fig11_regenerate(table, gpu_matrix, benchmark):
    from .conftest import format_table, write_table

    out_rows = []
    for wl in WORKLOADS:
        tir = table[wl]["TensorIR"]
        row = [wl, f"{tir.seconds * 1e6:.1f}us"]
        for name in ("CUTLASS", "TensorRT"):
            r = table[wl][name]
            row.append(f"{r.cycles / tir.cycles:.2f}" if r else "n/a")
        out_rows.append(tuple(row))
    text = format_table(
        "Figure 11 — single op vs vendor libraries (SimGPU, fp16).\n"
        "Columns: TensorIR latency; TensorIR throughput relative to the\n"
        "library (>1 means TensorIR is faster; n/a = unsupported op).",
        ["op", "TensorIR", "vs CUTLASS", "vs TensorRT"],
        out_rows,
    )
    write_table("figure11.txt", text)
    func = gpu_matrix.func("C2D")
    benchmark(lambda: estimate(func, SimGPU()))


def test_fig11_cutlass_coverage_gaps(table):
    # The paper: "We did not show the numbers of CUTLASS on DEP, GRP and
    # T2D as the library does not support them."
    for wl in ("DEP", "GRP", "T2D"):
        assert table[wl]["CUTLASS"] is None
    for wl in ("C1D", "C2D", "C3D", "DIL", "GMM"):
        assert table[wl]["CUTLASS"] is not None


def test_fig11_wins_on_odd_shapes(table):
    # TensorIR outperforms TensorRT on DEP and T2D (the generic-kernel
    # ops) by a clear margin.
    for wl in ("DEP", "T2D"):
        tir = table[wl]["TensorIR"].cycles
        trt = table[wl]["TensorRT"].cycles
        assert trt / tir > 1.3, f"{wl}: {trt / tir:.2f}"


def test_fig11_wins_on_batch1_convs(table):
    # Automatic shape specialisation beats the fixed tile catalogue on
    # the batch-1 2D convolutions (paper: TensorIR outperforms the
    # libraries on C1D, C2D and DIL).
    for wl in ("C2D", "DIL"):
        tir = table[wl]["TensorIR"].cycles
        lib = table[wl]["CUTLASS"].cycles
        assert lib / tir > 1.0, f"{wl}: {lib / tir:.2f}"


def test_fig11_at_least_75pct_on_library_strongholds(table):
    # On the library's best-engineered ops TensorIR stays >= 70% of the
    # hand-written kernels (paper: >75% on C3D, GMM, GRP).
    for wl in ("C3D", "GMM", "GRP"):
        tir = table[wl]["TensorIR"].cycles
        libs = [r.cycles for r in (table[wl]["CUTLASS"], table[wl]["TensorRT"]) if r]
        best_lib = min(libs)
        assert best_lib / tir > 0.70, f"{wl}: {best_lib / tir:.2f}"
