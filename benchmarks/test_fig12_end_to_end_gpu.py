"""Figure 12: end-to-end model latency on the simulated GPU.

Paper result: TensorIR outperforms PyTorch, TVM and AMOS by 1.2-8.8x;
vs TensorRT it is ~30% faster on MobileNet-V2, within 88-100% on
ResNet-50 and BERT-large, and runs ViT which TensorRT does not support.
"""

import pytest

from repro.frontend import fuse_graph, gpu_graph, gpu_network, graph_latency

pytestmark = pytest.mark.slow

NETWORKS = ["ResNet-50", "MobileNet-V2", "BERT-large", "ViT"]


def _graph_baseline_latency(graph, system, cache):
    """A baseline system executing the same dataflow graph: one kernel
    per op (engines with graph fusion fold prologue/epilogue chains into
    their anchor kernel), plus the system's per-op dispatch overhead."""
    plan = fuse_graph(graph, fuse=system.fuses_elementwise)

    def per_group(grp):
        sec = cache.latency(system, grp.anchor.func)
        if sec is None:
            raise RuntimeError(f"{system.name} failed on {grp.anchor.name}")
        return sec

    return graph_latency(plan, per_group, per_op_overhead=system.op_overhead)


@pytest.fixture(scope="module")
def table(gpu_graph_op_cache, net_gpu_systems, gpu_graph_sessions):
    rows = {}
    for name in NETWORKS:
        graph = gpu_graph(name)
        rows[name] = {}
        for sys_name, system in net_gpu_systems.items():
            if name in getattr(system, "unsupported_networks", ()):
                rows[name][sys_name] = None
                continue
            if sys_name == "TensorIR":
                # The paper's system tunes the network's *fusion groups*
                # through the TuningSession: prologue/epilogue chains are
                # lowered into their anchors, each fused group is searched
                # (or database-replayed) and pays one dispatch.
                plan, report = gpu_graph_sessions(name)
                rows[name][sys_name] = graph_latency(
                    plan, report, per_op_overhead=system.op_overhead
                )
                continue
            rows[name][sys_name] = _graph_baseline_latency(
                graph, system, gpu_graph_op_cache
            )
    return rows


def test_fig12_regenerate(table, benchmark):
    from .conftest import format_table, write_table

    out = []
    for name in NETWORKS:
        tir = table[name]["TensorIR"]
        row = [name, f"{tir * 1e3:.2f}ms"]
        for sys_name in ("PyTorch", "TVM", "AMOS", "TensorRT"):
            v = table[name][sys_name]
            row.append(f"{v / tir:.2f}x" if v is not None else "n/a")
        out.append(tuple(row))
    text = format_table(
        "Figure 12 — end-to-end model latency (SimGPU, fp16, batch 1).\n"
        "Columns: TensorIR latency; baseline-over-TensorIR slowdown\n"
        "(n/a = the engine does not support the model).",
        ["model", "TensorIR", "PyTorch", "TVM", "AMOS", "TensorRT"],
        out,
    )
    write_table("figure12.txt", text)
    net = gpu_network("MobileNet-V2")
    benchmark(lambda: net.total_ops())


def test_fig12_beats_compilers_and_frameworks(table):
    for name in NETWORKS:
        tir = table[name]["TensorIR"]
        for sys_name in ("PyTorch", "TVM", "AMOS"):
            v = table[name][sys_name]
            assert v / tir > 1.0, f"{name}/{sys_name}: {v / tir:.2f}"


def test_fig12_tensorrt_relationship(table):
    # Competitive with the vendor engine on ResNet/BERT; faster on
    # MobileNet (TRT's generic kernels hurt on depthwise-heavy nets).
    for name in ("ResNet-50", "BERT-large"):
        tir = table[name]["TensorIR"]
        trt = table[name]["TensorRT"]
        assert trt / tir > 0.75, f"{name}: {trt / tir:.2f}"
    mb_tir = table["MobileNet-V2"]["TensorIR"]
    mb_trt = table["MobileNet-V2"]["TensorRT"]
    assert mb_trt / mb_tir > 1.05


def test_fig12_vit_unsupported_by_tensorrt(table):
    assert table["ViT"]["TensorRT"] is None
    assert table["ViT"]["TensorIR"] is not None
