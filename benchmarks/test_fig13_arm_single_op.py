"""Figure 13: single-operator evaluation on the simulated ARM CPU.

Paper result: with the ``sdot`` intrinsic description, TensorIR reaches
up to 12.5x over TVM (which cannot use the instruction) and 85-105% of
ArmComputeLib's hand-tuned micro-kernels, using the *same* framework as
the GPU experiments — only the intrinsic description changed.
"""

import pytest

from repro.sim import SimCPU, estimate

WORKLOADS = ["C2D", "GMM"]


@pytest.fixture(scope="module")
def table(cpu_matrix, cpu_systems):
    systems = [cpu_systems[n] for n in ("TensorIR", "TVM", "ArmComputeLib")]
    rows = {}
    for wl in WORKLOADS:
        rows[wl] = {s.name: cpu_matrix.result(s, wl) for s in systems}
    return rows


def test_fig13_regenerate(table, cpu_matrix, benchmark):
    from .conftest import format_table, write_table

    out = []
    for wl in WORKLOADS:
        tir = table[wl]["TensorIR"]
        tvm = table[wl]["TVM"]
        acl = table[wl]["ArmComputeLib"]
        out.append(
            (
                wl,
                f"{tir.seconds * 1e6:.1f}us",
                f"{tvm.cycles / tir.cycles:.2f}x",
                f"{acl.cycles / tir.cycles:.2f}",
            )
        )
    text = format_table(
        "Figure 13 — single op on SimCPU (int8, sdot).\n"
        "Columns: TensorIR latency; TVM-over-TensorIR slowdown;\n"
        "TensorIR throughput relative to ArmComputeLib.",
        ["op", "TensorIR", "vs TVM", "vs ACL"],
        out,
    )
    write_table("figure13.txt", text)
    func = cpu_matrix.func("GMM")
    benchmark(lambda: estimate(func, SimCPU()))


def test_fig13_sdot_beats_tvm(table):
    # TVM cannot emit sdot: large speedups on both ops (paper: up to
    # 12.5x).
    for wl in WORKLOADS:
        ratio = table[wl]["TVM"].cycles / table[wl]["TensorIR"].cycles
        assert ratio > 3.0, f"{wl}: {ratio:.2f}"


def test_fig13_matches_acl(table):
    # 85-105% of the hand-tuned library (we accept 70-130%).
    for wl in WORKLOADS:
        ratio = table[wl]["ArmComputeLib"].cycles / table[wl]["TensorIR"].cycles
        assert 0.7 < ratio < 1.3, f"{wl}: {ratio:.2f}"
