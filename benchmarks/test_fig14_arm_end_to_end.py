"""Figure 14: end-to-end quantised models on the simulated ARM CPU.

Paper result: TensorIR outperforms PyTorch and TVM by 1.2-2.5x.  The
PyTorch int8 path (QNNPACK) has not added ``sdot`` support — the
maintenance-cost observation of §5.3 — so it runs on the scalar
pipeline like TVM.
"""

import pytest

from repro.frontend import cpu_graph, cpu_network, fuse_graph, graph_latency

pytestmark = pytest.mark.slow

NETWORKS = ["ResNet-50", "MobileNet-V2", "BERT-base"]


def _graph_baseline_latency(graph, system, cache):
    """One kernel per graph op plus the system's dispatch overhead (no
    baseline on this figure fuses across ops)."""
    plan = fuse_graph(graph, fuse=system.fuses_elementwise)

    def per_group(grp):
        sec = cache.latency(system, grp.anchor.func)
        if sec is None:
            raise RuntimeError(f"{system.name} failed on {grp.anchor.name}")
        return sec

    return graph_latency(plan, per_group, per_op_overhead=system.op_overhead)


@pytest.fixture(scope="module")
def table(cpu_graph_op_cache, net_cpu_systems, cpu_graph_sessions):
    rows = {}
    for name in NETWORKS:
        graph = cpu_graph(name)
        rows[name] = {}
        for sys_name, system in net_cpu_systems.items():
            if sys_name == "TensorIR":
                plan, report = cpu_graph_sessions(name)
                rows[name][sys_name] = graph_latency(
                    plan, report, per_op_overhead=system.op_overhead
                )
            else:
                rows[name][sys_name] = _graph_baseline_latency(
                    graph, system, cpu_graph_op_cache
                )
    return rows


def test_fig14_regenerate(table, benchmark):
    from .conftest import format_table, write_table

    out = []
    for name in NETWORKS:
        tir = table[name]["TensorIR"]
        out.append(
            (
                name,
                f"{tir * 1e3:.2f}ms",
                f"{table[name]['PyTorch'] / tir:.2f}x",
                f"{table[name]['TVM'] / tir:.2f}x",
            )
        )
    text = format_table(
        "Figure 14 — end-to-end int8 models (SimCPU, sdot).\n"
        "Columns: TensorIR latency; baseline-over-TensorIR slowdown.",
        ["model", "TensorIR", "PyTorch", "TVM"],
        out,
    )
    write_table("figure14.txt", text)
    benchmark(lambda: cpu_network("BERT-base").total_ops())


def test_fig14_beats_frameworks(table):
    # Paper: 1.2x-2.5x over PyTorch and TVM.
    for name in NETWORKS:
        tir = table[name]["TensorIR"]
        for sys_name in ("PyTorch", "TVM"):
            ratio = table[name][sys_name] / tir
            assert ratio > 1.1, f"{name}/{sys_name}: {ratio:.2f}"
