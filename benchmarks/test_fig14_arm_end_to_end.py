"""Figure 14: end-to-end quantised models on the simulated ARM CPU.

Paper result: TensorIR outperforms PyTorch and TVM by 1.2-2.5x.  The
PyTorch int8 path (QNNPACK) has not added ``sdot`` support — the
maintenance-cost observation of §5.3 — so it runs on the scalar
pipeline like TVM.
"""

import pytest

from repro.frontend import cpu_network, network_latency
from repro.sim import SimCPU

pytestmark = pytest.mark.slow

NETWORKS = ["ResNet-50", "MobileNet-V2", "BERT-base"]


def _latency(net, system, cache):
    def per_layer(layer):
        sec = cache.latency(system, layer)
        if sec is None:
            raise RuntimeError(f"{system.name} failed on {layer.name}")
        return sec

    return network_latency(
        net,
        per_layer,
        per_op_overhead=system.op_overhead,
        fuse_elementwise=system.fuses_elementwise,
    )


@pytest.fixture(scope="module")
def table(cpu_layer_cache, net_cpu_systems, cpu_session_reports):
    rows = {}
    for name in NETWORKS:
        net = cpu_network(name)
        rows[name] = {}
        for sys_name, system in net_cpu_systems.items():
            if sys_name == "TensorIR":
                rows[name][sys_name] = network_latency(
                    net,
                    cpu_session_reports(name),
                    per_op_overhead=system.op_overhead,
                    fuse_elementwise=system.fuses_elementwise,
                )
            else:
                rows[name][sys_name] = _latency(net, system, cpu_layer_cache)
    return rows


def test_fig14_regenerate(table, benchmark):
    from .conftest import format_table, write_table

    out = []
    for name in NETWORKS:
        tir = table[name]["TensorIR"]
        out.append(
            (
                name,
                f"{tir * 1e3:.2f}ms",
                f"{table[name]['PyTorch'] / tir:.2f}x",
                f"{table[name]['TVM'] / tir:.2f}x",
            )
        )
    text = format_table(
        "Figure 14 — end-to-end int8 models (SimCPU, sdot).\n"
        "Columns: TensorIR latency; baseline-over-TensorIR slowdown.",
        ["model", "TensorIR", "PyTorch", "TVM"],
        out,
    )
    write_table("figure14.txt", text)
    benchmark(lambda: cpu_network("BERT-base").total_ops())


def test_fig14_beats_frameworks(table):
    # Paper: 1.2x-2.5x over PyTorch and TVM.
    for name in NETWORKS:
        tir = table[name]["TensorIR"]
        for sys_name in ("PyTorch", "TVM"):
            ratio = table[name][sys_name] / tir
            assert ratio > 1.1, f"{name}/{sys_name}: {ratio:.2f}"
