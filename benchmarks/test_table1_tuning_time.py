"""Table 1: end-to-end tuning time, TensorIR vs TVM.

Paper result: TensorIR tunes up to 2x faster (ResNet-50: 308 -> 156 min)
because (a) hardware profiling dominates tuning time and tensorized
candidates run faster, and (b) the divide-and-conquer search space is
smaller, needing fewer trials to converge.
"""

import pytest

from repro.baselines import AnsorBaseline, TensorIRSystem
from repro.frontend import gpu_network
from repro.meta import TuningSession
from repro.sim import SimGPU

from .conftest import SESSION_WORKERS

pytestmark = pytest.mark.slow

NETWORKS = ["ResNet-50", "MobileNet-V2", "BERT-large", "ViT"]

#: trials per unique layer, mirroring the 2:1 convergence-budget ratio
#: observed in the paper's search spaces.
TIR_TRIALS = 10
TVM_TRIALS = 20


def _network_session(system, name):
    """One TuningSession per (system, network): the Table 1 tuning-time
    numbers now come straight from session telemetry."""
    session = TuningSession(
        SimGPU(), system.tune_config(), workers=SESSION_WORKERS
    )
    # elementwise layers are not tuned per shape
    session.add_network(gpu_network(name), include_fusible=False)
    return session.run()


@pytest.fixture(scope="module")
def table():
    tir = TensorIRSystem(trials=TIR_TRIALS)
    tvm = AnsorBaseline(trials=TVM_TRIALS)
    rows = {}
    for name in NETWORKS:
        tvm_report = _network_session(tvm, name)
        tir_report = _network_session(tir, name)
        rows[name] = (tvm_report, tir_report)
    return rows


def test_table1_accounting_is_instrumented(table):
    """The report's total is exactly the sum of per-task tuning seconds
    (within float tolerance, i.e. well inside the 1% criterion)."""
    for tvm_report, tir_report in table.values():
        for report in (tvm_report, tir_report):
            per_task = sum(t.tuning_seconds for t in report.tasks)
            assert report.tuning_seconds == pytest.approx(per_task, rel=1e-9)
            assert report.totals["tasks_failed"] == 0


def test_table1_regenerate(table, benchmark):
    from .conftest import format_table, write_table

    out = []
    for name in NETWORKS:
        tvm_t = table[name][0].tuning_seconds
        tir_t = table[name][1].tuning_seconds
        out.append(
            (name, f"{tvm_t / 60:.1f}", f"{tir_t / 60:.1f}", f"{tvm_t / tir_t:.2f}x")
        )
    text = format_table(
        "Table 1 — end-to-end tuning time (simulated profiling minutes).\n"
        "Tuning time = sum over measured candidates of (simulated run x\n"
        "repeats + compile/RPC overhead); TVM needs ~2x the trials and\n"
        "its candidates run slower.",
        ["model", "TVM (min)", "TensorIR (min)", "speedup"],
        out,
    )
    write_table("table1.txt", text)
    benchmark(lambda: sum(r.tuning_seconds for pair in table.values() for r in pair))


def test_table1_tensorir_tunes_faster(table):
    for name in NETWORKS:
        tvm_t = table[name][0].tuning_seconds
        tir_t = table[name][1].tuning_seconds
        ratio = tvm_t / tir_t
        assert 1.2 < ratio < 4.0, f"{name}: {ratio:.2f}"
