"""Table 1: end-to-end tuning time, TensorIR vs TVM.

Paper result: TensorIR tunes up to 2x faster (ResNet-50: 308 -> 156 min)
because (a) hardware profiling dominates tuning time and tensorized
candidates run faster, and (b) the divide-and-conquer search space is
smaller, needing fewer trials to converge.
"""

import pytest

from repro.baselines import AnsorBaseline, TensorIRSystem, UnsupportedWorkload
from repro.frontend import gpu_network
from repro.sim import SimGPU

NETWORKS = ["ResNet-50", "MobileNet-V2", "BERT-large", "ViT"]

#: trials per unique layer, mirroring the 2:1 convergence-budget ratio
#: observed in the paper's search spaces.
TIR_TRIALS = 10
TVM_TRIALS = 20


@pytest.fixture(scope="module")
def table():
    target = SimGPU()
    tir = TensorIRSystem(trials=TIR_TRIALS)
    tvm = AnsorBaseline(trials=TVM_TRIALS)
    rows = {}
    for name in NETWORKS:
        net = gpu_network(name)
        tir_time = 0.0
        tvm_time = 0.0
        for layer in net.layers:
            if layer.fusible:
                continue  # elementwise layers are not tuned per shape
            func = layer.builder()
            try:
                tir_time += tir.compile_op(func, target).tuning_seconds
            except UnsupportedWorkload:
                pass
            try:
                tvm_time += tvm.compile_op(func, target).tuning_seconds
            except UnsupportedWorkload:
                pass
        rows[name] = (tvm_time, tir_time)
    return rows


def test_table1_regenerate(table, benchmark):
    from .conftest import format_table, write_table

    out = []
    for name in NETWORKS:
        tvm_t, tir_t = table[name]
        out.append(
            (name, f"{tvm_t / 60:.1f}", f"{tir_t / 60:.1f}", f"{tvm_t / tir_t:.2f}x")
        )
    text = format_table(
        "Table 1 — end-to-end tuning time (simulated profiling minutes).\n"
        "Tuning time = sum over measured candidates of (simulated run x\n"
        "repeats + compile/RPC overhead); TVM needs ~2x the trials and\n"
        "its candidates run slower.",
        ["model", "TVM (min)", "TensorIR (min)", "speedup"],
        out,
    )
    write_table("table1.txt", text)
    benchmark(lambda: sum(v for pair in table.values() for v in pair))


def test_table1_tensorir_tunes_faster(table):
    for name in NETWORKS:
        tvm_t, tir_t = table[name]
        ratio = tvm_t / tir_t
        assert 1.2 < ratio < 4.0, f"{name}: {ratio:.2f}"
