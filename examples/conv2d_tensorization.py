"""Auto-tensorizing a Conv2D onto the tensor-core intrinsic (Figure 9).

Walks the §4.2 pipeline by hand: pattern match -> iterator mapping by
characteristic vectors -> ReIndex + layout fusion + padding -> tiling ->
blockize -> tensorize, then checks numerics and compares the simulated
cost against the best scalar schedule.

Run:  python examples/conv2d_tensorization.py
"""

import numpy as np

from repro.autotensorize import (
    extract_einsum,
    generate_candidates,
    prepare_tensorize,
    propose_mapping,
    match_expression_pattern,
)
from repro.frontend import ops
from repro.intrin import get_intrin
from repro.meta import GpuScalarSketch, TuneConfig, evolutionary_search
from repro.runtime import random_args, run
from repro.schedule import Schedule, verify
from repro.sim import SimGPU, estimate


def conv_reference(args, n, h, w, kh, kw):
    A, W = args["A"].astype(np.float32), args["W"].astype(np.float32)
    out = np.zeros((n, h, w, W.shape[3]), dtype=np.float32)
    for r in range(kh):
        for s in range(kw):
            out += np.einsum("nhwc,cf->nhwf", A[:, r : r + h, s : s + w, :], W[r, s])
    return out


def build_conv2d():
    """NHWC Conv2D, pre-padded input (the Figure 9 workload)."""
    return ops.conv2d(1, 18, 18, 16, 32, 3, 3)


def main():
    func = build_conv2d()
    sch = Schedule(func)
    block = sch.get_block("C")

    # --- step 1: which intrinsics match? --------------------------------
    candidates = generate_candidates(sch, block, ["wmma_16x16x16_f16"])
    print("tensorization candidates:", [name for name, _ in candidates])
    name, mapping = candidates[0]
    print("iterator mapping (characteristic vectors):", mapping)

    # --- step 2: canonicalise (ReIndex + pad + reshape instance space) --
    prep = prepare_tensorize(sch, block, name)
    print(
        "tile loops:",
        [(rv.name, sch.loop_of(rv).extent.value) for rv in prep.tile_loops],
    )

    # --- step 3: tile to the intrinsic shape and tensorize ---------------
    x, y, k = prep.tile_loops
    xo, xt = sch.split(x, [None, 16])
    yo, yt = sch.split(y, [None, 16])
    ko, kt = sch.split(k, [None, 16])
    sch.reorder(xo, yo, ko, xt, yt, kt)
    init = sch.decompose_reduction(block, ko)
    sch.tensorize(xt, "wmma_16x16x16_f16")
    i0, j0 = sch.get_loops(init)[-2:]
    _, i0i = sch.split(i0, [None, 16])
    j0o, _ = sch.split(j0, [None, 16])
    sch.reorder(i0i, j0o)
    sch.tensorize(i0i, "wmma_fill_16x16_f16")
    print("\n=== tensorized program (excerpt) ===")
    print("\n".join(sch.show().splitlines()[:40]))

    # --- numerics ----------------------------------------------------------
    args = random_args(sch.func)
    run(sch.func, args)
    ref = conv_reference(args, 1, 16, 16, 3, 3)
    print("\nmax |error| vs NumPy:", np.abs(args["C"].astype(np.float32) - ref).max())

    # --- cost: the hand schedule above is serial (no thread bindings),
    # so for a fair performance comparison let the auto-scheduler finish
    # the job: tune with and without tensorization enabled. -------------
    from repro.meta import tune

    target = SimGPU()
    print(f"\nhand-tensorized (serial) estimate: {estimate(sch.func, target)}")
    tensor_res = tune(func, target, TuneConfig(trials=12, seed=0))
    scalar_res = tune(func, target, TuneConfig(trials=12, seed=0, allow_tensorize=False))
    print(f"auto-scheduled, tensorized:   {tensor_res.best_report}")
    print(f"auto-scheduled, scalar-only:  {scalar_res.best_report}")
    print(
        f"tensor-core speedup: {scalar_res.best_cycles / tensor_res.best_cycles:.2f}x"
    )


if __name__ == "__main__":
    main()
