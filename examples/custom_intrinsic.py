"""Declaring a custom tensor intrinsic (§4.1) and auto-tensorizing onto it.

The paper's §5.3 point: generalising to a new platform only takes a new
TensorIntrin description.  Here we invent an 8x8x8 fp32 "outer-product
engine", register it, and let the same candidate-generation machinery
map a batched matmul onto it.

Run:  python examples/custom_intrinsic.py
"""

import numpy as np

from repro.autotensorize import generate_candidates, prepare_tensorize
from repro.frontend import ops
from repro.intrin import TensorIntrin, register_intrin
from repro.runtime import random_args, run
from repro.schedule import Schedule, verify
from repro.tir import IRBuilder


def make_ope_intrinsic() -> TensorIntrin:
    """An 8x8x8 fp32 matmul-accumulate instruction."""
    b = IRBuilder("ope_8x8x8_f32_desc")
    A = b.arg_buffer("A", (8, 8), "float32")
    B = b.arg_buffer("B", (8, 8), "float32")
    C = b.arg_buffer("C", (8, 8), "float32")
    with b.grid(8, 8, 8) as (i, j, k):
        with b.block("ope") as blk:
            vi = blk.spatial(8, i)
            vj = blk.spatial(8, j)
            vk = blk.reduce(8, k)
            b.store(C, (vi, vj), C[vi, vj] + A[vi, vk] * B[vk, vj])
    desc = b.finish()

    def numpy_impl(A, B, C):
        C += A @ B

    return TensorIntrin(
        name="ope_8x8x8_f32",
        desc=desc,
        operand_scopes={},  # no special memory scopes on this engine
        numpy_impl=numpy_impl,
        cost={"cycles": 4.0, "flops": 1024},
        kind="compute",
        execution_scope="core",
    )


def build_batch_matmul():
    """The workload the custom OPE intrinsic is matched against."""
    return ops.batch_matmul(4, 32, 32, 32, dtype="float32")


def main():
    try:
        register_intrin(make_ope_intrinsic())
    except ValueError:
        pass  # already registered (re-run in the same session)

    func = build_batch_matmul()
    sch = Schedule(func)
    block = sch.get_block("C")

    candidates = generate_candidates(sch, block, ["ope_8x8x8_f32"])
    print("candidates:", [name for name, _ in candidates])

    prep = prepare_tensorize(sch, block, "ope_8x8x8_f32")
    print("batch axis stays outside the tile:", [rv.name for rv in prep.outer_loops])

    x, y, k = prep.tile_loops
    xo, xt = sch.split(x, [None, 8])
    yo, yt = sch.split(y, [None, 8])
    ko, kt = sch.split(k, [None, 8])
    sch.reorder(xo, yo, ko, xt, yt, kt)
    sch.decompose_reduction(block, ko)
    sch.tensorize(xt, "ope_8x8x8_f32")
    print("validation:", verify(sch.func) or "OK")

    args = random_args(sch.func)
    run(sch.func, args)
    ref = np.einsum(
        "bnk,bkm->bnm", args["A"].astype(np.float64), args["B"].astype(np.float64)
    )
    print("max |error| vs NumPy:", np.abs(args["C"] - ref).max())


if __name__ == "__main__":
    main()
