"""End-to-end automatic tuning (§4) and the evaluation's comparisons.

Tunes a GEMM with the full tensorization-aware auto-scheduler —
candidate generation, sketches with AutoCopy data movement, evolutionary
search with the learned cost model and validation filtering — and
compares against the TVM-style (no tensorization) baseline and the
vendor-library analogues on the simulated RTX 3080.

Run:  python examples/end_to_end_tuning.py
"""

import numpy as np

from repro.baselines import (
    AmosBaseline,
    AnsorBaseline,
    CutlassLibrary,
    TensorIRSystem,
    UnsupportedWorkload,
)
from repro.frontend import ops
from repro.meta import tune
from repro.runtime import random_args, run
from repro.sim import SimGPU


def main():
    target = SimGPU()
    func = ops.matmul(512, 512, 512)

    # --- the full pipeline, exposed --------------------------------------
    result = tune(func, target, trials=24, seed=0)
    print(f"best schedule via sketch {result.best_sketch!r}: {result.best_report}")
    print(
        f"search stats: {result.stats.measured} measured, "
        f"{result.stats.invalid_rejected} rejected by validation, "
        f"simulated tuning time {result.tuning_seconds:.1f}s"
    )

    # The tuned program is a real program: run it.
    args = random_args(result.best_func)
    run(result.best_func, args)
    ref = args["A"].astype(np.float32) @ args["B"].astype(np.float32)
    print("max |error| vs NumPy:", np.abs(args["C"].astype(np.float32) - ref).max())

    # --- the cast of §5's comparisons -------------------------------------
    print("\nsystem comparison on GMM 512^3 (fp16):")
    systems = [
        TensorIRSystem(trials=24),
        AnsorBaseline(trials=24),
        AmosBaseline(),
        CutlassLibrary(),
    ]
    for system in systems:
        try:
            r = system.compile_op(func, target, seed=0)
            print(f"  {system.name:<10s} {r.cycles:>10.0f} cycles  {r.note}")
        except UnsupportedWorkload as e:
            print(f"  {system.name:<10s} unsupported ({e})")


if __name__ == "__main__":
    main()
