"""End-to-end automatic tuning (§4) and the evaluation's comparisons.

Tunes a GEMM with the full tensorization-aware auto-scheduler —
candidate generation, sketches with AutoCopy data movement, evolutionary
search with the learned cost model and validation filtering — compares
against the TVM-style (no tensorization) baseline and the
vendor-library analogues on the simulated RTX 3080, then tunes a small
multi-layer network through a ``TuningSession``: parallel workers,
database-replayed duplicate layers (§5.2), cost-share trial allocation
and a JSON telemetry report.

Run:  python examples/end_to_end_tuning.py
"""

import numpy as np

from repro import TuneConfig, TuningSession, tune
from repro.baselines import (
    AmosBaseline,
    AnsorBaseline,
    CutlassLibrary,
    TensorIRSystem,
    UnsupportedWorkload,
)
from repro.frontend import ops
from repro.runtime import random_args, run
from repro.sim import SimGPU


def build_gemm():
    """The GMM 512^3 workload the end-to-end walkthrough tunes."""
    return ops.matmul(512, 512, 512)


def main():
    target = SimGPU()
    func = build_gemm()

    # --- the full pipeline, exposed --------------------------------------
    result = tune(func, target, TuneConfig(trials=24, seed=0))
    print(f"best schedule via sketch {result.best_sketch!r}: {result.best_report}")
    print(
        f"search stats: {result.stats.measured} measured, "
        f"{result.stats.invalid_rejected} rejected by validation, "
        f"simulated tuning time {result.tuning_seconds:.1f}s"
    )

    # The tuned program is a real program: run it.
    args = random_args(result.best_func)
    run(result.best_func, args)
    ref = args["A"].astype(np.float32) @ args["B"].astype(np.float32)
    print("max |error| vs NumPy:", np.abs(args["C"].astype(np.float32) - ref).max())

    # --- the cast of §5's comparisons -------------------------------------
    print("\nsystem comparison on GMM 512^3 (fp16):")
    systems = [
        TensorIRSystem(trials=24),
        AnsorBaseline(trials=24),
        AmosBaseline(),
        CutlassLibrary(),
    ]
    for system in systems:
        try:
            r = system.compile_op(func, target, seed=0)
            print(f"  {system.name:<10s} {r.cycles:>10.0f} cycles  {r.note}")
        except UnsupportedWorkload as e:
            print(f"  {system.name:<10s} unsupported ({e})")

    # --- multi-workload tuning: the TuningSession -------------------------
    # Four layers, two identical: the session searches the three unique
    # workloads in parallel, replays the duplicate from the database,
    # and splits the 48-trial budget by each layer's cost share.
    print("\ntuning a 4-layer network with a TuningSession (2 workers):")
    session = TuningSession(target, TuneConfig(seed=0), workers=2)
    session.add(ops.matmul(512, 512, 512), name="attn_proj")
    session.add(ops.matmul(512, 512, 512), name="attn_proj_dup")
    session.add(ops.matmul(512, 2048, 512), name="ffn_up")
    session.add(ops.matmul(512, 512, 2048), name="ffn_down")
    report = session.run(total_trials=48)
    for task in report.tasks:
        print(
            f"  {task.name:<14s} {task.status:<9s} trials={task.trials_allocated:<3d}"
            f" cycles={task.cycles:>10.0f}  tuning={task.tuning_seconds:.1f}s"
        )
    print(
        f"  searched {report.totals['tasks_searched']:.0f}, replayed "
        f"{report.totals['tasks_replayed']:.0f}, on {report.workers} workers; "
        f"simulated tuning time {report.tuning_seconds:.1f}s"
    )
    print("  stage timings:", {
        stage: f"{secs * 1e3:.0f}ms"
        for stage, secs in report.telemetry["stage_seconds"].items()
    })


if __name__ == "__main__":
    main()
