"""Graph-level fusion: from a dataflow graph to tuned fused kernels.

Builds a small MLP block as a ``Graph``, partitions it with
``fuse_graph`` into anchor + prologue/epilogue groups, cross-checks the
fused lowering against the unfused graph numerically, then tunes the
fused and unfused plans through ``TuningSession.add_graph`` and
compares the measured end-to-end latencies — fewer kernels, fewer
dispatches, and epilogues folded into their anchors' schedules.

Run:  python examples/fused_network.py
"""

import numpy as np

from repro import TuneConfig, TuningSession
from repro.frontend import (
    Graph,
    fuse_graph,
    graph_latency,
    lower_group,
    ops,
    random_graph_inputs,
    run_graph,
    run_plan,
)
from repro.meta import workload_key
from repro.sim import SimGPU


def build_block() -> Graph:
    """A 2-layer MLP block with bias/activation epilogues and a
    residual connection (the residual's second consumer is a fusion
    boundary — the pass records why)."""
    g = Graph("mlp_block")
    x = g.input("x", (128, 256), "float16")
    w1 = g.input("w1", (256, 512), "float16")
    b1 = g.input("b1", (512,), "float16")
    w2 = g.input("w2", (512, 256), "float16")
    b2 = g.input("b2", (256,), "float16")

    h = g.op("fc1", ops.matmul(128, 512, 256), x, w1)
    h = g.op("fc1_bias", ops.bias_add((128, 512)), h, b1)
    h = g.op("fc1_relu", ops.elementwise((128, 512), "relu"), h)
    y = g.op("fc2", ops.matmul(128, 256, 512), h, w2)
    y = g.op("fc2_bias", ops.bias_add((128, 256)), y, b2)
    g.op("residual", ops.add((128, 256)), y, x)
    return g


def build_fused_fc1():
    """The first group's fused PrimFunc — matmul with bias and relu
    inlined into one sketchable program."""
    plan = fuse_graph(build_block())
    return lower_group(plan.groups[0])


def main():
    target = SimGPU()
    graph = build_block()

    # --- partition -------------------------------------------------------
    plan = fuse_graph(graph)
    print(plan.summary())
    print(
        f"\n{plan.num_ops} ops -> {plan.num_groups} kernels "
        f"({plan.num_ops - plan.num_groups} dispatches saved)"
    )

    # --- the fused programs are real programs: run them ------------------
    inputs = random_graph_inputs(graph, seed=0)
    unfused = run_graph(graph, inputs)
    fused = run_plan(plan, inputs)
    for t in graph.outputs():
        err = np.abs(
            fused[t.name].astype(np.float32) - unfused[t.name].astype(np.float32)
        ).max()
        print(f"fused vs unfused max |error| on {t.name}: {err}")

    # --- tune both plans through a TuningSession -------------------------
    print("\ntuning the fused plan (each group is one task):")
    session = TuningSession(target, TuneConfig(trials=12, seed=0), workers=2)
    session.add_graph(plan)
    report = session.run()
    for task in report.tasks:
        print(
            f"  {task.name:<18s} {task.status:<9s} cycles={task.cycles:>10.0f}"
            f"  key={task.key[:12]}..."
        )

    unfused_plan = fuse_graph(graph, fuse=False)
    unfused_session = TuningSession(target, TuneConfig(trials=12, seed=0), workers=2)
    unfused_session.add_graph(unfused_plan)
    unfused_report = unfused_session.run()

    # --- fewer kernels and fewer dispatches win end to end ---------------
    overhead = target.cycles_to_seconds(target.kernel_launch_cycles)
    fused_lat = graph_latency(plan, report, per_op_overhead=overhead)
    unfused_lat = graph_latency(unfused_plan, unfused_report, per_op_overhead=overhead)
    tasks = {workload_key(lower_group(g), target) for g in plan.groups}
    unfused_tasks = {workload_key(lower_group(g), target) for g in unfused_plan.groups}
    print(
        f"\nunique tasks: {len(unfused_tasks)} unfused -> {len(tasks)} fused; "
        f"latency {unfused_lat * 1e6:.1f}us -> {fused_lat * 1e6:.1f}us "
        f"({unfused_lat / fused_lat:.2f}x)"
    )


if __name__ == "__main__":
    main()
