"""Quickstart: construct, transform, run and cost a TensorIR program.

Recreates the paper's Figure 4 program, applies a few schedule
primitives by hand (Figure 6 style), executes the result against NumPy,
and estimates its cost on the simulated GPU.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.runtime import random_args, run
from repro.schedule import Schedule, verify
from repro.sim import SimGPU, estimate
from repro.tir import IRBuilder, call


def build_fuse_add_exp(n: int = 64):
    """Figure 4: B = A + 1; C = exp(B)."""
    b = IRBuilder("fuse_add_exp")
    A = b.arg_buffer("A", (n, n), "float32")
    C = b.arg_buffer("C", (n, n), "float32")
    B = b.alloc_buffer("B", (n, n), "float32")
    with b.grid(n, n) as (i, j):
        with b.block("B") as blk:
            vi = blk.spatial(n, i)
            vj = blk.spatial(n, j)
            b.store(B, (vi, vj), A[vi, vj] + 1.0)
    with b.grid(n, n) as (i, j):
        with b.block("C") as blk:
            vi = blk.spatial(n, i)
            vj = blk.spatial(n, j)
            b.store(C, (vi, vj), call("exp", B[vi, vj]))
    return b.finish()


def main():
    func = build_fuse_add_exp()
    print("=== the Figure 4 program ===")
    print(func.script())

    # --- schedule it: tile the consumer, fuse the producer in ---------
    sch = Schedule(func)
    c = sch.get_block("C")
    i, j = sch.get_loops(c)
    io, ii = sch.split(i, [8, None])
    jo, ji = sch.split(j, [8, None])
    sch.reorder(io, jo, ii, ji)
    sch.compute_at(sch.get_block("B"), jo)  # Figure 6's compute-at
    sch.bind(io, "blockIdx.x")
    sch.bind(jo, "threadIdx.x")
    print("\n=== after split/reorder/compute_at/bind ===")
    print(sch.show())

    # --- validate (§3.3) ------------------------------------------------
    problems = verify(sch.func, SimGPU())
    print("\nvalidation:", "OK" if not problems else problems)

    # --- execute against NumPy ------------------------------------------
    args = random_args(sch.func)
    run(sch.func, args)
    expected = np.exp(args["A"].astype(np.float64) + 1.0)
    print("max |error| vs NumPy:", np.abs(args["C"] - expected).max())

    # --- estimate on the simulated GPU ----------------------------------
    report = estimate(sch.func, SimGPU())
    print(f"simulated cost: {report}")


if __name__ == "__main__":
    main()
