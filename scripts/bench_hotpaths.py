#!/usr/bin/env python
"""Benchmark the search hot path: cached vs. uncached candidate evaluation.

Runs ``tune()`` on the §5.1 single-operator workloads in two modes:

* **baseline** — every memoization cache disabled
  (``repro.cache.set_enabled(False)``) and ``search_workers=1``: this is
  exactly the pre-caching serial code path.  Two passes are timed; both
  are necessarily cold.
* **cached** — caches enabled (cleared first) with the same config and
  seed, also two passes.  Pass 1 is cold (it pays the cache fills);
  pass 2 is warm: candidate construction, validation, feature
  extraction and cost estimation all replay from the caches.  The warm
  pass is the steady state of the §5.2 workflow — re-tuning after a
  restart, parameter sweeps, and sessions where structurally identical
  layers recur.

``search_workers`` stays at 1 throughout so the candidate stream — and
therefore the best program — is byte-for-byte identical in every run;
the report asserts that identity (``structural_equal`` + equal cycles).
An optional extra run (``--workers N``) reports the batched parallel
evaluator's throughput; its best program may legitimately differ (the
batching changes how the trial budget is spent, see
``TuneConfig.search_workers``).

The report lands in ``BENCH_search.json``: per-workload wall-clock,
candidates/sec, cold and warm speedups, identity checks, and per-cache
hit rates.  The acceptance gate is the aggregate *warm* throughput:
>= 3x the uncached baseline.  ``--smoke`` is a fast correctness-only
mode for CI: it asserts the caches actually hit (>0 hit rate) on a tiny
workload and never looks at timings, so it cannot flake on a loaded
machine.

    PYTHONPATH=src python scripts/bench_hotpaths.py            # full bench
    PYTHONPATH=src python scripts/bench_hotpaths.py --smoke    # CI guard
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import cache as repro_cache
from repro import tir
from repro.frontend import ops
from repro.frontend.workloads import gpu_workload
from repro.meta import Telemetry, TuneConfig, tune
from repro.sim import SimGPU, estimate

DEFAULT_WORKLOADS = ["GMM", "C2D", "DEP"]


def _median(values):
    ordered = sorted(values)
    count = len(ordered)
    mid = count // 2
    if count % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _spread_pct(values):
    """Max-min spread of a rep set, as a percentage of the median —
    the honesty figure next to every median-of-N timing: when the
    spread dwarfs the measured overhead, the overhead is noise."""
    ordered = sorted(values)
    med = _median(ordered)
    if not med:
        return 0.0
    return 100.0 * (ordered[-1] - ordered[0]) / med


def _timed_pass(func, target, config):
    telemetry = Telemetry()
    t0 = time.perf_counter()
    result = tune(func, target, config, telemetry=telemetry)
    seconds = time.perf_counter() - t0
    stats = result.stats
    return {
        "seconds": round(seconds, 4),
        "candidates": stats.candidates_generated,
        "candidates_per_sec": round(stats.candidates_generated / seconds, 2)
        if seconds
        else None,
        "best_cycles": result.best_cycles,
        "measured": stats.measured,
    }, result


def _run_mode(func, target, config, *, caches):
    """Two tune() passes with caches forced on or off."""
    previous = repro_cache.set_enabled(caches)
    try:
        repro_cache.clear_all()
        before = repro_cache.snapshot_counts()
        cold_rec, cold_result = _timed_pass(func, target, config)
        warm_rec, warm_result = _timed_pass(func, target, config)
        delta = repro_cache.delta_since(before)
    finally:
        repro_cache.set_enabled(previous)
    return cold_rec, cold_result, warm_rec, warm_result, delta


def run_bench(workloads, trials, seed, workers, out_path):
    target = SimGPU()
    config = TuneConfig(trials=trials, seed=seed, search_workers=1)
    report = {
        "target": target.name,
        "config": {"trials": trials, "seed": seed, "extra_workers": workers},
        "workloads": {},
        "cache_stats": {},
    }
    base_total = [0.0, 0]  # seconds, candidates (per single pass)
    cold_total = [0.0, 0]
    warm_total = [0.0, 0]
    all_identical = True
    for name in workloads:
        func = gpu_workload(name)
        print(f"[{name}] baseline (caches off, serial, 2 passes) ...", flush=True)
        b1, base_result, b2, base_warm_result, _ = _run_mode(
            func, target, config, caches=False
        )
        print(f"[{name}]   {b1['seconds']}s / {b2['seconds']}s", flush=True)
        print(f"[{name}] cached (caches on, serial, cold + warm pass) ...", flush=True)
        c1, cold_result, c2, warm_result, delta = _run_mode(
            func, target, config, caches=True
        )
        print(
            f"[{name}]   cold {c1['seconds']}s, warm {c2['seconds']}s "
            f"({c2['candidates_per_sec']} cand/s)", flush=True,
        )
        results = [base_result, base_warm_result, cold_result, warm_result]
        identical = all(
            r.best_cycles == base_result.best_cycles
            and tir.structural_equal(r.best_func, base_result.best_func)
            for r in results[1:]
        )
        all_identical = all_identical and identical
        entry = {
            "baseline": b1,
            "baseline_repeat": b2,
            "cached_cold": c1,
            "cached_warm": c2,
            "cold_speedup": round(b1["seconds"] / c1["seconds"], 2)
            if c1["seconds"]
            else None,
            "warm_speedup": round(b2["seconds"] / c2["seconds"], 2)
            if c2["seconds"]
            else None,
            "best_identical": identical,
        }
        if workers and workers > 1:
            batched_cfg = config.with_(search_workers=workers)
            print(f"[{name}] batched (caches on, {workers} workers) ...", flush=True)
            previous = repro_cache.set_enabled(True)
            try:
                repro_cache.clear_all()
                batched_rec, _ = _timed_pass(func, target, batched_cfg)
            finally:
                repro_cache.set_enabled(previous)
            entry["batched"] = batched_rec
        report["workloads"][name] = entry
        report["cache_stats"][name] = delta
        base_total[0] += (b1["seconds"] + b2["seconds"]) / 2.0
        base_total[1] += (b1["candidates"] + b2["candidates"]) // 2
        cold_total[0] += c1["seconds"]
        cold_total[1] += c1["candidates"]
        warm_total[0] += c2["seconds"]
        warm_total[1] += c2["candidates"]

    def rate(pair):
        return pair[1] / pair[0] if pair[0] else 0.0

    base_rate, cold_rate, warm_rate = rate(base_total), rate(cold_total), rate(warm_total)
    report["aggregate"] = {
        "baseline_candidates_per_sec": round(base_rate, 2),
        "cached_cold_candidates_per_sec": round(cold_rate, 2),
        "cached_warm_candidates_per_sec": round(warm_rate, 2),
        "cold_speedup_candidates_per_sec": round(cold_rate / base_rate, 2)
        if base_rate
        else None,
        "warm_speedup_candidates_per_sec": round(warm_rate / base_rate, 2)
        if base_rate
        else None,
        "all_best_identical": all_identical,
    }
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report["aggregate"], indent=2))
    print(f"wrote {out_path}")
    ok = all_identical and warm_rate >= 3.0 * base_rate
    if not all_identical:
        print("FAIL: cached run produced a different best program", file=sys.stderr)
    elif not ok:
        print("FAIL: warm cached throughput below the 3x target", file=sys.stderr)
    return 0 if ok else 1


def run_evaluator_sweep(workloads, trials, seed, workers, out_path, backends=None):
    """Throughput scaling across the evaluation backends.

    For each backend (serial / threads / processes) the same searches
    run twice with caches enabled — a cold pass that pays the fills and
    a warm pass that replays them — against one uncached serial
    baseline.  The determinism contract is asserted throughout: every
    backend at every worker count must land on the byte-identical best
    program with identical per-code rejection counts.

    The acceptance gate is the *warm process-pool* aggregate throughput:
    >= 3x the uncached serial baseline (the same bar the cache layer
    met).  ``cpus`` is recorded because process workers only pay off
    when real cores exist: on a one-core box every spec/result pickle
    round-trip is pure overhead with no parallel build to hide it, so
    there the gate falls to the fastest backend measured and the
    process-pool numbers stand as an honest record of that overhead.

    Results merge into ``BENCH_search.json`` under ``evaluator_scaling``
    so the cache-layer history in the same file stays intact.
    """
    from repro.meta.evaluator import get_evaluator

    backends = backends or ["serial", "threads", "processes"]
    target = SimGPU()
    sweep = {
        "config": {"trials": trials, "seed": seed, "workers": workers},
        "cpus": os.cpu_count(),
        "backends": {},
    }
    base_total = [0.0, 0]
    totals = {kind: [0.0, 0] for kind in backends}  # warm seconds, candidates
    all_identical = True
    identical_rejections = True
    if "processes" in backends:
        get_evaluator("processes", workers).warm_up()
    per_workload = {name: {} for name in workloads}
    for name in workloads:
        func = gpu_workload(name)
        serial_cfg = TuneConfig(trials=trials, seed=seed, evaluator="serial")
        print(f"[{name}] uncached serial baseline ...", flush=True)
        previous = repro_cache.set_enabled(False)
        try:
            repro_cache.clear_all()
            base_rec, base_result = _timed_pass(func, target, serial_cfg)
        finally:
            repro_cache.set_enabled(previous)
        base_total[0] += base_rec["seconds"]
        base_total[1] += base_rec["candidates"]
        per_workload[name]["baseline_uncached"] = base_rec
        for kind in backends:
            cfg = TuneConfig(
                trials=trials, seed=seed, evaluator=kind,
                search_workers=1 if kind == "serial" else workers,
            )
            cold, cold_result, warm, warm_result, _ = _run_mode(
                func, target, cfg, caches=True
            )
            identical = (
                warm_result.best_cycles == base_result.best_cycles
                and tir.structural_equal(warm_result.best_func, base_result.best_func)
                and cold_result.best_cycles == base_result.best_cycles
            )
            same_rejections = (
                warm_result.stats.rejected_by_code
                == base_result.stats.rejected_by_code
            )
            all_identical = all_identical and identical
            identical_rejections = identical_rejections and same_rejections
            totals[kind][0] += warm["seconds"]
            totals[kind][1] += warm["candidates"]
            per_workload[name][kind] = {
                "cold": cold,
                "warm": warm,
                "best_identical": identical,
                "rejections_identical": same_rejections,
            }
            print(
                f"[{name}] {kind}: cold {cold['seconds']}s, warm "
                f"{warm['seconds']}s ({warm['candidates_per_sec']} cand/s) "
                f"identical={identical}", flush=True,
            )

    def rate(pair):
        return pair[1] / pair[0] if pair[0] else 0.0

    base_rate = rate(base_total)
    sweep["workloads"] = per_workload
    sweep["aggregate"] = {
        "baseline_uncached_candidates_per_sec": round(base_rate, 2),
        "all_best_identical": all_identical,
        "all_rejections_identical": identical_rejections,
    }
    for kind in backends:
        warm_rate = rate(totals[kind])
        sweep["aggregate"][f"{kind}_warm_candidates_per_sec"] = round(warm_rate, 2)
        sweep["aggregate"][f"{kind}_warm_speedup"] = (
            round(warm_rate / base_rate, 2) if base_rate else None
        )
    report = {}
    if os.path.exists(out_path):
        with open(out_path) as fh:
            report = json.load(fh)
    report["evaluator_scaling"] = sweep
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(sweep["aggregate"], indent=2))
    print(f"wrote {out_path}")
    if "processes" in backends and (os.cpu_count() or 1) > 1:
        gate_kind = "processes"
    else:
        gate_kind = max(backends, key=lambda kind: rate(totals[kind]))
    gate_rate = rate(totals[gate_kind])
    sweep["aggregate"]["gate_backend"] = gate_kind
    ok = all_identical and identical_rejections and gate_rate >= 3.0 * base_rate
    if not all_identical:
        print("FAIL: a backend changed the best program", file=sys.stderr)
    elif not identical_rejections:
        print("FAIL: a backend changed the rejection profile", file=sys.stderr)
    elif not ok:
        print(
            f"FAIL: warm {gate_kind} throughput below 3x the uncached baseline",
            file=sys.stderr,
        )
    return 0 if ok else 1


def run_obs_overhead(workloads, trials, seed, out_path, reps=5):
    """Measure the flight recorder's overhead contract (see ObsConfig):

    * **off** (the default config) — the hot path pays only predicate
      checks; warm candidates/sec must stay within a few percent of the
      recorded ``BENCH_search.json`` baseline.
    * **recording** — full event stream + provenance ledger + trace
      serialization; warm candidates/sec must stay within 15% of off.

    Warm passes are used for both (cold passes time cache fills, not
    recording).  Each mode is timed over ``reps`` passes and the
    **median** kept, with the max-min spread reported next to it: a
    single-rep (or best-of) timing on a loaded machine is noise-
    dominated — it reported *negative* overheads — and a gate on noise
    gates nothing.  When the spread exceeds the measured overhead the
    number should be read as "indistinguishable from zero".  Recording
    must not change the best program — asserted over every pass.
    """
    import tempfile

    from repro.meta import ObsConfig

    target = SimGPU()
    config_off = TuneConfig(trials=trials, seed=seed, search_workers=1)
    report = {
        "target": target.name,
        "config": {"trials": trials, "seed": seed, "reps": reps},
        "workloads": {},
    }

    def median_rec(passes):
        seconds = [r["seconds"] for r, _ in passes]
        med = _median(seconds)
        candidates = passes[0][0]["candidates"]  # deterministic per config
        return {
            "seconds": round(med, 4),
            "candidates": candidates,
            "candidates_per_sec": round(candidates / med, 2) if med else None,
            "spread_pct": round(_spread_pct(seconds), 2),
            "reps": len(passes),
            "best_cycles": passes[0][0]["best_cycles"],
            "measured": passes[0][0]["measured"],
        }

    off_total = [0.0, 0]  # median-pass seconds, candidates
    on_total = [0.0, 0]
    all_identical = True
    max_spread = 0.0
    previous = repro_cache.set_enabled(True)
    try:
        for name in workloads:
            func = gpu_workload(name)
            sink = tempfile.NamedTemporaryFile(
                suffix=".jsonl", prefix="obs-bench-", delete=False
            )
            sink.close()
            config_on = config_off.with_(
                obs=ObsConfig(enabled=True, sink_path=sink.name)
            )
            repro_cache.clear_all()
            _timed_pass(func, target, config_off)  # cold pass fills caches
            print(
                f"[{name}] warm passes, recording off/on ({reps} reps) ...",
                flush=True,
            )
            off_passes = [_timed_pass(func, target, config_off) for _ in range(reps)]
            on_passes = [_timed_pass(func, target, config_on) for _ in range(reps)]
            os.unlink(sink.name)
            med_off = median_rec(off_passes)
            med_on = median_rec(on_passes)
            identical = all(
                r.best_cycles == off_passes[0][1].best_cycles
                and tir.structural_equal(r.best_func, off_passes[0][1].best_func)
                for _, r in off_passes + on_passes
            )
            all_identical = all_identical and identical
            overhead = (
                (med_on["seconds"] - med_off["seconds"]) / med_off["seconds"]
                if med_off["seconds"]
                else 0.0
            )
            spread = max(med_off["spread_pct"], med_on["spread_pct"])
            max_spread = max(max_spread, spread)
            print(
                f"[{name}]   off {med_off['candidates_per_sec']} cand/s, "
                f"on {med_on['candidates_per_sec']} cand/s "
                f"({100 * overhead:+.1f}%, spread {spread:.1f}%)", flush=True,
            )
            report["workloads"][name] = {
                "recording_off": med_off,
                "recording_on": med_on,
                "overhead_pct": round(100 * overhead, 2),
                "spread_pct": round(spread, 2),
                "best_identical": identical,
            }
            off_total[0] += med_off["seconds"]
            off_total[1] += med_off["candidates"]
            on_total[0] += med_on["seconds"]
            on_total[1] += med_on["candidates"]
    finally:
        repro_cache.set_enabled(previous)

    off_rate = off_total[1] / off_total[0] if off_total[0] else 0.0
    on_rate = on_total[1] / on_total[0] if on_total[0] else 0.0
    overhead_pct = 100 * (off_rate - on_rate) / off_rate if off_rate else 0.0
    report["aggregate"] = {
        "off_candidates_per_sec": round(off_rate, 2),
        "recording_candidates_per_sec": round(on_rate, 2),
        "recording_overhead_pct": round(overhead_pct, 2),
        "max_spread_pct": round(max_spread, 2),
        "all_best_identical": all_identical,
    }
    baseline_path = os.path.join(os.path.dirname(out_path) or ".", "BENCH_search.json")
    if os.path.exists(baseline_path):
        with open(baseline_path) as fh:
            baseline_rate = json.load(fh)["aggregate"].get(
                "cached_warm_candidates_per_sec"
            )
        if baseline_rate:
            report["aggregate"]["baseline_warm_candidates_per_sec"] = baseline_rate
            report["aggregate"]["off_vs_baseline_pct"] = round(
                100 * (off_rate - baseline_rate) / baseline_rate, 2
            )
    doc = {}
    if os.path.exists(out_path):
        try:
            with open(out_path) as fh:
                doc = json.load(fh)
        except (json.JSONDecodeError, OSError):
            doc = {}
    doc.update(report)  # keep sibling sections (serve_obs) intact
    with open(out_path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report["aggregate"], indent=2))
    print(f"wrote {out_path}")
    ok = all_identical and overhead_pct < 15.0
    if not all_identical:
        print("FAIL: recording changed the best program", file=sys.stderr)
    elif not ok:
        print("FAIL: recording overhead above the 15% contract", file=sys.stderr)
    return 0 if ok else 1


def run_serve_obs(trials, seed, out_path, smoke=False):
    """Serving-metrics bench (``--serve-obs``): the observability layer
    must be close to free on the hot path, and honest everywhere else.

    A/B of the warm-hit serve path with the metrics registry enabled
    (the default) vs disabled (``ServeConfig.metrics=False`` swaps in
    no-op instruments), on two fresh single-workload servers with the
    same seed.  Four contracts:

    * **<2% warm-hit overhead** — timed on ONE server by toggling its
      instrumentation gates between alternating rounds.  Two freshly
      built servers disagree by up to ~10% on *identical* code
      (per-object allocator and dict-layout luck), so a cross-server
      timing comparison cannot resolve a 2% gate; clearing the gates on
      the live metrics-on server reproduces the exact branches a
      metrics-off server takes, and the alternating same-object A/B
      times nothing but the gated instrumentation work.  The statistic
      is the median of per-*pair* deltas (adjacent-in-time rounds, so
      clock drift cancels inside each pair), minimized over several
      passes — timeit's repeat-and-take-min rationale, since noise
      contaminates additively.
    * **identical programs** — both modes serve the byte-identical best
      script (the registry must not perturb the search).
    * **health() == histograms** — ``ScheduleServer.health()`` p50/p95/
      p99 must equal the quantiles recomputed from the rolling windows
      in the exported ``serve_latency_seconds`` snapshot (with sampled
      hit latencies replicated by the sampling factor, exactly as
      ``health()`` pools them): one source of truth, two views.
    * **request ids round-trip** — the miss *and* a hit response each
      carry a ``request_id`` whose ``Telemetry.span_tree`` is non-empty
      and survives the Chrome-trace exporter's ``--request`` filter
      span-for-span.

    Results merge into ``BENCH_obs.json`` under ``serve_obs``.
    ``smoke=True`` shrinks the rep counts and skips the timing gate
    (CI machines are noisy); every correctness gate still applies.
    """
    import tempfile

    from repro.meta import Telemetry
    from repro.obs import chrome_trace
    from repro.serve import ScheduleServer, ServeConfig

    target = SimGPU()
    func = ops.matmul(64, 64, 64)
    reps = 3 if smoke else 15
    hits_per_rep = 20 if smoke else 1000
    bench = {
        "config": {
            "trials": trials, "seed": seed, "smoke": smoke,
            "reps": reps, "hits_per_rep": hits_per_rep,
        },
    }
    failures = []

    def timed_round(server):
        t0 = time.perf_counter()
        for _ in range(hits_per_rep):
            server.compile(func)
        return (time.perf_counter() - t0) / hits_per_rep

    def tree_round_trip(telemetry, resp, label):
        spans = telemetry.span_tree(resp.request_id)
        trace = chrome_trace(
            {"telemetry": telemetry.report()}, request=resp.request_id
        )
        slices = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        exported = {e["args"]["span_id"] for e in slices}
        ok = (
            bool(spans)
            and exported == {s.span_id for s in spans}
            and any(
                e["args"].get("request") == resp.request_id for e in slices
            )
        )
        if not ok:
            failures.append(
                f"{label}: request {resp.request_id!r} span tree did not "
                f"round-trip ({len(spans)} spans, {len(exported)} exported)"
            )
        return {
            "request_id": resp.request_id,
            "spans": len(spans),
            "round_trip": ok,
        }

    scripts = {}
    health_doc = None
    health_consistent = None
    trees = {}
    with tempfile.TemporaryDirectory(prefix="serve-obs-") as tmp:
        for mode, metrics_on in (("off", False), ("on", True)):
            telemetry = Telemetry()
            cfg = ServeConfig(
                db_path=os.path.join(tmp, f"db-{mode}"),
                tune=TuneConfig(trials=trials, seed=seed),
                metrics=metrics_on,
            )
            with ScheduleServer(target, cfg, telemetry=telemetry) as server:
                print(
                    f"[serve-obs] metrics {mode}: cold miss "
                    f"({trials} trials) ...", flush=True,
                )
                first = server.compile(func)
                if first.source != "miss":
                    failures.append(
                        f"metrics {mode}: first request was {first.source!r}"
                    )
                if not first.request_id:
                    failures.append(
                        f"metrics {mode}: response carries no request id"
                    )
                scripts[mode] = first.script
                warm = server.compile(func)
                if warm.source != "hit" or warm.script != first.script:
                    failures.append(
                        f"metrics {mode}: warm request was {warm.source!r} "
                        "or changed the program"
                    )
                if warm.request_id == first.request_id:
                    failures.append(
                        f"metrics {mode}: request ids not unique "
                        f"({first.request_id!r})"
                    )
                if metrics_on:
                    for _ in range(5):  # warm-up rounds, untimed
                        server.compile(func)
                    # -- timing: same-server gate toggle.  Clearing
                    #    ``_m_events`` (skips response staging) and the
                    #    database's ``_m_get`` (skips sampled get
                    #    timing) reproduces byte-for-byte the branches a
                    #    metrics-off server executes, on the SAME
                    #    object — so alternating cleared/restored rounds
                    #    isolates exactly the gated instrumentation
                    #    work, free of cross-object layout luck.
                    events_handle = server._m_events
                    db_handle = server.database
                    mget_handle = db_handle._m_get

                    def gates(enabled):
                        server._m_events = events_handle if enabled else None
                        db_handle._m_get = mget_handle if enabled else None

                    # One *pass* = ``reps`` alternating off/on pairs;
                    # its statistic is the median per-pair delta (pairs
                    # are adjacent in time, so clock drift cancels
                    # inside each pair, and the within-pair order flips
                    # per pair so periodic background load cannot
                    # systematically penalize one side).  The reported
                    # overhead is the MINIMUM over passes — timeit's
                    # repeat-and-take-min rationale: every contaminant
                    # (GC, scheduler, turbo steps) inflates a pass
                    # additively, so the lowest pass is the closest
                    # estimate of the true cost.
                    passes = 1 if smoke else 3
                    pass_pcts = []
                    off_meds = []
                    on_meds = []
                    for _ in range(passes):
                        off_rounds = []
                        on_rounds = []
                        for index in range(reps):
                            for enabled in (
                                (False, True) if index % 2 == 0
                                else (True, False)
                            ):
                                gates(enabled)
                                sample = timed_round(server)
                                (
                                    on_rounds if enabled else off_rounds
                                ).append(sample)
                        gates(True)
                        off_med = _median(off_rounds)
                        deltas = [
                            100.0 * (on - off) / off_med
                            for off, on in zip(off_rounds, on_rounds)
                        ]
                        pass_pcts.append(_median(deltas))
                        off_meds.append(off_med)
                        on_meds.append(_median(on_rounds))
                    best = min(range(passes), key=lambda i: pass_pcts[i])
                    bench["timing"] = {
                        "method": (
                            "same-server instrumentation-gate toggle: "
                            f"min over {passes} passes of the median "
                            f"per-pair delta, {reps} alternating round "
                            f"pairs of {hits_per_rep} warm hits each"
                        ),
                        "overhead_pct": round(pass_pcts[best], 2),
                        "pass_overheads_pct": [
                            round(p, 2) for p in pass_pcts
                        ],
                        "gates_off_median_us": round(
                            1e6 * off_meds[best], 2
                        ),
                        "gates_on_median_us": round(
                            1e6 * on_meds[best], 2
                        ),
                    }
                    print(
                        f"[serve-obs] warm hit: gates off "
                        f"{bench['timing']['gates_off_median_us']}us, "
                        f"gates on "
                        f"{bench['timing']['gates_on_median_us']}us, "
                        f"overhead (min over passes "
                        f"{bench['timing']['pass_overheads_pct']}) "
                        f"{bench['timing']['overhead_pct']}%",
                        flush=True,
                    )
                    # -- health() vs the exported histograms: the very
                    #    same rolling windows (health() replicates each
                    #    1-in-N sampled hit latency N times so pooled
                    #    percentiles weight outcomes by true request
                    #    volume), so equality is exact.
                    from repro.serve.server import _HIT_LATENCY_SAMPLE

                    health_doc = server.health()
                    snap = server.metrics.snapshot()
                    series = snap["metrics"]["serve_latency_seconds"]["series"]
                    window = sorted(
                        v
                        for key, s in series.items()
                        for v in s["window"]
                        for _ in range(
                            _HIT_LATENCY_SAMPLE
                            if key == "outcome=hit"
                            else 1
                        )
                    )

                    def from_snapshot(q):
                        if not window:
                            return None
                        return window[min(len(window) - 1, int(q * len(window)))]

                    health_consistent = True
                    for field, q in (
                        ("p50_seconds", 0.50),
                        ("p95_seconds", 0.95),
                        ("p99_seconds", 0.99),
                    ):
                        got, want = health_doc[field], from_snapshot(q)
                        same = (got is None and want is None) or (
                            got is not None
                            and want is not None
                            and abs(got - want) <= 1e-12
                        )
                        if not same:
                            health_consistent = False
                            failures.append(
                                f"health()[{field!r}] = {got} disagrees with "
                                f"the snapshot window quantile {want}"
                            )
                    outcomes = snap["metrics"]["serve_requests_total"]["series"]
                    bench["requests_by_outcome"] = {
                        k: v for k, v in outcomes.items()
                    }
                    # miss + warm + 5 warm-ups + every timed hit: hit
                    # counts are derived from ServerStats at fold time,
                    # so gate-off rounds are still counted exactly (only
                    # their latency samples are skipped).
                    expected = 7 + 2 * reps * hits_per_rep * passes
                    served = sum(outcomes.values())
                    if served != expected:
                        failures.append(
                            f"serve_requests_total sums to {served}, "
                            f"expected {expected}"
                        )
                    # -- request-id span trees, miss and hit alike.
                    trees["miss"] = tree_round_trip(telemetry, first, "miss")
                    trees["hit"] = tree_round_trip(telemetry, warm, "hit")

    if scripts["off"] != scripts["on"]:
        failures.append("metrics on/off served different best programs")
    overhead_pct = bench["timing"]["overhead_pct"]
    if not smoke and overhead_pct >= 2.0:
        failures.append(
            f"metrics-on warm-hit overhead {overhead_pct:.2f}% >= 2%"
        )
    bench["span_trees"] = trees
    bench["health"] = health_doc
    bench["aggregate"] = {
        "warm_hit_overhead_pct": round(overhead_pct, 2),
        "best_identical": scripts["off"] == scripts["on"],
        "health_consistent": bool(health_consistent),
        "span_trees_round_trip": all(t["round_trip"] for t in trees.values())
        if trees
        else False,
        "timing_gate": "skipped (smoke)" if smoke else "<2%",
        "ok": not failures,
    }
    doc = {}
    if os.path.exists(out_path):
        try:
            with open(out_path) as fh:
                doc = json.load(fh)
        except (json.JSONDecodeError, OSError):
            doc = {}
    doc["serve_obs"] = bench
    with open(out_path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(json.dumps(bench["aggregate"], indent=2))
    print(f"wrote {out_path}")
    for line in failures:
        print(f"FAIL: {line}", file=sys.stderr)
    return 0 if not failures else 1


def run_fusion_bench(trials, seed, workers, out_path):
    """Graph-level fusion: task-count reduction and fused end-to-end gain.

    For every end-to-end network (fig. 12 GPU set + fig. 14 CPU set) the
    dataflow graph is partitioned twice — ``fuse=True`` (prologue/
    epilogue chains lowered into their anchors) and ``fuse=False`` (one
    singleton group per op) — and both plans are tuned through a
    ``TuningSession`` sharing one database per device, exactly the
    fig. 12/14 pipeline.  Three contracts are asserted per network:

    * fusion removes >= 20% of the *unique* tuning tasks;
    * fused end-to-end latency (measured per-group latencies + one
      dispatch per group) <= the unfused latency;
    * identical fused groups land on the identical best program — every
      database replay reports the same cycles as the search that
      populated its key.

    Results merge into ``BENCH_search.json`` under ``graph_fusion``.
    """
    from repro.frontend import (
        cpu_graph,
        fuse_graph,
        gpu_graph,
        graph_latency,
        lower_group,
    )
    from repro.meta import TuningDatabase, TuningSession
    from repro.meta.database import workload_key
    from repro.sim import SimCPU

    devices = [
        ("gpu", SimGPU(), gpu_graph,
         ["ResNet-50", "MobileNet-V2", "BERT-large", "ViT"]),
        ("cpu", SimCPU(), cpu_graph,
         ["ResNet-50", "MobileNet-V2", "BERT-base"]),
    ]
    bench = {
        "config": {"trials": trials, "seed": seed, "workers": workers},
        "networks": {},
    }
    failures = []
    for dev, target, graph_of, networks in devices:
        overhead_cycles = getattr(target, "kernel_launch_cycles", None)
        if overhead_cycles is None:
            overhead_cycles = target.op_launch_cycles
        per_op_overhead = target.cycles_to_seconds(overhead_cycles)
        fused_db, unfused_db = TuningDatabase(), TuningDatabase()
        for name in networks:
            graph = graph_of(name)
            fused_plan = fuse_graph(graph)
            unfused_plan = fuse_graph(graph, fuse=False)
            counts = {}
            latencies = {}
            reports = {}
            for mode, plan, database in (
                ("fused", fused_plan, fused_db),
                ("unfused", unfused_plan, unfused_db),
            ):
                session = TuningSession(
                    target, TuneConfig(trials=trials, seed=seed),
                    database=database, workers=workers,
                )
                session.add_graph(plan)
                print(
                    f"[{dev}/{name}] tuning {plan.num_groups} {mode} groups ...",
                    flush=True,
                )
                report = session.run()
                reports[mode] = report
                keys = {
                    workload_key(lower_group(g), target) for g in plan.groups
                }
                counts[mode] = {
                    "groups": plan.num_groups,
                    "unique_tasks": len(keys),
                    "searched": report.totals["tasks_searched"],
                    "replayed": report.totals["tasks_replayed"],
                }
                latencies[mode] = graph_latency(
                    plan, report, per_op_overhead=per_op_overhead
                )
            reduction = 1.0 - (
                counts["fused"]["unique_tasks"] / counts["unfused"]["unique_tasks"]
            )
            # Replays must reproduce the searched best program exactly.
            by_key = {}
            replay_identical = True
            for t in reports["fused"].tasks:
                if t.status == "searched":
                    by_key[t.key] = t.cycles
            for t in reports["fused"].tasks:
                if t.status == "replayed" and by_key.get(t.key) != t.cycles:
                    replay_identical = False
            entry = {
                "fused": counts["fused"],
                "unfused": counts["unfused"],
                "task_reduction_pct": round(100 * reduction, 1),
                "fused_latency_ms": round(latencies["fused"] * 1e3, 4),
                "unfused_latency_ms": round(latencies["unfused"] * 1e3, 4),
                "speedup": round(latencies["unfused"] / latencies["fused"], 3),
                "replays_identical": replay_identical,
            }
            bench["networks"][f"{dev}/{name}"] = entry
            print(
                f"[{dev}/{name}]   -{entry['task_reduction_pct']}% tasks, "
                f"{entry['fused_latency_ms']}ms fused vs "
                f"{entry['unfused_latency_ms']}ms unfused "
                f"({entry['speedup']}x)", flush=True,
            )
            if reduction < 0.2:
                failures.append(
                    f"{dev}/{name}: task reduction {100 * reduction:.1f}% < 20%"
                )
            if latencies["fused"] > latencies["unfused"]:
                failures.append(
                    f"{dev}/{name}: fused latency {latencies['fused']:.6f}s "
                    f"exceeds unfused {latencies['unfused']:.6f}s"
                )
            if not replay_identical:
                failures.append(
                    f"{dev}/{name}: a database replay diverged from its search"
                )
    bench["aggregate"] = {
        "min_task_reduction_pct": min(
            e["task_reduction_pct"] for e in bench["networks"].values()
        ),
        "min_speedup": min(e["speedup"] for e in bench["networks"].values()),
        "all_replays_identical": all(
            e["replays_identical"] for e in bench["networks"].values()
        ),
        "ok": not failures,
    }
    report = {}
    if os.path.exists(out_path):
        with open(out_path) as fh:
            report = json.load(fh)
    report["graph_fusion"] = bench
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(bench["aggregate"], indent=2))
    print(f"wrote {out_path}")
    for line in failures:
        print(f"FAIL: {line}", file=sys.stderr)
    return 0 if not failures else 1


def run_serve_bench(workloads, trials, seed, out_path, smoke=False):
    """The schedule-server acceptance bench (``--serve``).

    Drives one :class:`repro.serve.ScheduleServer` backed by a fresh
    persistent on-disk database through the three serving contracts:

    * **warm hits are free** — after the cold misses populate the
      database, every repeat request must be served with ``trials == 0``
      and the byte-identical program; hit latency is recorded (p50).
    * **restarts serve identical programs** — a second server opened on
      the same database directory must answer every workload as a hit
      with the byte-identical script.
    * **concurrent misses coalesce** — N concurrent clients requesting
      one un-tuned workload must share a *single* tuning run
      (``tune_runs == 1``, coalesce factor >= 2).

    Results merge into ``BENCH_search.json`` under ``schedule_serve``.
    ``smoke=True`` shrinks the workload set and trial budget for CI;
    the correctness gates are identical — only timings are elided.
    """
    import tempfile
    import threading

    from repro.meta import Telemetry
    from repro.serve import ScheduleServer, ServeConfig

    target = SimGPU()
    hit_reps = 5 if smoke else 30
    bench = {
        "config": {"trials": trials, "seed": seed, "smoke": smoke},
        "workloads": {},
    }
    failures = []
    telemetry = Telemetry()
    with tempfile.TemporaryDirectory(prefix="serve-bench-") as tmp:
        cfg = ServeConfig(
            db_path=os.path.join(tmp, "db"),
            tune=TuneConfig(trials=trials, seed=seed),
        )
        funcs = {
            name: ops.matmul(64, 64, 64) if smoke else gpu_workload(name)
            for name in workloads
        }
        scripts = {}
        with ScheduleServer(target, cfg, telemetry=telemetry) as server:
            for name, func in funcs.items():
                print(f"[{name}] cold miss (tuning {trials} trials) ...", flush=True)
                t0 = time.perf_counter()
                resp = server.compile(func)
                miss_seconds = time.perf_counter() - t0
                if resp.source != "miss":
                    failures.append(f"{name}: first request was {resp.source!r}")
                scripts[name] = resp.script
                warm = []
                for _ in range(hit_reps):
                    t0 = time.perf_counter()
                    again = server.compile(func)
                    warm.append(time.perf_counter() - t0)
                    if again.source != "hit" or again.trials != 0:
                        failures.append(
                            f"{name}: warm request was {again.source!r} "
                            f"with {again.trials} trials"
                        )
                    if again.script != resp.script:
                        failures.append(f"{name}: warm hit changed the program")
                warm.sort()
                bench["workloads"][name] = {
                    "miss_seconds": round(miss_seconds, 4),
                    "miss_trials": resp.trials,
                    "hit_p50_ms": round(1e3 * warm[len(warm) // 2], 4),
                    "hit_reps": hit_reps,
                }
                print(
                    f"[{name}]   miss {miss_seconds:.2f}s, hit p50 "
                    f"{bench['workloads'][name]['hit_p50_ms']}ms", flush=True,
                )
            stats = server.stats()
        # -- restart: a fresh server on the same directory serves the
        #    byte-identical program for every workload, zero trials.
        restart_identical = True
        with ScheduleServer(target, cfg) as server:
            for name, func in funcs.items():
                resp = server.compile(func)
                if resp.source != "hit" or resp.trials != 0:
                    failures.append(f"{name}: post-restart request missed")
                    restart_identical = False
                elif resp.script != scripts[name]:
                    failures.append(f"{name}: restart changed the served program")
                    restart_identical = False
        print(f"restart byte-identical: {restart_identical}", flush=True)
        # -- coalescing: concurrent misses for one workload, one run.
        n_clients = 3
        co_cfg = ServeConfig(
            db_path=os.path.join(tmp, "db-coalesce"),
            tune=TuneConfig(trials=trials, seed=seed),
            batch_window_seconds=0.5,
        )
        func = next(iter(funcs.values()))
        with ScheduleServer(target, co_cfg) as server:
            barrier = threading.Barrier(n_clients)
            responses = [None] * n_clients

            def request(i):
                barrier.wait()
                responses[i] = server.compile(func)

            threads = [
                threading.Thread(target=request, args=(i,))
                for i in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            co_stats = server.stats()
        if co_stats.tune_runs != 1:
            failures.append(
                f"coalescing: {n_clients} concurrent clients took "
                f"{co_stats.tune_runs} tuning runs"
            )
        if len({r.script for r in responses}) != 1:
            failures.append("coalescing: clients were served different programs")
        print(
            f"coalesced {n_clients} clients into {co_stats.tune_runs} run "
            f"(factor {co_stats.coalesce_factor})", flush=True,
        )

    bench["aggregate"] = {
        **stats.to_json(),
        "p50_hit_latency_ms": round(
            1e3 * (stats.p50_hit_seconds() or 0.0), 4
        ),
        "warm_zero_trials": not any("warm" in f for f in failures),
        "restart_identical": restart_identical,
        "concurrent_clients": n_clients,
        "concurrent_tune_runs": co_stats.tune_runs,
        "coalesce_factor": round(co_stats.coalesce_factor, 4),
        "counters": {
            k: v for k, v in telemetry.counters.items() if k.startswith("serve.")
        },
        "ok": not failures,
    }
    report = {}
    if os.path.exists(out_path):
        with open(out_path) as fh:
            report = json.load(fh)
    report["schedule_serve"] = bench
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(bench["aggregate"], indent=2))
    print(f"wrote {out_path}")
    for line in failures:
        print(f"FAIL: {line}", file=sys.stderr)
    return 0 if not failures else 1


def run_shape_bench(trials, seed, out_path, smoke=False):
    """Shape-generic serving: bucketed schedule reuse (``--shapes``).

    Drives a bucket-configured :class:`repro.serve.ScheduleServer`
    (``ServeConfig.buckets = BucketSpec.pow2(...)``) through a
    batch-size sweep (conv2d, the fig. 12 C2D layer family) and a
    sequence-length sweep (matmul, the BERT projection family) and
    asserts the three shape-bucketing contracts:

    * **unseen in-bucket shapes are free** — once a bucket
      representative is tuned, every other shape in the bucket is
      served by adaptive §5.2 replay with ``trials == 0`` (source
      ``"bucket-hit"``, or ``"hit"`` for the representative itself);
    * **bounded latency regression** — the bucket-reused schedule's
      estimated end-to-end latency stays within 1.25x of tuning that
      exact shape from scratch with the same budget, at every shape;
    * **numerical equality** — every served program matches the
      interpreter oracle at its concrete shape.

    Results merge into ``BENCH_search.json`` under ``shape_buckets``.
    ``smoke=True`` shrinks shapes and budgets for CI; the correctness
    gates are identical.
    """
    import numpy as np

    from repro.frontend.shapes import BucketSpec
    from repro.meta import Telemetry
    from repro.runtime import run as run_program
    from repro.runtime.executor import random_args
    from repro.runtime.interp import interpret
    from repro.serve import ScheduleServer, ServeConfig

    target = SimGPU()
    # Sweep families: a conv batch family (fp32, gpu-scalar — exercises
    # adaptive tile coercion at every batch) and a matmul sequence
    # family (fp16, tensor-core — swept over multiples of the intrinsic
    # tile, where cross-shape replay keeps the tensorized schedule).
    # Non-pow2 sweep sizes tune their bucket representative; the pow2
    # sizes that follow are then exact hits, and the ``unseen`` probes
    # land inside already-tuned buckets — the 0-trial contract.
    def conv_layer(n):
        return ops.conv2d(n, 6, 6, 4, 4, 3, 3, dtype="float32")

    def mm_layer(s):
        return ops.matmul(s, 32, 32)

    if smoke:
        sweeps = [
            ("batch_conv2d", conv_layer, [2, 4, 6], [5, 7]),
            ("seq_matmul", mm_layer, [32, 48, 96], [80]),
        ]
    else:
        sweeps = [
            ("batch_conv2d", conv_layer,
             [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64], [13, 27, 40, 56]),
            ("seq_matmul", mm_layer,
             [32, 48, 64, 96, 128], [80, 112]),
        ]
    bench = {
        "config": {"trials": trials, "seed": seed, "smoke": smoke},
        "sweeps": {},
    }
    failures = []

    def check_numerics(base_func, served_func):
        args = random_args(base_func, seed=seed)
        oracle = {k: v.copy() for k, v in args.items()}
        interpret(base_func, oracle)
        got = {k: v.copy() for k, v in args.items()}
        run_program(served_func, got)
        fp16 = any(b.dtype == "float16" for b in base_func.buffers)
        tol = dict(rtol=2e-2, atol=2e-2) if fp16 else dict(rtol=1e-4, atol=1e-4)
        return all(np.allclose(oracle[k], got[k], **tol) for k in oracle)

    for sweep_name, build, sizes, unseen in sweeps:
        telemetry = Telemetry()
        cfg = ServeConfig(
            tune=TuneConfig(trials=trials, seed=seed),
            buckets=BucketSpec.pow2("n"),
        )
        rows = []
        max_ratio = 0.0
        with ScheduleServer(target, cfg, telemetry=telemetry) as server:
            for phase, swept in (("sweep", sizes), ("unseen", unseen)):
                for size in swept:
                    func = build(size)
                    resp = server.compile(func)
                    # Per-shape baseline: tune this exact shape from
                    # scratch with the same budget (fresh database).
                    specific = tune(
                        func, target, TuneConfig(trials=trials, seed=seed)
                    )
                    served_seconds = estimate(resp.func, target).seconds
                    ratio = (
                        served_seconds / specific.best_report.seconds
                        if specific.best_report.seconds
                        else 1.0
                    )
                    max_ratio = max(max_ratio, ratio)
                    numerics_ok = check_numerics(func, resp.func)
                    row = {
                        "n": size,
                        "phase": phase,
                        "source": resp.source,
                        "trials": resp.trials,
                        "latency_ratio": round(ratio, 3),
                        "numerics_ok": numerics_ok,
                    }
                    rows.append(row)
                    print(
                        f"[{sweep_name}] n={size:>3} {resp.source:>10} "
                        f"trials={resp.trials:>3} ratio={ratio:.3f} "
                        f"numerics={'ok' if numerics_ok else 'FAIL'}",
                        flush=True,
                    )
                    if not numerics_ok:
                        failures.append(
                            f"{sweep_name}: n={size} diverged from the "
                            "interpreter oracle"
                        )
                    if ratio > 1.25:
                        failures.append(
                            f"{sweep_name}: n={size} latency ratio "
                            f"{ratio:.3f} exceeds 1.25x"
                        )
                    if phase == "unseen":
                        # Every probe's bucket representative was tuned
                        # during the sweep: serving must take 0 trials.
                        if resp.trials != 0 or resp.source not in (
                            "hit", "bucket-hit"
                        ):
                            failures.append(
                                f"{sweep_name}: unseen in-bucket n={size} "
                                f"took {resp.trials} trials "
                                f"({resp.source!r})"
                            )
            stats = server.stats()
        bench["sweeps"][sweep_name] = {
            "shapes": rows,
            "max_latency_ratio": round(max_ratio, 3),
            "stats": stats.to_json(),
        }

    unseen_rows = [
        r for s in bench["sweeps"].values() for r in s["shapes"]
        if r["phase"] == "unseen"
    ]
    bench["aggregate"] = {
        "max_latency_ratio": round(
            max(s["max_latency_ratio"] for s in bench["sweeps"].values()), 3
        ),
        "unseen_probes": len(unseen_rows),
        "unseen_zero_trials": all(r["trials"] == 0 for r in unseen_rows),
        "all_numerics_ok": all(
            r["numerics_ok"]
            for s in bench["sweeps"].values()
            for r in s["shapes"]
        ),
        "ok": not failures,
    }
    report = {}
    if os.path.exists(out_path):
        with open(out_path) as fh:
            report = json.load(fh)
    report["shape_buckets"] = bench
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(bench["aggregate"], indent=2))
    print(f"wrote {out_path}")
    for line in failures:
        print(f"FAIL: {line}", file=sys.stderr)
    return 0 if not failures else 1


def run_smoke():
    """Correctness-only guard: caches must actually hit.  No timings."""
    func = ops.matmul(64, 64, 64)
    target = SimGPU()
    config = TuneConfig(trials=4, seed=0, search_workers=1)
    previous = repro_cache.set_enabled(True)
    try:
        repro_cache.clear_all()
        before = repro_cache.snapshot_counts()
        result = tune(func, target, config)
        delta = repro_cache.delta_since(before)

        failures = []
        for name in ("meta.features", "schedule.uniquify"):
            hits = delta.get(name, {}).get("hits", 0)
            if hits <= 0:
                failures.append(f"cache {name!r} never hit (delta={delta.get(name)})")

        # A second identical tune() must replay candidate construction,
        # sketch generation and estimation from the caches, and land on
        # the identical best program.
        warm_before = repro_cache.snapshot_counts()
        again = tune(func, target, config)
        warm_delta = repro_cache.delta_since(warm_before)
        for name in ("search.candidates", "meta.sketches", "sim.estimate"):
            hits = warm_delta.get(name, {}).get("hits", 0)
            if hits <= 0:
                failures.append(
                    f"warm re-tune: cache {name!r} never hit "
                    f"(delta={warm_delta.get(name)})"
                )
        if again.best_cycles != result.best_cycles or not tir.structural_equal(
            again.best_func, result.best_func
        ):
            failures.append("warm re-tune changed the best program")

        # verify() hits organically only when the search redraws a
        # duplicate candidate, which a 4-trial smoke can't rely on —
        # exercise it directly: the second call on the same structure
        # must be a hit.
        from repro.schedule import verify as verify_func

        verify_before = repro_cache.snapshot_counts()
        verify_func(result.best_func, target)
        verify_func(result.best_func, target)
        verify_delta = repro_cache.delta_since(verify_before)
        if verify_delta.get("schedule.verify", {}).get("hits", 0) <= 0:
            failures.append(
                f"cache 'schedule.verify' never hit "
                f"(delta={verify_delta.get('schedule.verify')})"
            )

        # The estimate cache must be a pure memo: estimating the best
        # program again returns the cycles the tuner observed.
        if estimate(result.best_func, target).cycles != result.best_cycles:
            failures.append("estimate cache not idempotent on the best program")

        # The process-pool backend must honour the determinism contract
        # end to end: a 2-worker process search lands on the identical
        # best program with the identical rejection profile.
        proc_config = config.with_(evaluator="processes", search_workers=2)
        repro_cache.clear_all()
        proc_result = tune(func, target, proc_config)
        if proc_result.best_cycles != result.best_cycles or not tir.structural_equal(
            proc_result.best_func, result.best_func
        ):
            failures.append("process-pool search changed the best program")
        if proc_result.stats.rejected_by_code != result.stats.rejected_by_code:
            failures.append(
                "process-pool search changed the rejection profile: "
                f"{dict(proc_result.stats.rejected_by_code)} vs "
                f"{dict(result.stats.rejected_by_code)}"
            )
    finally:
        repro_cache.set_enabled(previous)

    if failures:
        print("bench smoke FAILED:")
        for line in failures:
            print(f"  - {line}")
        return 1
    active = {k: v["hits"] for k, v in delta.items() if v.get("hits")}
    print(f"bench smoke passed (cache hits: {active})")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-safe hit-rate check")
    parser.add_argument(
        "--obs-overhead", action="store_true",
        help="measure flight-recorder overhead (off vs recording, warm)",
    )
    parser.add_argument(
        "--fusion", action="store_true",
        help="graph-fusion bench: task-count reduction + fused end-to-end "
        "latency on the fig. 12/14 networks (merges into BENCH_search.json "
        "as 'graph_fusion')",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="schedule-server bench: warm hit latency, restart identity, "
        "miss coalescing (merges into BENCH_search.json as "
        "'schedule_serve'; combine with --smoke for the CI guard)",
    )
    parser.add_argument(
        "--serve-obs", action="store_true",
        help="serving-metrics bench: warm-hit overhead with the metrics "
        "registry on vs off (<2%% gate, median-of-N), health() vs "
        "histogram consistency, request-id span-tree round trip "
        "(writes 'serve_obs' into BENCH_obs.json; combine with --smoke "
        "for the CI guard)",
    )
    parser.add_argument(
        "--shapes", action="store_true",
        help="shape-bucketing bench: batch/seq sweeps served from bucket "
        "representatives — 0-trial in-bucket serves, bounded latency "
        "regression, oracle numerics (merges into BENCH_search.json as "
        "'shape_buckets'; combine with --smoke for the CI guard)",
    )
    parser.add_argument("--trials", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=4,
        help="extra batched run with this many search workers (0 to skip)",
    )
    parser.add_argument(
        "--workloads", default=",".join(DEFAULT_WORKLOADS),
        help="comma-separated §5.1 GPU workload names",
    )
    parser.add_argument(
        "--evaluator", choices=["serial", "threads", "processes", "sweep"],
        help="benchmark one evaluation backend, or 'sweep' for all three "
        "(results merge into BENCH_search.json as 'evaluator_scaling')",
    )
    parser.add_argument("--out", default="BENCH_search.json")
    args = parser.parse_args(argv)
    if args.serve_obs:
        out = args.out if args.out != "BENCH_search.json" else "BENCH_obs.json"
        trials = 4 if args.smoke else args.trials
        return run_serve_obs(trials, args.seed, out, smoke=args.smoke)
    if args.shapes:
        trials = 4 if args.smoke else args.trials
        return run_shape_bench(trials, args.seed, args.out, smoke=args.smoke)
    if args.serve:
        workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
        if args.smoke:
            workloads = workloads[:1]
        trials = 4 if args.smoke else args.trials
        return run_serve_bench(
            workloads, trials, args.seed, args.out, smoke=args.smoke
        )
    if args.smoke:
        return run_smoke()
    if args.fusion:
        return run_fusion_bench(
            args.trials, args.seed, max(2, args.workers), args.out
        )
    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    if args.evaluator:
        backends = None if args.evaluator == "sweep" else [args.evaluator]
        return run_evaluator_sweep(
            workloads, args.trials, args.seed, max(2, args.workers), args.out,
            backends=backends,
        )
    if args.obs_overhead:
        out = args.out if args.out != "BENCH_search.json" else "BENCH_obs.json"
        return run_obs_overhead(workloads, args.trials, args.seed, out)
    return run_bench(workloads, args.trials, args.seed, args.workers, args.out)


if __name__ == "__main__":
    sys.exit(main())
