#!/usr/bin/env python
"""Fail fast when the documented public API surface regresses.

Imports every documented entry point (README quickstart + DESIGN.md §3)
and sanity-checks the signatures that downstream code relies on.  Run
as a CI step:

    PYTHONPATH=src python scripts/check_api.py
"""

import inspect
import sys

FAILURES = []


def check(condition, message):
    if not condition:
        FAILURES.append(message)


def main() -> int:
    import repro

    # --- top-level surface -------------------------------------------
    for name in (
        "tune",
        "TuneConfig",
        "TuneResult",
        "TuningSession",
        "TuningDatabase",
        "Telemetry",
        "workload_key",
        "tir",
        "verify",
        "Diagnostic",
        "DiagnosticContext",
        "DiagnosticError",
        "Severity",
        "Evaluator",
        "SerialEvaluator",
        "ThreadEvaluator",
        "ProcessEvaluator",
        "CandidateSpec",
        "__version__",
    ):
        check(hasattr(repro, name), f"repro.{name} missing")

    # --- module surface ----------------------------------------------
    from repro import meta

    for name in (
        "tune",
        "TuneConfig",
        "TuningSession",
        "SessionReport",
        "TaskReport",
        "TuningDatabase",
        "DatabaseEntry",
        "workload_key",
        "Telemetry",
        "SearchStats",
        "TuneResult",
        "evolutionary_search",
        "estimated_cost",
        "Evaluator",
        "SerialEvaluator",
        "ThreadEvaluator",
        "ProcessEvaluator",
        "CandidateSpec",
        "get_evaluator",
        "shutdown_evaluators",
    ):
        check(hasattr(meta, name), f"repro.meta.{name} missing")

    from repro import schedule

    for name in (
        "Schedule",
        "BlockRV",
        "LoopRV",
        "ScheduleError",
        "Trace",
        "Instruction",
        "verify",
        "is_valid",
        "assert_valid",
        "VerificationError",
        "Diagnostic",
        "DiagnosticContext",
        "DiagnosticError",
    ):
        check(hasattr(schedule, name), f"repro.schedule.{name} missing")

    from repro import diagnostics

    for name in (
        "Diagnostic",
        "Severity",
        "DiagnosticContext",
        "DiagnosticError",
        "tagged",
        "ErrorCode",
        "register_code",
        "code_info",
        "all_codes",
        "family_of",
        "LintReport",
        "lint_func",
        "lint_trace",
        "lint_path",
    ):
        check(hasattr(diagnostics, name), f"repro.diagnostics.{name} missing")

    from repro.frontend import network_latency  # noqa: F401
    from repro.sim import SimCPU, SimGPU, estimate  # noqa: F401

    # --- the graph-fusion layer ---------------------------------------
    from repro import frontend

    for name in (
        "Graph",
        "GraphError",
        "OpNode",
        "TensorNode",
        "FusionPlan",
        "FusionGroup",
        "FusionRejection",
        "ANCHOR_KINDS",
        "fuse_graph",
        "compose_group",
        "lower_group",
        "graph_latency",
        "run_graph",
        "run_plan",
        "random_graph_inputs",
        "gpu_graph",
        "cpu_graph",
    ):
        check(hasattr(frontend, name), f"repro.frontend.{name} missing")
    fuse_params = inspect.signature(frontend.fuse_graph).parameters
    check("fuse" in fuse_params, "fuse_graph(...fuse...) missing")
    latency_params = inspect.signature(frontend.graph_latency).parameters
    check(
        "per_op_overhead" in latency_params,
        "graph_latency(...per_op_overhead...) missing",
    )
    net_latency_params = inspect.signature(frontend.network_latency).parameters
    check(
        "fold_fusible" in net_latency_params,
        "network_latency(...fold_fusible...) missing",
    )
    check(
        callable(getattr(repro.TuningSession, "add_graph", None)),
        "TuningSession.add_graph missing",
    )

    # --- the performance layer (structural hashing + caches) ---------
    check(hasattr(repro.tir, "structural_hash"), "repro.tir.structural_hash missing")
    hash_params = inspect.signature(repro.tir.structural_hash).parameters
    for param in ("node", "map_free_vars"):
        check(param in hash_params, f"structural_hash(...{param}...) missing")

    from repro import cache

    for name in (
        "MemoCache",
        "cache_stats",
        "set_enabled",
        "caches_enabled",
        "snapshot_counts",
        "delta_since",
        "clear_all",
    ):
        check(hasattr(cache, name), f"repro.cache.{name} missing")

    # --- signatures downstream code relies on ------------------------
    cfg_fields = set(repro.TuneConfig.field_names())
    for field in (
        "trials",
        "seed",
        "allow_tensorize",
        "sketches",
        "validate",
        "search_workers",
        "evaluator",
    ):
        check(field in cfg_fields, f"TuneConfig.{field} missing")
    # The old int-only knob must keep working through the kwargs shim.
    check(
        repro.TuneConfig.from_kwargs(search_workers=2).search_workers == 2,
        "TuneConfig.from_kwargs(search_workers=...) broken",
    )
    check(
        repro.TuneConfig.from_kwargs(evaluator="processes").evaluator == "processes",
        "TuneConfig.from_kwargs(evaluator=...) broken",
    )

    tune_params = inspect.signature(repro.tune).parameters
    for param in ("func", "target", "config", "database", "telemetry"):
        check(param in tune_params, f"tune(...{param}...) missing")

    session_params = inspect.signature(repro.TuningSession.__init__).parameters
    for param in ("target", "config", "database", "workers", "telemetry",
                  "evaluator", "provenance"):
        check(param in session_params, f"TuningSession(...{param}...) missing")

    run_params = inspect.signature(repro.TuningSession.run).parameters
    check("total_trials" in run_params, "TuningSession.run(total_trials=...) missing")

    # The redesigned database protocol: four primitives on the shared
    # base, both backends implementing them, old spellings kept as
    # deprecation shims.
    for name in ("Database", "PersistentDatabase"):
        check(hasattr(repro, name), f"repro.{name} missing")
        check(hasattr(meta, name), f"repro.meta.{name} missing")
    for method in ("get", "put", "evict", "keys", "record", "replay", "entries"):
        check(
            callable(getattr(meta.Database, method, None)),
            f"Database.{method} missing",
        )
    for backend in (repro.TuningDatabase, repro.PersistentDatabase):
        check(
            issubclass(backend, meta.Database),
            f"{backend.__name__} must subclass Database",
        )
    # Deprecated shims must survive until the next major release.
    for method in ("lookup", "lookup_key", "record", "replay", "save", "entries"):
        check(
            callable(getattr(repro.TuningDatabase, method, None)),
            f"TuningDatabase.{method} missing",
        )
    pdb_params = inspect.signature(repro.PersistentDatabase.__init__).parameters
    for param in ("root", "ttl_seconds", "max_entries"):
        check(param in pdb_params, f"PersistentDatabase(...{param}...) missing")
    for method in ("evict_expired", "flush_lru", "stats"):
        check(
            callable(getattr(repro.PersistentDatabase, method, None)),
            f"PersistentDatabase.{method} missing",
        )
    entry_fields = set(getattr(meta.DatabaseEntry, "__dataclass_fields__", {}))
    for field in (
        "key", "workload", "target", "sketch", "decisions", "cycles",
        "provenance", "structural_hash", "trace",
    ):
        check(field in entry_fields, f"DatabaseEntry.{field} missing")

    # --- the serving surface (repro.serve) ----------------------------
    from repro import serve

    for name in (
        "ScheduleServer",
        "Client",
        "ServeConfig",
        "CompileRequest",
        "CompileResponse",
        "ServerStats",
        "compile",
        "default_client",
        "shutdown_default_servers",
    ):
        check(hasattr(serve, name), f"repro.serve.{name} missing")
    for name in ("compile", "ScheduleServer", "Client", "ServeConfig",
                 "CompileResponse"):
        check(hasattr(repro, name), f"repro.{name} missing")
    compile_params = inspect.signature(repro.compile).parameters
    for param in ("func", "target", "config", "client", "timeout"):
        check(param in compile_params, f"repro.compile(...{param}...) missing")
    server_params = inspect.signature(serve.ScheduleServer.__init__).parameters
    for param in ("target", "config", "database", "telemetry", "recorder"):
        check(param in server_params, f"ScheduleServer(...{param}...) missing")
    for method in ("submit", "compile", "stats", "close"):
        check(
            callable(getattr(serve.ScheduleServer, method, None)),
            f"ScheduleServer.{method} missing",
        )
    serve_fields = set(getattr(serve.ServeConfig, "__dataclass_fields__", {}))
    for field in (
        "db_path", "tune", "batch_window_seconds", "max_batch",
        "session_workers", "ttl_seconds", "max_entries", "compile_programs",
    ):
        check(field in serve_fields, f"ServeConfig.{field} missing")
    response_fields = set(
        getattr(serve.CompileResponse, "__dataclass_fields__", {})
    )
    for field in ("source", "func", "script", "cycles", "trials", "compiled"):
        check(field in response_fields, f"CompileResponse.{field} missing")
    stats_methods = serve.ServerStats()
    check(
        hasattr(stats_methods, "hit_rate")
        and hasattr(stats_methods, "coalesce_factor")
        and callable(getattr(stats_methods, "p50_hit_seconds", None))
        and callable(getattr(stats_methods, "to_json", None)),
        "ServerStats accounting surface incomplete",
    )

    # --- serving observability (request ids + health) ------------------
    # Every response carries a request-scoped trace id; the health
    # endpoint and metrics passthrough are part of the client contract.
    check("request_id" in response_fields, "CompileResponse.request_id missing")
    for field in ("metrics", "stats_window"):
        check(field in serve_fields, f"ServeConfig.{field} missing")
    check(
        callable(getattr(serve.ScheduleServer, "health", None)),
        "ScheduleServer.health missing",
    )
    check(
        callable(getattr(serve.Client, "health", None)),
        "Client.health missing",
    )

    # --- shape-generic tuning (repro.frontend.shapes) ------------------
    from repro.frontend import shapes

    for name in (
        "ShapeBucket",
        "BucketSpec",
        "BucketedWorkload",
        "canonicalize",
        "shape_parametric",
        "shape_args_of",
        "rebuild",
    ):
        check(hasattr(shapes, name), f"repro.frontend.shapes.{name} missing")
        check(hasattr(frontend, name), f"repro.frontend.{name} missing")
    for name in ("ShapeBucket", "BucketSpec", "BucketedWorkload", "canonicalize"):
        check(hasattr(repro, name), f"repro.{name} missing")
    bucket_params = inspect.signature(shapes.ShapeBucket).parameters
    for param in ("dim", "boundaries"):
        check(param in bucket_params, f"ShapeBucket(...{param}...) missing")
    check(
        callable(getattr(shapes.BucketSpec, "pow2", None)),
        "BucketSpec.pow2 missing",
    )
    canon_params = inspect.signature(shapes.canonicalize).parameters
    for param in ("func", "spec", "ctx"):
        check(param in canon_params, f"canonicalize(...{param}...) missing")
    bw_fields = set(getattr(shapes.BucketedWorkload, "__dataclass_fields__", {}))
    for field in ("concrete", "representative", "dims"):
        check(field in bw_fields, f"BucketedWorkload.{field} missing")
    check(
        isinstance(getattr(shapes.BucketedWorkload, "bucketed", None), property),
        "BucketedWorkload.bucketed missing",
    )
    check("buckets" in session_params, "TuningSession(...buckets...) missing")
    check("buckets" in serve_fields, "ServeConfig.buckets missing")
    request_fields = set(getattr(serve.CompileRequest, "__dataclass_fields__", {}))
    check("bucket_key" in request_fields, "CompileRequest.bucket_key missing")
    stats_fields_serve = set(getattr(serve.ServerStats, "__dataclass_fields__", {}))
    for field in ("bucket_hits", "replay_fallbacks"):
        check(field in stats_fields_serve, f"ServerStats.{field} missing")
    for method in ("replay_entry", "replay_bucketed"):
        check(
            callable(getattr(meta.Database, method, None)),
            f"Database.{method} missing",
        )
    replay_params = inspect.signature(meta.Database.replay_entry).parameters
    check(
        "decision_mode" in replay_params,
        "Database.replay_entry(...decision_mode...) missing",
    )
    from repro.diagnostics import code_info as _code_info

    for code in ("TIR701", "TIR702", "TIR703"):
        try:
            _code_info(code)
        except Exception:
            check(False, f"diagnostic code {code} unregistered")

    for method in ("span", "add", "count", "absorb_stats", "report", "to_json"):
        check(
            callable(getattr(repro.Telemetry, method, None)),
            f"Telemetry.{method} missing",
        )

    check(
        callable(getattr(meta.SearchStats, "merge", None)), "SearchStats.merge missing"
    )
    check(
        callable(getattr(meta.SearchStats, "search_signature", None)),
        "SearchStats.search_signature missing",
    )

    # --- the evaluator protocol (pluggable backends) ------------------
    for method in ("evaluate", "map_features", "counters", "close"):
        check(
            callable(getattr(repro.Evaluator, method, None)),
            f"Evaluator.{method} missing",
        )
    for backend in (
        repro.SerialEvaluator,
        repro.ThreadEvaluator,
        repro.ProcessEvaluator,
    ):
        check(
            issubclass(backend, repro.Evaluator),
            f"{backend.__name__} must subclass Evaluator",
        )
    spec_fields = set(getattr(repro.CandidateSpec, "__dataclass_fields__", {}))
    for field in ("seed", "forced", "parent_trial"):
        check(field in spec_fields, f"CandidateSpec.{field} missing")
    from repro.meta.evaluator import EVALUATOR_KINDS

    for kind in ("auto", "serial", "threads", "processes"):
        check(kind in EVALUATOR_KINDS, f"evaluator kind {kind!r} missing")
    search_params = inspect.signature(meta.evolutionary_search).parameters
    check("evaluator" in search_params, "evolutionary_search(...evaluator...) missing")

    # --- the observability layer (flight recorder) --------------------
    from repro import obs

    for name in (
        "ObsConfig",
        "Recorder",
        "TrialRecord",
        "EventStream",
        "JsonlSink",
        "TrialEvent",
        "Rejection",
        "BestImproved",
        "GenerationEnd",
        "ModelUpdate",
        "CacheEvent",
        "ServeRequest",
        "event_to_json",
        "chrome_trace",
        "summarize",
        "diff_recordings",
        "load_recording",
        "replay_trial",
    ):
        check(hasattr(obs, name), f"repro.obs.{name} missing")
    check("obs" in cfg_fields, "TuneConfig.obs missing")
    check(hasattr(repro, "ObsConfig"), "repro.ObsConfig missing")
    obs_fields = set(getattr(obs.ObsConfig, "__dataclass_fields__", {}))
    for field in (
        "enabled",
        "sink_path",
        "max_events",
        "sample_rate",
        "record_traces",
        "on_generation",
        "on_best_improved",
    ):
        check(field in obs_fields, f"ObsConfig.{field} missing")
    check(not obs.ObsConfig().enabled, "ObsConfig must default to disabled")
    for method in ("trial", "rejection", "best_improved", "generation_end",
                   "model_update", "record_cache_delta", "record_evaluator",
                   "serve_request", "recording", "save", "close"):
        check(
            callable(getattr(obs.Recorder, method, None)),
            f"Recorder.{method} missing",
        )
    trial_fields = set(getattr(obs.TrialRecord, "__dataclass_fields__", {}))
    for field in ("trial_id", "task", "workload", "sketch", "generation",
                  "parent", "decisions", "structural_hash", "trace"):
        check(field in trial_fields, f"TrialRecord.{field} missing")

    # --- the metrics layer (repro.obs.metrics) -------------------------
    from repro.obs import metrics as obs_metrics

    for name in (
        "MetricsRegistry",
        "Counter",
        "Gauge",
        "Histogram",
        "MetricFamily",
        "render_prometheus",
        "quantile_from_buckets",
        "fold_cache_delta",
        "fold_evaluator_counters",
        "DEFAULT_LATENCY_BUCKETS",
    ):
        check(hasattr(obs_metrics, name), f"repro.obs.metrics.{name} missing")
    for name in ("MetricsRegistry", "render_prometheus", "serve_report"):
        check(hasattr(obs, name), f"repro.obs.{name} missing")
    for method in (
        "counter", "gauge", "gauge_fn", "histogram", "snapshot",
        "delta_since", "prometheus_text", "register_collector", "save",
    ):
        check(
            callable(getattr(obs_metrics.MetricsRegistry, method, None)),
            f"MetricsRegistry.{method} missing",
        )
    check(
        not obs_metrics.MetricsRegistry(enabled=False).enabled,
        "MetricsRegistry(enabled=False) must stay disabled",
    )
    hist_params = inspect.signature(
        obs_metrics.MetricsRegistry.histogram
    ).parameters
    for param in ("buckets", "window", "labels"):
        check(param in hist_params, f"MetricsRegistry.histogram(...{param}...) missing")
    for method in ("observe", "observe_many", "cumulative", "quantile",
                   "window_values", "window_quantile", "to_json"):
        check(
            callable(getattr(obs_metrics.Histogram, method, None)),
            f"Histogram.{method} missing",
        )
    for method in ("to_json", "from_json"):
        check(
            callable(getattr(schedule.Trace, method, None)),
            f"Trace.{method} missing",
        )
        check(
            callable(getattr(schedule.Instruction, method, None)),
            f"Instruction.{method} missing",
        )
    add_params = inspect.signature(repro.Telemetry.add).parameters
    check("start" in add_params, "Telemetry.add(...start...) missing")
    span_fields = set(getattr(meta.Span, "__dataclass_fields__", {}))
    for field in ("span_id", "parent_id"):
        check(field in span_fields, f"Span.{field} missing")
    check(
        "obs" in getattr(meta.SessionReport, "__dataclass_fields__", {}),
        "SessionReport.obs missing",
    )
    check(
        callable(getattr(repro.TuningSession, "save_recording", None)),
        "TuningSession.save_recording missing",
    )
    check(callable(getattr(meta.Sketch, "token", None)), "Sketch.token missing")

    # Telemetry counter names are derived from these field names (and
    # session reports key on them) — renames break dashboards.
    stats_fields = set(
        getattr(meta.SearchStats, "__dataclass_fields__", {})
    )
    for field in (
        "candidates_generated",
        "invalid_rejected",
        "apply_failed",
        "measured",
        "profiling_seconds",
        "eval_batches",
        "eval_batch_candidates",
        "eval_batch_slots",
        "rejected_by_code",
    ):
        check(field in stats_fields, f"SearchStats.{field} missing")
    check(
        "cache_stats" in getattr(meta.SessionReport, "__dataclass_fields__", {}),
        "SessionReport.cache_stats missing",
    )
    predict_params = inspect.signature(meta.CostModel.predict).parameters
    check("executor" in predict_params, "CostModel.predict(...executor...) missing")

    verify_params = inspect.signature(repro.verify).parameters
    for param in ("func", "target", "ctx"):
        check(param in verify_params, f"verify(...{param}...) missing")

    check(
        issubclass(schedule.ScheduleError, repro.DiagnosticError),
        "ScheduleError must subclass DiagnosticError",
    )
    check(
        issubclass(schedule.VerificationError, repro.DiagnosticError),
        "VerificationError must subclass DiagnosticError",
    )
    for attr in ("code", "message", "severity", "render", "span"):
        check(
            hasattr(repro.Diagnostic, attr) or attr in getattr(
                repro.Diagnostic, "__dataclass_fields__", {}
            ),
            f"Diagnostic.{attr} missing",
        )
    for method in ("emit", "extend", "errors", "ok", "counts_by_code", "render"):
        check(
            hasattr(repro.DiagnosticContext, method),
            f"DiagnosticContext.{method} missing",
        )

    if FAILURES:
        print("public API check FAILED:")
        for message in FAILURES:
            print(f"  - {message}")
        return 1
    print("public API check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
