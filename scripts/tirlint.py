#!/usr/bin/env python
"""tirlint — run the §3.3 TensorIR validation battery over Python files.

Thin launcher for ``python -m repro.diagnostics``; keeps working when
the package is not installed by adding ``src/`` to ``sys.path``:

    python scripts/tirlint.py examples/*.py --target gpu
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.diagnostics.__main__ import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
