"""repro — a pure-Python reproduction of *TensorIR: An Abstraction for
Automatic Tensorized Program Optimization* (ASPLOS 2023).

Top-level layout:

* :mod:`repro.tir` — the TensorIR abstraction (buffers, loops, blocks).
* :mod:`repro.arith` — integer analysis: simplifier, interval sets,
  quasi-affine iterator maps.
* :mod:`repro.schedule` — schedule primitives as IR→IR transforms, the
  replayable trace, and validation.
* :mod:`repro.runtime` — lowering and NumPy-backed execution.
* :mod:`repro.sim` — simulated GPU/CPU hardware targets and the
  analytical performance model.
* :mod:`repro.intrin` — tensor intrinsic descriptions (TensorIntrin).
* :mod:`repro.autotensorize` — §4.2 tensorization candidate generation.
* :mod:`repro.diagnostics` — typed diagnostics (stable ``TIRnnn`` error
  codes, source spans, ``tirlint``) for validation and scheduling.
* :mod:`repro.meta` — the tensorization-aware auto-scheduler (§4.3–4.4).
* :mod:`repro.obs` — the tuning flight recorder: hierarchical spans,
  per-trial provenance, exportable run timelines (``python -m repro.obs``).
* :mod:`repro.learn` — the from-scratch gradient-boosted-tree cost model.
* :mod:`repro.serve` — tuning-as-a-service: the persistent schedule
  server behind ``repro.compile`` (lookup-first, tune-on-miss,
  persist-forever).
* :mod:`repro.frontend` — operators, workloads and network graphs.
* :mod:`repro.baselines` — TVM/AMOS/CUTLASS/TensorRT/ACL/PyTorch-like
  comparison systems used by the evaluation benchmarks.
"""

__version__ = "0.1.0"

from . import obs  # noqa: F401  (the flight-recorder package)
from . import tir  # noqa: F401  (re-exported for convenience)
from .diagnostics import (  # noqa: F401  — the typed diagnostics API
    Diagnostic,
    DiagnosticContext,
    DiagnosticError,
    Severity,
)
from .meta import (  # noqa: F401  — the documented top-level tuning API
    CandidateSpec,
    Database,
    Evaluator,
    ObsConfig,
    PersistentDatabase,
    ProcessEvaluator,
    SerialEvaluator,
    Telemetry,
    ThreadEvaluator,
    TuneConfig,
    TuneResult,
    TuningDatabase,
    TuningSession,
    tune,
    workload_key,
)
from .frontend.shapes import (  # noqa: F401  — shape-generic tuning
    BucketedWorkload,
    BucketSpec,
    ShapeBucket,
    canonicalize,
)
from .schedule import verify  # noqa: F401  — the §3.3 validation battery
from .serve import (  # noqa: F401  — the serving surface
    Client,
    CompileResponse,
    ScheduleServer,
    ServeConfig,
    compile,
)

__all__ = [
    "tir",
    "obs",
    "tune",
    "TuneConfig",
    "ObsConfig",
    "TuneResult",
    "TuningSession",
    "Database",
    "TuningDatabase",
    "PersistentDatabase",
    "Telemetry",
    "Evaluator",
    "SerialEvaluator",
    "ThreadEvaluator",
    "ProcessEvaluator",
    "CandidateSpec",
    "workload_key",
    "compile",
    "ScheduleServer",
    "Client",
    "ServeConfig",
    "CompileResponse",
    "ShapeBucket",
    "BucketSpec",
    "BucketedWorkload",
    "canonicalize",
    "verify",
    "Diagnostic",
    "DiagnosticContext",
    "DiagnosticError",
    "Severity",
    "__version__",
]
