"""Integer arithmetic substrate: interval sets, canonical simplification
and quasi-affine iterator-map detection.

This package plays the role of TVM's ``arith`` namespace: it supplies the
machinery behind region analysis, schedule-primitive legality checks and
the loop-nest validation of §3.3.
"""

from .analyzer import Analyzer
from .int_set import IntSet, eval_int_set, intersect, range_to_set, union
from .iter_map import (
    IterMapError,
    IterMark,
    IterSplitExpr,
    IterSumExpr,
    detect_iter_map,
)
from .simplify import Simplifier, structural_key

__all__ = [
    "Analyzer",
    "IntSet",
    "eval_int_set",
    "range_to_set",
    "union",
    "intersect",
    "Simplifier",
    "structural_key",
    "detect_iter_map",
    "IterMapError",
    "IterMark",
    "IterSplitExpr",
    "IterSumExpr",
]
