"""The arithmetic analyzer: one façade over bounds, simplification and
interval evaluation.

An :class:`Analyzer` owns a variable→domain map (populated from loop and
block-iterator domains) and exposes:

* ``simplify(expr)`` — bounds-aware canonical simplification;
* ``can_prove(cond)`` — conservative proof of a boolean expression;
* ``int_set(expr)`` — conservative interval of an integer expression;
* ``const_int(expr)`` — the constant value, if provable.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple, Union

from .. import cache as _cache
from ..tir.expr import IntImm, PrimExpr, Range, Var, const_int_value
from .int_set import IntSet, eval_int_set, range_to_set
from .simplify import Simplifier

__all__ = ["Analyzer"]

#: per-instance memo tables are bounded by wholesale clearing at this
#: size — an analyzer normally sees far fewer distinct expressions.
_MEMO_LIMIT = 2048

#: process-wide hit/miss counters of the per-analyzer simplify memo,
#: surfaced through :func:`repro.cache.cache_stats`.
_SIMPLIFY_HITS = 0
_SIMPLIFY_MISSES = 0

_cache.register_stats_source(
    "arith.simplify_memo", lambda: (_SIMPLIFY_HITS, _SIMPLIFY_MISSES)
)


class Analyzer:
    def __init__(self, dom_map: Optional[Mapping[Var, IntSet]] = None):
        self._dom: Dict[Var, IntSet] = dict(dom_map or {})
        self._simplifier = Simplifier(bound_of=self.int_set)
        # Memo tables keyed on expression identity (simplify) or the
        # detection key (iter_map, owned by detect_iter_map).  Both are
        # valid only for a fixed domain map, so bind() clears them.
        self._simplify_memo: Dict[int, Tuple[PrimExpr, PrimExpr]] = {}
        self._iter_map_memo: Dict[object, object] = {}

    # -- domain management ------------------------------------------------
    def bind(self, var: Var, dom: Union[IntSet, Range, int]) -> None:
        """Register the domain of ``var``.

        Accepts an :class:`IntSet`, a constant :class:`Range`, or a plain
        int (binding the variable to a point).
        """
        if isinstance(dom, int):
            dom = IntSet.point(dom)
        elif isinstance(dom, Range):
            lo = const_int_value(dom.min)
            ext = const_int_value(dom.extent)
            if lo is None or ext is None:
                # Symbolic range: try interval-evaluating the endpoints.
                lo_set = self.int_set(dom.min)
                hi_set = self.int_set(dom.min + dom.extent - 1)
                dom = IntSet(lo_set.min_value, hi_set.max_value)
            else:
                dom = IntSet.from_range(lo, ext)
        self._dom[var] = dom
        # A new domain changes what simplification/detection may assume.
        self._simplify_memo.clear()
        self._iter_map_memo.clear()

    def copy(self) -> "Analyzer":
        return Analyzer(self._dom)

    def domains(self) -> Dict[Var, IntSet]:
        return dict(self._dom)

    # -- queries -------------------------------------------------------
    def int_set(self, expr: PrimExpr, extra_dom: Optional[Mapping[Var, IntSet]] = None) -> IntSet:
        if extra_dom:
            merged = dict(self._dom)
            merged.update(extra_dom)
            return eval_int_set(expr, merged)
        return eval_int_set(expr, self._dom)

    def simplify(self, expr: PrimExpr) -> PrimExpr:
        """Bounds-aware simplification, memoized per expression object
        (validation re-simplifies the same guard conjuncts once per
        block iterator — identity keying makes those hits free)."""
        if not _cache.caches_enabled():
            return self._simplifier.simplify(expr)
        global _SIMPLIFY_HITS, _SIMPLIFY_MISSES
        key = id(expr)
        hit = self._simplify_memo.get(key)
        if hit is not None and hit[0] is expr:
            _SIMPLIFY_HITS += 1
            return hit[1]
        _SIMPLIFY_MISSES += 1
        result = self._simplifier.simplify(expr)
        if len(self._simplify_memo) >= _MEMO_LIMIT:
            self._simplify_memo.clear()
        # Keeping ``expr`` in the value pins its id for the entry's
        # lifetime, so a recycled id can never alias a dead key.
        self._simplify_memo[key] = (expr, result)
        return result

    def can_prove(self, cond: PrimExpr) -> bool:
        return self._simplifier.can_prove(cond)

    def prove_equal(self, a: PrimExpr, b: PrimExpr) -> bool:
        return self._simplifier.prove_equal(a, b)

    def const_int(self, expr: PrimExpr) -> Optional[int]:
        """The provably-constant integer value of ``expr``, or None."""
        v = const_int_value(expr)
        if v is not None:
            return v
        simplified = self.simplify(expr)
        return const_int_value(simplified)
