"""The arithmetic analyzer: one façade over bounds, simplification and
interval evaluation.

An :class:`Analyzer` owns a variable→domain map (populated from loop and
block-iterator domains) and exposes:

* ``simplify(expr)`` — bounds-aware canonical simplification;
* ``can_prove(cond)`` — conservative proof of a boolean expression;
* ``int_set(expr)`` — conservative interval of an integer expression;
* ``const_int(expr)`` — the constant value, if provable.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

from ..tir.expr import IntImm, PrimExpr, Range, Var, const_int_value
from .int_set import IntSet, eval_int_set, range_to_set
from .simplify import Simplifier

__all__ = ["Analyzer"]


class Analyzer:
    def __init__(self, dom_map: Optional[Mapping[Var, IntSet]] = None):
        self._dom: Dict[Var, IntSet] = dict(dom_map or {})
        self._simplifier = Simplifier(bound_of=self.int_set)

    # -- domain management ------------------------------------------------
    def bind(self, var: Var, dom: Union[IntSet, Range, int]) -> None:
        """Register the domain of ``var``.

        Accepts an :class:`IntSet`, a constant :class:`Range`, or a plain
        int (binding the variable to a point).
        """
        if isinstance(dom, int):
            dom = IntSet.point(dom)
        elif isinstance(dom, Range):
            lo = const_int_value(dom.min)
            ext = const_int_value(dom.extent)
            if lo is None or ext is None:
                # Symbolic range: try interval-evaluating the endpoints.
                lo_set = self.int_set(dom.min)
                hi_set = self.int_set(dom.min + dom.extent - 1)
                dom = IntSet(lo_set.min_value, hi_set.max_value)
            else:
                dom = IntSet.from_range(lo, ext)
        self._dom[var] = dom

    def copy(self) -> "Analyzer":
        return Analyzer(self._dom)

    def domains(self) -> Dict[Var, IntSet]:
        return dict(self._dom)

    # -- queries -------------------------------------------------------
    def int_set(self, expr: PrimExpr, extra_dom: Optional[Mapping[Var, IntSet]] = None) -> IntSet:
        if extra_dom:
            merged = dict(self._dom)
            merged.update(extra_dom)
            return eval_int_set(expr, merged)
        return eval_int_set(expr, self._dom)

    def simplify(self, expr: PrimExpr) -> PrimExpr:
        return self._simplifier.simplify(expr)

    def can_prove(self, cond: PrimExpr) -> bool:
        return self._simplifier.can_prove(cond)

    def prove_equal(self, a: PrimExpr, b: PrimExpr) -> bool:
        return self._simplifier.prove_equal(a, b)

    def const_int(self, expr: PrimExpr) -> Optional[int]:
        """The provably-constant integer value of ``expr``, or None."""
        v = const_int_value(expr)
        if v is not None:
            return v
        simplified = self.simplify(expr)
        return const_int_value(simplified)
