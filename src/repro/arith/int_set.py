"""Integer interval sets.

:class:`IntSet` represents a closed interval ``[min_value, max_value]``
over the integers, with ``None`` standing for ±infinity.  It is the
workhorse of region analysis: given the domains of loop/block iterators
we evaluate buffer index expressions to intervals and turn them into
access regions (§3.1's read/write signature computation).

Interval arithmetic here is *conservative*: the resulting set always
contains every value the expression can take; it may over-approximate.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from ..tir.buffer import Buffer
from ..tir.expr import (
    Add,
    And,
    BufferLoad,
    Call,
    Cast,
    EQ,
    FloatImm,
    FloorDiv,
    FloorMod,
    GE,
    GT,
    IntImm,
    LE,
    LT,
    Max,
    Min,
    Mul,
    NE,
    Not,
    Or,
    PrimExpr,
    Range,
    Select,
    Sub,
    Var,
    const_int_value,
)

__all__ = ["IntSet", "eval_int_set", "range_to_set", "union", "intersect"]


class IntSet:
    """An integer interval ``[min_value, max_value]`` (None = unbounded)."""

    __slots__ = ("min_value", "max_value")

    def __init__(self, min_value: Optional[int], max_value: Optional[int]):
        if min_value is not None and max_value is not None and min_value > max_value:
            raise ValueError(f"empty IntSet [{min_value}, {max_value}]")
        self.min_value = min_value
        self.max_value = max_value

    # -- constructors ------------------------------------------------
    @staticmethod
    def point(value: int) -> "IntSet":
        return IntSet(value, value)

    @staticmethod
    def everything() -> "IntSet":
        return IntSet(None, None)

    @staticmethod
    def from_range(min_value: int, extent: int) -> "IntSet":
        return IntSet(min_value, min_value + extent - 1)

    # -- predicates ----------------------------------------------------
    @property
    def is_bounded(self) -> bool:
        return self.min_value is not None and self.max_value is not None

    @property
    def is_point(self) -> bool:
        return self.is_bounded and self.min_value == self.max_value

    def extent(self) -> Optional[int]:
        """Number of integers in the interval (None if unbounded)."""
        if not self.is_bounded:
            return None
        return self.max_value - self.min_value + 1

    def contains(self, other: "IntSet") -> bool:
        """True if ``other`` ⊆ ``self``."""
        lo_ok = self.min_value is None or (
            other.min_value is not None and other.min_value >= self.min_value
        )
        hi_ok = self.max_value is None or (
            other.max_value is not None and other.max_value <= self.max_value
        )
        return lo_ok and hi_ok

    def contains_value(self, value: int) -> bool:
        return self.contains(IntSet.point(value))

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other: "IntSet") -> "IntSet":
        return IntSet(
            _add(self.min_value, other.min_value), _add(self.max_value, other.max_value)
        )

    def __sub__(self, other: "IntSet") -> "IntSet":
        return IntSet(
            _sub(self.min_value, other.max_value), _sub(self.max_value, other.min_value)
        )

    def __neg__(self) -> "IntSet":
        return IntSet(_neg(self.max_value), _neg(self.min_value))

    def __mul__(self, other: "IntSet") -> "IntSet":
        candidates = [
            _mul(a, b)
            for a in (self.min_value, self.max_value)
            for b in (other.min_value, other.max_value)
        ]
        if any(c is _UNKNOWN for c in candidates):
            return IntSet.everything()
        return IntSet(min(candidates), max(candidates))

    def floordiv(self, other: "IntSet") -> "IntSet":
        if other.is_point and other.min_value == 0:
            return IntSet.everything()
        if not other.is_bounded or other.min_value <= 0 <= other.max_value:
            return IntSet.everything()
        candidates = []
        for a in (self.min_value, self.max_value):
            for b in (other.min_value, other.max_value):
                if a is None:
                    return IntSet.everything()
                candidates.append(a // b)
        return IntSet(min(candidates), max(candidates))

    def floormod(self, other: "IntSet") -> "IntSet":
        if not other.is_point or other.min_value is None or other.min_value <= 0:
            if other.is_bounded and other.min_value > 0:
                return IntSet(0, other.max_value - 1)
            return IntSet.everything()
        m = other.min_value
        if self.is_bounded and self.min_value // m == self.max_value // m:
            # No wrap-around: modulo is a shift.
            return IntSet(self.min_value % m, self.max_value % m)
        return IntSet(0, m - 1)

    def min_with(self, other: "IntSet") -> "IntSet":
        return IntSet(_min(self.min_value, other.min_value), _min(self.max_value, other.max_value))

    def max_with(self, other: "IntSet") -> "IntSet":
        return IntSet(_max(self.min_value, other.min_value), _max(self.max_value, other.max_value))

    def union(self, other: "IntSet") -> "IntSet":
        return IntSet(_min(self.min_value, other.min_value), _max(self.max_value, other.max_value))

    def intersect(self, other: "IntSet") -> Optional["IntSet"]:
        """Intersection, or None when empty."""
        lo = _max(self.min_value, other.min_value)
        hi = _min(self.max_value, other.max_value)
        if lo is not None and hi is not None and lo > hi:
            return None
        return IntSet(lo, hi)

    def __repr__(self) -> str:  # pragma: no cover
        lo = "-inf" if self.min_value is None else self.min_value
        hi = "+inf" if self.max_value is None else self.max_value
        return f"IntSet[{lo}, {hi}]"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, IntSet)
            and self.min_value == other.min_value
            and self.max_value == other.max_value
        )

    def __hash__(self):
        return hash((self.min_value, self.max_value))


_UNKNOWN = object()


def _add(a, b):
    return None if a is None or b is None else a + b


def _sub(a, b):
    return None if a is None or b is None else a - b


def _neg(a):
    return None if a is None else -a


def _mul(a, b):
    if a is None or b is None:
        if a == 0 or b == 0:
            return 0
        return _UNKNOWN
    return a * b


def _min(a, b):
    if a is None or b is None:
        return None
    return min(a, b)


def _max(a, b):
    if a is None or b is None:
        return None
    return max(a, b)


def range_to_set(rng: Range) -> IntSet:
    """Convert a constant Range to an IntSet; raises on symbolic ranges."""
    lo = const_int_value(rng.min)
    ext = const_int_value(rng.extent)
    if lo is None or ext is None:
        raise ValueError("range_to_set requires constant range")
    if ext <= 0:
        raise ValueError(f"range with non-positive extent {ext}")
    return IntSet.from_range(lo, ext)


def union(sets: Sequence[IntSet]) -> IntSet:
    """Union (interval hull) of several sets."""
    if not sets:
        raise ValueError("union of no sets")
    result = sets[0]
    for s in sets[1:]:
        result = result.union(s)
    return result


def intersect(sets: Sequence[IntSet]) -> Optional[IntSet]:
    if not sets:
        raise ValueError("intersect of no sets")
    result = sets[0]
    for s in sets[1:]:
        result = result.intersect(s)
        if result is None:
            return None
    return result


def eval_int_set(expr: PrimExpr, dom_map: Mapping[Var, IntSet]) -> IntSet:
    """Evaluate an integer expression to an interval.

    Variables found in ``dom_map`` take their interval; other variables
    make the result unbounded (conservative).
    """
    if isinstance(expr, Var):
        return dom_map.get(expr, IntSet.everything())
    if isinstance(expr, IntImm):
        return IntSet.point(expr.value)
    if isinstance(expr, Cast):
        return eval_int_set(expr.value, dom_map)
    if isinstance(expr, Add):
        return eval_int_set(expr.a, dom_map) + eval_int_set(expr.b, dom_map)
    if isinstance(expr, Sub):
        return eval_int_set(expr.a, dom_map) - eval_int_set(expr.b, dom_map)
    if isinstance(expr, Mul):
        return eval_int_set(expr.a, dom_map) * eval_int_set(expr.b, dom_map)
    if isinstance(expr, FloorDiv):
        return eval_int_set(expr.a, dom_map).floordiv(eval_int_set(expr.b, dom_map))
    if isinstance(expr, FloorMod):
        return eval_int_set(expr.a, dom_map).floormod(eval_int_set(expr.b, dom_map))
    if isinstance(expr, Min):
        return eval_int_set(expr.a, dom_map).min_with(eval_int_set(expr.b, dom_map))
    if isinstance(expr, Max):
        return eval_int_set(expr.a, dom_map).max_with(eval_int_set(expr.b, dom_map))
    if isinstance(expr, Select):
        t = eval_int_set(expr.true_value, dom_map)
        f = eval_int_set(expr.false_value, dom_map)
        return t.union(f)
    if isinstance(expr, (EQ, NE, LT, LE, GT, GE, And, Or, Not)):
        return IntSet(0, 1)
    # Loads/calls of integer type: unknown.
    return IntSet.everything()
