"""Quasi-affine iterator map detection.

This module implements the pattern matcher the paper relies on for loop
nest validation (§3.3):

    "We build pattern-matchers to find a quasi-affine mapping from the
    loop iterators to the block iterator variables and use the pattern to
    validate the independence and domain of the bindings."

Model (following the classical split/fuse algebra):

* An :class:`IterMark` is a virtual iterator of known constant extent.
  Its source is either an input variable or a *fused* sum of splits.
* An :class:`IterSplitExpr` selects a contiguous digit of a mark:
  ``value = ((mark // lower_factor) % extent) * scale``.
* An :class:`IterSumExpr` is ``sum(splits) + base``.

``detect_iter_map`` parses binding expressions into this algebra and
checks that, together, the bindings form a **bijective** mapping from the
input iteration space — i.e. every mark is fully and disjointly covered
and every binding is a proper fusion of digits.  Bindings such as
``v1 = i, v2 = i * 2`` are rejected (dependent), while
``v1 = i // 4, v2 = i % 4`` are accepted, exactly as in the paper's
example.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..tir.expr import (
    Add,
    FloorDiv,
    FloorMod,
    IntImm,
    Mul,
    PrimExpr,
    Range,
    Sub,
    Var,
    const_int_value,
)
from .. import cache as _cache
from .analyzer import Analyzer
from .simplify import structural_key

#: process-wide hit/miss counters of the per-analyzer detection memo,
#: surfaced through :func:`repro.cache.cache_stats`.
_ITER_MAP_HITS = 0
_ITER_MAP_MISSES = 0

_cache.register_stats_source(
    "arith.iter_map_memo", lambda: (_ITER_MAP_HITS, _ITER_MAP_MISSES)
)

__all__ = [
    "IterMark",
    "IterSplitExpr",
    "IterSumExpr",
    "detect_iter_map",
    "IterMapError",
]


class IterMapError(Exception):
    """The expression is not a recognized quasi-affine iterator pattern."""


class IterMark:
    """A virtual iterator with constant extent.

    ``source`` is an input :class:`Var`, or a :class:`IterSumExpr` for a
    fused iterator.  Identity is by structural key of the source, so the
    same fused pattern maps to the same mark.
    """

    __slots__ = ("source", "extent", "key")

    def __init__(self, source, extent: int, key):
        self.source = source
        self.extent = extent
        self.key = key

    def __repr__(self) -> str:  # pragma: no cover
        name = self.source.name if isinstance(self.source, Var) else "fused"
        return f"IterMark({name}, extent={self.extent})"


class IterSplitExpr:
    """``((mark // lower_factor) % extent) * scale``."""

    __slots__ = ("mark", "lower_factor", "extent", "scale")

    def __init__(self, mark: IterMark, lower_factor: int, extent: int, scale: int):
        self.mark = mark
        self.lower_factor = lower_factor
        self.extent = extent
        self.scale = scale

    def value_range(self) -> Tuple[int, int]:
        lo, hi = 0, (self.extent - 1) * self.scale
        if self.scale < 0:
            lo, hi = hi, lo
        return lo, hi

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"split({self.mark!r} //{self.lower_factor} %{self.extent} *{self.scale})"
        )


class IterSumExpr:
    """``sum(args) + base``."""

    __slots__ = ("args", "base")

    def __init__(self, args: Sequence[IterSplitExpr], base: int):
        self.args: List[IterSplitExpr] = list(args)
        self.base = base

    @property
    def is_constant(self) -> bool:
        return not self.args

    def extent_if_fused(self) -> Optional[int]:
        """Extent of the binding if its digits fuse cleanly, else None."""
        fused = _try_fuse_args(self.args)
        if fused is None:
            return None
        if not fused:
            return 1
        return fused[0].extent * abs(fused[0].scale) if len(fused) == 1 else None

    def __repr__(self) -> str:  # pragma: no cover
        return f"IterSumExpr({self.args!r} + {self.base})"


def _gcd_list(values: Sequence[int]) -> int:
    g = 0
    for v in values:
        g = math.gcd(g, abs(v))
    return g


class _Parser:
    def __init__(self, input_iters: Mapping[Var, int], analyzer: Analyzer):
        self.analyzer = analyzer
        self.marks: Dict[object, IterMark] = {}
        self.input_iters = dict(input_iters)
        for var, extent in self.input_iters.items():
            key = ("var", id(var))
            self.marks[key] = IterMark(var, extent, key)

    def parse(self, expr: PrimExpr) -> IterSumExpr:
        expr = self.analyzer.simplify(expr)
        return self._to_sum(self._parse(expr))

    # -- recursive descent --------------------------------------------
    def _parse(self, expr: PrimExpr) -> Union[IterSumExpr, IterSplitExpr, int]:
        c = const_int_value(expr)
        if c is not None:
            return c
        if isinstance(expr, Var):
            if expr not in self.input_iters:
                raise IterMapError(f"free variable {expr.name} in binding")
            extent = self.input_iters[expr]
            if extent == 1:
                return 0
            mark = self.marks[("var", id(expr))]
            return IterSplitExpr(mark, 1, extent, 1)
        if isinstance(expr, Add):
            return self._add(self._parse(expr.a), self._parse(expr.b), 1)
        if isinstance(expr, Sub):
            return self._add(self._parse(expr.a), self._parse(expr.b), -1)
        if isinstance(expr, Mul):
            ca, cb = const_int_value(expr.a), const_int_value(expr.b)
            if cb is not None:
                return self._scale(self._parse(expr.a), cb)
            if ca is not None:
                return self._scale(self._parse(expr.b), ca)
            raise IterMapError("product of two iterators is not affine")
        if isinstance(expr, FloorDiv):
            c = const_int_value(expr.b)
            if c is None or c <= 0:
                raise IterMapError("division by a non-constant")
            return self._divmod(self._parse(expr.a), c, is_div=True)
        if isinstance(expr, FloorMod):
            c = const_int_value(expr.b)
            if c is None or c <= 0:
                raise IterMapError("modulo by a non-constant")
            return self._divmod(self._parse(expr.a), c, is_div=False)
        raise IterMapError(f"unsupported node in binding: {type(expr).__name__}")

    def _to_sum(self, value) -> IterSumExpr:
        if isinstance(value, int):
            return IterSumExpr([], value)
        if isinstance(value, IterSplitExpr):
            return IterSumExpr([value], 0)
        return value

    def _add(self, a, b, sign: int) -> IterSumExpr:
        sa, sb = self._to_sum(a), self._to_sum(b)
        args = list(sa.args)
        for s in sb.args:
            args.append(IterSplitExpr(s.mark, s.lower_factor, s.extent, s.scale * sign))
        merged: Dict[tuple, IterSplitExpr] = {}
        for s in args:
            key = (s.mark.key, s.lower_factor, s.extent)
            if key in merged:
                scale = merged[key].scale + s.scale
                if scale == 0:
                    del merged[key]
                else:
                    merged[key] = IterSplitExpr(s.mark, s.lower_factor, s.extent, scale)
            else:
                merged[key] = s
        return IterSumExpr(list(merged.values()), sa.base + sign * sb.base)

    def _scale(self, value, factor: int) -> Union[IterSumExpr, int]:
        if factor == 0:
            return 0
        s = self._to_sum(value)
        return IterSumExpr(
            [
                IterSplitExpr(a.mark, a.lower_factor, a.extent, a.scale * factor)
                for a in s.args
            ],
            s.base * factor,
        )

    def _divmod(self, value, c: int, is_div: bool) -> Union[IterSumExpr, IterSplitExpr, int]:
        s = self._to_sum(value)
        if s.is_constant:
            return s.base // c if is_div else s.base % c
        if s.base % c != 0:
            raise IterMapError("non-divisible base under div/mod")
        base = s.base
        split = self._as_single_split(s.args)
        # (split * scale + base) with base % c == 0
        if split.scale != 1:
            if split.scale % c == 0 and not is_div:
                return base % c  # the term vanishes mod c
            if split.scale % c == 0 and is_div:
                out = IterSplitExpr(split.mark, split.lower_factor, split.extent, split.scale // c)
                return self._add(out, base // c, 1)
            if c % split.scale == 0:
                inner = self._divmod(
                    IterSumExpr([IterSplitExpr(split.mark, split.lower_factor, split.extent, 1)], 0),
                    c // split.scale,
                    is_div,
                )
                if is_div:
                    return self._add(inner, base // c, 1)
                return self._add(self._scale(inner, split.scale), base % c, 1)
            raise IterMapError("scale incompatible with div/mod constant")
        # scale == 1: operate on the digit structure.
        if is_div:
            if c >= split.extent:
                return base // c
            if split.extent % c != 0:
                raise IterMapError(
                    f"extent {split.extent} not divisible by {c} under floordiv"
                )
            out = IterSplitExpr(split.mark, split.lower_factor * c, split.extent // c, 1)
            return self._add(out, base // c, 1)
        if c >= split.extent:
            return self._add(split, base % c, 1)
        if split.extent % c != 0:
            raise IterMapError(f"extent {split.extent} not divisible by {c} under floormod")
        out = IterSplitExpr(split.mark, split.lower_factor, c, 1)
        return self._add(out, base % c, 1)

    def _as_single_split(self, args: Sequence[IterSplitExpr]) -> IterSplitExpr:
        """Collapse ``args`` into one split, fusing a digit-aligned sum."""
        if len(args) == 1:
            return args[0]
        fused = _try_fuse_args(args)
        if fused is None or len(fused) != 1:
            raise IterMapError("cannot fuse multi-iterator sum under div/mod")
        split = fused[0]
        key = ("fused",) + tuple(
            sorted((a.mark.key, a.lower_factor, a.extent, a.scale) for a in args)
        )
        if key not in self.marks:
            self.marks[key] = IterMark(IterSumExpr(list(args), 0), split.extent, key)
        mark = self.marks[key]
        return IterSplitExpr(mark, 1, split.extent, split.scale)


def _try_fuse_args(args: Sequence[IterSplitExpr]) -> Optional[List[IterSplitExpr]]:
    """Check digit alignment of a sum of splits.

    Returns a one-element list ``[IterSplitExpr(None-mark placeholder)]``
    describing the fused extent/scale, or ``[]`` for an empty sum, or
    ``None`` when the digits do not align (the sum is not injective).
    The returned split's ``mark`` is taken from the highest digit and is
    only meaningful for extent/scale interrogation.
    """
    if not args:
        return []
    g = _gcd_list([a.scale for a in args])
    if g == 0:
        return None
    ordered = sorted(args, key=lambda a: -abs(a.scale))
    if any(a.scale < 0 for a in ordered):
        return None
    expected = g
    for split in reversed(ordered):
        if split.scale != expected:
            return None
        expected = split.scale * split.extent
    total_extent = expected // g
    top = ordered[0]
    return [IterSplitExpr(top.mark, 1, total_extent, g)]


def detect_iter_map(
    bindings: Sequence[PrimExpr],
    input_iters: Mapping[Var, Union[int, Range]],
    analyzer: Optional[Analyzer] = None,
    require_bijective: bool = True,
) -> Optional[List[IterSumExpr]]:
    """Detect a quasi-affine mapping from ``input_iters`` to ``bindings``.

    ``input_iters`` maps each loop variable to its constant extent (ranges
    must start at 0).  Returns the parsed :class:`IterSumExpr` per binding
    on success, or ``None`` when the bindings are not a valid independent
    quasi-affine mapping.

    When ``require_bijective`` is set, every input iterator's digits must
    be fully and disjointly covered by the bindings (no dropped or
    duplicated digits).  Otherwise only injectivity (disjointness) is
    required.
    """
    global _ITER_MAP_HITS, _ITER_MAP_MISSES
    extents: Dict[Var, int] = {}
    for var, dom in input_iters.items():
        if isinstance(dom, Range):
            lo = const_int_value(dom.min)
            ext = const_int_value(dom.extent)
            if lo != 0 or ext is None:
                return None
            extents[var] = ext
        else:
            extents[var] = int(dom)
    if analyzer is None:
        analyzer = Analyzer()
        for var, ext in extents.items():
            analyzer.bind(var, Range(0, ext))

    # Detection is a pure function of (bindings, extents, bijectivity)
    # for a fixed analyzer domain map, so long-lived analyzers memoize
    # it (the table lives on the analyzer and ``bind()`` clears it).
    memo = getattr(analyzer, "_iter_map_memo", None)
    memo_key = None
    if memo is not None and _cache.caches_enabled():
        try:
            memo_key = (
                tuple(structural_key(b) for b in bindings),
                tuple(sorted((id(v), ext) for v, ext in extents.items())),
                require_bijective,
            )
        except TypeError:
            memo_key = None
        if memo_key is not None and memo_key in memo:
            _ITER_MAP_HITS += 1
            cached = memo[memo_key]
            return list(cached) if cached is not None else None
        _ITER_MAP_MISSES += 1

    result = _detect_iter_map_impl(bindings, extents, analyzer, require_bijective)
    if memo_key is not None:
        if len(memo) >= 2048:
            memo.clear()
        memo[memo_key] = tuple(result) if result is not None else None
    return result


def _detect_iter_map_impl(
    bindings: Sequence[PrimExpr],
    extents: Dict[Var, int],
    analyzer: Analyzer,
    require_bijective: bool,
) -> Optional[List[IterSumExpr]]:
    parser = _Parser(extents, analyzer)
    results: List[IterSumExpr] = []
    try:
        for binding in bindings:
            s = parser.parse(binding)
            if s.args and _try_fuse_args(s.args) is None:
                return None  # binding itself is not an injective fusion
            results.append(s)
    except IterMapError:
        return None

    if not _check_disjoint_cover(results, parser, require_bijective, extents):
        return None
    return results


def _check_disjoint_cover(
    results: Sequence[IterSumExpr],
    parser: _Parser,
    require_bijective: bool,
    extents: Mapping[Var, int],
) -> bool:
    used: Dict[object, List[IterSplitExpr]] = {}

    def record(split: IterSplitExpr) -> bool:
        bucket = used.setdefault(split.mark.key, [])
        for existing in bucket:
            lo1 = split.lower_factor
            hi1 = split.lower_factor * split.extent
            lo2 = existing.lower_factor
            hi2 = existing.lower_factor * existing.extent
            if lo1 < hi2 and lo2 < hi1:
                return False  # overlapping digit ranges → dependent bindings
        bucket.append(split)
        return True

    for s in results:
        for split in s.args:
            if not record(split):
                return False

    # A fused mark consumes its constituent splits entirely; expand
    # (worklist: fused marks may be built out of other fused marks).
    expanded = set()
    changed = True
    while changed:
        changed = False
        for key, mark in parser.marks.items():
            if key[0] == "fused" and key in used and key not in expanded:
                expanded.add(key)
                changed = True
                for split in mark.source.args:
                    if not record(split):
                        return False

    if require_bijective:
        # Every mark that is touched must be fully and contiguously
        # covered — including fused marks: using only some digits of a
        # fusion drops information and breaks bijectivity.
        mark_extent: Dict[object, int] = {
            key: mark.extent for key, mark in parser.marks.items()
        }
        for key, splits in used.items():
            splits = sorted(splits, key=lambda s: s.lower_factor)
            expected = 1
            for split in splits:
                if split.lower_factor != expected:
                    return False
                expected = split.lower_factor * split.extent
            if expected != mark_extent.get(key):
                return False
        # ... and every non-trivial input iterator must be used at all.
        for var, extent in extents.items():
            if extent > 1 and ("var", id(var)) not in used:
                return False
    return True
