"""Canonical simplification of integer expressions.

The simplifier normalises integer expressions into a *linear form*
(sum of constant-coefficient atoms plus a constant), applies
bounds-aware rules for ``floordiv`` / ``floormod`` / ``min`` / ``max`` /
comparisons, and rebuilds a deterministic expression.

It exists for two reasons:

* schedule primitives compose affine index expressions (splits produce
  ``i0 * 16 + i1`` style bindings; fusion produces ``f // 16``/``f % 16``)
  and downstream analysis needs them in a stable shape;
* validation (§3.3) proves facts such as "this index stays within the
  buffer extent" via ``can_prove``.

Soundness contract (property-tested): for any expression and any
assignment consistent with the registered variable bounds, the
simplified expression evaluates to the same value.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..tir.buffer import Buffer
from ..tir.expr import (
    Add,
    And,
    BinaryOp,
    BufferLoad,
    Call,
    Cast,
    CmpOp,
    EQ,
    FloatImm,
    FloorDiv,
    FloorMod,
    GE,
    GT,
    IntImm,
    LE,
    LT,
    Max,
    Min,
    Mul,
    NE,
    Not,
    Or,
    PrimExpr,
    Select,
    StringImm,
    Sub,
    TruncDiv,
    Var,
    const,
)
from ..tir import dtype as _dt
from .int_set import IntSet

__all__ = ["Simplifier", "structural_key"]

BoundFn = Callable[[PrimExpr], IntSet]


def structural_key(expr: PrimExpr) -> tuple:
    """A hashable key identifying an expression structurally.

    Variables and buffers are keyed by identity (two distinct vars named
    ``i`` stay distinct).
    """
    if isinstance(expr, Var):
        return ("var", id(expr))
    if isinstance(expr, IntImm):
        return ("int", expr.value, expr.dtype)
    if isinstance(expr, FloatImm):
        return ("float", expr.value, expr.dtype)
    if isinstance(expr, StringImm):
        return ("str", expr.value)
    if isinstance(expr, Cast):
        return ("cast", expr.dtype, structural_key(expr.value))
    if isinstance(expr, Not):
        return ("not", structural_key(expr.a))
    if isinstance(expr, Select):
        return (
            "select",
            structural_key(expr.condition),
            structural_key(expr.true_value),
            structural_key(expr.false_value),
        )
    if isinstance(expr, BufferLoad):
        return ("load", id(expr.buffer)) + tuple(structural_key(i) for i in expr.indices)
    if isinstance(expr, Call):
        return ("call", expr.op) + tuple(structural_key(a) for a in expr.args)
    if isinstance(expr, BinaryOp):
        return (type(expr).__name__, structural_key(expr.a), structural_key(expr.b))
    raise TypeError(f"no structural key for {type(expr).__name__}")


class _Linear:
    """Linear form: sum(coeff * atom) + const, over int atoms."""

    __slots__ = ("terms", "const")

    def __init__(self):
        self.terms: Dict[tuple, Tuple[PrimExpr, int]] = {}
        self.const = 0

    @staticmethod
    def of_const(value: int) -> "_Linear":
        lin = _Linear()
        lin.const = value
        return lin

    @staticmethod
    def of_atom(atom: PrimExpr, coeff: int = 1) -> "_Linear":
        lin = _Linear()
        if coeff != 0:
            lin.terms[structural_key(atom)] = (atom, coeff)
        return lin

    def add(self, other: "_Linear", sign: int = 1) -> "_Linear":
        out = _Linear()
        out.const = self.const + sign * other.const
        out.terms = dict(self.terms)
        for key, (atom, coeff) in other.terms.items():
            if key in out.terms:
                merged = out.terms[key][1] + sign * coeff
                if merged == 0:
                    del out.terms[key]
                else:
                    out.terms[key] = (atom, merged)
            elif coeff != 0:
                out.terms[key] = (atom, sign * coeff)
        return out

    def scale(self, factor: int) -> "_Linear":
        out = _Linear()
        if factor == 0:
            return out
        out.const = self.const * factor
        out.terms = {k: (a, c * factor) for k, (a, c) in self.terms.items()}
        return out

    def as_const(self) -> Optional[int]:
        return self.const if not self.terms else None

    def single_atom(self) -> Optional[Tuple[PrimExpr, int]]:
        """(atom, coeff) when the form is exactly one term with const 0."""
        if self.const == 0 and len(self.terms) == 1:
            return next(iter(self.terms.values()))
        return None

    def to_expr(self, dtype: str) -> PrimExpr:
        # Deterministic term order.  The sort key must not depend on
        # object identity (ids vary between runs and would make replayed
        # schedules structurally different), so order by the printed form.
        from ..tir.printer import expr_str

        items = sorted(self.terms.values(), key=lambda t: expr_str(t[0]))
        expr: Optional[PrimExpr] = None
        for atom, coeff in items:
            term = atom if coeff == 1 else atom * const(coeff, dtype)
            if coeff == -1:
                term = None  # handled below to produce `x - y` shapes
            if coeff < 0:
                piece = atom if coeff == -1 else atom * const(-coeff, dtype)
                expr = (const(0, dtype) - piece) if expr is None else expr - piece
            else:
                expr = term if expr is None else expr + term
        if expr is None:
            return const(self.const, dtype)
        if self.const > 0:
            expr = expr + const(self.const, dtype)
        elif self.const < 0:
            expr = expr - const(-self.const, dtype)
        return expr


class Simplifier:
    """Bounds-aware canonical simplifier.

    ``bound_of`` maps an expression to a conservative :class:`IntSet`;
    the :class:`~repro.arith.analyzer.Analyzer` supplies one backed by
    its variable domain map.
    """

    def __init__(self, bound_of: Optional[BoundFn] = None):
        self._bound_of = bound_of or (lambda expr: IntSet.everything())

    # -- public ---------------------------------------------------------
    def simplify(self, expr: PrimExpr) -> PrimExpr:
        if _dt.is_int(expr.dtype) or _dt.is_bool(expr.dtype):
            lin = self._merge_divmod(self._canon(expr))
            return self._linear_to_expr(lin, expr.dtype)
        return self._simplify_non_int(expr)

    def can_prove(self, expr: PrimExpr) -> bool:
        """True if ``expr`` provably holds for all assignments in bounds."""
        simplified = self.simplify(expr)
        if isinstance(simplified, IntImm):
            return bool(simplified.value)
        return False

    def prove_equal(self, a: PrimExpr, b: PrimExpr) -> bool:
        if not (_dt.is_int(a.dtype) and _dt.is_int(b.dtype)):
            return structural_key(a) == structural_key(b)
        diff = self._canon(a).add(self._canon(b), sign=-1)
        return diff.as_const() == 0

    # -- internals --------------------------------------------------------
    def _bound_linear(self, lin: _Linear, dtype: str) -> IntSet:
        result = IntSet.point(lin.const)
        for atom, coeff in lin.terms.values():
            result = result + self._bound_of(atom) * IntSet.point(coeff)
        return result

    def _canon(self, expr: PrimExpr) -> _Linear:
        if isinstance(expr, IntImm):
            return _Linear.of_const(expr.value)
        if isinstance(expr, Var):
            bound = self._bound_of(expr)
            if bound.is_point:
                return _Linear.of_const(bound.min_value)
            return _Linear.of_atom(expr)
        if isinstance(expr, Add):
            return self._canon(expr.a).add(self._canon(expr.b))
        if isinstance(expr, Sub):
            return self._canon(expr.a).add(self._canon(expr.b), sign=-1)
        if isinstance(expr, Mul):
            la, lb = self._canon(expr.a), self._canon(expr.b)
            ca, cb = la.as_const(), lb.as_const()
            if cb is not None:
                return la.scale(cb)
            if ca is not None:
                return lb.scale(ca)
            atom = self._rebuild(Mul, la, lb, expr.dtype)
            return _Linear.of_atom(atom)
        if isinstance(expr, FloorDiv):
            return self._canon_floordiv(expr)
        if isinstance(expr, FloorMod):
            return self._canon_floormod(expr)
        if isinstance(expr, (Min, Max)):
            return self._canon_minmax(expr)
        if isinstance(expr, CmpOp):
            return self._canon_cmp(expr)
        if isinstance(expr, Not):
            inner = self.simplify(expr.a)
            if isinstance(inner, IntImm):
                return _Linear.of_const(int(not inner.value))
            return _Linear.of_atom(Not(inner))
        if isinstance(expr, Select):
            cond = self.simplify(expr.condition)
            if isinstance(cond, IntImm):
                chosen = expr.true_value if cond.value else expr.false_value
                return self._canon(chosen)
            return _Linear.of_atom(
                Select(cond, self.simplify(expr.true_value), self.simplify(expr.false_value))
            )
        if isinstance(expr, Cast):
            inner = self.simplify(expr.value)
            if isinstance(inner, IntImm) and _dt.is_int(expr.dtype):
                return _Linear.of_const(inner.value)
            return _Linear.of_atom(Cast(expr.dtype, inner))
        if isinstance(expr, BufferLoad):
            return _Linear.of_atom(
                BufferLoad(expr.buffer, [self.simplify(i) for i in expr.indices])
            )
        if isinstance(expr, Call):
            return _Linear.of_atom(
                Call(expr.dtype, expr.op, [self.simplify(a) for a in expr.args])
            )
        if isinstance(expr, TruncDiv):
            la, lb = self._canon(expr.a), self._canon(expr.b)
            ca, cb = la.as_const(), lb.as_const()
            if ca is not None and cb not in (None, 0):
                return _Linear.of_const(int(ca / cb))
            return _Linear.of_atom(self._rebuild(TruncDiv, la, lb, expr.dtype))
        raise TypeError(f"cannot canonicalize {type(expr).__name__}")

    def _rebuild(self, cls, la: _Linear, lb: _Linear, dtype: str) -> PrimExpr:
        return cls(la.to_expr(dtype), lb.to_expr(dtype), dtype)

    def _canon_floordiv(self, expr: FloorDiv) -> _Linear:
        la = self._canon(expr.a)
        lb = self._canon(expr.b)
        c = lb.as_const()
        if c is None or c <= 0:
            return _Linear.of_atom(self._rebuild(FloorDiv, la, lb, expr.dtype))
        if c == 1:
            return la
        quotient, remainder = self._split_by(la, c)
        rem_bound = self._bound_linear(remainder, expr.dtype)
        if rem_bound.is_bounded and 0 <= rem_bound.min_value and rem_bound.max_value < c:
            return quotient
        # Nested rule: (x // a) // b == x // (a*b)
        single = la.single_atom()
        if single is not None and single[1] == 1 and isinstance(single[0], FloorDiv):
            inner = single[0]
            inner_c = self._canon(inner.b).as_const()
            if inner_c is not None and inner_c > 0:
                return self._canon(FloorDiv(inner.a, const(inner_c * c, expr.dtype), expr.dtype))
        rem_expr = remainder.to_expr(expr.dtype)
        div_atom = FloorDiv(rem_expr, const(c, expr.dtype), expr.dtype)
        if isinstance(rem_expr, IntImm):
            return quotient.add(_Linear.of_const(rem_expr.value // c))
        return quotient.add(_Linear.of_atom(div_atom))

    def _canon_floormod(self, expr: FloorMod) -> _Linear:
        la = self._canon(expr.a)
        lb = self._canon(expr.b)
        c = lb.as_const()
        if c is None or c <= 0:
            return _Linear.of_atom(self._rebuild(FloorMod, la, lb, expr.dtype))
        if c == 1:
            return _Linear.of_const(0)
        _, remainder = self._split_by(la, c)
        rem_bound = self._bound_linear(remainder, expr.dtype)
        if rem_bound.is_bounded and 0 <= rem_bound.min_value and rem_bound.max_value < c:
            return remainder
        rem_expr = remainder.to_expr(expr.dtype)
        if isinstance(rem_expr, IntImm):
            return _Linear.of_const(rem_expr.value % c)
        return _Linear.of_atom(FloorMod(rem_expr, const(c, expr.dtype), expr.dtype))

    @staticmethod
    def _split_by(lin: _Linear, c: int) -> Tuple[_Linear, _Linear]:
        """Split ``lin`` into ``c * quotient + remainder`` exactly.

        Terms whose coefficient is divisible by ``c`` go to the quotient;
        the rest (and the constant's residue) stay in the remainder.
        """
        quotient = _Linear()
        remainder = _Linear()
        quotient.const = lin.const // c if lin.const % c == 0 else 0
        remainder.const = 0 if lin.const % c == 0 else lin.const
        if remainder.const:
            # Pull out whole multiples of c from the constant as well.
            q, r = divmod(remainder.const, c)
            quotient.const += q
            remainder.const = r
        for key, (atom, coeff) in lin.terms.items():
            if coeff % c == 0:
                quotient.terms[key] = (atom, coeff // c)
            else:
                remainder.terms[key] = (atom, coeff)
        return quotient, remainder

    def _merge_divmod(self, lin: _Linear) -> _Linear:
        """Recombine ``(e // c) * (k*c) + (e % c) * k`` into ``e * k``.

        Uses the exact identity ``e == (e // c) * c + e % c``.  The div
        term is matched semantically (``prove_equal``), so normalised
        forms such as ``f // 64`` pair with ``(f // 8) % 8`` whose
        numerator is ``f // 8``.
        """
        while True:
            mods = []
            divs = []
            for key, (atom, coeff) in lin.terms.items():
                if isinstance(atom, FloorMod) and isinstance(atom.b, IntImm) and atom.b.value > 0:
                    mods.append((key, atom, coeff))
                elif isinstance(atom, FloorDiv) and isinstance(atom.b, IntImm) and atom.b.value > 0:
                    divs.append((key, atom, coeff))
            merged = None
            for mod_key, mod_atom, k in mods:
                c = mod_atom.b.value
                wanted = FloorDiv(mod_atom.a, mod_atom.b, mod_atom.dtype)
                for div_key, div_atom, div_coeff in divs:
                    if div_coeff != k * c:
                        continue
                    if structural_key(div_atom) == structural_key(wanted) or self.prove_equal(
                        div_atom, wanted
                    ):
                        merged = (div_key, mod_key, mod_atom.a, k)
                        break
                if merged:
                    break
            if merged is None:
                return lin
            div_key, mod_key, numerator, k = merged
            del lin.terms[div_key]
            del lin.terms[mod_key]
            lin = lin.add(self._merge_divmod(self._canon(numerator)).scale(k))

    def _canon_minmax(self, expr: BinaryOp) -> _Linear:
        la, lb = self._canon(expr.a), self._canon(expr.b)
        diff = la.add(lb, sign=-1)
        dc = diff.as_const()
        bound = self._bound_linear(diff, expr.dtype) if dc is None else IntSet.point(dc)
        is_min = isinstance(expr, Min)
        if bound.max_value is not None and bound.max_value <= 0:
            return la if is_min else lb  # a <= b always
        if bound.min_value is not None and bound.min_value >= 0:
            return lb if is_min else la  # a >= b always
        cls = Min if is_min else Max
        return _Linear.of_atom(self._rebuild(cls, la, lb, expr.dtype))

    def _canon_cmp(self, expr: CmpOp) -> _Linear:
        if isinstance(expr, (And, Or)):
            a = self.simplify(expr.a)
            b = self.simplify(expr.b)
            av = a.value if isinstance(a, IntImm) else None
            bv = b.value if isinstance(b, IntImm) else None
            if isinstance(expr, And):
                if av == 0 or bv == 0:
                    return _Linear.of_const(0)
                if av == 1:
                    return self._canon(b)
                if bv == 1:
                    return self._canon(a)
                return _Linear.of_atom(And(a, b))
            if av == 1 or bv == 1:
                return _Linear.of_const(1)
            if av == 0:
                return self._canon(b)
            if bv == 0:
                return self._canon(a)
            return _Linear.of_atom(Or(a, b))
        if not (_dt.is_int(expr.a.dtype) or _dt.is_bool(expr.a.dtype)):
            return _Linear.of_atom(
                type(expr)(self._simplify_non_int(expr.a), self._simplify_non_int(expr.b))
            )
        diff = self._canon(expr.a).add(self._canon(expr.b), sign=-1)
        dc = diff.as_const()
        bound = self._bound_linear(diff, "int32") if dc is None else IntSet.point(dc)
        lo, hi = bound.min_value, bound.max_value
        verdict: Optional[bool] = None
        if isinstance(expr, LT):
            verdict = _decide(hi is not None and hi < 0, lo is not None and lo >= 0)
        elif isinstance(expr, LE):
            verdict = _decide(hi is not None and hi <= 0, lo is not None and lo > 0)
        elif isinstance(expr, GT):
            verdict = _decide(lo is not None and lo > 0, hi is not None and hi <= 0)
        elif isinstance(expr, GE):
            verdict = _decide(lo is not None and lo >= 0, hi is not None and hi < 0)
        elif isinstance(expr, EQ):
            if dc is not None:
                verdict = dc == 0
            elif (lo is not None and lo > 0) or (hi is not None and hi < 0):
                verdict = False
        elif isinstance(expr, NE):
            if dc is not None:
                verdict = dc != 0
            elif (lo is not None and lo > 0) or (hi is not None and hi < 0):
                verdict = True
        if verdict is not None:
            return _Linear.of_const(int(verdict))
        sa = self.simplify(expr.a)
        sb = self.simplify(expr.b)
        return _Linear.of_atom(type(expr)(sa, sb))

    def _linear_to_expr(self, lin: _Linear, dtype: str) -> PrimExpr:
        return lin.to_expr(dtype)

    def _simplify_non_int(self, expr: PrimExpr) -> PrimExpr:
        """Shallow simplification of float/handle expressions: recurse into
        integer sub-expressions (e.g. buffer indices) only."""
        if isinstance(expr, BufferLoad):
            return BufferLoad(expr.buffer, [self.simplify(i) for i in expr.indices])
        if isinstance(expr, Call):
            return Call(expr.dtype, expr.op, [self._dispatch(a) for a in expr.args])
        if isinstance(expr, Cast):
            return Cast(expr.dtype, self._dispatch(expr.value))
        if isinstance(expr, Select):
            cond = self.simplify(expr.condition)
            if isinstance(cond, IntImm):
                return self._dispatch(expr.true_value if cond.value else expr.false_value)
            return Select(cond, self._dispatch(expr.true_value), self._dispatch(expr.false_value))
        if isinstance(expr, BinaryOp):
            return type(expr)(self._dispatch(expr.a), self._dispatch(expr.b), expr.dtype)
        return expr

    def _dispatch(self, expr: PrimExpr) -> PrimExpr:
        return self.simplify(expr)


def _decide(yes: bool, no: bool) -> Optional[bool]:
    if yes:
        return True
    if no:
        return False
    return None
