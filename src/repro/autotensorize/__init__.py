"""Auto-tensorization: §4.2's tensorization candidate generation."""

from .candidate import PreparedTensorization, generate_candidates, prepare_tensorize
from .mapping import IterMapping, propose_mapping
from .pattern import EinsumPattern, extract_einsum, match_expression_pattern

__all__ = [
    "EinsumPattern",
    "extract_einsum",
    "match_expression_pattern",
    "IterMapping",
    "propose_mapping",
    "PreparedTensorization",
    "generate_candidates",
    "prepare_tensorize",
]
