"""Tensorization candidate generation (§4.2, Figure 9).

``generate_candidates`` inspects a block's computation pattern and
returns the intrinsics it can map to; ``prepare_tensorize`` applies the
full canonicalisation pipeline for one candidate:

1. **ReIndex** every operand so buffer accesses index buffers directly
   with block iterators, laid out per the intrinsic operand's iterator
   order (the layout-rewrite step of Figure 9);
2. **pad** each fused iterator group up to a multiple of the intrinsic
   tile extent ("necessary padding ... to the closest divisible shape");
3. **reorder + fuse** the loops so the block carries exactly one loop
   per intrinsic iterator (plus outer loops for iterators the intrinsic
   does not cover, e.g. a batch axis or a depthwise channel).

The result is a :class:`PreparedTensorization` the sketch generator can
tile, blockize and finally ``tensorize``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..intrin import TensorIntrin, get_intrin
from ..schedule import BlockRV, LoopRV, Schedule, ScheduleError
from ..tir import IterVar, const_int_value

from .mapping import IterMapping, propose_mapping
from .pattern import EinsumPattern, extract_einsum, match_expression_pattern

__all__ = ["PreparedTensorization", "generate_candidates", "prepare_tensorize"]


class PreparedTensorization:
    """A block canonicalised for one intrinsic.

    ``tile_loops[i]`` is the (fused) loop carrying the iterators mapped
    onto the intrinsic's ``i``-th iterator; its extent is a multiple of
    ``tile_shape[i]``.  ``outer_loops`` carry unmapped iterators.
    """

    def __init__(
        self,
        block: BlockRV,
        intrin: TensorIntrin,
        tile_loops: List[LoopRV],
        outer_loops: List[LoopRV],
        tile_shape: List[int],
        iter_kinds: List[str],
    ):
        self.block = block
        self.intrin = intrin
        self.tile_loops = tile_loops
        self.outer_loops = outer_loops
        self.tile_shape = tile_shape
        self.iter_kinds = iter_kinds

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"PreparedTensorization({self.intrin.name}, tile={self.tile_shape}, "
            f"outer={len(self.outer_loops)})"
        )


def _intrin_pattern(intrin: TensorIntrin) -> Optional[EinsumPattern]:
    return extract_einsum(intrin.desc_block())


def generate_candidates(
    sch: Schedule, block_rv: BlockRV, intrin_names: Sequence[str]
) -> List[Tuple[str, IterMapping]]:
    """The intrinsics (with mappings) that ``block`` can tensorize onto."""
    block = sch.block_of(block_rv)
    workload = extract_einsum(block)
    if workload is None:
        return []
    out = []
    for name in intrin_names:
        intrin = get_intrin(name)
        ipat = _intrin_pattern(intrin)
        if ipat is None:
            continue
        perm = match_expression_pattern(workload, ipat)
        if perm is None:
            continue
        mapping = propose_mapping(workload, ipat, perm)
        if mapping is None:
            continue
        out.append((name, mapping))
    return out


def _operand_iter_order(
    operand_indices,
    block_iters: List[IterVar],
    group_of: Dict[int, int],
    intrin_operand_iters: List[int],
) -> List[int]:
    """Permutation for ``reindex``: order the operand's used iterators as
    [unmapped (block order)] + groups in the intrinsic operand's own
    iterator order."""
    from ..tir import collect_vars

    used: List[IterVar] = []
    used_ids = set()
    for idx in operand_indices:
        for v in collect_vars(idx):
            if id(v) not in used_ids:
                used_ids.add(id(v))
    for iv in block_iters:
        if id(iv.var) in used_ids:
            used.append(iv)

    def sort_key(position: int):
        iv = used[position]
        grp = group_of.get(id(iv.var))
        if grp is None:
            return (0, 0, position)  # unmapped: first, original order
        try:
            rank = intrin_operand_iters.index(grp)
        except ValueError:
            rank = len(intrin_operand_iters)
        return (1, rank, position)

    order = sorted(range(len(used)), key=sort_key)
    return order


def _intrin_operand_groups(intrin_pattern: EinsumPattern) -> List[List[int]]:
    """For each intrinsic operand (output first), the intrinsic iterator
    positions in its index order."""
    from ..tir import collect_vars

    pos_of = {id(iv.var): i for i, iv in enumerate(intrin_pattern.block.iter_vars)}
    out = []
    operand_lists = [intrin_pattern.output[1]] + [
        idx for _, idx in intrin_pattern.inputs
    ]
    for indices in operand_lists:
        positions = []
        for idx in indices:
            for v in collect_vars(idx):
                if id(v) in pos_of and pos_of[id(v)] not in positions:
                    positions.append(pos_of[id(v)])
        out.append(positions)
    return out


def _pad_extents(mapping: IterMapping, tile: Sequence[int]) -> Optional[Dict[int, int]]:
    """Per-iterator padded extents making each fused group divisible by
    the intrinsic tile, or None when no padding is needed."""
    pads: Dict[int, int] = {}
    needed = False
    for group, tile_e in zip(mapping.groups, tile):
        prod = 1
        for iv in group:
            prod *= const_int_value(iv.dom.extent)
        if prod % tile_e == 0:
            continue
        needed = True
        last = group[-1]
        e_last = const_int_value(last.dom.extent)
        rest = prod // e_last
        new_e = e_last
        while (rest * new_e) % tile_e != 0:
            new_e += 1
        pads[id(last.var)] = new_e
    return pads if needed else None


def prepare_tensorize(
    sch: Schedule, block_rv: BlockRV, intrin_name: str
) -> PreparedTensorization:
    """Apply the §4.2 pipeline for one candidate intrinsic."""
    intrin = get_intrin(intrin_name)
    ipat = _intrin_pattern(intrin)
    block = sch.block_of(block_rv)
    workload = extract_einsum(block)
    if workload is None or ipat is None:
        raise ScheduleError("prepare_tensorize: block is not an einsum computation")
    perm = match_expression_pattern(workload, ipat)
    if perm is None:
        raise ScheduleError(
            f"prepare_tensorize: expression pattern does not match {intrin_name}"
        )
    mapping = propose_mapping(workload, ipat, perm)
    if mapping is None:
        raise ScheduleError(
            f"prepare_tensorize: no iterator mapping onto {intrin_name}"
        )

    group_of: Dict[int, int] = {}
    for gi, group in enumerate(mapping.groups):
        for iv in group:
            group_of[id(iv.var)] = gi
    operand_groups = _intrin_operand_groups(ipat)  # output first

    # --- step 1: ReIndex every operand with the intrinsic's layout -----
    # Operand k of the workload (in pattern order) corresponds to
    # intrinsic input position perm.index(k).  ReIndex stages that would
    # be the identity are skipped; stages that amount to a row-major
    # reshape (consecutive-dim fusion in unchanged order) are marked
    # ``reshape`` so the performance model treats them as free — real
    # systems elide such relayouts (or pre-pack weights ahead of time).
    blk = sch.block_of(block_rv)

    def reindex_operand(role: str, buffer, indices, desired_order: List[int]) -> None:
        index = (
            _write_index(sch, block_rv, buffer)
            if role == "write"
            else _read_index(sch, block_rv, buffer)
        )
        used = _used_iters(indices, list(blk.iter_vars))
        ordered = [used[i] for i in desired_order]
        from ..tir import Var

        identity_order = (
            len(indices) == len(ordered)
            and all(isinstance(i, Var) for i in indices)
            and all(i is iv.var for i, iv in zip(indices, ordered))
        )
        needs_fusion = _needs_dim_fusion(ordered, group_of)
        if identity_order and not needs_fusion:
            return  # already canonical
        rw = sch.reindex(block_rv, role, index, desired_order)
        if identity_order:
            sch.annotate(rw, "reshape", True)

    out_order = _operand_iter_order(
        workload.output[1], list(blk.iter_vars), group_of, operand_groups[0]
    )
    reindex_operand("write", workload.output[0], workload.output[1], out_order)
    for w_idx, (buffer, indices) in enumerate(workload.inputs):
        intrin_pos = perm.index(w_idx)
        order = _operand_iter_order(
            indices, list(blk.iter_vars), group_of, operand_groups[1 + intrin_pos]
        )
        reindex_operand("read", buffer, indices, order)

    # --- step 2: padding -------------------------------------------------
    tile = list(intrin.tile_shape())
    pads = _pad_extents(mapping, tile)
    if pads is not None:
        blk = sch.block_of(block_rv)
        paddings = [
            pads.get(id(iv.var), const_int_value(iv.dom.extent)) for iv in blk.iter_vars
        ]
        sch.pad_einsum(block_rv, paddings)

    # --- step 3: fuse operand buffer dims so the fused iterators will
    # index the buffers directly (A_t[fuse(n,h,w), fuse(rh,rw,rc)]) -----
    _fuse_operand_layouts(sch, block_rv, group_of)

    # --- step 4: reshape the block instance space: one iterator (and
    # dedicated loop) per intrinsic iterator, unmapped iterators first --
    blk = sch.block_of(block_rv)
    pos_of = {id(iv.var): i for i, iv in enumerate(blk.iter_vars)}
    unmapped = [iv for iv in blk.iter_vars if id(iv.var) not in group_of]
    iter_groups: List[List[int]] = [[pos_of[id(iv.var)]] for iv in unmapped]
    for group in mapping.groups:
        iter_groups.append([pos_of[id(iv.var)] for iv in group])
    new_loops = sch.fuse_block_iters(block_rv, iter_groups)
    outer_loops = new_loops[: len(unmapped)]
    tile_loops = new_loops[len(unmapped) :]

    # --- step 5: reshape the ReIndex/pad stages' instance spaces the
    # same way, so their accesses to the fused buffers become direct and
    # the stages stay inline-able/collapsible by the sketch generator --
    _fuse_stage_iters(sch)
    kinds = [iv.kind for iv in ipat.block.iter_vars]
    return PreparedTensorization(
        block_rv, intrin, tile_loops, outer_loops, tile, kinds
    )


def _used_iters(operand_indices, block_iters: List[IterVar]) -> List[IterVar]:
    from ..tir import collect_vars

    used_ids = set()
    for idx in operand_indices:
        for v in collect_vars(idx):
            used_ids.add(id(v))
    return [iv for iv in block_iters if id(iv.var) in used_ids]


def _needs_dim_fusion(ordered_iters: List[IterVar], group_of: Dict[int, int]) -> bool:
    """True if two adjacent operand dims belong to the same mapping
    group (the buffer layout must fuse them into one dimension)."""
    prev = object()
    for iv in ordered_iters:
        grp = group_of.get(id(iv.var))
        if grp is not None and grp == prev:
            return True
        prev = grp
    return False


def _fuse_operand_layouts(
    sch: Schedule, block_rv: BlockRV, group_of: Dict[int, int]
) -> None:
    """Collapse each mapped iterator group into one buffer dimension on
    every operand of the block (after ReIndex each operand dimension is
    indexed by exactly one block iterator)."""
    blk = sch.block_of(block_rv)
    pattern = extract_einsum(blk)
    if pattern is None:
        raise ScheduleError("operand layout fusion: block is not in einsum form")
    operands = [pattern.output] + pattern.inputs
    from ..tir import Var

    done = set()
    for buffer, indices in operands:
        if id(buffer) in done:
            continue
        done.add(id(buffer))
        groups: List[List[int]] = []
        current: List[int] = []
        current_group: Optional[int] = None
        for dim, idx in enumerate(indices):
            if not isinstance(idx, Var):
                raise ScheduleError(
                    "operand layout fusion: buffer indices must be iterators"
                )
            grp = group_of.get(id(idx))
            if grp is not None and grp == current_group and current:
                current.append(dim)
            else:
                if current:
                    groups.append(current)
                current = [dim]
                current_group = grp
        if current:
            groups.append(current)
        if any(len(g) > 1 for g in groups):
            sch.fuse_buffer_dims(block_rv, buffer.name, groups)


def _fuse_stage_iters(sch: Schedule) -> None:
    """Fuse the iterators of relayout stages to match their fused-buffer
    access structure (derived from whichever access has composite
    indices)."""
    from ..tir import BufferStore, Var, collect_vars, post_order_visit
    from ..tir.expr import BufferLoad

    for rv in list(sch.get_blocks()):
        try:
            block = sch.block_of(rv)
        except ScheduleError:
            continue
        notes = block.annotations
        if "reindex" not in notes and "padding" not in notes:
            continue
        if not isinstance(block.body, BufferStore):
            continue
        store = block.body
        loads: List = []
        post_order_visit(
            store.value, lambda n: loads.append(n) if isinstance(n, BufferLoad) else None
        )
        candidates = [store.indices] + [ld.indices for ld in loads]
        composite = next(
            (idx for idx in candidates if any(not isinstance(i, Var) for i in idx)),
            None,
        )
        if composite is None:
            continue  # accesses already direct
        pos_of = {id(iv.var): i for i, iv in enumerate(block.iter_vars)}
        groups: List[List[int]] = []
        seen: set = set()
        ok = True
        for idx in composite:
            vars_in = [v for v in collect_vars(idx) if id(v) in pos_of]
            group = [pos_of[id(v)] for v in vars_in]
            if not group or any(p in seen for p in group):
                ok = False
                break
            seen.update(group)
            groups.append(sorted(group))
        if not ok or len(seen) != len(block.iter_vars):
            continue
        try:
            sch.fuse_block_iters(rv, groups)
        except ScheduleError:
            continue


def _read_index(sch: Schedule, block_rv: BlockRV, buffer) -> int:
    block = sch.block_of(block_rv)
    for idx, region in enumerate(block.reads):
        if region.buffer is buffer:
            return idx
    raise ScheduleError(f"operand {buffer.name} not found among block reads")


def _write_index(sch: Schedule, block_rv: BlockRV, buffer) -> int:
    block = sch.block_of(block_rv)
    for idx, region in enumerate(block.writes):
        if region.buffer is buffer:
            return idx
    raise ScheduleError(f"operand {buffer.name} not found among block writes")
