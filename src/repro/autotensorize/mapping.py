"""Characteristic-vector iterator mapping (§4.2, equations (2)–(3)).

After ReIndexing, every operand access indexes its buffer directly with
block iterators, so each iterator ``v`` has a characteristic vector
χ(v) ∈ {0,1}^{k+1} recording which operand index lists contain it.  The
mapping assigns every workload iterator to the intrinsic iterator with
the same vector; all workload iterators sharing a vector are *fused* (in
a default order) onto that intrinsic iterator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..tir import IterVar

from .pattern import EinsumPattern

__all__ = ["IterMapping", "propose_mapping"]


class IterMapping:
    """Assignment of workload iterators to intrinsic iterators.

    ``groups[i]`` is the ordered list of workload :class:`IterVar` fused
    onto the intrinsic's ``i``-th block iterator; ``input_perm`` is the
    operand permutation from the expression-pattern match.
    """

    def __init__(
        self,
        workload: EinsumPattern,
        intrin: EinsumPattern,
        groups: List[List[IterVar]],
        input_perm: List[int],
        unmapped: Optional[List[IterVar]] = None,
    ):
        self.workload = workload
        self.intrin = intrin
        self.groups = groups
        self.input_perm = input_perm
        #: iterators with no intrinsic counterpart (stay outside the tile)
        self.unmapped: List[IterVar] = list(unmapped or [])

    def group_extents(self) -> List[int]:
        """Fused extent per intrinsic iterator."""
        from ..tir import const_int_value

        out = []
        for group in self.groups:
            total = 1
            for iv in group:
                total *= const_int_value(iv.dom.extent)
            out.append(total)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        parts = []
        for iv, group in zip(self.intrin.block.iter_vars, self.groups):
            names = "+".join(g.var.name for g in group)
            parts.append(f"{names or '1'}→{iv.var.name}")
        return f"IterMapping({', '.join(parts)})"


def propose_mapping(
    workload: EinsumPattern, intrin: EinsumPattern, input_perm: List[int]
) -> Optional[IterMapping]:
    """Propose the iterator mapping, or None when some workload iterator
    has no intrinsic counterpart (χ mismatch).

    Requires the workload pattern to be in reindexed (canonical) form so
    that χ is faithful; the intrinsic's iterators are assumed to have
    pairwise-distinct characteristic vectors (true of dot-product and
    matmul intrinsics — the paper makes the same assumption).
    """
    # Operand order of the workload must be aligned with the intrinsic's
    # before comparing vectors: reorder workload inputs by the match.
    aligned = EinsumPattern(
        workload.block,
        workload.output,
        [workload.inputs[j] for j in input_perm],
        workload.update,
        workload.slot_vars,
    )
    w_usage = aligned.iter_usage()
    i_usage = intrin.iter_usage()

    intrin_by_vec: Dict[Tuple[bool, ...], int] = {}
    for pos, iv in enumerate(intrin.block.iter_vars):
        vec = i_usage[id(iv.var)]
        if vec in intrin_by_vec:
            return None  # ambiguous intrinsic (outside the assumption)
        intrin_by_vec[vec] = pos

    groups: List[List[IterVar]] = [[] for _ in intrin.block.iter_vars]
    unmapped: List[IterVar] = []
    for iv in workload.block.iter_vars:
        vec = w_usage[id(iv.var)]
        if not any(vec):
            continue  # unused iterator (degenerate): ignore
        pos = intrin_by_vec.get(vec)
        if pos is None:
            # No intrinsic counterpart (e.g. a batch axis appearing in
            # every operand): the iterator stays outside the tile.
            unmapped.append(iv)
            continue
        target = intrin.block.iter_vars[pos]
        if target.kind != iv.kind:
            return None  # spatial iterators must map to spatial, etc.
        groups[pos].append(iv)  # default order: block-iterator order
    for group, iv in zip(groups, intrin.block.iter_vars):
        if not group:
            return None  # nothing maps onto this intrinsic iterator
    return IterMapping(workload, intrin, groups, input_perm, unmapped)
