"""Einsum pattern extraction and expression-pattern matching (§4.2).

The tensorization candidate generator first matches the *expression
pattern* of a workload block against an intrinsic's semantics "without
considering the indices" (the paper's first, gradual matching step):
``C[.] += f(A[.], B[.], ...)`` with the same ``f``.  This module
extracts that shape from a block and compares two shapes structurally
with operand loads abstracted to slots, returning the operand
correspondence.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from ..tir import (
    Block,
    BufferStore,
    IterVar,
    PrimExpr,
    StmtMutator,
    Var,
    collect_vars,
    structural_equal,
    substitute,
)
from ..tir.buffer import Buffer
from ..tir.expr import BufferLoad

__all__ = ["EinsumPattern", "extract_einsum", "match_expression_pattern"]

_CANONICAL_SLOTS: Dict[Tuple[int, str], Var] = {}


def _slot_var(index: int, dtype: str) -> Var:
    key = (index, dtype)
    if key not in _CANONICAL_SLOTS:
        _CANONICAL_SLOTS[key] = Var(f"__slot{index}_{dtype}", dtype)
    return _CANONICAL_SLOTS[key]


_CANONICAL_ACC: Dict[str, Var] = {}


def _acc_var(dtype: str) -> Var:
    if dtype not in _CANONICAL_ACC:
        _CANONICAL_ACC[dtype] = Var(f"__acc_{dtype}", dtype)
    return _CANONICAL_ACC[dtype]


class EinsumPattern:
    """The einsum shape of a computation block.

    ``output`` is the (buffer, indices) the block stores; ``inputs`` the
    non-self operand loads in occurrence order; ``update`` is the stored
    value with operand loads replaced by canonical slot variables (and
    the accumulator self-read by a canonical ``__acc`` variable), so two
    patterns with the same ``f`` compare structurally equal regardless
    of their indices.
    """

    def __init__(
        self,
        block: Block,
        output: Tuple[Buffer, Tuple[PrimExpr, ...]],
        inputs: List[Tuple[Buffer, Tuple[PrimExpr, ...]]],
        update: PrimExpr,
        slot_vars: List[Var],
    ):
        self.block = block
        self.output = output
        self.inputs = inputs
        self.update = update
        self.slot_vars = slot_vars

    def iter_usage(self) -> Dict[int, Tuple[bool, ...]]:
        """For each block iterator var id: membership in [output,
        input0, input1, ...] index lists — the characteristic vector
        χ(v) of the paper."""
        lists = [self.output[1]] + [idx for _, idx in self.inputs]
        usage: Dict[int, Tuple[bool, ...]] = {}
        for iv in self.block.iter_vars:
            vec = tuple(
                any(any(u is iv.var for u in collect_vars(idx)) for idx in indices)
                for indices in lists
            )
            usage[id(iv.var)] = vec
        return usage

    def __repr__(self) -> str:  # pragma: no cover
        names = ", ".join(b.name for b, _ in self.inputs)
        return f"EinsumPattern(out={self.output[0].name}, in=[{names}])"


class _SlotRewriter(StmtMutator):
    def __init__(self, out_buffer: Buffer):
        self.out_buffer = out_buffer
        self.slots: List[BufferLoad] = []
        self.slot_vars: List[Var] = []

    def rewrite_buffer_load(self, expr: BufferLoad) -> PrimExpr:
        if expr.buffer is self.out_buffer:
            return _acc_var(expr.dtype)
        var = _slot_var(len(self.slots), expr.buffer.dtype)
        self.slots.append(expr)
        self.slot_vars.append(var)
        return var


def extract_einsum(block: Block) -> Optional[EinsumPattern]:
    """Extract the einsum pattern of ``block``, or None if it is not a
    single-store computation."""
    if not isinstance(block.body, BufferStore):
        return None
    store = block.body
    rewriter = _SlotRewriter(store.buffer)
    update = rewriter.rewrite(store.value)
    inputs = [(load.buffer, load.indices) for load in rewriter.slots]
    return EinsumPattern(
        block, (store.buffer, store.indices), inputs, update, rewriter.slot_vars
    )


def match_expression_pattern(
    workload: EinsumPattern, intrin: EinsumPattern
) -> Optional[List[int]]:
    """Match two patterns' update functions.

    Returns a permutation ``perm`` such that the workload's input
    ``perm[i]`` plays the role of the intrinsic's input ``i`` (handling
    commutativity: ``A*B`` matches ``B*A`` with operands swapped), or
    None if the functions differ.
    """
    n = len(workload.inputs)
    if n != len(intrin.inputs) or n > 4:
        return None
    if workload.output[0].dtype != intrin.output[0].dtype:
        return None
    for perm in itertools.permutations(range(n)):
        ok = True
        for i, j in enumerate(perm):
            if workload.inputs[j][0].dtype != intrin.inputs[i][0].dtype:
                ok = False
                break
        if not ok:
            continue
        # Rename workload slots so workload input perm[i] takes the
        # intrinsic slot i's canonical variable.
        vmap = {}
        for i, j in enumerate(perm):
            src = workload.slot_vars[j]
            dst = intrin.slot_vars[i]
            if src is not dst:
                vmap[src] = dst
        renamed = substitute(workload.update, vmap) if vmap else workload.update
        if structural_equal(renamed, intrin.update):
            return list(perm)
    return None
