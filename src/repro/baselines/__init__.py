"""Comparison systems (TVM/Ansor, AMOS, CUTLASS, TensorRT, PyTorch, ACL
analogues) used by the evaluation benchmarks."""

from .systems import (
    AmosBaseline,
    AnsorBaseline,
    ArmComputeLibrary,
    CutlassLibrary,
    OpResult,
    System,
    TensorIRSystem,
    TensorRTLibrary,
    TorchLikeFramework,
    UnsupportedWorkload,
)

__all__ = [
    "System",
    "OpResult",
    "UnsupportedWorkload",
    "TensorIRSystem",
    "AnsorBaseline",
    "AmosBaseline",
    "CutlassLibrary",
    "TensorRTLibrary",
    "TorchLikeFramework",
    "ArmComputeLibrary",
]
