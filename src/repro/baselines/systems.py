"""Comparison systems for the evaluation (§5).

The paper compares against real systems we cannot run offline; each is
re-built here as the *strategy* that defines it, on top of the same
simulated hardware (see DESIGN.md §2 for the substitution argument):

* :class:`TensorIRSystem` — this paper: auto-tensorization + joint
  evolutionary search over computation and data movement.
* :class:`AnsorBaseline` (the "TVM" bars) — the same search
  infrastructure with tensorization disabled: loop-nest transformations
  over the scalar pipeline only.
* :class:`AmosBaseline` — tensorization through mapping enumeration with
  template schedules: the intrinsic is used, but data movement comes
  from a small fixed candidate set rather than a joint search.
* :class:`CutlassLibrary` — hand-written tensorized kernels with a fixed
  tile catalogue, profile-and-select dispatch, and software-pipelining
  gains our search space does not model (a documented 0.85x cycle
  factor).  Supports GEMM-shaped ops only: DEP/GRP/T2D raise
  :class:`UnsupportedWorkload` exactly as the paper notes.
* :class:`TensorRTLibrary` — vendor engine: CUTLASS-class kernels for
  GEMM-shaped ops, fixed-configuration generic kernels for the rest, and
  graph-level elementwise fusion end-to-end.  No ViT support.
* :class:`TorchLikeFramework` — eager framework: vendor per-op kernels,
  per-op launch overhead, no fusion.  Its quantised CPU path (QNNPACK)
  lacks ``sdot`` support (§5.3), so int8 ops run on the scalar pipeline.
* :class:`ArmComputeLibrary` — hand-tuned sdot micro-kernels for int8
  C2D/GMM with an expert fixed configuration (0.9x cycle factor for
  assembly-level tuning).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..meta import (
    CostModel,
    CpuScalarSketch,
    CpuSdotSketch,
    GpuScalarSketch,
    TensorCoreSketch,
    TuneConfig,
    evolutionary_search,
    tune,
)
from ..meta.search import TuneResult
from ..schedule import Schedule, ScheduleError, verify
from ..sim import PerfReport, SimCPU, SimGPU, Target, estimate
from ..tir import PrimFunc

__all__ = [
    "UnsupportedWorkload",
    "OpResult",
    "System",
    "TensorIRSystem",
    "AnsorBaseline",
    "AmosBaseline",
    "CutlassLibrary",
    "TensorRTLibrary",
    "TorchLikeFramework",
    "ArmComputeLibrary",
]


class UnsupportedWorkload(Exception):
    """The library has no kernel for this operator."""


@dataclass
class OpResult:
    system: str
    workload: str
    cycles: float
    seconds: float
    tuning_seconds: float = 0.0
    trials: int = 0
    note: str = ""


class System:
    """A compilation system / kernel library under evaluation."""

    name = "system"
    #: per-op dispatch overhead in seconds when run from a framework
    #: (graph engines fold this away).
    op_overhead = 0.0
    #: engines with graph-level fusion fold elementwise layers away.
    fuses_elementwise = False

    def compile_op(self, func: PrimFunc, target: Target, seed: int = 0) -> OpResult:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__}>"


def _first_valid(func, sketch, target, seeds, forced=None):
    for seed in seeds:
        sch = Schedule(func, seed=seed, record_trace=False)
        if forced is not None:
            sch.forced_decisions = list(forced)
        try:
            sketch.apply(sch)
        except ScheduleError:
            continue
        if verify(sch.func, target):
            continue
        return sch
    return None


class TensorIRSystem(System):
    """This paper's system: full auto-tensorization + joint search."""

    name = "TensorIR"

    def __init__(self, trials: int = 24):
        self.trials = trials

    def tune_config(self, seed: int = 0) -> TuneConfig:
        """The config a ``TuningSession`` needs to reproduce this
        system's per-op searches exactly."""
        return TuneConfig(trials=self.trials, seed=seed)

    def compile_op(self, func: PrimFunc, target: Target, seed: int = 0) -> OpResult:
        result = tune(func, target, TuneConfig(trials=self.trials, seed=seed))
        if result.best_report is None:
            raise UnsupportedWorkload(f"search found no valid program for {func.name}")
        return OpResult(
            self.name,
            func.name,
            result.best_cycles,
            result.best_report.seconds,
            tuning_seconds=result.tuning_seconds,
            trials=result.stats.measured,
            note=result.best_sketch or "",
        )


class AnsorBaseline(System):
    """TVM's auto-scheduler: the same search without tensorization.

    The search space is larger relative to the work it can express (the
    paper's §5.2 tuning-time observation), so it needs ~2x the trials to
    converge — and its candidates are slower, so each profiling step
    costs more.
    """

    name = "TVM"

    def __init__(self, trials: int = 48):
        self.trials = trials

    def tune_config(self, seed: int = 0) -> TuneConfig:
        return TuneConfig(trials=self.trials, seed=seed, allow_tensorize=False)

    def compile_op(self, func: PrimFunc, target: Target, seed: int = 0) -> OpResult:
        result = tune(
            func,
            target,
            TuneConfig(trials=self.trials, seed=seed, allow_tensorize=False),
        )
        if result.best_report is None:
            raise UnsupportedWorkload(f"search found no valid program for {func.name}")
        return OpResult(
            self.name,
            func.name,
            result.best_cycles,
            result.best_report.seconds,
            tuning_seconds=result.tuning_seconds,
            trials=result.stats.measured,
            note=result.best_sketch or "",
        )


class AmosBaseline(System):
    """AMOS: automatic intrinsic mapping with template schedules.

    Uses the same §4.2 mapping machinery but evaluates only a handful of
    template instantiations per mapping and keeps data movement fixed —
    no evolutionary refinement, no learned cost model.
    """

    name = "AMOS"

    def __init__(self, template_count: int = 4):
        self.template_count = template_count

    def compile_op(self, func: PrimFunc, target: Target, seed: int = 0) -> OpResult:
        if isinstance(target, SimGPU):
            sketches = [TensorCoreSketch(n) for n in target.compute_intrins]
            fallback = GpuScalarSketch()
        else:
            sketches = [CpuSdotSketch(n) for n in target.compute_intrins]
            fallback = CpuScalarSketch()
        probe = Schedule(func, record_trace=False)
        sketches = [s for s in sketches if s.applicable(probe)]
        best: Optional[PerfReport] = None
        tuning = 0.0
        measured = 0
        for sketch in sketches or [fallback]:
            result = evolutionary_search(
                func,
                sketch,
                target,
                TuneConfig(
                    trials=self.template_count,
                    population=self.template_count,
                    generations=1,  # template enumeration, no evolution
                    seed=seed,
                ),
            )
            tuning += result.tuning_seconds
            measured += result.stats.measured
            if result.best_report is not None and (
                best is None or result.best_report.cycles < best.cycles
            ):
                best = result.best_report
        if best is None:
            result = evolutionary_search(
                func, fallback, target, TuneConfig(trials=self.template_count, seed=seed)
            )
            best = result.best_report
            tuning += result.tuning_seconds
            measured += result.stats.measured
        if best is None:
            raise UnsupportedWorkload(f"AMOS found no valid mapping for {func.name}")
        return OpResult(
            self.name, func.name, best.cycles, best.seconds, tuning, measured
        )


#: Expert tile catalogue as decision vectors for the tensor-core sketch
#: (indices into each sampling step's candidate list, in decision order:
#: x_inner, x_mid, y_inner, y_mid, k_inner, copy_vec, unroll).
_CUTLASS_CATALOG = [
    [1, 1, 1, 1, 1, 3, 2],
    [2, 1, 1, 2, 1, 3, 2],
    [1, 2, 2, 1, 2, 2, 1],
    [2, 2, 1, 1, 1, 2, 2],
    [0, 2, 2, 0, 2, 3, 1],
    [1, 0, 1, 0, 1, 1, 0],
]

#: Gains from software pipelining (cp.async double buffering) and
#: swizzled layouts that sit outside the modelled search space.  They
#: apply to the kernels CUTLASS engineers hardest — dense GEMM and 3D
#: convolution; batch-1 1D/2D convolutions run through the generic
#: implicit-GEMM path where the fixed tile catalogue dominates.
_EXPERT_PIPELINE_FACTOR = 0.85
_PIPELINED_OPS = ("matmul", "batch_matmul", "conv3d")


def _op_kind(func: PrimFunc) -> str:
    """The operator class of a workload (independent of its layer name)."""
    return str(func.attrs.get("op", func.name))


class CutlassLibrary(System):
    """CUTLASS-style hand-written tensor-core kernels.

    Profile-and-select over a fixed tile catalogue; GEMM-shaped
    operators only (implicit-GEMM convolutions included).  DEP, GRP and
    T2D are unsupported — exactly the gaps Figure 11 notes.
    """

    name = "CUTLASS"
    _SUPPORTED = ("matmul", "batch_matmul", "conv1d", "conv2d", "dilated_conv2d", "conv3d")

    def compile_op(self, func: PrimFunc, target: Target, seed: int = 0) -> OpResult:
        if not isinstance(target, SimGPU):
            raise UnsupportedWorkload("CUTLASS targets NVIDIA GPUs only")
        if _op_kind(func) not in self._SUPPORTED:
            raise UnsupportedWorkload(f"CUTLASS has no kernel for {func.name}")
        cycles = _catalog_compile(func, target, seed)
        return OpResult(
            self.name,
            func.name,
            cycles,
            target.cycles_to_seconds(cycles),
            note="catalogue",
        )


def _catalog_compile(func: PrimFunc, target: Target, seed: int) -> float:
    """Profile-and-select over the fixed expert tile catalogue.

    Shapes the catalogue does not cover fall back to the library's
    heuristic kernel picker (a handful of untuned configurations) — a
    library always returns *some* kernel for a supported op class.
    """
    sketch = TensorCoreSketch()
    probe = Schedule(func, record_trace=False)
    if not sketch.applicable(probe):
        raise UnsupportedWorkload(f"no tensor-core mapping for {func.name}")
    best: Optional[PerfReport] = None
    for config in _CUTLASS_CATALOG:
        sch = _first_valid(func, sketch, target, seeds=[seed], forced=config)
        if sch is None:
            continue
        report = estimate(sch.func, target)
        if best is None or report.cycles < best.cycles:
            best = report
    if best is None:
        # Heuristic picker: best of a few untuned instantiations.
        for s in range(seed, seed + 8):
            sch = _first_valid(func, sketch, target, seeds=[s])
            if sch is None:
                continue
            report = estimate(sch.func, target)
            if best is None or report.cycles < best.cycles:
                best = report
    if best is None:
        raise UnsupportedWorkload(f"no catalogue entry fits {func.name}")
    factor = _EXPERT_PIPELINE_FACTOR if _op_kind(func) in _PIPELINED_OPS else 1.0
    return best.cycles * factor


class TensorRTLibrary(System):
    """TensorRT-style vendor engine.

    GEMM-shaped ops get CUTLASS-class kernels; everything else runs a
    fixed-configuration generic kernel (no per-shape tuning).  The
    engine fuses elementwise layers at graph level.  ViT is unsupported
    at the network level (§5.2).
    """

    name = "TensorRT"
    fuses_elementwise = True
    unsupported_networks = ("ViT",)
    #: TRT additionally ships grouped-conv tensor-core kernels.
    _TENSORIZED = CutlassLibrary._SUPPORTED + ("group_conv2d",)

    def compile_op(self, func: PrimFunc, target: Target, seed: int = 0) -> OpResult:
        if not isinstance(target, SimGPU):
            raise UnsupportedWorkload("TensorRT targets NVIDIA GPUs only")
        if _op_kind(func) in self._TENSORIZED:
            try:
                cycles = _catalog_compile(func, target, seed)
                return OpResult(
                    self.name,
                    func.name,
                    cycles,
                    target.cycles_to_seconds(cycles),
                    note="gemm-kernel",
                )
            except UnsupportedWorkload:
                pass
        # Generic kernel: one fixed configuration of the scalar schedule
        # (vendor kernels for odd ops exist but are not shape-tuned).
        sch = _first_valid(
            func, GpuScalarSketch(), target, seeds=range(seed, seed + 30)
        )
        if sch is None:
            raise UnsupportedWorkload(f"TensorRT generic kernel failed for {func.name}")
        report = estimate(sch.func, target)
        return OpResult(
            self.name, func.name, report.cycles, report.seconds, note="generic-kernel"
        )


class TorchLikeFramework(System):
    """Eager framework calling vendor kernels op by op.

    Per-op dispatch overhead (~25us) and no cross-op fusion.  On the
    int8 CPU path the backing library (QNNPACK) has not added ``sdot``
    support, so quantised ops fall back to the scalar pipeline (§5.3).
    """

    name = "PyTorch"
    op_overhead = 25e-6

    def __init__(self):
        self._trt = TensorRTLibrary()

    def compile_op(self, func: PrimFunc, target: Target, seed: int = 0) -> OpResult:
        if isinstance(target, SimGPU):
            result = self._trt.compile_op(func, target, seed)
            return OpResult(self.name, func.name, result.cycles, result.seconds)
        # CPU: no sdot in the quantised backend → scalar kernels with a
        # fixed configuration.
        sch = _first_valid(func, CpuScalarSketch(), target, seeds=range(seed, seed + 30))
        if sch is None:
            raise UnsupportedWorkload(f"no CPU kernel for {func.name}")
        report = estimate(sch.func, target)
        return OpResult(self.name, func.name, report.cycles, report.seconds, note="no-sdot")


class ArmComputeLibrary(System):
    """ACL-style hand-tuned sdot micro-kernels (int8 C2D/GMM)."""

    name = "ArmComputeLib"
    _SUPPORTED = ("matmul", "conv2d", "batch_matmul")
    _EXPERT_FACTOR = 0.9  # hand-scheduled assembly beyond the search space

    def compile_op(self, func: PrimFunc, target: Target, seed: int = 0) -> OpResult:
        if not isinstance(target, SimCPU):
            raise UnsupportedWorkload("ArmComputeLib targets ARM CPUs only")
        if _op_kind(func) not in self._SUPPORTED:
            raise UnsupportedWorkload(f"ACL has no sdot kernel for {func.name}")
        sketch = CpuSdotSketch()
        probe = Schedule(func, record_trace=False)
        if not sketch.applicable(probe):
            raise UnsupportedWorkload(f"no sdot mapping for {func.name}")
        best: Optional[PerfReport] = None
        for s in range(seed, seed + 6):
            sch = _first_valid(func, sketch, target, seeds=[s])
            if sch is None:
                continue
            report = estimate(sch.func, target)
            if best is None or report.cycles < best.cycles:
                best = report
        if best is None:
            raise UnsupportedWorkload(f"no ACL kernel fits {func.name}")
        cycles = best.cycles * self._EXPERT_FACTOR
        return OpResult(
            self.name, func.name, cycles, target.cycles_to_seconds(cycles), note="microkernel"
        )
