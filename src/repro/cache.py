"""Process-wide memoization caches for the compiler's search hot path.

Evolutionary search evaluates thousands of candidate programs that share
most of their structure (a mutation keeps a prefix of the parent's
decisions, so whole subtrees are byte-for-byte identical).  Every
expensive analysis keyed on *program structure* — feature extraction,
``verify()`` diagnostics, the analytical cost estimate — is therefore
memoized on :func:`repro.tir.structural_hash`, through the small
registry in this module.

Design rules:

* This module imports nothing from :mod:`repro` — it sits below
  :mod:`repro.tir` in the import graph so every layer can use it.
* Each :class:`MemoCache` is a named, bounded LRU with hit/miss/eviction
  counters; all caches register themselves in a process-wide registry so
  telemetry (``SessionReport.cache_stats``) and the bench harness can
  observe them uniformly.
* ``set_enabled(False)`` turns every cache into a pass-through.  The
  bench harness uses this to measure an honest uncached baseline in the
  same process; it is also the escape hatch if a cache is ever suspected
  of returning stale results.
* Cached values must be immutable or defensively copied by the caller:
  a cache returns the same object to every hit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Tuple

__all__ = [
    "MemoCache",
    "MISS",
    "absorb_worker_counts",
    "all_caches",
    "cache_stats",
    "caches_enabled",
    "clear_all",
    "delta_since",
    "register_stats_source",
    "set_enabled",
    "snapshot_counts",
    "worker_counts",
]


class _Miss:
    """Sentinel distinguishing "not cached" from a cached ``None``."""

    def __repr__(self) -> str:  # pragma: no cover
        return "<cache miss>"


#: returned by :meth:`MemoCache.lookup` when the key is absent (or
#: caching is disabled).
MISS = _Miss()

_REGISTRY_LOCK = threading.Lock()
_CACHES: "OrderedDict[str, MemoCache]" = OrderedDict()
#: extra (hits, misses) sources that are not MemoCaches — e.g. the
#: per-node structural-hash memo, which lives on the IR nodes themselves.
_STATS_SOURCES: Dict[str, Callable[[], Tuple[int, int]]] = {}
#: counters absorbed from worker *processes* (see
#: :func:`absorb_worker_counts`): each worker owns a private registry, so
#: its activity is shipped back as deltas and merged here.  Keyed like the
#: local registry; folded into :func:`snapshot_counts` so session reports
#: see one merged view regardless of evaluation backend.
_WORKER_COUNTS: Dict[str, list] = {}

_ENABLED = True


def caches_enabled() -> bool:
    """Whether the memoization layer is active."""
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Globally enable/disable every cache; returns the previous state.

    Disabling does not clear stored entries — re-enabling resumes with
    the prior contents (call :func:`clear_all` for a cold start).
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


class MemoCache:
    """A named, bounded, thread-safe LRU memo table.

    Values are returned as-is on a hit — store immutable objects, or
    copy on the way in *and* out if the caller may mutate results.
    """

    def __init__(self, name: str, maxsize: int = 4096):
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        with _REGISTRY_LOCK:
            _CACHES[name] = self

    def lookup(self, key: Any) -> Any:
        """The cached value, or :data:`MISS` (also when disabled)."""
        if not _ENABLED:
            return MISS
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return MISS
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def record_miss(self) -> None:
        """Count a lookup that never reached the table (e.g. an
        unhashable key forced an uncached computation).  Bypasses are
        misses from the caller's point of view: without this, hit rates
        overstate how much of the workload the cache actually served."""
        if not _ENABLED:
            return
        with self._lock:
            self.misses += 1

    def put(self, key: Any, value: Any) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def get_or_compute(self, key: Any, compute: Callable[[], Any]) -> Any:
        """Memoized ``compute()``.  The lock is *not* held during the
        computation, so concurrent misses may compute redundantly — by
        construction every cached computation is deterministic, so the
        racing writes store identical values."""
        value = self.lookup(key)
        if value is MISS:
            value = compute()
            self.put(key, value)
        return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def stats(self) -> Dict[str, float]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self),
            "maxsize": self.maxsize,
            "hit_rate": self.hits / total if total else 0.0,
        }


# ---------------------------------------------------------------------------
# registry-wide views
# ---------------------------------------------------------------------------


def register_stats_source(name: str, fn: Callable[[], Tuple[int, int]]) -> None:
    """Expose an external ``() -> (hits, misses)`` counter pair in the
    registry views (used by the per-node structural-hash memo)."""
    with _REGISTRY_LOCK:
        _STATS_SOURCES[name] = fn


def all_caches() -> Dict[str, MemoCache]:
    with _REGISTRY_LOCK:
        return dict(_CACHES)


def cache_stats() -> Dict[str, Dict[str, float]]:
    """Per-cache statistics for every registered cache and source."""
    out = {name: cache.stats() for name, cache in all_caches().items()}
    with _REGISTRY_LOCK:
        sources = dict(_STATS_SOURCES)
    for name, fn in sources.items():
        hits, misses = fn()
        total = hits + misses
        out[name] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }
    return out


def absorb_worker_counts(delta: Dict[str, Tuple[int, int, int]]) -> None:
    """Merge cache-counter deltas shipped back from a worker *process*.

    Worker processes run their own private cache registries (memo
    entries never cross the process boundary — only these counters do).
    Each absorbed delta accumulates into a process-level side table that
    :func:`snapshot_counts` folds into the per-cache totals, so
    ``delta_since`` windows and ``SessionReport.cache_stats`` describe
    the whole evaluation fleet, not just the coordinating process.
    """
    with _REGISTRY_LOCK:
        for name, counts in delta.items():
            hits = int(counts[0])
            misses = int(counts[1]) if len(counts) > 1 else 0
            evictions = int(counts[2]) if len(counts) > 2 else 0
            slot = _WORKER_COUNTS.setdefault(name, [0, 0, 0])
            slot[0] += hits
            slot[1] += misses
            slot[2] += evictions


def worker_counts() -> Dict[str, Tuple[int, int, int]]:
    """Accumulated worker-process counters (merged into snapshots)."""
    with _REGISTRY_LOCK:
        return {name: tuple(counts) for name, counts in _WORKER_COUNTS.items()}


def snapshot_counts() -> Dict[str, Tuple[int, int, int]]:
    """``{name: (hits, misses, evictions)}`` for delta accounting across
    a run — local registry activity plus any counters absorbed from
    worker processes.  External stats sources have no eviction counter
    and report 0."""
    snap = {
        name: (cache.hits, cache.misses, cache.evictions)
        for name, cache in all_caches().items()
    }
    with _REGISTRY_LOCK:
        sources = dict(_STATS_SOURCES)
        workers = {name: tuple(counts) for name, counts in _WORKER_COUNTS.items()}
    for name, fn in sources.items():
        hits, misses = fn()
        snap[name] = (hits, misses, 0)
    for name, (hits, misses, evictions) in workers.items():
        base = snap.get(name, (0, 0, 0))
        snap[name] = (base[0] + hits, base[1] + misses, base[2] + evictions)
    return snap


def delta_since(before: Dict[str, Tuple[int, ...]]) -> Dict[str, Dict[str, float]]:
    """Hit/miss/eviction activity since a :func:`snapshot_counts` call,
    dropping caches with no activity in the window.  Accepts legacy
    ``(hits, misses)`` snapshots (evictions assumed 0)."""
    out: Dict[str, Dict[str, float]] = {}
    for name, (hits, misses, evictions) in snapshot_counts().items():
        prior = before.get(name, (0, 0, 0))
        h0, m0 = prior[0], prior[1]
        e0 = prior[2] if len(prior) > 2 else 0
        dh, dm, de = hits - h0, misses - m0, evictions - e0
        if dh or dm or de:
            total = dh + dm
            out[name] = {
                "hits": dh,
                "misses": dm,
                "evictions": de,
                "hit_rate": dh / total if total else 0.0,
            }
    return out


def clear_all() -> None:
    """Empty every registered cache (counters are kept — they are
    cumulative; use :func:`snapshot_counts` for windowed accounting)."""
    for cache in all_caches().values():
        cache.clear()
