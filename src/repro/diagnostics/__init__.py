"""Typed diagnostics for TensorIR validation (§3.3) and scheduling.

Every validation failure and primitive-precondition failure in the repo
is a :class:`Diagnostic`: a stable error code (``TIR1xx`` loop-nest,
``TIR2xx`` producer/consumer, ``TIR3xx`` threading/intrinsic,
``TIR4xx`` primitive preconditions), a severity, the offending block,
and a lazily-rendered source span that underlines the failing statement
in the TVMScript-style output of :mod:`repro.tir.printer`.

* :class:`DiagnosticContext` — the sink check batteries emit into.
* :class:`DiagnosticError` — the unified exception base carrying
  ``.diagnostics`` (``ScheduleError`` and ``VerificationError`` are
  subclasses).
* :mod:`repro.diagnostics.codes` — the append-only code registry.
* :mod:`repro.diagnostics.lint` — ``tirlint``; also runnable as
  ``python -m repro.diagnostics file.py``.
"""

from .codes import ErrorCode, all_codes, code_info, family_of, register_code
from .context import DiagnosticContext, DiagnosticError, tagged
from .diagnostic import Diagnostic, Severity
from .lint import LintReport, lint_func, lint_path, lint_trace

__all__ = [
    "Diagnostic",
    "Severity",
    "DiagnosticContext",
    "DiagnosticError",
    "tagged",
    "ErrorCode",
    "register_code",
    "code_info",
    "all_codes",
    "family_of",
    "LintReport",
    "lint_func",
    "lint_trace",
    "lint_path",
]
