"""CLI entry point: ``python -m repro.diagnostics file.py [...]``.

Runs the §3.3 validation battery (tirlint) over every PrimFunc
discoverable in the given Python files and renders each failure with
its stable error code and underlined source span.

Exit status: 0 all clean, 1 diagnostics found, 2 a file failed to load.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .lint import lint_path, resolve_target


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.diagnostics",
        description="tirlint: validate TensorIR programs (§3.3 battery)",
    )
    parser.add_argument("paths", nargs="+", help="Python files to lint")
    parser.add_argument(
        "--target",
        choices=("none", "gpu", "cpu"),
        default="none",
        help="also run target-dependent threading checks (default: none)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    args = parser.parse_args(argv)

    target = resolve_target(args.target)
    status = 0
    json_out = []
    for path in args.paths:
        report = lint_path(path, target)
        if report.failures.get("<module>"):
            status = 2
        elif not report.ok and status == 0:
            status = 1
        if args.format == "json":
            json_out.append(
                {
                    "path": report.path,
                    "ok": report.ok,
                    "counts_by_code": report.counts_by_code(),
                    "failures": report.failures,
                    "diagnostics": {
                        name: [
                            {
                                "code": d.code,
                                "severity": str(d.severity),
                                "message": d.message,
                                "block": d.block,
                                "span": d.span(),
                            }
                            for d in diags
                        ]
                        for name, diags in report.diagnostics.items()
                    },
                }
            )
        else:
            print(report.render())
    if args.format == "json":
        print(json.dumps(json_out, indent=1))
    return status


if __name__ == "__main__":
    sys.exit(main())
