"""Stable error codes for TensorIR diagnostics.

Every validation failure (§3.3) and primitive-precondition failure is
identified by a stable ``TIRnnn`` code, grouped in bands:

* ``TIR1xx`` — loop nest validation (quasi-affine bindings, domains).
* ``TIR2xx`` — producer/consumer coverage and execution order.
* ``TIR3xx`` — threading validation and intrinsic execution/storage
  constraints (GPU targets).
* ``TIR4xx`` — schedule-primitive preconditions.
* ``TIR5xx`` — cost-model rejections (the analytical model cannot cost
  a candidate the search produced).
* ``TIR6xx`` — graph construction and fusion-legality failures (the
  dataflow layer in ``repro.frontend``).
* ``TIR7xx`` — shape bucketing and cross-shape replay (bucketed
  schedule reuse in ``repro.frontend.shapes``).

Codes are append-only: a released code never changes meaning, so
telemetry aggregated across versions stays comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["ErrorCode", "register_code", "code_info", "all_codes", "family_of"]

#: fallback code for legacy string-only errors that predate the registry
GENERIC = "TIR000"

_FAMILIES = {
    "TIR0": "generic",
    "TIR1": "loop-nest",
    "TIR2": "producer-consumer",
    "TIR3": "threading",
    "TIR4": "primitive-precondition",
    "TIR5": "cost-model",
    "TIR6": "graph-fusion",
    "TIR7": "shape-bucketing",
}


@dataclass(frozen=True)
class ErrorCode:
    """One registered diagnostic code."""

    code: str
    title: str
    family: str

    def __str__(self) -> str:
        return self.code


_REGISTRY: Dict[str, ErrorCode] = {}


def family_of(code: str) -> str:
    """The check family a code belongs to (by its TIRn band)."""
    return _FAMILIES.get(code[:4], "unknown")


def register_code(code: str, title: str) -> ErrorCode:
    """Register a code; re-registration must agree with the original."""
    info = ErrorCode(code, title, family_of(code))
    existing = _REGISTRY.get(code)
    if existing is not None:
        if existing.title != title:
            raise ValueError(
                f"error code {code} already registered as {existing.title!r}"
            )
        return existing
    _REGISTRY[code] = info
    return info


def code_info(code: str) -> ErrorCode:
    """Metadata for ``code`` (unregistered codes resolve generically)."""
    return _REGISTRY.get(code) or ErrorCode(code, "unregistered", family_of(code))


def all_codes() -> List[ErrorCode]:
    """Every registered code, sorted."""
    return [_REGISTRY[c] for c in sorted(_REGISTRY)]


register_code(GENERIC, "uncategorized error")

# --- TIR1xx: loop nest validation (§3.3) -----------------------------------
register_code("TIR101", "loop does not start at zero")
register_code("TIR102", "loop has symbolic extent")
register_code("TIR103", "iterator bindings are not an independent quasi-affine map")
register_code("TIR104", "symbolic block iterator domain")
register_code("TIR105", "iterator binding can leave its domain unguarded")
register_code("TIR106", "reduction iterator driven by a parallel/thread loop")

# --- TIR2xx: producer/consumer coverage (§3.3) -----------------------------
register_code("TIR201", "block reads a buffer that no block produces")
register_code("TIR202", "consumer reads a region its producers do not cover")
register_code("TIR203", "block reads a buffer before its producer runs")

# --- TIR3xx: threading + intrinsic constraints (§3.3, GPU) -----------------
register_code("TIR301", "thread loop has symbolic extent")
register_code("TIR302", "inconsistent extents on one thread axis")
register_code("TIR303", "thread axis extent exceeds the launch limit")
register_code("TIR304", "threads per block exceed the launch limit")
register_code("TIR305", "shared memory footprint exceeds capacity")
register_code("TIR306", "warp-scope intrinsic nested inside a threadIdx.x loop")
register_code("TIR307", "shared buffer read without a cooperative fetch")
register_code("TIR351", "tensorized operand not found on the block")
register_code("TIR352", "tensorized operand in the wrong storage scope")

# --- TIR4xx: schedule-primitive preconditions ------------------------------
register_code("TIR400", "schedule primitive applied illegally")
register_code("TIR401", "split precondition failed")
register_code("TIR402", "fuse precondition failed")
register_code("TIR403", "reorder precondition failed")
register_code("TIR404", "loop-kind annotation precondition failed")
register_code("TIR405", "thread-bind precondition failed")
register_code("TIR406", "annotate precondition failed")
register_code("TIR410", "compute_at precondition failed")
register_code("TIR411", "reverse_compute_at precondition failed")
register_code("TIR412", "compute_inline precondition failed")
register_code("TIR413", "reverse_compute_inline precondition failed")
register_code("TIR420", "cache_read precondition failed")
register_code("TIR421", "cache_write precondition failed")
register_code("TIR422", "set_scope precondition failed")
register_code("TIR430", "decompose_reduction precondition failed")
register_code("TIR431", "merge_reduction precondition failed")
register_code("TIR440", "blockize precondition failed")
register_code("TIR441", "tensorize precondition failed")
register_code("TIR450", "reindex precondition failed")
register_code("TIR460", "fuse_buffer_dims precondition failed")
register_code("TIR461", "fuse_block_iters precondition failed")
register_code("TIR470", "pad_einsum precondition failed")

# --- TIR5xx: cost-model rejections ----------------------------------------
register_code("TIR501", "performance model cannot cost the candidate")

# --- TIR6xx: graph construction + fusion legality --------------------------
register_code("TIR601", "fusion consumer is not a pure elementwise op")
register_code("TIR602", "epilogue output shape does not match the anchor output")
register_code("TIR603", "fusion boundary tensor has multiple consumers")
register_code("TIR604", "graph operator arity or operand shape mismatch")

# --- TIR7xx: shape bucketing + cross-shape replay --------------------------
register_code("TIR701", "stored decisions infeasible at the replayed shape")
register_code("TIR702", "bucket replay fell back to a fresh tune")
register_code("TIR703", "dimension size outside every declared bucket")
