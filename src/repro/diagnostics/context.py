"""Diagnostic collection and the unified error hierarchy.

``DiagnosticContext`` is the sink every check battery writes into: the
§3.3 validators in :mod:`repro.schedule.validation` emit into one, and
:class:`~repro.schedule.state.Schedule` records failed primitive
preconditions into its own, so a tuning pipeline can observe *which*
check killed a candidate and *where*.

``DiagnosticError`` is the common base of the two legacy exception
types (``ScheduleError``, ``VerificationError``): it always carries a
``.diagnostics`` list, and its ``str()`` is the legacy ``"; "``-joined
message text.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Union

from .codes import GENERIC
from .diagnostic import Diagnostic, Severity

__all__ = ["DiagnosticContext", "DiagnosticError", "tagged"]


def _as_diagnostics(
    problems: Union[str, Diagnostic, Sequence[Union[str, Diagnostic]]],
    *,
    code: str = GENERIC,
    block: Optional[str] = None,
    func=None,
    stmt=None,
) -> List[Diagnostic]:
    """Normalise strings / single diagnostics into a diagnostic list."""
    if isinstance(problems, (str, Diagnostic)):
        problems = [problems]
    out = []
    for p in problems:
        if isinstance(p, str):
            p = Diagnostic(code, p, block=block, func=func, stmt=stmt)
        out.append(p)
    return out


class DiagnosticError(Exception):
    """Base of every validation/scheduling error; carries typed
    diagnostics while ``str()`` reproduces the legacy message text."""

    #: code used when constructed from a bare string
    default_code = GENERIC

    def __init__(
        self,
        diagnostics: Union[str, Diagnostic, Sequence[Union[str, Diagnostic]]] = "",
        *,
        code: Optional[str] = None,
        block: Optional[str] = None,
        func=None,
        stmt=None,
    ):
        self.diagnostics: List[Diagnostic] = _as_diagnostics(
            diagnostics, code=code or self.default_code, block=block, func=func, stmt=stmt
        )
        super().__init__("; ".join(str(d) for d in self.diagnostics))

    @property
    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    def retag(self, code: str) -> "DiagnosticError":
        """Assign ``code`` to every diagnostic still carrying the
        class's generic default (more specific codes are preserved)."""
        for d in self.diagnostics:
            if d.code == self.default_code or d.code == GENERIC:
                d.code = code
        return self

    def render(self) -> str:
        return "\n".join(d.render() for d in self.diagnostics)


def tagged(code: str):
    """Decorator giving a schedule primitive its stable precondition
    code: any :class:`DiagnosticError` escaping the function that still
    carries the generic default code is retagged with ``code``."""
    import functools

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            try:
                return fn(*args, **kwargs)
            except DiagnosticError as err:
                raise err.retag(code)

        return wrapper

    return decorate


class DiagnosticContext:
    """An append-only sink for diagnostics from one analysis run."""

    def __init__(self, func=None):
        self.func = func
        self.diagnostics: List[Diagnostic] = []

    def emit(
        self,
        code: str,
        message: str,
        *,
        severity: Severity = Severity.ERROR,
        block: Optional[str] = None,
        stmt=None,
        func=None,
    ) -> Diagnostic:
        """Record one diagnostic; returns it for chaining/inspection."""
        diag = Diagnostic(
            code,
            message,
            severity=severity,
            block=block,
            func=func if func is not None else self.func,
            stmt=stmt,
        )
        self.diagnostics.append(diag)
        return diag

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    def ok(self) -> bool:
        """True when no error-severity diagnostic was emitted."""
        return not self.errors

    def counts_by_code(self) -> Dict[str, int]:
        """How many diagnostics were emitted per error code."""
        return dict(Counter(d.code for d in self.diagnostics))

    def render(self) -> str:
        """Every diagnostic rendered with its source span, separated by
        blank lines."""
        return "\n\n".join(d.render() for d in self.diagnostics)

    def raise_if_error(self, exc_type=DiagnosticError) -> None:
        errors = self.errors
        if errors:
            raise exc_type(errors)
