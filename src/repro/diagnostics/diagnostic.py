"""The typed ``Diagnostic`` record.

A diagnostic is what the §3.3 validation battery and the schedule
primitives report instead of a flat string: a stable error code
(:mod:`repro.diagnostics.codes`), a severity, the offending block, and
— when the failing IR node is known — a source span into the TVMScript
rendering of the function, which :meth:`Diagnostic.render` underlines.

``str(diag)`` reproduces the exact legacy message text, so string-based
callers (``"quasi-affine" in problem``) keep working unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from .codes import code_info, family_of

__all__ = ["Severity", "Diagnostic"]


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    def __str__(self) -> str:
        return self.value


@dataclass
class Diagnostic:
    """One typed validation/precondition failure.

    ``func``/``stmt`` are IR references used for lazy span rendering —
    nothing is printed until :meth:`render` (or :meth:`span`) is called,
    so emitting diagnostics on the search hot path stays cheap.
    """

    code: str
    message: str
    severity: Severity = Severity.ERROR
    #: name hint of the offending block, if any
    block: Optional[str] = None
    #: the PrimFunc the diagnostic was raised against (for rendering)
    func: Optional[object] = field(default=None, repr=False, compare=False)
    #: the offending statement within ``func`` (located by identity)
    stmt: Optional[object] = field(default=None, repr=False, compare=False)

    # -- legacy string compatibility -----------------------------------
    def __str__(self) -> str:
        return self.message

    def __contains__(self, item: str) -> bool:
        # Old callers probe problems with `"needle" in problem`.
        return item in self.message

    def __eq__(self, other: object) -> bool:
        if isinstance(other, str):
            return self.message == other
        if isinstance(other, Diagnostic):
            return (
                self.code == other.code
                and self.message == other.message
                and self.severity == other.severity
                and self.block == other.block
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.code, self.message))

    # -- structured accessors ------------------------------------------
    @property
    def family(self) -> str:
        """The check family of this diagnostic's code band."""
        return family_of(self.code)

    @property
    def title(self) -> str:
        """The registered one-line title of the code."""
        return code_info(self.code).title

    def span(self) -> Optional[Tuple[int, int]]:
        """1-based (start, end) line range of ``stmt`` in the script
        rendering of ``func``; None when no IR location is attached."""
        if self.func is None or self.stmt is None:
            return None
        from ..tir.printer import script_with_spans

        _, spans = script_with_spans(self.func)
        return spans.get(id(self.stmt))

    def render(self, context: int = 1) -> str:
        """A compiler-style report underlining the failing statement:

        .. code-block:: text

            error[TIR105]: oob: binding of v1 can leave its domain ...
              --> oob:4
            4 |         v1 = spatial_axis(16, i + 8)
              |         ^^^^^^^^^^^^^^^^^^^^^^^^^^^^
        """
        head = f"{self.severity}[{self.code}]: {self.message}"
        if self.func is None:
            return head
        from ..tir.printer import render_span

        body = render_span(self.func, self.stmt, context=context)
        return head if body is None else f"{head}\n{body}"
