"""``tirlint``: run the full §3.3 validation battery over TensorIR
programs found in Python source files.

``python -m repro.diagnostics file.py`` loads ``file.py`` as a module
and lints every :class:`~repro.tir.PrimFunc` it can discover:

* module-level ``PrimFunc`` objects,
* zero-argument callables named ``build_*`` (the repo-wide idiom for
  workload constructors — every ``examples/*.py`` and test helper
  follows it) that return a ``PrimFunc``,
* module-level :class:`~repro.schedule.Trace` objects named
  ``TRACE_<func>`` are replayed onto the matching builder's function
  before validation.

The API surface (``lint_func`` / ``lint_trace`` / ``lint_path``) is
importable for programmatic use; the CLI lives in ``__main__``.
"""

from __future__ import annotations

import importlib.util
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .diagnostic import Diagnostic

__all__ = ["LintReport", "lint_func", "lint_trace", "lint_path", "discover_funcs"]


@dataclass
class LintReport:
    """Per-file lint outcome: diagnostics grouped by function name."""

    path: str
    diagnostics: Dict[str, List[Diagnostic]] = field(default_factory=dict)
    #: functions that could not be built/replayed ("name" -> reason)
    failures: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures and not any(self.diagnostics.values())

    @property
    def functions(self) -> List[str]:
        return sorted(set(self.diagnostics) | set(self.failures))

    def counts_by_code(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for diags in self.diagnostics.values():
            for d in diags:
                out[d.code] = out.get(d.code, 0) + 1
        return out

    def render(self) -> str:
        lines = []
        for name in self.functions:
            for d in self.diagnostics.get(name, []):
                lines.append(d.render())
            if name in self.failures:
                lines.append(f"error: {name}: {self.failures[name]}")
        status = "OK" if self.ok else "FAILED"
        checked = len(self.functions)
        lines.append(f"{self.path}: {checked} function(s) checked — {status}")
        return "\n".join(lines)


def lint_func(func, target=None) -> List[Diagnostic]:
    """The full §3.3 battery over one PrimFunc."""
    from ..schedule import verify

    return verify(func, target)


def lint_trace(trace, func, target=None) -> List[Diagnostic]:
    """Replay ``trace`` onto ``func`` and lint the resulting program.

    Precondition failures during replay surface as TIR4xx diagnostics,
    exactly like the evolutionary search observes them.
    """
    from ..schedule import Schedule
    from .context import DiagnosticError

    sch = Schedule(func, record_trace=False)
    try:
        trace.apply_to(sch)
    except DiagnosticError as err:
        return list(err.diagnostics)
    return lint_func(sch.func, target)


def _load_module(path: str):
    spec = importlib.util.spec_from_file_location(
        f"_tirlint_{abs(hash(path))}", path
    )
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {path}")
    module = importlib.util.module_from_spec(spec)
    # Registered so dataclasses/pickling inside the module resolve.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


def discover_funcs(module) -> Tuple[Dict[str, object], Dict[str, str]]:
    """PrimFuncs reachable from a loaded module: literal ``PrimFunc``
    globals plus the results of zero-arg ``build_*`` constructors.
    Returns (funcs-by-name, failures-by-name)."""
    import inspect

    from ..tir import PrimFunc

    funcs: Dict[str, object] = {}
    failures: Dict[str, str] = {}
    for name in sorted(vars(module)):
        value = getattr(module, name)
        if isinstance(value, PrimFunc):
            funcs[name] = value
        elif callable(value) and name.startswith("build_"):
            try:
                params = inspect.signature(value).parameters
            except (TypeError, ValueError):  # builtins etc.
                continue
            if any(
                p.default is inspect.Parameter.empty
                and p.kind
                not in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD)
                for p in params.values()
            ):
                continue  # requires arguments — not a discoverable builder
            try:
                result = value()
            except Exception as err:  # noqa: BLE001 — isolate builders
                failures[name] = f"builder raised {type(err).__name__}: {err}"
                continue
            if isinstance(result, PrimFunc):
                funcs[name] = result
    return funcs, failures


def lint_path(path: str, target=None) -> LintReport:
    """Lint every discoverable PrimFunc in the Python file ``path``."""
    from ..schedule import Trace

    report = LintReport(path)
    try:
        module = _load_module(path)
    except Exception as err:  # noqa: BLE001 — report, don't crash the run
        report.failures["<module>"] = f"import failed: {type(err).__name__}: {err}"
        return report
    funcs, failures = discover_funcs(module)
    report.failures.update(failures)
    for name, func in funcs.items():
        report.diagnostics[name] = lint_func(func, target)
    for name in sorted(vars(module)):
        value = getattr(module, name)
        if isinstance(value, Trace) and name.startswith("TRACE_"):
            base = name[len("TRACE_"):].lower()
            match = funcs.get(f"build_{base}") or funcs.get(base)
            if match is None:
                report.failures[name] = f"no PrimFunc found to replay {name} onto"
                continue
            report.diagnostics[name] = lint_trace(value, match, target)
    return report


def resolve_target(name: Optional[str]):
    """Map a CLI target name onto a simulated hardware target."""
    if name in (None, "none"):
        return None
    from ..sim import SimCPU, SimGPU

    if name == "gpu":
        return SimGPU()
    if name == "cpu":
        return SimCPU()
    raise ValueError(f"unknown target {name!r} (expected gpu/cpu/none)")
