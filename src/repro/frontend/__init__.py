"""Frontend: operator builders, evaluation workloads and network graphs."""

from . import ops
from .fuse import (
    ANCHOR_KINDS,
    FusionGroup,
    FusionPlan,
    FusionRejection,
    compose_group,
    fuse_graph,
    graph_latency,
    lower_group,
    random_graph_inputs,
    run_graph,
    run_plan,
)
from .graph import (
    Graph,
    GraphError,
    LayerSpec,
    NetworkSpec,
    OpNode,
    TensorNode,
    network_latency,
)
from .networks import cpu_graph, cpu_network, gpu_graph, gpu_network
from .shapes import (
    BucketedWorkload,
    BucketSpec,
    ShapeBucket,
    canonicalize,
    rebuild,
    shape_args_of,
    shape_parametric,
)
from .workloads import CPU_WORKLOADS, GPU_WORKLOADS, cpu_workload, gpu_workload

__all__ = [
    "ops",
    "LayerSpec",
    "NetworkSpec",
    "network_latency",
    "Graph",
    "GraphError",
    "OpNode",
    "TensorNode",
    "ANCHOR_KINDS",
    "FusionGroup",
    "FusionPlan",
    "FusionRejection",
    "fuse_graph",
    "compose_group",
    "lower_group",
    "graph_latency",
    "random_graph_inputs",
    "run_graph",
    "run_plan",
    "gpu_network",
    "cpu_network",
    "gpu_graph",
    "cpu_graph",
    "GPU_WORKLOADS",
    "CPU_WORKLOADS",
    "gpu_workload",
    "cpu_workload",
    "ShapeBucket",
    "BucketSpec",
    "BucketedWorkload",
    "canonicalize",
    "shape_parametric",
    "shape_args_of",
    "rebuild",
]
