"""Frontend: operator builders, evaluation workloads and network graphs."""

from . import ops
from .graph import LayerSpec, NetworkSpec, network_latency
from .networks import cpu_network, gpu_network
from .workloads import CPU_WORKLOADS, GPU_WORKLOADS, cpu_workload, gpu_workload

__all__ = [
    "ops",
    "LayerSpec",
    "NetworkSpec",
    "network_latency",
    "gpu_network",
    "cpu_network",
    "GPU_WORKLOADS",
    "CPU_WORKLOADS",
    "gpu_workload",
    "cpu_workload",
]
