"""Graph-level fusion: partition a dataflow graph into anchor groups
and lower each group to a single fused PrimFunc.

The pass walks a :class:`~repro.frontend.graph.Graph` in topological
order.  Every *anchor* op (matmul/conv/softmax/... — anything with a
real compute pattern the sketches know how to schedule) claims

* its **epilogue chain**: the maximal run of single-consumer elementwise
  ops hanging off its output whose shapes match the anchor output
  (bias_add, relu, cast, residual add, ...), and
* its **prologue chain**: unclaimed single-consumer elementwise
  producers feeding its inputs.

Chains stop — with a typed ``TIR6xx`` rejection recorded on the plan —
at non-elementwise consumers (TIR601), shape-changing consumers
(TIR602) and multi-consumer boundary tensors (TIR603).  Everything
left over becomes a singleton group, so a :class:`FusionPlan` always
covers the whole graph.

Lowering composes the members' bodies into one PrimFunc with canonical
positional buffer names (``in0..``, ``out0..``, internals ``t0..`` —
so structurally identical groups share a ``workload_key`` and the
tuning database replays across them), then ``compute_inline``s every
spatial block that writes a group-internal boundary tensor.  The result
is a legal, sketchable TensorIR program: one anchor block plus at most
one epilogue block, which the GPU/CPU sketches fold into the anchor's
cache-write stage at schedule time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..tir import (
    Buffer,
    For,
    PrimFunc,
    Var,
    make_root_block,
    post_order_visit,
    seq,
    substitute,
)
from .graph import Graph, GraphError, OpNode, TensorNode


def _loop_vars(stmt) -> List[Var]:
    """Every loop variable bound in ``stmt``, in deterministic order."""
    out: List[Var] = []
    post_order_visit(stmt, lambda n: out.append(n.loop_var) if isinstance(n, For) else None)
    return out

__all__ = [
    "ANCHOR_KINDS",
    "FusionRejection",
    "FusionGroup",
    "FusionPlan",
    "fuse_graph",
    "compose_group",
    "lower_group",
    "random_graph_inputs",
    "run_graph",
    "run_plan",
    "graph_latency",
]

#: op kinds that can own a fusion group (the sketches schedule these).
ANCHOR_KINDS = frozenset(
    {
        "matmul",
        "batch_matmul",
        "conv1d",
        "conv2d",
        "conv3d",
        "depthwise_conv2d",
        "group_conv2d",
        "conv2d_transposed",
        "softmax",
        "layer_norm",
    }
)


@dataclass
class FusionRejection:
    """Why an op chain could not extend past a boundary tensor."""

    code: str
    anchor: str
    consumer: str
    message: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.anchor} -x- {self.consumer}: {self.message}"


@dataclass
class FusionGroup:
    """One fusion group: an anchor plus its prologue/epilogue members."""

    graph: Graph
    anchor: OpNode
    members: List[OpNode]
    #: tensors crossing the group boundary, aligned with the fused
    #: func's ``in0..`` / ``out0..`` params (filled by compose_group).
    inputs: List[TensorNode] = field(default_factory=list)
    outputs: List[TensorNode] = field(default_factory=list)
    #: canonical names of group-internal boundary buffers that lowering
    #: is allowed to inline (never member-internal scratch buffers).
    inline_buffers: Set[str] = field(default_factory=set)
    fused: Optional[PrimFunc] = None
    task_name: str = ""

    def __post_init__(self) -> None:
        if not self.task_name:
            extras = "".join(f"+{m.func.name}" for m in self.members if m is not self.anchor)
            self.task_name = self.anchor.name + extras

    @property
    def is_fused(self) -> bool:
        return len(self.members) > 1


@dataclass
class FusionPlan:
    """The full partition of a graph into fusion groups."""

    graph: Graph
    groups: List[FusionGroup]
    rejections: List[FusionRejection] = field(default_factory=list)

    @property
    def num_ops(self) -> int:
        return len(self.graph.ops)

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def rejection_codes(self) -> List[str]:
        return [r.code for r in self.rejections]

    def lower(self) -> List[PrimFunc]:
        """Lower every group (memoized on the group) and return the
        fused funcs aligned with ``self.groups``."""
        return [lower_group(g) for g in self.groups]

    def summary(self) -> str:
        lines = [
            f"fusion plan for {self.graph.name}: "
            f"{self.num_ops} ops -> {self.num_groups} groups"
        ]
        for g in self.groups:
            tag = "fused" if g.is_fused else "single"
            chain = " + ".join(m.kind for m in g.members)
            lines.append(f"  [{tag}] {g.task_name}: {chain}")
        for r in self.rejections:
            lines.append(f"  reject {r}")
        return "\n".join(lines)


def _single_consumer_elementwise(graph: Graph, tensor: TensorNode, claimed) -> Optional[OpNode]:
    """The unique unclaimed elementwise consumer of ``tensor``, or None."""
    consumers = graph.consumers(tensor)
    if len(consumers) != 1:
        return None
    c = consumers[0]
    if id(c) in claimed or c.kind != "elementwise":
        return None
    return c


def fuse_graph(graph: Graph, fuse: bool = True) -> FusionPlan:
    """Partition ``graph`` into fusion groups.

    With ``fuse=False`` every op becomes its own singleton group — the
    unfused comparison plan measured by the benches.
    """
    if not fuse:
        groups = [FusionGroup(graph, op, [op]) for op in graph.ops]
        return FusionPlan(graph, groups)

    claimed: Dict[int, OpNode] = {}
    rejections: List[FusionRejection] = []
    anchor_groups: Dict[int, FusionGroup] = {}

    for op in graph.ops:
        if id(op) in claimed or op.kind not in ANCHOR_KINDS:
            continue
        members: List[OpNode] = [op]
        claimed[id(op)] = op

        # Prologue: pull chains of unclaimed single-consumer elementwise
        # producers feeding this anchor (they inline *into* the anchor).
        prologue: List[OpNode] = []
        frontier = list(op.inputs)
        while frontier:
            t = frontier.pop()
            p = t.producer
            if (
                p is None
                or id(p) in claimed
                or p.kind != "elementwise"
                or len(graph.consumers(t)) != 1
            ):
                continue
            prologue.append(p)
            claimed[id(p)] = op
            frontier.extend(p.inputs)
        prologue.reverse()
        members = prologue + members

        # Epilogue: follow the single-consumer elementwise chain off the
        # anchor output while shapes stay put.
        cur = op.output
        while True:
            consumers = graph.consumers(cur)
            if not consumers:
                break
            if len(consumers) > 1:
                if any(c.kind == "elementwise" for c in consumers):
                    rejections.append(
                        FusionRejection(
                            "TIR603",
                            op.name,
                            "/".join(c.name for c in consumers),
                            f"boundary tensor {cur.name} has "
                            f"{len(consumers)} consumers",
                        )
                    )
                break
            c = consumers[0]
            if id(c) in claimed:
                break
            if c.kind != "elementwise":
                if c.kind not in ANCHOR_KINDS:
                    rejections.append(
                        FusionRejection(
                            "TIR601",
                            op.name,
                            c.name,
                            f"consumer kind {c.kind!r} is not a pure "
                            "elementwise op",
                        )
                    )
                break
            if tuple(c.output.shape) != tuple(cur.shape):
                rejections.append(
                    FusionRejection(
                        "TIR602",
                        op.name,
                        c.name,
                        f"epilogue output shape {tuple(c.output.shape)} != "
                        f"anchor output shape {tuple(cur.shape)}",
                    )
                )
                break
            members.append(c)
            claimed[id(c)] = op
            cur = c.output
        anchor_groups[id(op)] = FusionGroup(graph, op, members)

    # Leftovers (unclaimed elementwise/pad/reshape ops) become singleton
    # groups; emit every group in topological order of its first member.
    groups: List[FusionGroup] = []
    seen: Set[int] = set()
    for op in graph.ops:
        owner = claimed.get(id(op))
        if owner is None:
            groups.append(FusionGroup(graph, op, [op]))
        elif id(owner) not in seen:
            seen.add(id(owner))
            groups.append(anchor_groups[id(owner)])
    return FusionPlan(graph, groups, rejections)


def compose_group(group: FusionGroup) -> PrimFunc:
    """Concatenate the members' bodies into one PrimFunc with canonical
    positional buffer names (``in0..``/``out0..`` params, ``t0..``
    internals) so structurally identical groups share a workload key."""
    graph = group.graph
    members = group.members
    member_ids = {id(m) for m in members}

    canon: Dict[int, Buffer] = {}
    in_bufs: List[Buffer] = []
    out_bufs: List[Buffer] = []
    allocs: List[Buffer] = []
    group.inputs = []
    group.outputs = []
    group.inline_buffers = set()
    tmp = 0

    # Pass 1: canonical buffers for every boundary tensor, numbered by
    # first use in member order.
    for m in members:
        for t in m.inputs:
            if id(t) in canon:
                continue
            if t.producer is not None and id(t.producer) in member_ids:
                continue  # internal edge: named when its producer is seen
            buf = Buffer(f"in{len(in_bufs)}", t.shape, t.dtype)
            canon[id(t)] = buf
            in_bufs.append(buf)
            group.inputs.append(t)
        t = m.output
        consumers = graph.consumers(t)
        escapes = not consumers or any(id(c) not in member_ids for c in consumers)
        if escapes:
            buf = Buffer(f"out{len(out_bufs)}", t.shape, t.dtype)
            out_bufs.append(buf)
            group.outputs.append(t)
        else:
            buf = Buffer(f"t{tmp}", t.shape, t.dtype)
            tmp += 1
            allocs.append(buf)
            group.inline_buffers.add(buf.name)
        canon[id(t)] = buf

    # Pass 2: remap each member body onto the canonical buffers and
    # concatenate.  Member-internal scratch buffers keep their scope but
    # get unique canonical names (never eligible for inlining).  Loop
    # variables are uniquified across members: every member's builder
    # started numbering from scratch, and the schedule layer resolves
    # loops by name, so a composed body must not carry duplicates.
    stmts = []
    used_loop_names: Set[str] = set()
    for m in members:
        params = [m.func.buffer_map[p] for p in m.func.params]
        bmap: Dict[Buffer, Buffer] = {}
        for buf, t in zip(params[:-1], m.inputs):
            bmap[buf] = canon[id(t)]
        bmap[params[-1]] = canon[id(m.output)]
        root = m.func.body.block
        for ab in root.alloc_buffers:
            nb = Buffer(f"t{tmp}", ab.shape, ab.dtype, ab.scope)
            tmp += 1
            bmap[ab] = nb
            allocs.append(nb)
        vmap: Dict[Var, Var] = {}
        for lv in _loop_vars(root.body):
            name = lv.name
            while name in used_loop_names:
                name += "_f"
            used_loop_names.add(name)
            if name != lv.name:
                vmap[lv] = Var(name, lv.dtype)
        stmts.append(substitute(root.body, vmap, bmap))

    if len(members) == 1:
        # Singleton: the builder's func is already canonical per kind.
        return members[0].func

    param_bufs = in_bufs + out_bufs
    pvars = [Var(b.name, "handle") for b in param_bufs]
    buffer_map = dict(zip(pvars, param_bufs))
    name = "fused_" + "_".join(m.func.name for m in members)
    func = PrimFunc(pvars, buffer_map, make_root_block(seq(stmts), allocs), name)
    return func.with_attrs(op="fused", ops="+".join(m.kind for m in members))


def lower_group(group: FusionGroup) -> PrimFunc:
    """Compose the group and inline its internal elementwise stages so
    the fused body is a legal, sketchable program (memoized on the
    group)."""
    if group.fused is not None:
        return group.fused
    composed = compose_group(group)
    if len(group.members) == 1 or not group.inline_buffers:
        group.fused = composed
        return composed

    from ..schedule import Schedule, ScheduleError

    sch = Schedule(composed, record_trace=False)
    changed = True
    while changed:
        changed = False
        for rv in sch.get_blocks():
            blk = sch.block_of(rv)
            writes = {w.buffer.name for w in blk.writes}
            if not (writes & group.inline_buffers):
                continue
            try:
                sch.compute_inline(rv)
            except ScheduleError:
                continue  # reduction writers legally stay materialized
            changed = True
            break
    group.fused = sch.func
    return group.fused


def random_graph_inputs(graph: Graph, seed: int = 0):
    """Random arrays for every graph input, keyed by tensor name (the
    same distributions :func:`repro.runtime.random_args` uses)."""
    import numpy as np

    from ..tir.dtype import numpy_dtype

    rng = np.random.default_rng(seed)
    out = {}
    for t in graph.tensors:
        if t.producer is not None:
            continue
        dt = numpy_dtype(t.dtype)
        if t.dtype.startswith("float"):
            arr = rng.uniform(-1.0, 1.0, size=t.shape).astype(dt)
        elif t.dtype == "bool":
            arr = rng.integers(0, 2, size=t.shape).astype(dt)
        else:
            arr = rng.integers(-4, 5, size=t.shape).astype(dt)
        out[t.name] = arr
    return out


def _execute(specs, inputs, run_func):
    """Run ``(func, input_tensors, output_tensors)`` specs in sequence,
    threading arrays through a tensor-name environment."""
    import numpy as np

    from ..tir.dtype import numpy_dtype

    if run_func is None:
        from ..runtime import run as run_func
    env = dict(inputs)
    for func, ins, outs in specs:
        params = [func.buffer_map[p] for p in func.params]
        args = {}
        for buf, t in zip(params, ins):
            args[buf.name] = env[t.name]
        for buf, t in zip(params[len(ins):], outs):
            args[buf.name] = np.zeros(buf.shape_ints(), dtype=numpy_dtype(buf.dtype))
        run_func(func, args)
        for buf, t in zip(params[len(ins):], outs):
            env[t.name] = args[buf.name]
    return env


def run_graph(graph: Graph, inputs, run_func=None):
    """Execute the *unfused* graph op by op (the reference semantics).

    ``inputs`` maps graph-input tensor names to arrays; returns the full
    tensor-name -> array environment.  ``run_func`` defaults to the
    compiled path (:func:`repro.runtime.run`); pass
    :func:`repro.runtime.interpret` for the oracle.
    """
    specs = [(op.func, op.inputs, [op.output]) for op in graph.ops]
    return _execute(specs, inputs, run_func)


def run_plan(plan: FusionPlan, inputs, run_func=None):
    """Execute the lowered fusion groups in sequence (the fused
    semantics); returns the tensor-name -> array environment."""
    specs = [(lower_group(g), g.inputs, g.outputs) for g in plan.groups]
    return _execute(specs, inputs, run_func)


def graph_latency(
    plan: FusionPlan,
    group_latency,
    per_op_overhead: float = 0.0,
) -> float:
    """Measured end-to-end latency of a fusion plan, in seconds.

    ``group_latency`` is either a callable ``group -> seconds`` or a
    :class:`~repro.meta.session.SessionReport` whose task names match
    ``group.task_name`` (the names ``TuningSession.add_graph`` used).
    ``per_op_overhead`` charges one dispatch per *group* — fused plans
    pay it fewer times, which is the point.
    """
    if not callable(group_latency):
        report = group_latency
        group_latency = lambda g: report.seconds_for(g.task_name)  # noqa: E731
    return sum(group_latency(g) + per_op_overhead for g in plan.groups)
