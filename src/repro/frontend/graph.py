"""Minimal operator-graph layer for end-to-end evaluation (§5.2).

A network is a list of layers, each a (name, PrimFunc builder, count)
triple; end-to-end latency is the sum of per-layer latencies (each
unique layer tuned/looked-up once, multiplied by its occurrence count),
plus a per-op framework overhead for systems that launch kernels one by
one.  Systems with graph-level fusion (TensorRT-like) collapse
elementwise layers into their producers before summing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..tir import PrimFunc

__all__ = ["LayerSpec", "NetworkSpec", "network_latency"]


@dataclass(frozen=True)
class LayerSpec:
    """One layer kind in a network."""

    name: str
    builder: Callable[[], PrimFunc]
    count: int = 1
    #: elementwise layers can be fused into their producer by engines
    #: with graph-level fusion.
    fusible: bool = False


@dataclass
class NetworkSpec:
    name: str
    layers: List[LayerSpec]

    def unique_layers(self) -> List[LayerSpec]:
        return self.layers

    def total_ops(self) -> int:
        return sum(layer.count for layer in self.layers)


def network_latency(
    net: NetworkSpec,
    op_latency,
    per_op_overhead: float = 0.0,
    fuse_elementwise: bool = False,
) -> float:
    """End-to-end latency in seconds.

    ``op_latency`` maps a layer to one invocation's latency.  It is
    either a callable ``layer -> seconds`` or a tuned
    :class:`~repro.meta.session.SessionReport` whose task names match
    the layer names (the default path: tune the network once with a
    ``TuningSession``, then aggregate here).  Layers marked fusible are
    folded into their producers (zero marginal cost) when
    ``fuse_elementwise`` is set — modelling engines like TensorRT.
    """
    if not callable(op_latency):
        report = op_latency
        op_latency = lambda layer: report.seconds_for(layer.name)  # noqa: E731
    total = 0.0
    for layer in net.layers:
        if fuse_elementwise and layer.fusible:
            continue
        total += layer.count * (op_latency(layer) + per_op_overhead)
    return total
