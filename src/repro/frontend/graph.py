"""Operator-graph layer for end-to-end evaluation (§5.2).

Two representations live here:

* The legacy *layer list*: a network is a list of :class:`LayerSpec`
  (name, PrimFunc builder, count) entries and end-to-end latency is the
  per-layer sum.  ``network_latency(fuse_elementwise=True)`` used to
  *model* fusion by zero-costing fusible layers; that accounting trick
  is deprecated now that fusion is real.

* The *dataflow graph*: :class:`Graph` holds :class:`OpNode` /
  :class:`TensorNode` nodes with actual producer→consumer edges, built
  from the same ``frontend.ops`` builders.  :mod:`repro.frontend.fuse`
  partitions a graph into anchor+prologue/epilogue groups and lowers
  each group to a single fused :class:`~repro.tir.PrimFunc`, so fused
  latency comes from *measured* fused programs.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..diagnostics import DiagnosticError
from ..tir import PrimFunc, structural_hash

__all__ = [
    "LayerSpec",
    "NetworkSpec",
    "network_latency",
    "GraphError",
    "TensorNode",
    "OpNode",
    "Graph",
]


class GraphError(DiagnosticError):
    """Graph construction or fusion-legality failure (``TIR6xx``)."""

    default_code = "TIR604"


@dataclass(frozen=True)
class LayerSpec:
    """One layer kind in a network."""

    name: str
    builder: Callable[[], PrimFunc]
    count: int = 1
    #: elementwise layers can be fused into their producer by engines
    #: with graph-level fusion.
    fusible: bool = False


@dataclass
class NetworkSpec:
    name: str
    layers: List[LayerSpec]

    def unique_layers(self) -> List[LayerSpec]:
        """Layers deduplicated by workload identity (structural hash of
        the built PrimFunc); counts of merged duplicates accumulate onto
        the first occurrence."""
        order: List[str] = []
        merged: Dict[str, LayerSpec] = {}
        for layer in self.layers:
            key = "%016x" % structural_hash(layer.builder())
            if key in merged:
                prev = merged[key]
                merged[key] = replace(prev, count=prev.count + layer.count)
            else:
                order.append(key)
                merged[key] = layer
        return [merged[k] for k in order]

    def total_ops(self) -> int:
        return sum(layer.count for layer in self.layers)


def network_latency(
    net: NetworkSpec,
    op_latency,
    per_op_overhead: float = 0.0,
    fuse_elementwise: Optional[bool] = None,
    fold_fusible: bool = False,
) -> float:
    """End-to-end latency in seconds.

    ``op_latency`` maps a layer to one invocation's latency.  It is
    either a callable ``layer -> seconds`` or a tuned
    :class:`~repro.meta.session.SessionReport` whose task names match
    the layer names (the default path: tune the network once with a
    ``TuningSession``, then aggregate here).

    ``fold_fusible`` zero-costs layers marked fusible — an *accounting
    model* of a fusing engine (TensorRT-like) used for baseline rows.
    The old name for it, ``fuse_elementwise``, is deprecated: real
    measured fusion lives in :func:`repro.frontend.fuse.fuse_graph` /
    :func:`~repro.frontend.fuse.graph_latency`.
    """
    if fuse_elementwise is not None:
        warnings.warn(
            "network_latency(fuse_elementwise=...) is deprecated: it models "
            "fusion by zero-costing fusible layers. Use fold_fusible=... for "
            "the accounting model, or build a Graph and use "
            "repro.frontend.fuse.graph_latency for measured fusion.",
            DeprecationWarning,
            stacklevel=2,
        )
        fold_fusible = fuse_elementwise
    if not callable(op_latency):
        report = op_latency
        op_latency = lambda layer: report.seconds_for(layer.name)  # noqa: E731
    total = 0.0
    for layer in net.layers:
        if fold_fusible and layer.fusible:
            continue
        total += layer.count * (op_latency(layer) + per_op_overhead)
    return total


# --------------------------------------------------------------------------
# Dataflow graph
# --------------------------------------------------------------------------


@dataclass
class TensorNode:
    """One value flowing between ops (or into the graph)."""

    name: str
    shape: Tuple[int, ...]
    dtype: str
    #: the op writing this tensor; ``None`` for graph inputs/weights.
    producer: Optional["OpNode"] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TensorNode({self.name}, {self.shape}, {self.dtype})"


@dataclass
class OpNode:
    """One operator instance: a built PrimFunc wired to tensor operands."""

    name: str
    func: PrimFunc
    kind: str
    inputs: List[TensorNode]
    output: TensorNode = field(init=False)
    #: param buffer names aligned with ``inputs`` + the output param,
    #: used when composing fused bodies / running constituents.
    input_params: List[str] = field(default_factory=list)
    output_param: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        ins = ", ".join(t.name for t in self.inputs)
        return f"OpNode({self.name}: {self.kind}({ins}))"


class Graph:
    """A dataflow graph of :class:`OpNode`/:class:`TensorNode`.

    Ops are added in topological (execution) order; each op's PrimFunc
    is built once at wiring time.  By the repo-wide builder convention
    the *last* parameter of every op is its output; the given operands
    bind to the leading input parameters positionally and any remaining
    input parameters (weights, biases, ...) become fresh graph-input
    tensors automatically.
    """

    def __init__(self, name: str):
        self.name = name
        self.ops: List[OpNode] = []
        self.tensors: List[TensorNode] = []
        self._names: Dict[str, int] = {}

    # -- construction ------------------------------------------------------

    def _unique(self, name: str) -> str:
        n = self._names.get(name, 0)
        self._names[name] = n + 1
        return name if n == 0 else f"{name}#{n + 1}"

    def input(self, name: str, shape: Sequence[int], dtype: str) -> TensorNode:
        """Declare a graph input (activations or weights)."""
        t = TensorNode(self._unique(name), tuple(shape), dtype)
        self.tensors.append(t)
        return t

    def op(self, name: str, func: PrimFunc, *operands: TensorNode) -> TensorNode:
        """Wire ``func`` into the graph; returns its output tensor."""
        params = [func.buffer_map[p] for p in func.params]
        if len(params) < 1 + len(operands):
            raise GraphError(
                f"op {name!r} ({func.name}) takes {len(params) - 1} inputs, "
                f"got {len(operands)} operands",
                code="TIR604",
                func=func,
            )
        out_buf = params[-1]
        in_bufs = params[:-1]
        for operand, buf in zip(operands, in_bufs):
            if tuple(operand.shape) != buf.shape_ints() or operand.dtype != buf.dtype:
                raise GraphError(
                    f"op {name!r}: operand {operand.name} is "
                    f"{operand.dtype}{tuple(operand.shape)} but parameter "
                    f"{buf.name!r} wants {buf.dtype}{buf.shape_ints()}",
                    code="TIR604",
                    func=func,
                )
        uname = self._unique(name)
        inputs = list(operands)
        # Trailing unbound input params are weights: fresh graph inputs.
        for buf in in_bufs[len(operands):]:
            inputs.append(self.input(f"{uname}.{buf.name}", buf.shape_ints(), buf.dtype))
        node = OpNode(
            name=uname,
            func=func,
            kind=str(func.attrs.get("op", func.name)),
            inputs=inputs,
            input_params=[b.name for b in in_bufs],
            output_param=out_buf.name,
        )
        out = TensorNode(f"{uname}_out", out_buf.shape_ints(), out_buf.dtype, producer=node)
        node.output = out
        self.tensors.append(out)
        self.ops.append(node)
        return out

    # -- queries -----------------------------------------------------------

    def consumers(self, tensor: TensorNode) -> List[OpNode]:
        return [op for op in self.ops if tensor in op.inputs]

    def outputs(self) -> List[TensorNode]:
        """Tensors produced by some op but consumed by none."""
        consumed = set()
        for op in self.ops:
            consumed.update(id(t) for t in op.inputs)
        return [op.output for op in self.ops if id(op.output) not in consumed]

    def __len__(self) -> int:
        return len(self.ops)

    def summary(self) -> str:
        lines = [f"graph {self.name}: {len(self.ops)} ops"]
        for op in self.ops:
            ins = ", ".join(t.name for t in op.inputs)
            lines.append(f"  {op.output.name} = {op.kind}({ins})")
        return "\n".join(lines)
