"""Network definitions for the end-to-end evaluation (§5.2 / §5.3).

Layer tables (representative, batch 1) for the four GPU models —
ResNet-50, MobileNet-V2, BERT-large and ViT — and the int8 CPU variants.
The paper imports these models from frameworks; the evaluation only
needs the operator multiset, which we encode directly.  Spatial inputs
are pre-padded (+2 for 3x3 convs).  Elementwise/normalisation layers
are marked ``fusible``: engines with graph-level fusion (TensorRT-like)
fold them into producers.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List

from . import ops
from .graph import LayerSpec, NetworkSpec

__all__ = ["gpu_network", "cpu_network", "GPU_NETWORKS", "CPU_NETWORKS"]


def _conv(name, h, ci, co, k, count, stride=1, dtype="float16", acc=None):
    pad = h + (k - 1)
    return LayerSpec(
        name,
        partial(
            ops.conv2d, 1, pad, pad, ci, co, k, k, stride=stride, dtype=dtype,
            acc_dtype=acc, name=name,
        ),
        count,
    )


def _dep(name, h, c, k, count, stride=1, dtype="float16", acc=None):
    pad = h + (k - 1)
    return LayerSpec(
        name,
        partial(ops.depthwise_conv2d, 1, pad, pad, c, k, k, stride=stride, dtype=dtype, acc_dtype=acc),
        count,
    )


def _gemm(name, n, m, k, count, dtype="float16", acc=None):
    return LayerSpec(name, partial(ops.matmul, n, m, k, dtype=dtype, acc_dtype=acc), count)


def _bmm(name, b, n, m, k, count, dtype="float16", acc=None):
    return LayerSpec(
        name, partial(ops.batch_matmul, b, n, m, k, dtype=dtype, acc_dtype=acc), count
    )


def _ew(name, numel, count, op="relu", dtype="float16"):
    return LayerSpec(
        name, partial(ops.elementwise_unary, (numel,), op, dtype, name), count, fusible=True
    )


def _softmax(name, n, m, count):
    return LayerSpec(name, partial(ops.softmax, n, m, "float32"), count)


def _layernorm(name, n, m, count):
    return LayerSpec(name, partial(ops.layer_norm, n, m, "float32"), count, fusible=True)


def resnet50(dtype: str = "float16", acc=None) -> NetworkSpec:
    layers = [
        _conv("stem7x7", 112, 16, 64, 7, 1, dtype=dtype, acc=acc),  # 7x7/2 folded to 112 out
        _conv("c2_3x3", 56, 64, 64, 3, 3, dtype=dtype, acc=acc),
        _conv("c2_1x1_up", 56, 64, 256, 1, 3, dtype=dtype, acc=acc),
        _conv("c2_1x1_down", 56, 256, 64, 1, 3, dtype=dtype, acc=acc),
        _conv("c3_3x3", 28, 128, 128, 3, 4, dtype=dtype, acc=acc),
        _conv("c3_1x1_up", 28, 128, 512, 1, 4, dtype=dtype, acc=acc),
        _conv("c3_1x1_down", 28, 512, 128, 1, 4, dtype=dtype, acc=acc),
        _conv("c4_3x3", 14, 256, 256, 3, 6, dtype=dtype, acc=acc),
        _conv("c4_1x1_up", 14, 256, 1024, 1, 6, dtype=dtype, acc=acc),
        _conv("c4_1x1_down", 14, 1024, 256, 1, 6, dtype=dtype, acc=acc),
        _conv("c5_3x3", 7, 512, 512, 3, 3, dtype=dtype, acc=acc),
        _conv("c5_1x1_up", 7, 512, 2048, 1, 3, dtype=dtype, acc=acc),
        _conv("c5_1x1_down", 7, 2048, 512, 1, 3, dtype=dtype, acc=acc),
        _gemm("fc", 16, 1000, 2048, 1, dtype=dtype, acc=acc),
        _ew("relu56", 56 * 56 * 256, 16, dtype=dtype),
        _ew("relu28", 28 * 28 * 512, 16, dtype=dtype),
        _ew("relu14", 14 * 14 * 1024, 17, dtype=dtype),
    ]
    return NetworkSpec("ResNet-50", layers)


def mobilenet_v2(dtype: str = "float16", acc=None) -> NetworkSpec:
    layers = [
        _conv("stem", 112, 16, 32, 3, 1, stride=1, dtype=dtype, acc=acc),
        _dep("dep112", 112, 32, 3, 1, dtype=dtype, acc=acc),
        _conv("pw112", 112, 32, 16, 1, 1, dtype=dtype, acc=acc),
        _conv("exp56a", 56, 16, 96, 1, 1, dtype=dtype, acc=acc),
        _dep("dep56", 56, 96, 3, 3, dtype=dtype, acc=acc),
        _conv("proj56", 56, 96, 32, 1, 3, dtype=dtype, acc=acc),
        _conv("exp28", 28, 32, 192, 1, 3, dtype=dtype, acc=acc),
        _dep("dep28", 28, 192, 3, 3, dtype=dtype, acc=acc),
        _conv("proj28", 28, 192, 32, 1, 3, dtype=dtype, acc=acc),
        _conv("exp14", 14, 64, 384, 1, 7, dtype=dtype, acc=acc),
        _dep("dep14", 14, 384, 3, 7, dtype=dtype, acc=acc),
        _conv("proj14", 14, 384, 64, 1, 7, dtype=dtype, acc=acc),
        _conv("exp7", 7, 160, 960, 1, 3, dtype=dtype, acc=acc),
        _dep("dep7", 7, 960, 3, 3, dtype=dtype, acc=acc),
        _conv("proj7", 7, 960, 160, 1, 3, dtype=dtype, acc=acc),
        _conv("head", 7, 320, 1280, 1, 1, dtype=dtype, acc=acc),
        _gemm("fc", 16, 1000, 1280, 1, dtype=dtype, acc=acc),
        _ew("relu6_big", 112 * 112 * 96, 4, dtype=dtype),
        _ew("relu6_mid", 28 * 28 * 192, 13, dtype=dtype),
        _ew("relu6_small", 14 * 14 * 384, 17, dtype=dtype),
    ]
    return NetworkSpec("MobileNet-V2", layers)


def bert_large(dtype: str = "float16", acc=None, seq: int = 384, layers_n: int = 24) -> NetworkSpec:
    hidden, heads = 1024, 16
    head_dim = hidden // heads
    layers = [
        _gemm("qkv_out_proj", seq, hidden, hidden, 4 * layers_n, dtype=dtype, acc=acc),
        _gemm("ffn_up", seq, 4 * hidden, hidden, layers_n, dtype=dtype, acc=acc),
        _gemm("ffn_down", seq, hidden, 4 * hidden, layers_n, dtype=dtype, acc=acc),
        _bmm("attn_qk", heads, seq, seq, head_dim, layers_n, dtype=dtype, acc=acc),
        _bmm("attn_v", heads, seq, head_dim, seq, layers_n, dtype=dtype, acc=acc),
        _softmax("attn_softmax", heads * seq, seq, layers_n),
        _layernorm("layernorm", seq, hidden, 2 * layers_n),
        _ew("gelu", seq * 4 * hidden, layers_n, op="gelu", dtype=dtype),
    ]
    return NetworkSpec("BERT-large", layers)


def bert_base(dtype: str = "int8", acc="int32", seq: int = 128, layers_n: int = 12) -> NetworkSpec:
    hidden, heads = 768, 12
    head_dim = hidden // heads
    layers = [
        _gemm("qkv_out_proj", seq, hidden, hidden, 4 * layers_n, dtype=dtype, acc=acc),
        _gemm("ffn_up", seq, 4 * hidden, hidden, layers_n, dtype=dtype, acc=acc),
        _gemm("ffn_down", seq, hidden, 4 * hidden, layers_n, dtype=dtype, acc=acc),
        _bmm("attn_qk", heads, seq, seq, head_dim, layers_n, dtype=dtype, acc=acc),
        _bmm("attn_v", heads, seq, head_dim, seq, layers_n, dtype=dtype, acc=acc),
        _softmax("attn_softmax", heads * seq, seq, layers_n),
        _layernorm("layernorm", seq, hidden, 2 * layers_n),
    ]
    return NetworkSpec("BERT-base", layers)


def vit(dtype: str = "float16", acc=None, seq: int = 196, layers_n: int = 12) -> NetworkSpec:
    hidden, heads = 768, 12
    head_dim = hidden // heads
    layers = [
        _gemm("patch_embed", seq, hidden, 768, 1, dtype=dtype, acc=acc),
        _gemm("qkv_out_proj", seq, hidden, hidden, 4 * layers_n, dtype=dtype, acc=acc),
        _gemm("mlp_up", seq, 4 * hidden, hidden, layers_n, dtype=dtype, acc=acc),
        _gemm("mlp_down", seq, hidden, 4 * hidden, layers_n, dtype=dtype, acc=acc),
        _bmm("attn_qk", heads, seq, seq, head_dim, layers_n, dtype=dtype, acc=acc),
        _bmm("attn_v", heads, seq, head_dim, seq, layers_n, dtype=dtype, acc=acc),
        _softmax("attn_softmax", heads * seq, seq, layers_n),
        _layernorm("layernorm", seq, hidden, 2 * layers_n),
        _ew("gelu", seq * 4 * hidden, layers_n, op="gelu", dtype=dtype),
    ]
    return NetworkSpec("ViT", layers)


GPU_NETWORKS: Dict[str, NetworkSpec] = {}
CPU_NETWORKS: Dict[str, NetworkSpec] = {}


def gpu_network(name: str) -> NetworkSpec:
    builders = {
        "ResNet-50": lambda: resnet50(),
        "MobileNet-V2": lambda: mobilenet_v2(),
        "BERT-large": lambda: bert_large(),
        "ViT": lambda: vit(),
    }
    if name not in GPU_NETWORKS:
        GPU_NETWORKS[name] = builders[name]()
    return GPU_NETWORKS[name]


def cpu_network(name: str) -> NetworkSpec:
    builders = {
        "ResNet-50": lambda: resnet50(dtype="int8", acc="int32"),
        "MobileNet-V2": lambda: mobilenet_v2(dtype="int8", acc="int32"),
        "BERT-base": lambda: bert_base(),
    }
    if name not in CPU_NETWORKS:
        CPU_NETWORKS[name] = builders[name]()
    return CPU_NETWORKS[name]
