"""Network definitions for the end-to-end evaluation (§5.2 / §5.3).

Layer tables (representative, batch 1) for the four GPU models —
ResNet-50, MobileNet-V2, BERT-large and ViT — and the int8 CPU variants.
The paper imports these models from frameworks; the evaluation only
needs the operator multiset, which we encode directly.  Spatial inputs
are pre-padded (+2 for 3x3 convs).  Elementwise/normalisation layers
are marked ``fusible``: engines with graph-level fusion (TensorRT-like)
fold them into producers.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from . import ops
from .graph import Graph, LayerSpec, NetworkSpec, TensorNode

__all__ = [
    "gpu_network",
    "cpu_network",
    "GPU_NETWORKS",
    "CPU_NETWORKS",
    "resnet50_graph",
    "mobilenet_v2_graph",
    "bert_large_graph",
    "bert_base_graph",
    "vit_graph",
    "gpu_graph",
    "cpu_graph",
    "GPU_GRAPHS",
    "CPU_GRAPHS",
]


def _conv(name, h, ci, co, k, count, stride=1, dtype="float16", acc=None):
    pad = h + (k - 1)
    return LayerSpec(
        name,
        partial(
            ops.conv2d, 1, pad, pad, ci, co, k, k, stride=stride, dtype=dtype,
            acc_dtype=acc, name=name,
        ),
        count,
    )


def _dep(name, h, c, k, count, stride=1, dtype="float16", acc=None):
    pad = h + (k - 1)
    return LayerSpec(
        name,
        partial(ops.depthwise_conv2d, 1, pad, pad, c, k, k, stride=stride, dtype=dtype, acc_dtype=acc),
        count,
    )


def _gemm(name, n, m, k, count, dtype="float16", acc=None):
    return LayerSpec(name, partial(ops.matmul, n, m, k, dtype=dtype, acc_dtype=acc), count)


def _bmm(name, b, n, m, k, count, dtype="float16", acc=None):
    return LayerSpec(
        name, partial(ops.batch_matmul, b, n, m, k, dtype=dtype, acc_dtype=acc), count
    )


def _ew(name, numel, count, op="relu", dtype="float16"):
    return LayerSpec(
        name, partial(ops.elementwise_unary, (numel,), op, dtype, name), count, fusible=True
    )


def _softmax(name, n, m, count):
    return LayerSpec(name, partial(ops.softmax, n, m, "float32"), count)


def _layernorm(name, n, m, count):
    return LayerSpec(name, partial(ops.layer_norm, n, m, "float32"), count, fusible=True)


def resnet50(dtype: str = "float16", acc=None) -> NetworkSpec:
    layers = [
        _conv("stem7x7", 112, 16, 64, 7, 1, dtype=dtype, acc=acc),  # 7x7/2 folded to 112 out
        _conv("c2_3x3", 56, 64, 64, 3, 3, dtype=dtype, acc=acc),
        _conv("c2_1x1_up", 56, 64, 256, 1, 3, dtype=dtype, acc=acc),
        _conv("c2_1x1_down", 56, 256, 64, 1, 3, dtype=dtype, acc=acc),
        _conv("c3_3x3", 28, 128, 128, 3, 4, dtype=dtype, acc=acc),
        _conv("c3_1x1_up", 28, 128, 512, 1, 4, dtype=dtype, acc=acc),
        _conv("c3_1x1_down", 28, 512, 128, 1, 4, dtype=dtype, acc=acc),
        _conv("c4_3x3", 14, 256, 256, 3, 6, dtype=dtype, acc=acc),
        _conv("c4_1x1_up", 14, 256, 1024, 1, 6, dtype=dtype, acc=acc),
        _conv("c4_1x1_down", 14, 1024, 256, 1, 6, dtype=dtype, acc=acc),
        _conv("c5_3x3", 7, 512, 512, 3, 3, dtype=dtype, acc=acc),
        _conv("c5_1x1_up", 7, 512, 2048, 1, 3, dtype=dtype, acc=acc),
        _conv("c5_1x1_down", 7, 2048, 512, 1, 3, dtype=dtype, acc=acc),
        _gemm("fc", 16, 1000, 2048, 1, dtype=dtype, acc=acc),
        _ew("relu56", 56 * 56 * 256, 16, dtype=dtype),
        _ew("relu28", 28 * 28 * 512, 16, dtype=dtype),
        _ew("relu14", 14 * 14 * 1024, 17, dtype=dtype),
    ]
    return NetworkSpec("ResNet-50", layers)


def mobilenet_v2(dtype: str = "float16", acc=None) -> NetworkSpec:
    layers = [
        _conv("stem", 112, 16, 32, 3, 1, stride=1, dtype=dtype, acc=acc),
        _dep("dep112", 112, 32, 3, 1, dtype=dtype, acc=acc),
        _conv("pw112", 112, 32, 16, 1, 1, dtype=dtype, acc=acc),
        _conv("exp56a", 56, 16, 96, 1, 1, dtype=dtype, acc=acc),
        _dep("dep56", 56, 96, 3, 3, dtype=dtype, acc=acc),
        _conv("proj56", 56, 96, 32, 1, 3, dtype=dtype, acc=acc),
        _conv("exp28", 28, 32, 192, 1, 3, dtype=dtype, acc=acc),
        _dep("dep28", 28, 192, 3, 3, dtype=dtype, acc=acc),
        _conv("proj28", 28, 192, 32, 1, 3, dtype=dtype, acc=acc),
        _conv("exp14", 14, 64, 384, 1, 7, dtype=dtype, acc=acc),
        _dep("dep14", 14, 384, 3, 7, dtype=dtype, acc=acc),
        _conv("proj14", 14, 384, 64, 1, 7, dtype=dtype, acc=acc),
        _conv("exp7", 7, 160, 960, 1, 3, dtype=dtype, acc=acc),
        _dep("dep7", 7, 960, 3, 3, dtype=dtype, acc=acc),
        _conv("proj7", 7, 960, 160, 1, 3, dtype=dtype, acc=acc),
        _conv("head", 7, 320, 1280, 1, 1, dtype=dtype, acc=acc),
        _gemm("fc", 16, 1000, 1280, 1, dtype=dtype, acc=acc),
        _ew("relu6_big", 112 * 112 * 96, 4, dtype=dtype),
        _ew("relu6_mid", 28 * 28 * 192, 13, dtype=dtype),
        _ew("relu6_small", 14 * 14 * 384, 17, dtype=dtype),
    ]
    return NetworkSpec("MobileNet-V2", layers)


def bert_large(dtype: str = "float16", acc=None, seq: int = 384, layers_n: int = 24) -> NetworkSpec:
    hidden, heads = 1024, 16
    head_dim = hidden // heads
    layers = [
        _gemm("qkv_out_proj", seq, hidden, hidden, 4 * layers_n, dtype=dtype, acc=acc),
        _gemm("ffn_up", seq, 4 * hidden, hidden, layers_n, dtype=dtype, acc=acc),
        _gemm("ffn_down", seq, hidden, 4 * hidden, layers_n, dtype=dtype, acc=acc),
        _bmm("attn_qk", heads, seq, seq, head_dim, layers_n, dtype=dtype, acc=acc),
        _bmm("attn_v", heads, seq, head_dim, seq, layers_n, dtype=dtype, acc=acc),
        _softmax("attn_softmax", heads * seq, seq, layers_n),
        _layernorm("layernorm", seq, hidden, 2 * layers_n),
        _ew("gelu", seq * 4 * hidden, layers_n, op="gelu", dtype=dtype),
    ]
    return NetworkSpec("BERT-large", layers)


def bert_base(dtype: str = "int8", acc="int32", seq: int = 128, layers_n: int = 12) -> NetworkSpec:
    hidden, heads = 768, 12
    head_dim = hidden // heads
    layers = [
        _gemm("qkv_out_proj", seq, hidden, hidden, 4 * layers_n, dtype=dtype, acc=acc),
        _gemm("ffn_up", seq, 4 * hidden, hidden, layers_n, dtype=dtype, acc=acc),
        _gemm("ffn_down", seq, hidden, 4 * hidden, layers_n, dtype=dtype, acc=acc),
        _bmm("attn_qk", heads, seq, seq, head_dim, layers_n, dtype=dtype, acc=acc),
        _bmm("attn_v", heads, seq, head_dim, seq, layers_n, dtype=dtype, acc=acc),
        _softmax("attn_softmax", heads * seq, seq, layers_n),
        _layernorm("layernorm", seq, hidden, 2 * layers_n),
    ]
    return NetworkSpec("BERT-base", layers)


def vit(dtype: str = "float16", acc=None, seq: int = 196, layers_n: int = 12) -> NetworkSpec:
    hidden, heads = 768, 12
    head_dim = hidden // heads
    layers = [
        _gemm("patch_embed", seq, hidden, 768, 1, dtype=dtype, acc=acc),
        _gemm("qkv_out_proj", seq, hidden, hidden, 4 * layers_n, dtype=dtype, acc=acc),
        _gemm("mlp_up", seq, 4 * hidden, hidden, layers_n, dtype=dtype, acc=acc),
        _gemm("mlp_down", seq, hidden, 4 * hidden, layers_n, dtype=dtype, acc=acc),
        _bmm("attn_qk", heads, seq, seq, head_dim, layers_n, dtype=dtype, acc=acc),
        _bmm("attn_v", heads, seq, head_dim, seq, layers_n, dtype=dtype, acc=acc),
        _softmax("attn_softmax", heads * seq, seq, layers_n),
        _layernorm("layernorm", seq, hidden, 2 * layers_n),
        _ew("gelu", seq * 4 * hidden, layers_n, op="gelu", dtype=dtype),
    ]
    return NetworkSpec("ViT", layers)


# --------------------------------------------------------------------------
# Dataflow-graph builders
#
# The same networks as real producer→consumer graphs.  Compute layers
# (conv/matmul/softmax/layer_norm) are wired through the elementwise
# glue — bias adds, activations, residual adds, requantisation casts —
# that :func:`repro.frontend.fuse.fuse_graph` folds into its anchors.
# Shape parameters are overridable so tests can build miniature
# instances with the identical topology.
# --------------------------------------------------------------------------


def _requant(g: Graph, t: TensorNode, dtype: str, acc: Optional[str]) -> TensorNode:
    """Scale/clamp/narrow an integer accumulator back to the network
    dtype (a cast for float accumulators)."""
    if acc is None or acc == dtype:
        return t
    if acc.startswith("int") and dtype.startswith("int"):
        return g.op("requant", ops.requantize(t.shape, acc, dtype), t)
    return g.op("requant", ops.cast_to(t.shape, acc, dtype), t)


def _act(g: Graph, t: TensorNode, op: str) -> TensorNode:
    return g.op(op, ops.elementwise(t.shape, op, t.dtype), t)


def _bottleneck(g, x, h, c_out, c_mid, dtype, acc):
    """ResNet bottleneck: 1x1 down → 3x3 → 1x1 up, residual, relus."""
    t = g.op("reduce1x1", ops.conv2d(1, h, h, c_out, c_mid, 1, 1, dtype=dtype, acc_dtype=acc), x)
    t = _act(g, _requant(g, t, dtype, acc), "relu")
    t = g.op("pad", ops.pad2d(1, h, h, c_mid, 1, dtype=dtype), t)
    t = g.op("conv3x3", ops.conv2d(1, h + 2, h + 2, c_mid, c_mid, 3, 3, dtype=dtype, acc_dtype=acc), t)
    t = _act(g, _requant(g, t, dtype, acc), "relu")
    t = g.op("expand1x1", ops.conv2d(1, h, h, c_mid, c_out, 1, 1, dtype=dtype, acc_dtype=acc), t)
    t = _requant(g, t, dtype, acc)
    t = g.op("residual", ops.add(t.shape, dtype), t, x)
    return _act(g, t, "relu")


def resnet50_graph(
    dtype: str = "float16",
    acc: Optional[str] = None,
    stages: Sequence[Tuple[int, int, int, int]] = (
        (56, 64, 256, 3),
        (28, 128, 512, 4),
        (14, 256, 1024, 6),
        (7, 512, 2048, 3),
    ),
    stem: Tuple[int, int, int] = (112, 16, 64),
) -> Graph:
    """ResNet-50 as a dataflow graph: stem + bottleneck stages.

    ``stages`` rows are ``(h, c_mid, c_out, blocks)``; each stage opens
    with a stride-2 1x1 projection from the previous resolution.
    """
    g = Graph("ResNet-50")
    sh, sc, sco = stem
    x = g.input("x", (1, sh + 6, sh + 6, sc), dtype)
    t = g.op("stem7x7", ops.conv2d(1, sh + 6, sh + 6, sc, sco, 7, 7, dtype=dtype, acc_dtype=acc), x)
    t = _act(g, _requant(g, t, dtype, acc), "relu")
    prev_h, prev_c = sh, sco
    for h, c_mid, c_out, blocks in stages:
        stride = max(1, prev_h // h)
        t = g.op(
            "proj",
            ops.conv2d(1, prev_h, prev_h, prev_c, c_out, 1, 1, stride=stride, dtype=dtype, acc_dtype=acc),
            t,
        )
        t = _requant(g, t, dtype, acc)
        for _ in range(blocks):
            t = _bottleneck(g, t, h, c_out, c_mid, dtype, acc)
        prev_h, prev_c = h, c_out
    return g


def _inverted_residual(g, x, h, c_in, c_exp, c_out, stride, dtype, acc):
    """MobileNet-V2 block: 1x1 expand → 3x3 depthwise → 1x1 project."""
    t = g.op("expand", ops.conv2d(1, h, h, c_in, c_exp, 1, 1, dtype=dtype, acc_dtype=acc), x)
    t = _act(g, _requant(g, t, dtype, acc), "relu6")
    t = g.op("pad", ops.pad2d(1, h, h, c_exp, 1, dtype=dtype), t)
    t = g.op(
        "depthwise",
        ops.depthwise_conv2d(1, h + 2, h + 2, c_exp, 3, 3, stride=stride, dtype=dtype, acc_dtype=acc),
        t,
    )
    t = _act(g, _requant(g, t, dtype, acc), "relu6")
    out_h = (h + 2 - 3) // stride + 1
    t = g.op("project", ops.conv2d(1, out_h, out_h, c_exp, c_out, 1, 1, dtype=dtype, acc_dtype=acc), t)
    t = _requant(g, t, dtype, acc)
    if stride == 1 and c_in == c_out:
        t = g.op("residual", ops.add(t.shape, dtype), t, x)
    return t


def mobilenet_v2_graph(
    dtype: str = "float16",
    acc: Optional[str] = None,
    stages: Sequence[Tuple[int, int, int, int, int, int]] = (
        # (h_in, c_in, c_exp, c_out, blocks, first-block stride)
        (112, 32, 96, 24, 2, 2),
        (56, 24, 144, 32, 3, 2),
        (28, 32, 192, 64, 4, 2),
        (14, 64, 384, 96, 3, 1),
        (14, 96, 576, 160, 3, 2),
        (7, 160, 960, 320, 1, 1),
    ),
    stem_c: int = 32,
) -> Graph:
    """MobileNet-V2 as a dataflow graph of inverted-residual blocks."""
    g = Graph("MobileNet-V2")
    h0 = stages[0][0]
    x = g.input("x", (1, h0 + 2, h0 + 2, 16), dtype)
    t = g.op("stem", ops.conv2d(1, h0 + 2, h0 + 2, 16, stem_c, 3, 3, dtype=dtype, acc_dtype=acc), x)
    t = _act(g, _requant(g, t, dtype, acc), "relu6")
    for h, c_in, c_exp, c_out, blocks, stride in stages:
        t = _inverted_residual(g, t, h, c_in, c_exp, c_out, stride, dtype, acc)
        out_h = (h + 2 - 3) // stride + 1
        for _ in range(blocks - 1):
            t = _inverted_residual(g, t, out_h, c_out, c_exp, c_out, 1, dtype, acc)
    return g


def _layer_norm_op(g, x, n, m, dtype):
    """layer_norm, bracketed by casts for integer dtypes (quantised
    networks normalise in float; the casts fuse as prologue/epilogue)."""
    if dtype.startswith("int"):
        t = g.op("ln_in", ops.cast_to((n, m), dtype, "float32"), x)
        t = g.op("layer_norm", ops.layer_norm(n, m, "float32"), t)
        return g.op("ln_out", ops.cast_to((n, m), "float32", dtype), t)
    return g.op("layer_norm", ops.layer_norm(n, m, dtype), x)


def _proj(g, x, name, n, m, k, dtype, acc, activation=None):
    """Linear layer: matmul anchor + requant/bias(+activation) epilogue."""
    t = g.op(name, ops.matmul(n, m, k, dtype=dtype, acc_dtype=acc), x)
    t = _requant(g, t, dtype, acc)
    return g.op(f"{name}_bias", ops.bias_add((n, m), dtype, activation=activation), t)


def _transformer_layer(g, x, seq, hidden, heads, dtype, acc, mlp_ratio=4):
    dhead = hidden // heads
    sm_dtype = "float32"
    acc_eff = acc or dtype
    q = _proj(g, x, "q_proj", seq, hidden, hidden, dtype, acc)
    k = _proj(g, x, "k_proj", seq, hidden, hidden, dtype, acc)
    v = _proj(g, x, "v_proj", seq, hidden, hidden, dtype, acc)
    qh = g.op("split_q", ops.split_heads(seq, heads, dhead, dtype), q)
    kt = g.op("split_k", ops.split_heads(seq, heads, dhead, dtype, transpose=True), k)
    vh = g.op("split_v", ops.split_heads(seq, heads, dhead, dtype), v)
    s = g.op("attn_qk", ops.batch_matmul(heads, seq, seq, dhead, dtype=dtype, acc_dtype=acc), qh, kt)
    if acc_eff != sm_dtype:
        s = g.op("scores", ops.cast_to((heads, seq, seq), acc_eff, sm_dtype), s)
    p = g.op("attn_softmax", ops.batch_softmax(heads, seq, seq, sm_dtype), s)
    if dtype != sm_dtype:
        p = g.op("probs", ops.cast_to((heads, seq, seq), sm_dtype, dtype), p)
    a = g.op("attn_v", ops.batch_matmul(heads, seq, dhead, seq, dtype=dtype, acc_dtype=acc), p, vh)
    a = _requant(g, a, dtype, acc)
    m = g.op("merge", ops.merge_heads(heads, seq, dhead, dtype), a)
    o = _proj(g, m, "out_proj", seq, hidden, hidden, dtype, acc)
    o = g.op("resid_attn", ops.add((seq, hidden), dtype), o, x)
    ln1 = _layer_norm_op(g, o, seq, hidden, dtype)
    # Quantised FFNs activate with relu; float ones with gelu.
    act = "relu" if dtype.startswith("int") else "gelu"
    u = _proj(g, ln1, "ffn_up", seq, mlp_ratio * hidden, hidden, dtype, acc, activation=act)
    d = _proj(g, u, "ffn_down", seq, hidden, mlp_ratio * hidden, dtype, acc)
    d = g.op("resid_ffn", ops.add((seq, hidden), dtype), d, ln1)
    return _layer_norm_op(g, d, seq, hidden, dtype)


def bert_large_graph(
    dtype: str = "float16",
    acc: Optional[str] = None,
    seq: int = 384,
    hidden: int = 1024,
    heads: int = 16,
    layers_n: int = 24,
) -> Graph:
    g = Graph("BERT-large")
    t = g.input("x", (seq, hidden), dtype)
    for _ in range(layers_n):
        t = _transformer_layer(g, t, seq, hidden, heads, dtype, acc)
    return g


def bert_base_graph(
    dtype: str = "int8",
    acc: Optional[str] = "int32",
    seq: int = 128,
    hidden: int = 768,
    heads: int = 12,
    layers_n: int = 12,
) -> Graph:
    g = Graph("BERT-base")
    t = g.input("x", (seq, hidden), dtype)
    for _ in range(layers_n):
        t = _transformer_layer(g, t, seq, hidden, heads, dtype, acc)
    return g


def vit_graph(
    dtype: str = "float16",
    acc: Optional[str] = None,
    seq: int = 196,
    hidden: int = 768,
    heads: int = 12,
    layers_n: int = 12,
    patch_dim: int = 768,
    classes: int = 1000,
) -> Graph:
    g = Graph("ViT")
    x = g.input("patches", (seq, patch_dim), dtype)
    t = _proj(g, x, "patch_embed", seq, hidden, patch_dim, dtype, acc)
    for _ in range(layers_n):
        t = _transformer_layer(g, t, seq, hidden, heads, dtype, acc)
    t = _proj(g, t, "head", seq, classes, hidden, dtype, acc)
    return g


GPU_GRAPHS: Dict[str, Graph] = {}
CPU_GRAPHS: Dict[str, Graph] = {}


def gpu_graph(name: str) -> Graph:
    """The fig. 12 networks as dataflow graphs (float16), cached."""
    builders = {
        "ResNet-50": resnet50_graph,
        "MobileNet-V2": mobilenet_v2_graph,
        "BERT-large": bert_large_graph,
        "ViT": vit_graph,
    }
    if name not in GPU_GRAPHS:
        GPU_GRAPHS[name] = builders[name]()
    return GPU_GRAPHS[name]


def cpu_graph(name: str) -> Graph:
    """The fig. 14 networks as dataflow graphs (int8/int32), cached."""
    builders = {
        "ResNet-50": lambda: resnet50_graph(dtype="int8", acc="int32"),
        "MobileNet-V2": lambda: mobilenet_v2_graph(dtype="int8", acc="int32"),
        "BERT-base": bert_base_graph,
    }
    if name not in CPU_GRAPHS:
        CPU_GRAPHS[name] = builders[name]()
    return CPU_GRAPHS[name]


GPU_NETWORKS: Dict[str, NetworkSpec] = {}
CPU_NETWORKS: Dict[str, NetworkSpec] = {}


def gpu_network(name: str) -> NetworkSpec:
    builders = {
        "ResNet-50": lambda: resnet50(),
        "MobileNet-V2": lambda: mobilenet_v2(),
        "BERT-large": lambda: bert_large(),
        "ViT": lambda: vit(),
    }
    if name not in GPU_NETWORKS:
        GPU_NETWORKS[name] = builders[name]()
    return GPU_NETWORKS[name]


def cpu_network(name: str) -> NetworkSpec:
    builders = {
        "ResNet-50": lambda: resnet50(dtype="int8", acc="int32"),
        "MobileNet-V2": lambda: mobilenet_v2(dtype="int8", acc="int32"),
        "BERT-base": lambda: bert_base(),
    }
    if name not in CPU_NETWORKS:
        CPU_NETWORKS[name] = builders[name]()
    return CPU_NETWORKS[name]
