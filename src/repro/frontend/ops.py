"""Operator library: TensorIR builders for the paper's workload set.

Each function returns a :class:`~repro.tir.PrimFunc` in the canonical
block form (one einsum block + optional elementwise stages).  Inputs are
assumed pre-padded (padding is folded into the input shape, the usual
convention for single-operator benchmarking); strides and dilations
appear in the access expressions exactly as in §4.2's Conv2D example.

The operator set matches §5.1: C1D, C2D, C3D, DEP, DIL, GMM, GRP, T2D,
plus the elementwise/normalisation ops the end-to-end networks need.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..tir import Cast, IRBuilder, PrimFunc, Select, call, const, logical_and, max_expr, min_expr
from .shapes import shape_parametric

__all__ = [
    "matmul",
    "batch_matmul",
    "conv1d",
    "conv2d",
    "conv3d",
    "depthwise_conv2d",
    "group_conv2d",
    "conv2d_transposed",
    "elementwise_unary",
    "elementwise",
    "bias_add",
    "requantize",
    "add",
    "cast_to",
    "pad2d",
    "batch_softmax",
    "split_heads",
    "merge_heads",
    "bias_add_relu",
    "softmax",
    "layer_norm",
]


def _acc_mul(dtype: str, acc_dtype: str, a, b):
    """a*b promoted into the accumulator dtype (int8 -> int32 etc.)."""
    if dtype == acc_dtype:
        return a * b
    return Cast(acc_dtype, a) * Cast(acc_dtype, b)


@shape_parametric(dims=("n", "m", "k"))
def matmul(
    n: int, m: int, k: int, dtype: str = "float16", acc_dtype: Optional[str] = None
) -> PrimFunc:
    """GMM: C[n, m] = sum_k A[n, k] * B[k, m]."""
    acc_dtype = acc_dtype or dtype
    b = IRBuilder("matmul")
    A = b.arg_buffer("A", (n, k), dtype)
    B = b.arg_buffer("B", (k, m), dtype)
    C = b.arg_buffer("C", (n, m), acc_dtype)
    with b.grid(n, m, k) as (i, j, kk):
        with b.block("C") as blk:
            vi = blk.spatial(n, i)
            vj = blk.spatial(m, j)
            vk = blk.reduce(k, kk)
            with blk.init():
                b.store(C, (vi, vj), const(0, acc_dtype))
            b.store(C, (vi, vj), C[vi, vj] + _acc_mul(dtype, acc_dtype, A[vi, vk], B[vk, vj]))
    return b.finish().with_attrs(op="matmul")


@shape_parametric(dims=("batch", "n", "m", "k"))
def batch_matmul(
    batch: int, n: int, m: int, k: int, dtype: str = "float16", acc_dtype: Optional[str] = None
) -> PrimFunc:
    acc_dtype = acc_dtype or dtype
    b = IRBuilder("batch_matmul")
    A = b.arg_buffer("A", (batch, n, k), dtype)
    B = b.arg_buffer("B", (batch, k, m), dtype)
    C = b.arg_buffer("C", (batch, n, m), acc_dtype)
    with b.grid(batch, n, m, k, names=["b", "i", "j", "r"]) as (vb_, i, j, kk):
        with b.block("C") as blk:
            vb = blk.spatial(batch, vb_)
            vi = blk.spatial(n, i)
            vj = blk.spatial(m, j)
            vk = blk.reduce(k, kk)
            with blk.init():
                b.store(C, (vb, vi, vj), const(0, acc_dtype))
            b.store(
                C,
                (vb, vi, vj),
                C[vb, vi, vj] + _acc_mul(dtype, acc_dtype, A[vb, vi, vk], B[vb, vk, vj]),
            )
    return b.finish().with_attrs(op="batch_matmul")


@shape_parametric(dims=("n", "length"))
def conv1d(
    n: int,
    length: int,
    ci: int,
    co: int,
    kernel: int,
    stride: int = 1,
    dtype: str = "float16",
    acc_dtype: Optional[str] = None,
) -> PrimFunc:
    """C1D over pre-padded NWC input."""
    acc_dtype = acc_dtype or dtype
    out_l = (length - kernel) // stride + 1
    b = IRBuilder("conv1d")
    A = b.arg_buffer("A", (n, length, ci), dtype)
    W = b.arg_buffer("W", (kernel, ci, co), dtype)
    C = b.arg_buffer("C", (n, out_l, co), acc_dtype)
    with b.grid(n, out_l, co, kernel, ci, names=["n", "l", "f", "r", "c"]) as (
        vn_,
        vl_,
        vf_,
        vr_,
        vc_,
    ):
        with b.block("C") as blk:
            vn = blk.spatial(n, vn_)
            vl = blk.spatial(out_l, vl_)
            vco = blk.spatial(co, vf_)
            vr = blk.reduce(kernel, vr_)
            vci = blk.reduce(ci, vc_)
            with blk.init():
                b.store(C, (vn, vl, vco), const(0, acc_dtype))
            b.store(
                C,
                (vn, vl, vco),
                C[vn, vl, vco]
                + _acc_mul(dtype, acc_dtype, A[vn, vl * stride + vr, vci], W[vr, vci, vco]),
            )
    return b.finish().with_attrs(op="conv1d")


@shape_parametric(dims=("n", "h", "w"))
def conv2d(
    n: int,
    h: int,
    w: int,
    ci: int,
    co: int,
    kh: int,
    kw: int,
    stride: int = 1,
    dilation: int = 1,
    dtype: str = "float16",
    acc_dtype: Optional[str] = None,
    name: str = "conv2d",
) -> PrimFunc:
    """C2D / DIL over pre-padded NHWC input (h, w are *input* sizes)."""
    acc_dtype = acc_dtype or dtype
    out_h = (h - (kh - 1) * dilation - 1) // stride + 1
    out_w = (w - (kw - 1) * dilation - 1) // stride + 1
    b = IRBuilder(name)
    A = b.arg_buffer("A", (n, h, w, ci), dtype)
    W = b.arg_buffer("W", (kh, kw, ci, co), dtype)
    C = b.arg_buffer("C", (n, out_h, out_w, co), acc_dtype)
    with b.grid(
        n, out_h, out_w, co, kh, kw, ci, names=["n", "i", "j", "f", "r", "s", "c"]
    ) as (vn_, vi_, vj_, vf_, vr_, vs_, vc_):
        with b.block("C") as blk:
            vn = blk.spatial(n, vn_)
            vh = blk.spatial(out_h, vi_)
            vw = blk.spatial(out_w, vj_)
            vco = blk.spatial(co, vf_)
            vrh = blk.reduce(kh, vr_)
            vrw = blk.reduce(kw, vs_)
            vci = blk.reduce(ci, vc_)
            with blk.init():
                b.store(C, (vn, vh, vw, vco), const(0, acc_dtype))
            b.store(
                C,
                (vn, vh, vw, vco),
                C[vn, vh, vw, vco]
                + _acc_mul(
                    dtype,
                    acc_dtype,
                    A[vn, vh * stride + vrh * dilation, vw * stride + vrw * dilation, vci],
                    W[vrh, vrw, vci, vco],
                ),
            )
    return b.finish().with_attrs(op="conv2d")


@shape_parametric(dims=("n", "d", "h", "w"))
def conv3d(
    n: int,
    d: int,
    h: int,
    w: int,
    ci: int,
    co: int,
    kd: int,
    kh: int,
    kw: int,
    stride: int = 1,
    dtype: str = "float16",
    acc_dtype: Optional[str] = None,
) -> PrimFunc:
    """C3D over pre-padded NDHWC input."""
    acc_dtype = acc_dtype or dtype
    out_d = (d - kd) // stride + 1
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    b = IRBuilder("conv3d")
    A = b.arg_buffer("A", (n, d, h, w, ci), dtype)
    W = b.arg_buffer("W", (kd, kh, kw, ci, co), dtype)
    C = b.arg_buffer("C", (n, out_d, out_h, out_w, co), acc_dtype)
    with b.grid(
        n,
        out_d,
        out_h,
        out_w,
        co,
        kd,
        kh,
        kw,
        ci,
        names=["n", "z", "i", "j", "f", "q", "r", "s", "c"],
    ) as (vn_, vz_, vi_, vj_, vf_, vq_, vr_, vs_, vc_):
        with b.block("C") as blk:
            vn = blk.spatial(n, vn_)
            vd = blk.spatial(out_d, vz_)
            vh = blk.spatial(out_h, vi_)
            vw = blk.spatial(out_w, vj_)
            vco = blk.spatial(co, vf_)
            vrd = blk.reduce(kd, vq_)
            vrh = blk.reduce(kh, vr_)
            vrw = blk.reduce(kw, vs_)
            vci = blk.reduce(ci, vc_)
            with blk.init():
                b.store(C, (vn, vd, vh, vw, vco), const(0, acc_dtype))
            b.store(
                C,
                (vn, vd, vh, vw, vco),
                C[vn, vd, vh, vw, vco]
                + _acc_mul(
                    dtype,
                    acc_dtype,
                    A[vn, vd * stride + vrd, vh * stride + vrh, vw * stride + vrw, vci],
                    W[vrd, vrh, vrw, vci, vco],
                ),
            )
    return b.finish().with_attrs(op="conv3d")


@shape_parametric(dims=("n", "h", "w"))
def depthwise_conv2d(
    n: int,
    h: int,
    w: int,
    c: int,
    kh: int,
    kw: int,
    stride: int = 1,
    dtype: str = "float16",
    acc_dtype: Optional[str] = None,
) -> PrimFunc:
    """DEP: each channel convolved with its own filter (χ(c)=(1,1,1):
    no matmul-intrinsic mapping exists — stays on the scalar pipeline)."""
    acc_dtype = acc_dtype or dtype
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    b = IRBuilder("depthwise_conv2d")
    A = b.arg_buffer("A", (n, h, w, c), dtype)
    W = b.arg_buffer("W", (kh, kw, c), dtype)
    C = b.arg_buffer("C", (n, out_h, out_w, c), acc_dtype)
    with b.grid(n, out_h, out_w, c, kh, kw, names=["n", "i", "j", "f", "r", "s"]) as (
        vn_,
        vi_,
        vj_,
        vf_,
        vr_,
        vs_,
    ):
        with b.block("C") as blk:
            vn = blk.spatial(n, vn_)
            vh = blk.spatial(out_h, vi_)
            vw = blk.spatial(out_w, vj_)
            vc = blk.spatial(c, vf_)
            vrh = blk.reduce(kh, vr_)
            vrw = blk.reduce(kw, vs_)
            with blk.init():
                b.store(C, (vn, vh, vw, vc), const(0, acc_dtype))
            b.store(
                C,
                (vn, vh, vw, vc),
                C[vn, vh, vw, vc]
                + _acc_mul(
                    dtype,
                    acc_dtype,
                    A[vn, vh * stride + vrh, vw * stride + vrw, vc],
                    W[vrh, vrw, vc],
                ),
            )
    return b.finish().with_attrs(op="depthwise_conv2d")


@shape_parametric(dims=("n", "h", "w"))
def group_conv2d(
    n: int,
    h: int,
    w: int,
    ci: int,
    co: int,
    kh: int,
    kw: int,
    groups: int,
    stride: int = 1,
    dtype: str = "float16",
    acc_dtype: Optional[str] = None,
) -> PrimFunc:
    """GRP: grouped convolution — the group axis appears in every
    operand and stays outside the tensorized tile."""
    acc_dtype = acc_dtype or dtype
    assert ci % groups == 0 and co % groups == 0
    cig, cog = ci // groups, co // groups
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    b = IRBuilder("group_conv2d")
    A = b.arg_buffer("A", (n, h, w, groups, cig), dtype)
    W = b.arg_buffer("W", (kh, kw, groups, cig, cog), dtype)
    C = b.arg_buffer("C", (n, out_h, out_w, groups, cog), acc_dtype)
    with b.grid(
        n,
        out_h,
        out_w,
        groups,
        cog,
        kh,
        kw,
        cig,
        names=["n", "i", "j", "g", "f", "r", "s", "c"],
    ) as (vn_, vi_, vj_, vg_, vf_, vr_, vs_, vc_):
        with b.block("C") as blk:
            vn = blk.spatial(n, vn_)
            vh = blk.spatial(out_h, vi_)
            vw = blk.spatial(out_w, vj_)
            vg = blk.spatial(groups, vg_)
            vco = blk.spatial(cog, vf_)
            vrh = blk.reduce(kh, vr_)
            vrw = blk.reduce(kw, vs_)
            vci = blk.reduce(cig, vc_)
            with blk.init():
                b.store(C, (vn, vh, vw, vg, vco), const(0, acc_dtype))
            b.store(
                C,
                (vn, vh, vw, vg, vco),
                C[vn, vh, vw, vg, vco]
                + _acc_mul(
                    dtype,
                    acc_dtype,
                    A[vn, vh * stride + vrh, vw * stride + vrw, vg, vci],
                    W[vrh, vrw, vg, vci, vco],
                ),
            )
    return b.finish().with_attrs(op="group_conv2d")


@shape_parametric(dims=("n", "h", "w"))
def conv2d_transposed(
    n: int,
    h: int,
    w: int,
    ci: int,
    co: int,
    kh: int,
    kw: int,
    stride: int = 2,
    dtype: str = "float16",
    acc_dtype: Optional[str] = None,
) -> PrimFunc:
    """T2D as a two-stage program: zero-stuff (dilate) the input, then a
    stride-1 convolution — the standard equivalent formulation, and the
    second stage is a tensorizable C2D."""
    acc_dtype = acc_dtype or dtype
    dh = (h - 1) * stride + 1
    dw = (w - 1) * stride + 1
    # "Full" convolution of the zero-stuffed input: pad (k-1) per side.
    off = kh - 1
    ph, pw = dh + 2 * (kh - 1), dw + 2 * (kw - 1)
    out_h, out_w = ph - kh + 1, pw - kw + 1  # == (h-1)*stride + k
    b = IRBuilder("conv2d_transposed")
    A = b.arg_buffer("A", (n, h, w, ci), dtype)
    W = b.arg_buffer("W", (kh, kw, ci, co), dtype)
    C = b.arg_buffer("C", (n, out_h, out_w, co), acc_dtype)
    D = b.alloc_buffer("A_dilated", (n, ph, pw, ci), dtype)
    with b.grid(n, ph, pw, ci, names=["n", "p", "q", "c"]) as (vn_, vp_, vq_, vc_):
        with b.block("dilate") as blk:
            vn = blk.spatial(n, vn_)
            vp = blk.spatial(ph, vp_)
            vq = blk.spatial(pw, vq_)
            vc = blk.spatial(ci, vc_)
            from ..tir import logical_and

            # A[(vp-off)/stride, (vq-off)/stride] where the grid aligns.
            cond = logical_and(
                logical_and(vp >= off, ((vp - off) % stride).equal(0)),
                logical_and(vq >= off, ((vq - off) % stride).equal(0)),
            )
            cond = logical_and(cond, (vp - off) // stride < h)
            cond = logical_and(cond, (vq - off) // stride < w)
            safe_p = min_guard((vp - off) // stride, h - 1)
            safe_q = min_guard((vq - off) // stride, w - 1)
            b.store(
                D,
                (vn, vp, vq, vc),
                Select(cond, A[vn, safe_p, safe_q, vc], const(0, dtype)),
            )
    with b.grid(
        n, out_h, out_w, co, kh, kw, ci, names=["n", "i", "j", "f", "r", "s", "c"]
    ) as (vn_, vi_, vj_, vf_, vr_, vs_, vc_):
        with b.block("C") as blk:
            vn = blk.spatial(n, vn_)
            vh = blk.spatial(out_h, vi_)
            vw = blk.spatial(out_w, vj_)
            vco = blk.spatial(co, vf_)
            vrh = blk.reduce(kh, vr_)
            vrw = blk.reduce(kw, vs_)
            vci = blk.reduce(ci, vc_)
            with blk.init():
                b.store(C, (vn, vh, vw, vco), const(0, acc_dtype))
            b.store(
                C,
                (vn, vh, vw, vco),
                C[vn, vh, vw, vco]
                + _acc_mul(
                    dtype,
                    acc_dtype,
                    D[vn, vh + vrh, vw + vrw, vci],
                    # transposed conv uses the flipped kernel
                    W[kh - 1 - vrh, kw - 1 - vrw, vci, vco],
                ),
            )
    return b.finish().with_attrs(op="conv2d_transposed")


def min_guard(expr, maximum: int):
    """Clamp an index expression (used under a Select guard)."""
    return max_expr(min_expr_(expr, maximum), 0)


def min_expr_(a, b):
    from ..tir import min_expr

    return min_expr(a, b)


def elementwise_unary(
    shape: Sequence[int], op: str = "relu", dtype: str = "float16", name: Optional[str] = None
) -> PrimFunc:
    """Unary elementwise op over a flat view of ``shape``."""
    total = 1
    for s in shape:
        total *= s
    b = IRBuilder(name or op)
    A = b.arg_buffer("A", (total,), dtype)
    C = b.arg_buffer("C", (total,), dtype)
    with b.grid(total) as i:
        with b.block(op) as blk:
            vi = blk.spatial(total, i)
            if op == "relu":
                value = max_expr(A[vi], const(0, dtype))
            elif op == "gelu":
                value = A[vi] * call("sigmoid", A[vi] * 1.702, dtype=dtype)
            else:
                value = call(op, A[vi], dtype=dtype)
            b.store(C, (vi,), value)
    return b.finish().with_attrs(op="elementwise")


def _ew_value(op: str, a, dtype: str):
    """The scalar expression for one elementwise ``op`` applied to ``a``."""
    if op == "identity":
        return a
    if op == "relu":
        return max_expr(a, const(0, dtype))
    if op == "relu6":
        return min_expr(max_expr(a, const(0, dtype)), const(6, dtype))
    if op == "gelu":
        return a * call("sigmoid", a * 1.702, dtype=dtype)
    return call(op, a, dtype=dtype)


def _spatial_idx(blk, shape, ivs):
    if len(shape) == 1:
        ivs = (ivs,)
    return tuple(blk.spatial(s, iv) for s, iv in zip(shape, ivs))


def elementwise(
    shape: Sequence[int], op: str = "relu", dtype: str = "float16", name: Optional[str] = None
) -> PrimFunc:
    """Unary elementwise op preserving ``shape`` (the fusible ND form)."""
    shape = tuple(shape)
    b = IRBuilder(name or op)
    A = b.arg_buffer("A", shape, dtype)
    C = b.arg_buffer("C", shape, dtype)
    with b.grid(*shape) as ivs:
        with b.block(op) as blk:
            idx = _spatial_idx(blk, shape, ivs)
            b.store(C, idx, _ew_value(op, A[idx], dtype))
    return b.finish().with_attrs(op="elementwise")


def bias_add(
    shape: Sequence[int],
    dtype: str = "float16",
    activation: Optional[str] = None,
    name: Optional[str] = None,
) -> PrimFunc:
    """Bias broadcast over the innermost axis, plus optional activation."""
    shape = tuple(shape)
    b = IRBuilder(name or ("bias_" + activation if activation else "bias_add"))
    A = b.arg_buffer("A", shape, dtype)
    Bi = b.arg_buffer("bias", (shape[-1],), dtype)
    C = b.arg_buffer("C", shape, dtype)
    with b.grid(*shape) as ivs:
        with b.block("bias") as blk:
            idx = _spatial_idx(blk, shape, ivs)
            value = A[idx] + Bi[idx[-1]]
            if activation is not None:
                value = _ew_value(activation, value, dtype)
            b.store(C, idx, value)
    return b.finish().with_attrs(op="elementwise")


def add(
    shape: Sequence[int],
    dtype: str = "float16",
    activation: Optional[str] = None,
    name: Optional[str] = None,
) -> PrimFunc:
    """Binary elementwise add (residual connections), optional activation."""
    shape = tuple(shape)
    b = IRBuilder(name or "add")
    A = b.arg_buffer("A", shape, dtype)
    B2 = b.arg_buffer("B", shape, dtype)
    C = b.arg_buffer("C", shape, dtype)
    with b.grid(*shape) as ivs:
        with b.block("add") as blk:
            idx = _spatial_idx(blk, shape, ivs)
            value = A[idx] + B2[idx]
            if activation is not None:
                value = _ew_value(activation, value, dtype)
            b.store(C, idx, value)
    return b.finish().with_attrs(op="elementwise")


def cast_to(
    shape: Sequence[int], src_dtype: str, dst_dtype: str, name: Optional[str] = None
) -> PrimFunc:
    """Elementwise dtype conversion (e.g. int32 accumulators -> int8)."""
    shape = tuple(shape)
    b = IRBuilder(name or "cast")
    A = b.arg_buffer("A", shape, src_dtype)
    C = b.arg_buffer("C", shape, dst_dtype)
    with b.grid(*shape) as ivs:
        with b.block("cast") as blk:
            idx = _spatial_idx(blk, shape, ivs)
            b.store(C, idx, Cast(dst_dtype, A[idx]))
    return b.finish().with_attrs(op="elementwise")


def requantize(
    shape: Sequence[int],
    src_dtype: str = "int32",
    dst_dtype: str = "int8",
    shift: int = 4,
    name: Optional[str] = None,
) -> PrimFunc:
    """Narrow integer accumulators: scale down by ``2**shift``, clamp to
    the destination range, cast.  The elementwise tail of every
    quantised compute layer."""
    shape = tuple(shape)
    lo, hi = -(2 ** 7), 2 ** 7 - 1  # int8 range; dst_dtype is int8-like
    b = IRBuilder(name or "requantize")
    A = b.arg_buffer("A", shape, src_dtype)
    C = b.arg_buffer("C", shape, dst_dtype)
    with b.grid(*shape) as ivs:
        with b.block("requantize") as blk:
            idx = _spatial_idx(blk, shape, ivs)
            v = A[idx] // const(1 << shift, src_dtype)
            v = max_expr(min_expr(v, const(hi, src_dtype)), const(lo, src_dtype))
            b.store(C, idx, Cast(dst_dtype, v))
    return b.finish().with_attrs(op="elementwise")


@shape_parametric(dims=("n", "h", "w"))
def pad2d(n: int, h: int, w: int, c: int, pad: int, dtype: str = "float16") -> PrimFunc:
    """Zero-pad NHWC spatially by ``pad`` per side (a layout op: it
    changes shape, so it is *not* fusible as an epilogue)."""
    ph, pw = h + 2 * pad, w + 2 * pad
    b = IRBuilder("pad2d")
    A = b.arg_buffer("A", (n, h, w, c), dtype)
    C = b.arg_buffer("C", (n, ph, pw, c), dtype)
    with b.grid(n, ph, pw, c, names=["n", "p", "q", "c"]) as (vn_, vp_, vq_, vc_):
        with b.block("pad") as blk:
            vn = blk.spatial(n, vn_)
            vp = blk.spatial(ph, vp_)
            vq = blk.spatial(pw, vq_)
            vc = blk.spatial(c, vc_)
            cond = logical_and(
                logical_and(vp >= pad, vp < h + pad),
                logical_and(vq >= pad, vq < w + pad),
            )
            safe_p = min_guard(vp - pad, h - 1)
            safe_q = min_guard(vq - pad, w - 1)
            b.store(
                C,
                (vn, vp, vq, vc),
                Select(cond, A[vn, safe_p, safe_q, vc], const(0, dtype)),
            )
    return b.finish().with_attrs(op="pad")


@shape_parametric(dims=("batch", "n", "m"))
def batch_softmax(batch: int, n: int, m: int, dtype: str = "float32") -> PrimFunc:
    """Row softmax over the last axis of a 3-D tensor (attention scores)."""
    b = IRBuilder("batch_softmax")
    A = b.arg_buffer("A", (batch, n, m), dtype)
    C = b.arg_buffer("C", (batch, n, m), dtype)
    mx = b.alloc_buffer("row_max", (batch, n), dtype)
    sm = b.alloc_buffer("row_sum", (batch, n), dtype)
    with b.grid(batch, n, m) as (bb, i, j):
        with b.block("row_max") as blk:
            vb = blk.spatial(batch, bb)
            vi = blk.spatial(n, i)
            vj = blk.reduce(m, j)
            with blk.init():
                b.store(mx, (vb, vi), call("min_value", dtype, dtype=dtype))
            b.store(mx, (vb, vi), max_expr(mx[vb, vi], A[vb, vi, vj]))
    with b.grid(batch, n, m) as (bb, i, j):
        with b.block("row_sum") as blk:
            vb = blk.spatial(batch, bb)
            vi = blk.spatial(n, i)
            vj = blk.reduce(m, j)
            with blk.init():
                b.store(sm, (vb, vi), const(0, dtype))
            b.store(
                sm, (vb, vi), sm[vb, vi] + call("exp", A[vb, vi, vj] - mx[vb, vi], dtype=dtype)
            )
    with b.grid(batch, n, m) as (bb, i, j):
        with b.block("normalize") as blk:
            vb = blk.spatial(batch, bb)
            vi = blk.spatial(n, i)
            vj = blk.spatial(m, j)
            b.store(
                C,
                (vb, vi, vj),
                call("exp", A[vb, vi, vj] - mx[vb, vi], dtype=dtype) / sm[vb, vi],
            )
    return b.finish().with_attrs(op="softmax")


@shape_parametric(dims=("seq",))
def split_heads(
    seq: int, heads: int, dhead: int, dtype: str = "float16", transpose: bool = False
) -> PrimFunc:
    """(seq, heads*dhead) -> (heads, seq, dhead) layout move for attention.

    ``transpose=True`` yields (heads, dhead, seq) instead — the K^T
    layout expected as the second operand of the QK batch matmul.
    """
    b = IRBuilder("split_heads_t" if transpose else "split_heads")
    A = b.arg_buffer("A", (seq, heads * dhead), dtype)
    out_shape = (heads, dhead, seq) if transpose else (heads, seq, dhead)
    C = b.arg_buffer("C", out_shape, dtype)
    with b.grid(heads, seq, dhead, names=["h", "s", "d"]) as (hh, ss, dd):
        with b.block("split_heads") as blk:
            vh = blk.spatial(heads, hh)
            vs = blk.spatial(seq, ss)
            vd = blk.spatial(dhead, dd)
            idx = (vh, vd, vs) if transpose else (vh, vs, vd)
            b.store(C, idx, A[vs, vh * dhead + vd])
    return b.finish().with_attrs(op="reshape")


@shape_parametric(dims=("seq",))
def merge_heads(heads: int, seq: int, dhead: int, dtype: str = "float16") -> PrimFunc:
    """(heads, seq, dhead) -> (seq, heads*dhead), inverse of split_heads."""
    b = IRBuilder("merge_heads")
    A = b.arg_buffer("A", (heads, seq, dhead), dtype)
    C = b.arg_buffer("C", (seq, heads * dhead), dtype)
    with b.grid(seq, heads * dhead, names=["s", "j"]) as (ss, jj):
        with b.block("merge_heads") as blk:
            vs = blk.spatial(seq, ss)
            vj = blk.spatial(heads * dhead, jj)
            b.store(C, (vs, vj), A[vj // dhead, vs, vj % dhead])
    return b.finish().with_attrs(op="reshape")


@shape_parametric(dims=("n", "m"))
def bias_add_relu(n: int, m: int, dtype: str = "float16") -> PrimFunc:
    b = IRBuilder("bias_add_relu")
    A = b.arg_buffer("A", (n, m), dtype)
    Bi = b.arg_buffer("bias", (m,), dtype)
    C = b.arg_buffer("C", (n, m), dtype)
    with b.grid(n, m) as (i, j):
        with b.block("bias_relu") as blk:
            vi = blk.spatial(n, i)
            vj = blk.spatial(m, j)
            b.store(C, (vi, vj), max_expr(A[vi, vj] + Bi[vj], const(0, dtype)))
    return b.finish().with_attrs(op="elementwise")


@shape_parametric(dims=("n", "m"))
def softmax(n: int, m: int, dtype: str = "float32") -> PrimFunc:
    """Row softmax (max-subtracted, numerically stable)."""
    b = IRBuilder("softmax")
    A = b.arg_buffer("A", (n, m), dtype)
    C = b.arg_buffer("C", (n, m), dtype)
    mx = b.alloc_buffer("row_max", (n,), dtype)
    sm = b.alloc_buffer("row_sum", (n,), dtype)
    with b.grid(n, m) as (i, j):
        with b.block("row_max") as blk:
            vi = blk.spatial(n, i)
            vj = blk.reduce(m, j)
            with blk.init():
                b.store(mx, (vi,), call("min_value", dtype, dtype=dtype))
            b.store(mx, (vi,), max_expr(mx[vi], A[vi, vj]))
    with b.grid(n, m) as (i, j):
        with b.block("row_sum") as blk:
            vi = blk.spatial(n, i)
            vj = blk.reduce(m, j)
            with blk.init():
                b.store(sm, (vi,), const(0, dtype))
            b.store(sm, (vi,), sm[vi] + call("exp", A[vi, vj] - mx[vi], dtype=dtype))
    with b.grid(n, m) as (i, j):
        with b.block("normalize") as blk:
            vi = blk.spatial(n, i)
            vj = blk.spatial(m, j)
            b.store(C, (vi, vj), call("exp", A[vi, vj] - mx[vi], dtype=dtype) / sm[vi])
    return b.finish().with_attrs(op="softmax")


@shape_parametric(dims=("n", "m"))
def layer_norm(n: int, m: int, dtype: str = "float32", eps: float = 1e-5) -> PrimFunc:
    b = IRBuilder("layer_norm")
    A = b.arg_buffer("A", (n, m), dtype)
    G = b.arg_buffer("gamma", (m,), dtype)
    Be = b.arg_buffer("beta", (m,), dtype)
    C = b.arg_buffer("C", (n, m), dtype)
    mean = b.alloc_buffer("mean", (n,), dtype)
    var = b.alloc_buffer("var", (n,), dtype)
    with b.grid(n, m) as (i, j):
        with b.block("mean") as blk:
            vi = blk.spatial(n, i)
            vj = blk.reduce(m, j)
            with blk.init():
                b.store(mean, (vi,), const(0, dtype))
            b.store(mean, (vi,), mean[vi] + A[vi, vj] / float(m))
    with b.grid(n, m) as (i, j):
        with b.block("var") as blk:
            vi = blk.spatial(n, i)
            vj = blk.reduce(m, j)
            with blk.init():
                b.store(var, (vi,), const(0, dtype))
            b.store(
                var, (vi,), var[vi] + (A[vi, vj] - mean[vi]) * (A[vi, vj] - mean[vi]) / float(m)
            )
    with b.grid(n, m) as (i, j):
        with b.block("normalize") as blk:
            vi = blk.spatial(n, i)
            vj = blk.spatial(m, j)
            b.store(
                C,
                (vi, vj),
                (A[vi, vj] - mean[vi]) * call("rsqrt", var[vi] + eps, dtype=dtype) * G[vj]
                + Be[vj],
            )
    return b.finish().with_attrs(op="layer_norm")
