"""Shape bucketing: tune once per shape *bucket*, serve any shape in it.

Dynamic-shape traffic (a new batch size, a new sequence length) would
naively pay a full tuning run per concrete shape.  This module collapses
an input-shape *family* onto one representative workload:

* :class:`ShapeBucket` — the bucketing policy for one dynamic dimension,
  either power-of-two ranges (``(4, 8]`` maps to 8) or user-declared
  boundaries (``boundaries=(8, 64, 512)``).
* :class:`BucketSpec` — a set of buckets keyed by dimension name
  (``BucketSpec.pow2("n", "batch")``).
* :func:`canonicalize` — maps a concrete :class:`~repro.tir.PrimFunc`
  built by a :func:`shape_parametric` operator builder to its *bucket
  representative*: the same builder re-invoked with every bucketed
  dimension rounded up to its bucket's upper bound.  All shapes in a
  bucket therefore share one ``workload_key`` task; derived extents
  (a conv's output height, padded widths) are recomputed by the
  builder, never patched in the IR.

Replay across shapes is the §5.2 forced-decision mechanism: a database
hit on the representative re-applies the stored decision vector to the
concrete shape with ``decision_mode="adapt"``
(:meth:`~repro.meta.database.Database.replay_entry`), coercing each
stored decision to the nearest feasible choice at the new extents and
falling back to a fresh tune only when a sketch constraint makes the
trace infeasible (diagnostic ``TIR701``/``TIR702``).

The registry deliberately sits *below* :mod:`repro.frontend.ops` in the
import graph: builders register themselves via the decorator, and the
canonicalizer only ever calls back through that registry.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from functools import wraps
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from .. import cache as _cache
from ..diagnostics import DiagnosticContext
from ..tir import PrimFunc

__all__ = [
    "ShapeBucket",
    "BucketSpec",
    "BucketedWorkload",
    "shape_parametric",
    "shape_args_of",
    "canonicalize",
    "rebuild",
    "next_pow2",
]


def next_pow2(n: int) -> int:
    """The smallest power of two >= ``n`` (1 for n <= 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


@dataclass(frozen=True)
class ShapeBucket:
    """The bucketing policy for one dynamic dimension.

    With ``boundaries`` the buckets are ``(0, b0], (b0, b1], ...`` and a
    size maps to the smallest boundary that holds it.  Without
    boundaries the policy is power-of-two: size 33 maps to 64.
    ``max_size`` (pow2 mode) caps the declared range.  A size outside
    every declared bucket is its own degenerate bucket — it maps to
    itself, so it still tunes and serves, just without sharing.
    """

    dim: str
    boundaries: Optional[Tuple[int, ...]] = None
    max_size: Optional[int] = None

    def __post_init__(self):
        if self.boundaries is not None:
            bounds = tuple(int(b) for b in self.boundaries)
            if not bounds or any(b <= 0 for b in bounds) or list(bounds) != sorted(set(bounds)):
                raise ValueError(
                    f"bucket boundaries for {self.dim!r} must be positive, "
                    f"strictly ascending and non-empty: {self.boundaries!r}"
                )
            object.__setattr__(self, "boundaries", bounds)

    def covers(self, size: int) -> bool:
        """Whether ``size`` falls inside a declared bucket."""
        if size <= 0:
            return False
        if self.boundaries is not None:
            return size <= self.boundaries[-1]
        return self.max_size is None or next_pow2(size) <= self.max_size

    def representative(self, size: int) -> int:
        """The bucket's upper bound for ``size`` (``size`` itself when
        outside every declared bucket)."""
        if not self.covers(size):
            return size
        if self.boundaries is not None:
            for bound in self.boundaries:
                if size <= bound:
                    return bound
            return size  # pragma: no cover — covers() guards this
        return next_pow2(size)

    def token(self) -> str:
        """A stable text form (memo keys, reports)."""
        if self.boundaries is not None:
            return f"{self.dim}:{','.join(map(str, self.boundaries))}"
        cap = f"<={self.max_size}" if self.max_size is not None else ""
        return f"{self.dim}:pow2{cap}"


@dataclass(frozen=True)
class BucketSpec:
    """A set of :class:`ShapeBucket` policies, one per dynamic dim."""

    buckets: Tuple[ShapeBucket, ...] = ()

    @classmethod
    def pow2(cls, *dims: str, max_size: Optional[int] = None) -> "BucketSpec":
        """Power-of-two buckets for each named dimension."""
        return cls(tuple(ShapeBucket(d, max_size=max_size) for d in dims))

    @classmethod
    def of(cls, **boundaries: Sequence[int]) -> "BucketSpec":
        """User-declared boundaries per dimension:
        ``BucketSpec.of(n=(8, 64, 512))``."""
        return cls(
            tuple(ShapeBucket(d, boundaries=tuple(b)) for d, b in boundaries.items())
        )

    def bucket_for(self, dim: str) -> Optional[ShapeBucket]:
        for bucket in self.buckets:
            if bucket.dim == dim:
                return bucket
        return None

    def token(self) -> str:
        return ";".join(b.token() for b in self.buckets)


@dataclass(frozen=True)
class BucketedWorkload:
    """A concrete workload paired with its bucket representative.

    ``dims`` maps each bucketed dimension name to ``(size,
    representative_size)``.  When no dimension moved, ``representative``
    *is* ``concrete`` (same object) and replay stays strict.
    """

    concrete: PrimFunc
    representative: PrimFunc
    dims: Mapping[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def bucketed(self) -> bool:
        """Whether the representative differs from the concrete shape."""
        return any(size != rep for size, rep in self.dims.values())


# ---------------------------------------------------------------------------
# the shape-parametric builder registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _BuilderInfo:
    fn: Callable[..., PrimFunc]
    dims: Tuple[str, ...]


_BUILDERS: Dict[str, _BuilderInfo] = {}


def shape_parametric(*, dims: Sequence[str]):
    """Mark an operator builder's dynamic dimensions.

    The decorated builder records its bound arguments on the returned
    function (``attrs["builder"]`` / ``attrs["shape_args"]``) and
    registers itself so :func:`canonicalize` can re-invoke it with a
    bucketed size for any argument named in ``dims``.  Attrs are
    excluded from ``script``/``structural_hash``, so recording them
    never perturbs workload keys.
    """

    def decorate(fn: Callable[..., PrimFunc]) -> Callable[..., PrimFunc]:
        signature = inspect.signature(fn)

        @wraps(fn)
        def wrapper(*args, **kwargs) -> PrimFunc:
            func = fn(*args, **kwargs)
            bound = signature.bind(*args, **kwargs)
            bound.apply_defaults()
            return func.with_attrs(
                builder=fn.__name__, shape_args=dict(bound.arguments)
            )

        _BUILDERS[fn.__name__] = _BuilderInfo(wrapper, tuple(dims))
        return wrapper

    return decorate


def shape_args_of(func: PrimFunc) -> Optional[Dict[str, object]]:
    """The recorded builder arguments of a shape-parametric function,
    or ``None`` for hand-built / non-parametric functions."""
    name = func.attrs.get("builder")
    args = func.attrs.get("shape_args")
    if isinstance(name, str) and name in _BUILDERS and isinstance(args, dict):
        return dict(args)
    return None


def rebuild(func: PrimFunc, **overrides) -> PrimFunc:
    """Re-invoke ``func``'s builder with some arguments overridden."""
    name = func.attrs.get("builder")
    info = _BUILDERS.get(name) if isinstance(name, str) else None
    args = shape_args_of(func)
    if info is None or args is None:
        raise ValueError(f"{func.name!r} was not built by a shape-parametric builder")
    args.update(overrides)
    return info.fn(**args)


#: memoized representative rebuilds — the serve path canonicalizes every
#: request, and rebuilding an operator is a full IR construction.
_CANON_CACHE = _cache.MemoCache("frontend.buckets", maxsize=2048)


def canonicalize(
    func: PrimFunc,
    spec: Optional[BucketSpec],
    *,
    ctx: Optional[DiagnosticContext] = None,
) -> BucketedWorkload:
    """Map a concrete function to its bucket representative under ``spec``.

    Non-parametric functions, empty specs and dimensions outside every
    declared bucket (diagnostic ``TIR703``) all degrade to the identity
    mapping — the concrete shape is its own bucket.
    """
    if spec is None or not spec.buckets:
        return BucketedWorkload(func, func)
    name = func.attrs.get("builder")
    info = _BUILDERS.get(name) if isinstance(name, str) else None
    raw = func.attrs.get("shape_args")
    if info is None or not isinstance(raw, dict):
        return BucketedWorkload(func, func)
    dims: Dict[str, Tuple[int, int]] = {}
    overrides: Dict[str, int] = {}
    for dim in info.dims:
        size = raw.get(dim)
        if not isinstance(size, int) or isinstance(size, bool):
            continue
        bucket = spec.bucket_for(dim)
        if bucket is None:
            continue
        if not bucket.covers(size):
            if ctx is not None:
                ctx.emit(
                    "TIR703",
                    f"{func.name}: dimension {dim}={size} is outside every "
                    f"declared bucket ({bucket.token()}); the shape is its "
                    "own bucket",
                    func=func,
                )
            dims[dim] = (size, size)
            continue
        rep = bucket.representative(size)
        dims[dim] = (size, rep)
        if rep != size:
            overrides[dim] = rep
    if not overrides:
        return BucketedWorkload(func, func, dims)
    if _cache.caches_enabled():
        from ..tir import structural_hash

        key = (structural_hash(func), func.name, name, spec.token())
        cached = _CANON_CACHE.lookup(key)
        if cached is not _cache.MISS:
            return BucketedWorkload(func, cached, dims)
        representative = info.fn(**{**raw, **overrides})
        _CANON_CACHE.put(key, representative)
    else:
        representative = info.fn(**{**raw, **overrides})
    return BucketedWorkload(func, representative, dims)
