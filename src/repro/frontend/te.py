"""A tensor-expression layer: declarative computation → TensorIR.

The paper's §3.4: "Our framework allows users to import models ... and
automatically generates TensorIR programs from the high-level
operators."  This module is the high-level entry: ``compute`` declares
an output by an index expression (optionally reducing), and
``build_func`` lowers a DAG of such tensors into one PrimFunc whose
blocks carry full signatures — ready for scheduling.

Example — a matmul::

    A = te.placeholder((128, 64), "float16", "A")
    B = te.placeholder((64, 32), "float16", "B")
    k = te.reduce_axis(64, "k")
    C = te.compute((128, 32), lambda i, j: te.sum(A[i, k] * B[k, j], [k]), name="C")
    func = te.build_func([A, B, C], name="matmul")
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..tir import (
    Buffer,
    IRBuilder,
    IterVar,
    PrimExpr,
    PrimFunc,
    Var,
    as_expr,
    collect_vars,
    const,
    substitute,
)

__all__ = ["placeholder", "compute", "reduce_axis", "sum", "Tensor", "build_func"]


class ReduceAxis:
    """A named reduction axis with a constant extent.

    Participates in index arithmetic by delegating to its variable
    (``A[x + r, c]`` works directly).
    """

    __slots__ = ("var", "extent")

    def __init__(self, extent: int, name: str = "k"):
        self.var = Var(name, "int32")
        self.extent = extent

    def __add__(self, other):
        return self.var + other

    def __radd__(self, other):
        return as_expr(other) + self.var

    def __sub__(self, other):
        return self.var - other

    def __rsub__(self, other):
        return as_expr(other) - self.var

    def __mul__(self, other):
        return self.var * other

    def __rmul__(self, other):
        return as_expr(other) * self.var


class _Sum:
    """A marker wrapping the reduced expression and its axes."""

    __slots__ = ("value", "axes")

    def __init__(self, value: PrimExpr, axes: Sequence[ReduceAxis]):
        self.value = value
        self.axes = list(axes)


class Tensor:
    """A declared tensor: a placeholder or a computed stage."""

    def __init__(
        self,
        shape: Sequence[int],
        dtype: str,
        name: str,
        fcompute: Optional[Callable] = None,
    ):
        self.shape = tuple(int(s) for s in shape)
        self.dtype = dtype
        self.name = name
        self.fcompute = fcompute
        #: filled during build
        self.buffer: Optional[Buffer] = None

    @property
    def is_placeholder(self) -> bool:
        return self.fcompute is None

    def __getitem__(self, indices):
        if self.buffer is None:
            raise RuntimeError(
                f"tensor {self.name} is not bound to a buffer yet; index it "
                "inside a compute() body during build_func"
            )
        if not isinstance(indices, tuple):
            indices = (indices,)
        converted = [i.var if isinstance(i, ReduceAxis) else as_expr(i) for i in indices]
        return self.buffer[tuple(converted)]

    def __repr__(self) -> str:  # pragma: no cover
        kind = "placeholder" if self.is_placeholder else "compute"
        return f"Tensor({self.name}: {self.dtype}{list(self.shape)}, {kind})"


def placeholder(shape: Sequence[int], dtype: str = "float32", name: str = "data") -> Tensor:
    """Declare an input tensor."""
    return Tensor(shape, dtype, name)


def reduce_axis(extent: int, name: str = "k") -> ReduceAxis:
    """Declare a reduction axis for use inside :func:`sum`."""
    return ReduceAxis(extent, name)


def sum(value, axes: Sequence[ReduceAxis]) -> _Sum:  # noqa: A001 - te.sum
    """Reduce ``value`` over ``axes`` with addition."""
    return _Sum(as_expr(value), axes)


def compute(
    shape: Sequence[int],
    fcompute: Callable,
    dtype: Optional[str] = None,
    name: str = "compute",
) -> Tensor:
    """Declare a computed tensor: ``out[i...] = fcompute(i...)``.

    ``fcompute`` receives one :class:`~repro.tir.Var` per output axis and
    returns an expression, or :func:`sum` for reductions.
    """
    tensor = Tensor(shape, dtype or "float32", name, fcompute)
    return tensor


def build_func(tensors: Sequence[Tensor], name: str = "main") -> PrimFunc:
    """Lower a list of tensors (inputs + stages, outputs last) into a
    PrimFunc.  Placeholders and the final tensor become parameters;
    intermediate computed stages become allocated buffers."""
    b = IRBuilder(name)
    computed = [t for t in tensors if not t.is_placeholder]
    if not computed:
        raise ValueError("build_func needs at least one computed tensor")
    outputs = {id(computed[-1])}
    for t in tensors:
        if t.is_placeholder or id(t) in outputs:
            t.buffer = b.arg_buffer(t.name, t.shape, t.dtype)
    for t in tensors:
        if not t.is_placeholder and id(t) not in outputs:
            t.buffer = b.alloc_buffer(t.name, t.shape, t.dtype)

    for t in tensors:
        if t.is_placeholder:
            continue
        _emit_stage(b, t)
    return b.finish()


def _emit_stage(b: IRBuilder, tensor: Tensor) -> None:
    axes = [Var(f"i{d}", "int32") for d in range(len(tensor.shape))]
    body = tensor.fcompute(*axes)
    reduce_axes: List[ReduceAxis] = []
    if isinstance(body, _Sum):
        reduce_axes = body.axes
        value = body.value
    else:
        value = as_expr(body)
    loop_names = [f"i{d}" for d in range(len(axes))] + [ax.var.name for ax in reduce_axes]
    extents = list(tensor.shape) + [ax.extent for ax in reduce_axes]
    with b.grid(*extents, names=loop_names) as loop_vars:
        if not isinstance(loop_vars, tuple):
            loop_vars = (loop_vars,)
        with b.block(tensor.name) as blk:
            vmap: Dict[Var, Var] = {}
            for axis, extent, lv in zip(axes, tensor.shape, loop_vars):
                vmap[axis] = blk.spatial(extent, lv, name=f"v_{tensor.name}_{axis.name}")
            for rax, lv in zip(reduce_axes, loop_vars[len(axes) :]):
                vmap[rax.var] = blk.reduce(rax.extent, lv, name=f"v_{tensor.name}_{rax.var.name}")
            bound_value = substitute(value, vmap)
            out_idx = [vmap[a] for a in axes]
            if reduce_axes:
                with blk.init():
                    b.store(tensor.buffer, out_idx, const(0, tensor.dtype))
                b.store(
                    tensor.buffer,
                    out_idx,
                    tensor.buffer[tuple(out_idx)] + bound_value,
                )
            else:
                b.store(tensor.buffer, out_idx, bound_value)
