"""The evaluation workload set (§5.1) with concrete shapes.

The paper benchmarks eight operator classes on the GPU (fp16) and two on
the ARM CPU (int8).  It does not list exact shapes; we use
ResNet/standard-benchmark shapes with batch 1, chosen so the headline
axes (tensorizable vs not, compute- vs memory-bound) match the paper's
qualitative results.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..tir import PrimFunc
from . import ops

__all__ = ["GPU_WORKLOADS", "CPU_WORKLOADS", "gpu_workload", "cpu_workload"]

#: §5.1 GPU single-operator workloads (fp16 in / fp16 accumulate).
GPU_WORKLOADS: Dict[str, Callable[[], PrimFunc]] = {
    # 1D convolution: N=1, L=256 (padded 258), 64->128 channels, k=3.
    "C1D": lambda: ops.conv1d(1, 258, 64, 128, 3),
    # 2D convolution: ResNet-50 3x3 block, 56x56 (padded 58), 64->64.
    "C2D": lambda: ops.conv2d(1, 58, 58, 64, 64, 3, 3),
    # 3D convolution: 16x56x56 volume (padded 18x58x58), 32->64, k=3.
    "C3D": lambda: ops.conv3d(1, 18, 58, 58, 32, 64, 3, 3, 3),
    # depthwise 3x3, MobileNet shape, 112x112 (padded 114) x 32.
    "DEP": lambda: ops.depthwise_conv2d(1, 114, 114, 32, 3, 3),
    # dilated 3x3 (dilation 2), 56x56 (padded 60), 64->64.
    "DIL": lambda: ops.conv2d(1, 60, 60, 64, 64, 3, 3, dilation=2, name="dilated_conv2d"),
    # GEMM 1024^3.
    "GMM": lambda: ops.matmul(1024, 1024, 1024),
    # group conv: 56x56 (padded 58), 128->128, groups=4.
    "GRP": lambda: ops.group_conv2d(1, 58, 58, 128, 128, 3, 3, groups=4),
    # transposed conv 4x4 stride 2: 14x14 -> ~31, 128->64 (GAN-style).
    "T2D": lambda: ops.conv2d_transposed(1, 14, 14, 128, 64, 4, 4, stride=2),
}

#: §5.3 ARM CPU single-operator workloads (int8 in / int32 accumulate).
CPU_WORKLOADS: Dict[str, Callable[[], PrimFunc]] = {
    "C2D": lambda: ops.conv2d(
        1, 58, 58, 64, 64, 3, 3, dtype="int8", acc_dtype="int32", name="conv2d_int8"
    ),
    "GMM": lambda: ops.matmul(512, 512, 512, dtype="int8", acc_dtype="int32"),
}


def gpu_workload(name: str) -> PrimFunc:
    return GPU_WORKLOADS[name]()


def cpu_workload(name: str) -> PrimFunc:
    return CPU_WORKLOADS[name]()
