"""Tensor intrinsic descriptions (§4.1's TensorIntrin construct)."""

from .registry import TensorIntrin, get_intrin, list_intrins, register_intrin
from . import gpu as _gpu  # noqa: F401 - registers GPU intrinsics
from . import cpu as _cpu  # noqa: F401 - registers CPU intrinsics
from .gpu import GPU_COMPUTE_INTRINS
from .cpu import CPU_COMPUTE_INTRINS

__all__ = [
    "TensorIntrin",
    "register_intrin",
    "get_intrin",
    "list_intrins",
    "GPU_COMPUTE_INTRINS",
    "CPU_COMPUTE_INTRINS",
]
