"""Tensor intrinsics of the simulated ARM CPU (``sdot`` analogue).

The simulated CPU provides an 8-bit integer dot-product instruction in
the spirit of ARMv8.2 ``sdot``: each instruction computes four int32
lanes, each the dot product of four int8 pairs (16 MACs per
instruction).  Following the micro-kernel practice the paper describes
(e.g. ``a64_gemm_u8_8x12``), we register a 4x4x4 GEMM *micro-kernel*
built from four sdot issues; candidates tensorize onto the micro-kernel.
"""

from __future__ import annotations

import numpy as np

from ..tir import Cast, IRBuilder, MemoryScope
from .registry import TensorIntrin, register_intrin

__all__ = ["SDOT_GEMM", "SDOT_FILL", "CPU_COMPUTE_INTRINS"]

_M = _N = _K = 4


def _sdot_desc():
    b = IRBuilder("sdot_4x4x4_i8_desc")
    A = b.arg_buffer("A", (_M, _K), "int8")
    B = b.arg_buffer("B", (_K, _N), "int8")
    C = b.arg_buffer("C", (_M, _N), "int32")
    with b.grid(_M, _N, _K) as (i, j, k):
        with b.block("sdot") as blk:
            vi = blk.spatial(_M, i)
            vj = blk.spatial(_N, j)
            vk = blk.reduce(_K, k)
            b.store(
                C,
                (vi, vj),
                C[vi, vj] + Cast("int32", A[vi, vk]) * Cast("int32", B[vk, vj]),
            )
    return b.finish()


def _fill_desc():
    b = IRBuilder("sdot_fill_desc")
    C = b.arg_buffer("C", (_M, _N), "int32")
    with b.grid(_M, _N) as (i, j):
        with b.block("fill") as blk:
            vi = blk.spatial(_M, i)
            vj = blk.spatial(_N, j)
            b.store(C, (vi, vj), 0)
    return b.finish()


def _np_sdot(A, B, C):
    C += A.astype(np.int32) @ B.astype(np.int32)


def _np_fill(C):
    C[...] = 0


SDOT_GEMM = TensorIntrin(
    name="sdot_4x4x4_i8",
    desc=_sdot_desc(),
    # sdot reads operands from NEON registers; no special scopes beyond
    # requiring the interleaved layout the ReIndex stage provides.
    operand_scopes={},
    numpy_impl=_np_sdot,
    # Four sdot issues, each 16 MACs; ~1 cycle/issue on the model core.
    cost={"cycles": 4.0, "flops": 128},
    kind="compute",
    execution_scope="core",
    paired={"fill": "sdot_fill_i32"},
)

SDOT_FILL = TensorIntrin(
    name="sdot_fill_i32",
    desc=_fill_desc(),
    operand_scopes={},
    numpy_impl=_np_fill,
    cost={"cycles": 1.0, "flops": 0},
    kind="fill",
    execution_scope="core",
)

CPU_COMPUTE_INTRINS = ("sdot_4x4x4_i8",)

for _intrin in (SDOT_GEMM, SDOT_FILL):
    register_intrin(_intrin)
