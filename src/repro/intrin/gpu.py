"""Tensor intrinsics of the simulated GPU (Tensor Core analogue).

The simulated GPU exposes a 16x16x16 fp16 matrix-multiply-accumulate
unit operating on register fragments, mirroring ``nvcuda::wmma``:

* ``wmma_16x16x16_f16`` — the MMA itself; operands must live in the
  ``wmma.matrix_a`` / ``wmma.matrix_b`` / ``wmma.accumulator`` scopes.
* ``wmma_fill_16x16_f16`` — accumulator initialisation
  (``fill_fragment``).
* ``wmma_load_16x16_f16_a`` / ``_b`` — fragment loads
  (``load_matrix_sync``).
* ``wmma_store_16x16_f16`` — accumulator store (``store_matrix_sync``).

Costs are in SM cycles per instruction issue and are consumed by
:mod:`repro.sim.cost`.
"""

from __future__ import annotations

import numpy as np

from ..tir import IRBuilder, MemoryScope
from .registry import TensorIntrin, register_intrin

__all__ = [
    "WMMA_MMA",
    "WMMA_FILL",
    "WMMA_LOAD_A",
    "WMMA_LOAD_B",
    "WMMA_STORE",
    "GPU_COMPUTE_INTRINS",
]

_M = _N = _K = 16


def _mma_desc():
    b = IRBuilder("wmma_16x16x16_f16_desc")
    A = b.arg_buffer("A", (_M, _K), "float16", MemoryScope.WMMA_A)
    B = b.arg_buffer("B", (_K, _N), "float16", MemoryScope.WMMA_B)
    C = b.arg_buffer("C", (_M, _N), "float16", MemoryScope.WMMA_ACC)
    with b.grid(_M, _N, _K) as (i, j, k):
        with b.block("mma") as blk:
            vi = blk.spatial(_M, i)
            vj = blk.spatial(_N, j)
            vk = blk.reduce(_K, k)
            b.store(C, (vi, vj), C[vi, vj] + A[vi, vk] * B[vk, vj])
    return b.finish()


def _fill_desc():
    b = IRBuilder("wmma_fill_16x16_f16_desc")
    C = b.arg_buffer("C", (_M, _N), "float16", MemoryScope.WMMA_ACC)
    with b.grid(_M, _N) as (i, j):
        with b.block("fill") as blk:
            vi = blk.spatial(_M, i)
            vj = blk.spatial(_N, j)
            b.store(C, (vi, vj), 0.0)
    return b.finish()


def _copy_desc(name: str, src_scope: str, dst_scope: str):
    b = IRBuilder(name)
    S = b.arg_buffer("S", (_M, _N), "float16", src_scope)
    D = b.arg_buffer("D", (_M, _N), "float16", dst_scope)
    with b.grid(_M, _N) as (i, j):
        with b.block("copy") as blk:
            vi = blk.spatial(_M, i)
            vj = blk.spatial(_N, j)
            b.store(D, (vi, vj), S[vi, vj])
    return b.finish()


def _np_mma(A, B, C):
    C += (A.astype(np.float32) @ B.astype(np.float32)).astype(C.dtype)


def _np_fill(C):
    C[...] = 0


def _np_copy(S, D):
    D[...] = S


WMMA_MMA = TensorIntrin(
    name="wmma_16x16x16_f16",
    desc=_mma_desc(),
    operand_scopes={
        "A": MemoryScope.WMMA_A,
        "B": MemoryScope.WMMA_B,
        "C": MemoryScope.WMMA_ACC,
    },
    numpy_impl=_np_mma,
    # One HMMA issue per warp: 2*16*16*16 = 8192 FLOP in ~8 SM cycles.
    cost={"cycles": 8.0, "flops": 8192},
    kind="compute",
    execution_scope="warp",
    paired={
        "fill": "wmma_fill_16x16_f16",
        "load_A": "wmma_load_16x16_f16_a",
        "load_B": "wmma_load_16x16_f16_b",
        "store": "wmma_store_16x16_f16",
    },
)

WMMA_FILL = TensorIntrin(
    name="wmma_fill_16x16_f16",
    desc=_fill_desc(),
    operand_scopes={"C": MemoryScope.WMMA_ACC},
    numpy_impl=_np_fill,
    cost={"cycles": 2.0, "flops": 0},
    kind="fill",
    execution_scope="warp",
)

WMMA_LOAD_A = TensorIntrin(
    name="wmma_load_16x16_f16_a",
    desc=_copy_desc("wmma_load_a_desc", MemoryScope.SHARED, MemoryScope.WMMA_A),
    operand_scopes={"S": (MemoryScope.SHARED, MemoryScope.GLOBAL), "D": MemoryScope.WMMA_A},
    numpy_impl=_np_copy,
    cost={"cycles": 4.0, "bytes": 512},
    kind="load",
    execution_scope="warp",
)

WMMA_LOAD_B = TensorIntrin(
    name="wmma_load_16x16_f16_b",
    desc=_copy_desc("wmma_load_b_desc", MemoryScope.SHARED, MemoryScope.WMMA_B),
    operand_scopes={"S": (MemoryScope.SHARED, MemoryScope.GLOBAL), "D": MemoryScope.WMMA_B},
    numpy_impl=_np_copy,
    cost={"cycles": 4.0, "bytes": 512},
    kind="load",
    execution_scope="warp",
)

WMMA_STORE = TensorIntrin(
    name="wmma_store_16x16_f16",
    desc=_copy_desc("wmma_store_desc", MemoryScope.WMMA_ACC, MemoryScope.SHARED),
    operand_scopes={"S": MemoryScope.WMMA_ACC, "D": (MemoryScope.SHARED, MemoryScope.GLOBAL)},
    numpy_impl=_np_copy,
    cost={"cycles": 4.0, "bytes": 512},
    kind="store",
    execution_scope="warp",
)

GPU_COMPUTE_INTRINS = ("wmma_16x16x16_f16",)

for _intrin in (WMMA_MMA, WMMA_FILL, WMMA_LOAD_A, WMMA_LOAD_B, WMMA_STORE):
    register_intrin(_intrin)
