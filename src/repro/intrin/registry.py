"""TensorIntrin: describing hardware tensor instructions in TensorIR.

Following §4.1, each intrinsic is described by *two* views expressed in
the same abstraction:

* ``desc`` — a PrimFunc whose single block gives the computation
  *semantics* (a plain loop nest with a scalar body);
* ``impl`` — how the simulated hardware executes it: an instruction tag
  for the performance model, a fast NumPy tile implementation for the
  executor, and per-operand storage-scope requirements (the "special
  memory scopes, data layouts and corresponding load/store instructions"
  constraint set of §4.1).

``tensorize`` matches a candidate block against ``desc_computation()``
(structural equality up to renaming) and stamps the block with the
intrinsic name; lowering, validation, execution and the cost model all
dispatch on that annotation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..arith import Analyzer
from ..tir import Block, BlockRealize, PrimFunc, Range, Stmt, substitute

__all__ = ["TensorIntrin", "register_intrin", "get_intrin", "list_intrins"]


class TensorIntrin:
    """One tensorized instruction / micro-kernel primitive."""

    def __init__(
        self,
        name: str,
        desc: PrimFunc,
        operand_scopes: Dict[str, str],
        numpy_impl: Callable,
        cost: Dict[str, float],
        kind: str = "compute",
        execution_scope: str = "warp",
        paired: Optional[Dict[str, str]] = None,
    ):
        """
        Parameters
        ----------
        name:
            Registry key, e.g. ``"wmma_16x16x16_f16"``.
        desc:
            Semantics PrimFunc: one block whose body is a loop nest with
            a scalar computation.  Buffer parameter names define operand
            roles (by convention the output is the last parameter).
        operand_scopes:
            Required storage scope per operand buffer name, e.g.
            ``{"A": "wmma.matrix_a", "B": "wmma.matrix_b", "C": "wmma.accumulator"}``.
        numpy_impl:
            ``fn(*operand_arrays) -> None`` computing the tile in place on
            NumPy views (the executor's fast path).
        cost:
            Performance-model parameters, e.g. ``{"issue_cycles": 1,
            "flops": 8192}``; interpreted by :mod:`repro.sim.cost`.
        kind:
            ``"compute"`` for arithmetic instructions, ``"load"`` /
            ``"store"`` for data-movement intrinsics, ``"fill"`` for
            initialisation.
        execution_scope:
            Hardware scope the instruction must run at (§3.3 execution
            scope validation): ``"warp"``, ``"thread"`` or ``"core"``.
        """
        self.name = name
        self.desc = desc
        self.operand_scopes = dict(operand_scopes)
        self.numpy_impl = numpy_impl
        self.cost = dict(cost)
        self.kind = kind
        self.execution_scope = execution_scope
        #: Companion intrinsics: e.g. {"fill": ..., "load_A": ...,
        #: "store": ...} naming the init / data-movement instructions
        #: that accompany this compute instruction (§4.1's coupled
        #: load/store requirement).
        self.paired: Dict[str, str] = dict(paired or {})
        self._canonical: Optional[Stmt] = None

    # ------------------------------------------------------------------
    def desc_block(self) -> Block:
        """The single block of the desc function."""
        from ..schedule.sref import find_blocks

        realizes = [
            r for r in find_blocks(self.desc.body) if r is not self.desc.body
        ]
        if len(realizes) != 1:
            raise ValueError(f"intrinsic {self.name}: desc must contain exactly one block")
        return realizes[0].block

    def desc_computation(self) -> Stmt:
        """The canonical computation statement used for matching: the
        desc block's body with iterators substituted by the loop
        variables that bind them (i.e. the raw loop nest semantics)."""
        if self._canonical is not None:
            return self._canonical
        from ..schedule.primitives.blockize import _flatten_leaf
        from ..schedule.sref import find_blocks, loops_above

        realizes = [r for r in find_blocks(self.desc.body) if r is not self.desc.body]
        (realize,) = realizes
        loops = loops_above(self.desc.body, realize)
        if not loops:
            analyzer = Analyzer()
            self._canonical = _flatten_leaf(realize, analyzer)
            return self._canonical
        analyzer = Analyzer()
        for lp in loops:
            analyzer.bind(lp.loop_var, Range(lp.min, lp.extent))
        self._canonical = _flatten_leaf(loops[0], analyzer)
        return self._canonical

    def operand_role(self, buffer) -> Optional[str]:
        """The role name (desc parameter name) of a desc buffer."""
        for param in self.desc.params:
            if self.desc.buffer_map[param] is buffer:
                return self.desc.buffer_map[param].name
        return None

    def tile_shape(self) -> Tuple[int, ...]:
        """Iteration-space extents of the intrinsic's block."""
        block = self.desc_block()
        from ..tir import const_int_value

        return tuple(const_int_value(iv.dom.extent) for iv in block.iter_vars)

    def __repr__(self) -> str:  # pragma: no cover
        return f"TensorIntrin({self.name}, tile={self.tile_shape()})"


_REGISTRY: Dict[str, TensorIntrin] = {}


def register_intrin(intrin: TensorIntrin, override: bool = False) -> TensorIntrin:
    if intrin.name in _REGISTRY and not override:
        raise ValueError(f"intrinsic {intrin.name!r} already registered")
    _REGISTRY[intrin.name] = intrin
    return intrin


def get_intrin(name: str) -> TensorIntrin:
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown tensor intrinsic {name!r}; registered: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def list_intrins(kind: Optional[str] = None) -> List[str]:
    return sorted(n for n, i in _REGISTRY.items() if kind is None or i.kind == kind)
