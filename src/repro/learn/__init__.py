"""Learning substrate: the from-scratch gradient-boosted-tree model used
by the tensorized cost model (§4.4)."""

from .gbdt import GradientBoostedTrees, RegressionTree

__all__ = ["GradientBoostedTrees", "RegressionTree"]
