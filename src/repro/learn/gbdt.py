"""Gradient-boosted regression trees, from scratch on NumPy.

The paper's cost model is an XGBoost ensemble (§4.4); offline we build
the same model class ourselves: least-squares boosting over depth-limited
regression trees with exact greedy splits.

Kept deliberately small and dependency-free; the datasets involved
(thousands of measured schedules x ~30 features) need no histogram
tricks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = ["RegressionTree", "GradientBoostedTrees"]


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, value: float):
        self.feature: Optional[int] = None
        self.threshold = 0.0
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.value = value

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class RegressionTree:
    """A CART regression tree with exact greedy squared-error splits."""

    def __init__(self, max_depth: int = 4, min_samples_leaf: int = 2, min_gain: float = 1e-12):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_gain = min_gain
        self.root: Optional[_Node] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be (n, d) with matching y")
        self.root = self._build(X, y, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf:
            return node
        best = self._best_split(X, y)
        if best is None:
            return node
        feature, threshold, gain = best
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray) -> Optional[Tuple[int, float, float]]:
        n, d = X.shape
        total_sum = y.sum()
        total_sq = (y**2).sum()
        base_err = total_sq - total_sum**2 / n
        best_gain = self.min_gain
        best: Optional[Tuple[int, float, float]] = None
        # Candidate split after position i (1-based prefix length).  The
        # whole i-scan is vectorized per feature; elementwise arithmetic
        # matches the scalar loop exactly and ``argmax`` picks the first
        # index attaining the max, which is the same winner a sequential
        # strict-improvement scan selects.
        candidates = np.arange(self.min_samples_leaf, n - self.min_samples_leaf + 1)
        candidates = candidates[candidates < n]
        if not len(candidates):
            return None
        for f in range(d):
            order = np.argsort(X[:, f], kind="stable")
            xs = X[order, f]
            ys = y[order]
            csum = np.cumsum(ys)
            csq = np.cumsum(ys**2)
            # thresholds between equal sorted values are not valid splits
            i = candidates[xs[candidates - 1] != xs[candidates]]
            if not len(i):
                continue
            left_sum, left_sq = csum[i - 1], csq[i - 1]
            right_sum = total_sum - left_sum
            right_sq = total_sq - left_sq
            err = left_sq - left_sum**2 / i + right_sq - right_sum**2 / (n - i)
            gain = base_err - err
            j = int(np.argmax(gain))
            if gain[j] > best_gain:
                best_gain = float(gain[j])
                split = int(i[j])
                best = (f, float((xs[split - 1] + xs[split]) / 2.0), best_gain)
        return best

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(len(X), dtype=np.float64)
        # Route whole index sets down the tree instead of one row at a
        # time — identical leaf values, one numpy comparison per node.
        frontier = [(self.root, np.arange(len(X)))]
        while frontier:
            node, idx = frontier.pop()
            if not len(idx):
                continue
            if node.is_leaf:
                out[idx] = node.value
            else:
                left = X[idx, node.feature] <= node.threshold
                frontier.append((node.left, idx[left]))
                frontier.append((node.right, idx[~left]))
        return out


class GradientBoostedTrees:
    """Least-squares gradient boosting: F_m = F_{m-1} + lr * tree(residuals)."""

    def __init__(
        self,
        n_trees: int = 50,
        learning_rate: float = 0.15,
        max_depth: int = 4,
        min_samples_leaf: int = 2,
        subsample: float = 1.0,
        seed: int = 0,
    ):
        self.n_trees = n_trees
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self.base: float = 0.0
        self.trees: List[RegressionTree] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        self.base = float(y.mean()) if len(y) else 0.0
        self.trees = []
        pred = np.full(len(y), self.base)
        for _ in range(self.n_trees):
            residual = y - pred
            if self.subsample < 1.0 and len(y) > 8:
                idx = rng.choice(len(y), size=max(4, int(len(y) * self.subsample)), replace=False)
            else:
                idx = np.arange(len(y))
            tree = RegressionTree(self.max_depth, self.min_samples_leaf)
            tree.fit(X[idx], residual[idx])
            update = tree.predict(X)
            pred = pred + self.learning_rate * update
            self.trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        pred = np.full(len(X), self.base)
        for tree in self.trees:
            pred = pred + self.learning_rate * tree.predict(X)
        return pred

    def training_error(self, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean((self.predict(X) - np.asarray(y, dtype=np.float64)) ** 2))
