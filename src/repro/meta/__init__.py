"""The tensorization-aware auto-scheduler (paper §4)."""

from .autocopy import (
    schedule_default_spatial_cpu,
    schedule_default_spatial_gpu,
    schedule_fragment_copy,
    schedule_shared_copy,
)
from .cost_model import CostModel
from .feature import FEATURE_NAMES, extract_features
from .search import MeasureRecord, SearchStats, TuneResult, evolutionary_search
from .sketch import (
    CpuScalarSketch,
    CpuSdotSketch,
    GpuScalarSketch,
    Sketch,
    TensorCoreSketch,
    generate_sketches,
    main_block_of,
)
from .tune import tune

__all__ = [
    "tune",
    "evolutionary_search",
    "TuneResult",
    "MeasureRecord",
    "SearchStats",
    "CostModel",
    "extract_features",
    "FEATURE_NAMES",
    "Sketch",
    "TensorCoreSketch",
    "GpuScalarSketch",
    "CpuSdotSketch",
    "CpuScalarSketch",
    "generate_sketches",
    "main_block_of",
    "schedule_shared_copy",
    "schedule_fragment_copy",
    "schedule_default_spatial_gpu",
    "schedule_default_spatial_cpu",
]
