"""The tensorization-aware auto-scheduler (paper §4)."""

from ..obs import ObsConfig, Recorder, TrialRecord
from .autocopy import (
    schedule_default_spatial_cpu,
    schedule_default_spatial_gpu,
    schedule_fragment_copy,
    schedule_shared_copy,
)
from .config import TuneConfig
from .cost_model import CostModel
from .database import (
    Database,
    DatabaseEntry,
    PersistentDatabase,
    TuningDatabase,
    workload_key,
)
from .evaluator import (
    CandidateSpec,
    Evaluator,
    ProcessEvaluator,
    SerialEvaluator,
    ThreadEvaluator,
    get_evaluator,
    shutdown_evaluators,
)
from .feature import FEATURE_NAMES, extract_features
from .search import MeasureRecord, SearchStats, TuneResult, evolutionary_search
from .session import SessionReport, TaskReport, TuningSession, estimated_cost
from .sketch import (
    CpuScalarSketch,
    CpuSdotSketch,
    GpuScalarSketch,
    Sketch,
    TensorCoreSketch,
    generate_sketches,
    main_block_of,
)
from .telemetry import Span, Telemetry
from .tune import tune

__all__ = [
    "tune",
    "TuneConfig",
    "evolutionary_search",
    "TuneResult",
    "MeasureRecord",
    "SearchStats",
    "TuningSession",
    "SessionReport",
    "TaskReport",
    "Evaluator",
    "SerialEvaluator",
    "ThreadEvaluator",
    "ProcessEvaluator",
    "CandidateSpec",
    "get_evaluator",
    "shutdown_evaluators",
    "estimated_cost",
    "Database",
    "TuningDatabase",
    "PersistentDatabase",
    "DatabaseEntry",
    "workload_key",
    "Telemetry",
    "Span",
    "ObsConfig",
    "Recorder",
    "TrialRecord",
    "CostModel",
    "extract_features",
    "FEATURE_NAMES",
    "Sketch",
    "TensorCoreSketch",
    "GpuScalarSketch",
    "CpuSdotSketch",
    "CpuScalarSketch",
    "generate_sketches",
    "main_block_of",
    "schedule_shared_copy",
    "schedule_fragment_copy",
    "schedule_default_spatial_gpu",
    "schedule_default_spatial_cpu",
]
