"""AutoCopy: data movement as a first-class citizen (§4.3).

The sketch generator inserts copy blocks (via cache_read/cache_write)
whose signature only exposes the buffer access information; *how* the
copy happens is decided here, by a dedicated data-movement scheduler:

* copies into ``shared`` become cooperative fetches — all threads of the
  block participate, with a sampled vectorisation width;
* copies into/out of tensor-core fragments are tiled 16x16 and
  tensorized with the matching load/store intrinsic;
* leftover root-level spatial stages (padding, gathers, standalone
  epilogues) get a default fused+bound GPU spatial schedule or a
  parallel+vectorised CPU schedule.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..schedule import BlockRV, LoopRV, Schedule, ScheduleError
from ..tir import ForKind, const_int_value

__all__ = [
    "schedule_shared_copy",
    "schedule_fragment_copy",
    "schedule_default_spatial_gpu",
    "schedule_default_spatial_cpu",
    "own_loops",
]


def own_loops(sch: Schedule, block: BlockRV) -> List[LoopRV]:
    """The loops introduced for ``block`` itself (innermost run of
    serial loops directly enclosing it, one per block iterator)."""
    loops = sch.get_loops(block)
    n_iters = len(sch.block_of(block).iter_vars)
    return loops[-n_iters:] if n_iters else []


def schedule_shared_copy(
    sch: Schedule,
    copy_block: BlockRV,
    thread_y: int,
    thread_x: int = 32,
    vector_len: Optional[int] = None,
) -> None:
    """Cooperative fetch into shared memory.

    Fuses the copy loops and distributes them over (threadIdx.y,
    threadIdx.x) with an optional vectorised tail — the classic
    coalesced cooperative-fetch pattern.  ``vector_len`` may be sampled
    by the caller (a recorded decision).
    """
    from ..schedule import divisors_of

    loops = own_loops(sch, copy_block)
    fused = sch.fuse(*loops) if len(loops) > 1 else loops[0]
    total = const_int_value(sch.loop_of(fused).extent)
    if vector_len is None:
        vector_len = 1
    vector_len = max(1, min(vector_len, 8))
    while vector_len > 1 and total % vector_len != 0:
        vector_len //= 2
    rem = total // vector_len
    # Exact-divisor splits keep the bindings quasi-affine (no guard
    # predicates) — copies always have nicely composite extents.  The
    # thread extents must also divide the kernel's launch extents
    # (masked-subset consistency).
    tx = max(d for d in divisors_of(rem) if d <= thread_x and thread_x % d == 0)
    rem //= tx
    ty = max(d for d in divisors_of(rem) if d <= thread_y and thread_y % d == 0)
    factors = [None, ty, tx] + ([vector_len] if vector_len > 1 else [])
    parts = sch.split(fused, factors)
    if ty > 1:
        sch.bind(parts[1], "threadIdx.y")
    sch.bind(parts[2], "threadIdx.x")
    if vector_len > 1:
        sch.vectorize(parts[-1])


def schedule_fragment_copy(sch: Schedule, copy_block: BlockRV, intrin_name: str) -> None:
    """Tile a fragment load/store 16x16 and tensorize it with the
    matching data-movement intrinsic (wmma load/store)."""
    loops = own_loops(sch, copy_block)
    if len(loops) < 2:
        raise ScheduleError("fragment copy must be at least 2-D")
    m, n = loops[-2], loops[-1]
    me = const_int_value(sch.loop_of(m).extent)
    ne = const_int_value(sch.loop_of(n).extent)
    if me is None or ne is None or me % 16 or ne % 16:
        raise ScheduleError(
            f"fragment copy tile {me}x{ne} is not a multiple of 16x16"
        )
    mo, mi = sch.split(m, [None, 16])
    no, ni = sch.split(n, [None, 16])
    sch.reorder(mo, no, mi, ni)
    sch.tensorize(mi, intrin_name)


def schedule_default_spatial_gpu(
    sch: Schedule, block: BlockRV, threads: int = 256, vector_len: int = 1
) -> None:
    """Default schedule for a leftover root-level spatial stage: fuse,
    bind a (blockIdx.x, threadIdx.x) grid, optionally vectorise."""
    loops = own_loops(sch, block)
    blk = sch.block_of(block)
    if blk.is_reduction:
        # reduce iterators cannot be fused into the thread grid; keep
        # them serial inside.
        spatial = [
            lp
            for lp, iv in zip(loops, blk.iter_vars)
            if iv.is_spatial
        ]
    else:
        spatial = list(loops)
    if not spatial:
        return
    from ..schedule import divisors_of

    fused = sch.fuse(*spatial) if len(spatial) > 1 else spatial[0]
    total = const_int_value(sch.loop_of(fused).extent)
    vector_len = max(1, vector_len)
    while vector_len > 1 and total % vector_len != 0:
        vector_len //= 2
    rem = total // vector_len
    threads = max(d for d in divisors_of(rem) if d <= threads)
    factors = [None, threads] + ([vector_len] if vector_len > 1 else [])
    parts = sch.split(fused, factors)
    sch.bind(parts[0], "blockIdx.x")
    sch.bind(parts[1], "threadIdx.x")
    if vector_len > 1:
        sch.vectorize(parts[-1])


def schedule_default_spatial_cpu(
    sch: Schedule, block: BlockRV, vector_len: int = 8
) -> None:
    """Default CPU stage schedule: parallel outer, vectorised inner."""
    loops = own_loops(sch, block)
    blk = sch.block_of(block)
    spatial = [lp for lp, iv in zip(loops, blk.iter_vars) if iv.is_spatial]
    if not spatial:
        return
    if len(spatial) > 1:
        sch.parallel(spatial[0])
        inner = spatial[-1]
    else:
        inner = spatial[0]
    extent = const_int_value(sch.loop_of(inner).extent)
    while vector_len > 1 and extent % vector_len != 0:
        vector_len //= 2
    if vector_len > 1 and inner is not spatial[0]:
        _, vec = sch.split(inner, [None, vector_len])
        sch.vectorize(vec)
