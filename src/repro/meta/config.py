"""Tuning configuration shared by the whole §4 search stack.

``TuneConfig`` replaces the kwarg lists that used to grow on ``tune``
and ``evolutionary_search``; the same object parameterises a
:class:`~repro.meta.session.TuningSession`, so one config describes a
search whether it runs on one operator or an entire network.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence, TYPE_CHECKING

from ..obs.config import ObsConfig

if TYPE_CHECKING:  # pragma: no cover
    from .evaluator import Evaluator
    from .sketch import Sketch

__all__ = ["TuneConfig"]


@dataclass(frozen=True)
class TuneConfig:
    """Search-budget and search-space settings for one tuning run.

    * ``trials`` — measured-candidate budget per workload (a session may
      override it per task when given a total budget to allocate).
    * ``seed`` — RNG seed; identical (workload, config) pairs reproduce
      identical searches regardless of scheduling order.
    * ``allow_tensorize`` — switch auto-tensorization off to get the
      Ansor/TVM baseline configuration.
    * ``sketches`` — explicit sketch list; ``None`` generates the
      applicable sketches (§4.3).
    * ``validate`` — reject invalid mutants before measuring (§3.3).
    * ``population`` / ``generations`` — evolutionary-search shape.
    * ``search_workers`` — evaluation-pool width inside one search.
      ``1`` (default) is the exact serial path; ``>1`` builds and
      validates candidates in batches on a worker pool.  Candidate
      specs are drawn serially and results consumed in submission
      order, so results are identical for any worker count.
    * ``evaluator`` — which backend runs those builds: ``"auto"``
      (serial for one worker, threads otherwise), ``"serial"``,
      ``"threads"``, ``"processes"``, or a ready
      :class:`repro.meta.evaluator.Evaluator` instance (caller-owned).
      Backends never change what the search finds — only where the
      work runs.
    * ``obs`` — flight-recorder settings (:class:`repro.obs.ObsConfig`):
      event stream + sink, per-trial provenance, live callbacks.
      Disabled by default; recording never changes search results (it
      consumes no search RNG).
    """

    trials: int = 32
    seed: int = 0
    allow_tensorize: bool = True
    sketches: Optional[Sequence["Sketch"]] = None
    validate: bool = True
    population: int = 8
    generations: Optional[int] = None
    search_workers: int = 1
    evaluator: "str | Evaluator" = "auto"
    obs: ObsConfig = ObsConfig()

    def __post_init__(self) -> None:
        if isinstance(self.evaluator, str):
            from .evaluator import EVALUATOR_KINDS

            if self.evaluator not in EVALUATOR_KINDS:
                raise ValueError(
                    f"evaluator must be one of {', '.join(EVALUATOR_KINDS)} "
                    f"or an Evaluator instance, got {self.evaluator!r}"
                )
        else:
            from .evaluator import Evaluator

            if not isinstance(self.evaluator, Evaluator):
                raise TypeError(
                    "evaluator must be a backend name or an "
                    f"Evaluator instance, got {type(self.evaluator).__name__}"
                )

    def with_(self, **changes) -> "TuneConfig":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def field_names(cls) -> tuple:
        return tuple(f.name for f in dataclasses.fields(cls))

    @classmethod
    def from_kwargs(cls, base: Optional["TuneConfig"] = None, **kwargs) -> "TuneConfig":
        """Build a config from legacy keyword arguments (the shim path).

        Unknown keys raise ``TypeError`` exactly like a bad kwarg would
        have under the old signatures.
        """
        known = set(cls.field_names())
        bad = sorted(set(kwargs) - known)
        if bad:
            raise TypeError(f"unknown tuning option(s): {', '.join(bad)}")
        return (base or cls()).with_(**kwargs)
