"""The learned cost model driving evolutionary search (§4.4).

Wraps the from-scratch GBDT over program features.  The model predicts a
*score* (negative log-cycles, so higher is better) and is updated online
with every batch of measured candidates, mirroring the paper's
measure-and-update loop.  Before any data arrives the model falls back
to ranking by the analytical estimate's feature proxy (random, in
effect) — the search still works, just less guided.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..learn import GradientBoostedTrees
from ..sim.target import Target
from ..tir import PrimFunc
from .feature import extract_features

__all__ = ["CostModel"]


class CostModel:
    def __init__(self, target: Target, seed: int = 0, min_data: int = 8, recorder=None):
        self.target = target
        self.min_data = min_data
        self._X: List[np.ndarray] = []
        self._y: List[float] = []
        self._model: Optional[GradientBoostedTrees] = None
        self._seed = seed
        #: optional :class:`repro.obs.Recorder` — every refit is emitted
        #: as a ``model-update`` event on the flight recording.
        self.recorder = recorder

    @property
    def n_samples(self) -> int:
        return len(self._y)

    @property
    def is_trained(self) -> bool:
        return self._model is not None

    def features(self, func: PrimFunc) -> np.ndarray:
        return extract_features(func, self.target)

    def update(self, funcs: Sequence[PrimFunc], cycles: Sequence[float]) -> None:
        """Record measured results and refit."""
        for func, c in zip(funcs, cycles):
            self._X.append(self.features(func))
            self._y.append(-math.log(max(c, 1.0)))  # higher = faster
        if len(self._y) >= self.min_data:
            X = np.stack(self._X)
            y = np.array(self._y)
            self._model = GradientBoostedTrees(
                n_trees=40, learning_rate=0.2, max_depth=4, seed=self._seed
            ).fit(X, y)
        if self.recorder is not None:
            self.recorder.model_update(len(self._y), self._model is not None)

    def predict(self, funcs: Sequence[PrimFunc], executor=None) -> np.ndarray:
        """Predicted scores (higher = better).

        Pass a ``concurrent.futures`` executor to extract features in
        parallel; ``executor.map`` preserves input order, so results are
        identical to the serial path.
        """
        if executor is not None and len(funcs) > 1:
            feats = np.stack(list(executor.map(self.features, funcs)))
        else:
            feats = np.stack([self.features(f) for f in funcs])
        if self._model is None:
            return np.zeros(len(funcs))
        return self._model.predict(feats)
