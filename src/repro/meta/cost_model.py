"""The learned cost model driving evolutionary search (§4.4).

Wraps the from-scratch GBDT over program features.  The model predicts a
*score* (negative log-cycles, so higher is better) and is updated online
with every batch of measured candidates, mirroring the paper's
measure-and-update loop.  Before any data arrives the model falls back
to ranking by the analytical estimate's feature proxy (random, in
effect) — the search still works, just less guided.
"""

from __future__ import annotations

import math
import threading
from typing import List, Optional, Sequence

import numpy as np

from ..learn import GradientBoostedTrees
from ..sim.target import Target
from ..tir import PrimFunc
from .feature import extract_features

__all__ = ["CostModel"]


class CostModel:
    def __init__(self, target: Target, seed: int = 0, min_data: int = 8, recorder=None):
        self.target = target
        self.min_data = min_data
        self._X: List[np.ndarray] = []
        self._y: List[float] = []
        self._model: Optional[GradientBoostedTrees] = None
        self._seed = seed
        #: optional :class:`repro.obs.Recorder` — every refit is emitted
        #: as a ``model-update`` event on the flight recording.
        self.recorder = recorder
        self._pending: Optional[threading.Thread] = None
        self._pending_model: Optional[GradientBoostedTrees] = None

    @property
    def n_samples(self) -> int:
        return len(self._y)

    @property
    def is_trained(self) -> bool:
        return self._model is not None

    def features(self, func: PrimFunc) -> np.ndarray:
        return extract_features(func, self.target)

    def _append(self, funcs: Sequence[PrimFunc], cycles: Sequence[float]) -> bool:
        """Absorb measurements; emit the recorder event *now* (so the
        flight recording's event order never depends on when a refit
        actually runs) and report whether a refit is due."""
        for func, c in zip(funcs, cycles):
            self._X.append(self.features(func))
            self._y.append(-math.log(max(c, 1.0)))  # higher = faster
        due = len(self._y) >= self.min_data
        if self.recorder is not None:
            self.recorder.model_update(len(self._y), due or self._model is not None)
        return due

    def _fit(self) -> GradientBoostedTrees:
        X = np.stack(self._X)
        y = np.array(self._y)
        return GradientBoostedTrees(
            n_trees=40, learning_rate=0.2, max_depth=4, seed=self._seed
        ).fit(X, y)

    def update(self, funcs: Sequence[PrimFunc], cycles: Sequence[float]) -> None:
        """Record measured results and refit."""
        self.commit_update()
        if self._append(funcs, cycles):
            self._model = self._fit()

    def update_async(self, funcs: Sequence[PrimFunc], cycles: Sequence[float]) -> None:
        """Like :meth:`update`, but the refit runs on a background
        thread so the caller can overlap it with other work (candidate
        evaluation on a pool, say).

        Deterministic by construction: the fit is a pure function of the
        accumulated ``(X, y, seed)``, which this thread finalizes before
        spawning, and :meth:`commit_update` installs the result before
        the next prediction.  Only the *wall-clock overlap* differs from
        the synchronous path — never a predicted score.
        """
        self.commit_update()
        if not self._append(funcs, cycles):
            return
        snapshot_len = len(self._y)

        def fit() -> None:
            # _X/_y only grow, and only after commit_update() joins this
            # thread — the slices below are stable.
            assert len(self._y) == snapshot_len
            self._pending_model = self._fit()

        self._pending = threading.Thread(
            target=fit, name="cost-model-fit", daemon=True
        )
        self._pending.start()

    def commit_update(self) -> None:
        """Install any refit still in flight; must run before the model
        is next read (predict) or written (update)."""
        if self._pending is not None:
            self._pending.join()
            self._pending = None
            if self._pending_model is not None:
                self._model = self._pending_model
                self._pending_model = None

    def predict(
        self, funcs: Sequence[PrimFunc], executor=None, features=None
    ) -> np.ndarray:
        """Predicted scores (higher = better).

        ``features`` — pre-extracted vectors (one per func), e.g. from
        :meth:`repro.meta.evaluator.Evaluator.map_features` — skips
        inline extraction entirely.  Alternatively pass a
        ``concurrent.futures`` executor to extract in parallel here;
        both preserve input order, so results are identical to the
        serial path.
        """
        self.commit_update()
        if features is not None and len(features) == len(funcs):
            feats = np.stack(list(features))
        elif executor is not None and len(funcs) > 1:
            feats = np.stack(list(executor.map(self.features, funcs)))
        else:
            feats = np.stack([self.features(f) for f in funcs])
        if self._model is None:
            return np.zeros(len(funcs))
        return self._model.predict(feats)
