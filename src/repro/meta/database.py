"""Tuning-record database.

§5.2: "TensorIR can eliminate search time further by caching historical
cost models and search records.  So no search is needed to build a model
for an operator already tuned."

Records are keyed by a structural hash of the workload (shape, dtypes
and computation pattern) and the target, and store the sketch name plus
the decision vector; ``lookup`` replays the decisions through the sketch
to rebuild the exact best program with zero measurements.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Tuple

from ..schedule import Schedule, ScheduleError
from ..sim import Target
from ..tir import PrimFunc
from ..tir.printer import script

__all__ = ["workload_key", "TuningDatabase"]


def workload_key(func: PrimFunc, target: Target) -> str:
    """A stable key for (workload, target): hash of the script text
    (names included — the builder generates them deterministically) and
    the target name."""
    digest = hashlib.sha256()
    digest.update(script(func).encode())
    digest.update(target.name.encode())
    return digest.hexdigest()[:24]


class TuningDatabase:
    """A JSON-file-backed store of best-found schedules."""

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._records: Dict[str, dict] = {}
        if path and os.path.exists(path):
            with open(path) as f:
                self._records = json.load(f)

    def __len__(self) -> int:
        return len(self._records)

    def save(self) -> None:
        if self.path:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            with open(self.path, "w") as f:
                json.dump(self._records, f, indent=1)

    # ------------------------------------------------------------------
    def record(
        self,
        func: PrimFunc,
        target: Target,
        sketch_name: str,
        decisions: List[object],
        cycles: float,
    ) -> None:
        """Store a result if it beats the stored one for this workload."""
        key = workload_key(func, target)
        existing = self._records.get(key)
        if existing is not None and existing["cycles"] <= cycles:
            return
        self._records[key] = {
            "workload": func.name,
            "target": target.name,
            "sketch": sketch_name,
            "decisions": decisions,
            "cycles": cycles,
        }

    def lookup(self, func: PrimFunc, target: Target):
        """The stored record for this workload, or None."""
        return self._records.get(workload_key(func, target))

    def replay(self, func: PrimFunc, target: Target) -> Optional[Schedule]:
        """Rebuild the stored best schedule (no search, no measurement)."""
        record = self.lookup(func, target)
        if record is None:
            return None
        from .sketch import (
            CpuScalarSketch,
            CpuSdotSketch,
            GpuScalarSketch,
            TensorCoreSketch,
        )

        sketches = {
            "tensor-core": TensorCoreSketch,
            "gpu-scalar": GpuScalarSketch,
            "cpu-sdot": CpuSdotSketch,
            "cpu-scalar": CpuScalarSketch,
        }
        cls = sketches.get(record["sketch"])
        if cls is None:
            return None
        sch = Schedule(func, seed=0, record_trace=False)
        sch.forced_decisions = list(record["decisions"])
        try:
            cls().apply(sch)
        except ScheduleError:
            return None
        return sch
