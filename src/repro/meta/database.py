"""Tuning-record database.

§5.2: "TensorIR can eliminate search time further by caching historical
cost models and search records.  So no search is needed to build a model
for an operator already tuned."

Records are keyed by :func:`workload_key` — a stable structural hash of
(workload, target) that is **public API**: a
:class:`~repro.meta.session.TuningSession` uses it to deduplicate
repeated layers before searching, and external tools may use it to
shard or merge databases.  ``lookup`` returns a typed
:class:`DatabaseEntry`; ``replay`` re-applies the stored decisions
through the sketch to rebuild the exact best program with zero
measurements.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from ..schedule import Schedule, ScheduleError
from ..sim import Target
from ..tir import PrimFunc
from ..tir.printer import script

__all__ = ["workload_key", "DatabaseEntry", "TuningDatabase"]


def workload_key(func: PrimFunc, target: Target) -> str:
    """A stable key for (workload, target): hash of the script text
    (names included — the builder generates them deterministically) and
    the target name.

    Public API: identical keys mean a tuned record for one workload is
    exactly replayable for the other, which is what session-level
    deduplication relies on.
    """
    digest = hashlib.sha256()
    digest.update(script(func).encode())
    digest.update(target.name.encode())
    return digest.hexdigest()[:24]


@dataclass(frozen=True)
class DatabaseEntry:
    """One stored tuning record (the typed result of ``lookup``)."""

    key: str
    workload: str
    target: str
    sketch: str
    decisions: List[object]
    cycles: float
    #: where the record came from: ``"search"`` for a fresh tuning run,
    #: ``"session"`` for a session-recorded result, ``"disk"`` when
    #: loaded from a persisted database file.
    provenance: str = "search"

    def to_record(self) -> dict:
        record = asdict(self)
        record.pop("key")
        return record


class TuningDatabase:
    """A JSON-file-backed store of best-found schedules."""

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._entries: Dict[str, DatabaseEntry] = {}
        if path and os.path.exists(path):
            with open(path) as f:
                for key, record in json.load(f).items():
                    record.setdefault("provenance", "disk")
                    self._entries[key] = DatabaseEntry(key=key, **record)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def entries(self) -> List[DatabaseEntry]:
        return list(self._entries.values())

    def save(self) -> None:
        if self.path:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            with open(self.path, "w") as f:
                json.dump(
                    {k: e.to_record() for k, e in self._entries.items()}, f, indent=1
                )

    # ------------------------------------------------------------------
    def record(
        self,
        func: PrimFunc,
        target: Target,
        sketch_name: str,
        decisions: List[object],
        cycles: float,
        provenance: str = "search",
    ) -> DatabaseEntry:
        """Store a result if it beats the stored one for this workload;
        returns the entry now held for the workload."""
        key = workload_key(func, target)
        existing = self._entries.get(key)
        if existing is not None and existing.cycles <= cycles:
            return existing
        entry = DatabaseEntry(
            key=key,
            workload=func.name,
            target=target.name,
            sketch=sketch_name,
            decisions=list(decisions),
            cycles=cycles,
            provenance=provenance,
        )
        self._entries[key] = entry
        return entry

    def lookup(self, func: PrimFunc, target: Target) -> Optional[DatabaseEntry]:
        """The stored entry for this workload, or None."""
        return self._entries.get(workload_key(func, target))

    def lookup_key(self, key: str) -> Optional[DatabaseEntry]:
        """The stored entry for a pre-computed :func:`workload_key`."""
        return self._entries.get(key)

    def replay(self, func: PrimFunc, target: Target) -> Optional[Schedule]:
        """Rebuild the stored best schedule (no search, no measurement)."""
        entry = self.lookup(func, target)
        if entry is None:
            return None
        from .sketch import (
            CpuScalarSketch,
            CpuSdotSketch,
            GpuScalarSketch,
            TensorCoreSketch,
        )

        sketches = {
            "tensor-core": TensorCoreSketch,
            "gpu-scalar": GpuScalarSketch,
            "cpu-sdot": CpuSdotSketch,
            "cpu-scalar": CpuScalarSketch,
        }
        cls = sketches.get(entry.sketch)
        if cls is None:
            return None
        sch = Schedule(func, seed=0, record_trace=False)
        sch.forced_decisions = list(entry.decisions)
        try:
            cls().apply(sch)
        except ScheduleError:
            return None
        return sch
