"""Tuning-record databases: the unified ``Database`` protocol, the
in-memory backend, and the persistent on-disk backend.

§5.2: "TensorIR can eliminate search time further by caching historical
cost models and search records.  So no search is needed to build a model
for an operator already tuned."

Records are keyed by :func:`workload_key` — a stable structural hash of
(workload, target) that is **public API**: a
:class:`~repro.meta.session.TuningSession` uses it to deduplicate
repeated layers before searching, external tools may use it to shard or
merge databases, and the schedule server (:mod:`repro.serve`) uses it to
coalesce concurrent cache-miss requests.

The access surface is one typed protocol — :class:`Database` with
``get`` / ``put`` / ``evict`` / ``keys`` — implemented by both
:class:`TuningDatabase` (in-memory, optional legacy single-JSON-file
persistence) and :class:`PersistentDatabase` (a JSONL-per-entry
directory with atomic commits, TTL/LRU eviction and corrupt-entry
recovery).  The old lookup spellings (``lookup``, ``lookup_key``,
direct ``_entries`` access) remain as deprecation shims.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
import warnings
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional

from .. import cache as _cache
from ..diagnostics import DiagnosticContext
from ..schedule import Schedule, ScheduleError
from ..schedule.validation import _names_fingerprint
from ..sim import Target
from ..tir import PrimFunc, structural_hash
from ..tir.printer import script

__all__ = [
    "workload_key",
    "DatabaseEntry",
    "Database",
    "TuningDatabase",
    "PersistentDatabase",
    "DB_SCHEMA",
]

#: on-disk record schema identifier; bump on breaking layout changes.
#: Loaders skip records from an unknown major schema with a diagnostic
#: instead of crashing, so mixed-version directories stay readable.
DB_SCHEMA = "repro.db/1"

_LOOKUP_DEPRECATED_MSG = (
    "TuningDatabase.lookup/lookup_key are deprecated; use the Database "
    "protocol instead: db.get(workload_key(func, target)) or db.get(key)"
)


#: memoized key computation — serializing the full function on every
#: database/serve lookup is the hot cost; the memo key is the same
#: (alpha-invariant hash, name fingerprint, target) triple the verify
#: cache uses, so structurally-equal-but-renamed functions never alias.
_KEY_CACHE = _cache.MemoCache("meta.workload_key", maxsize=8192)


def workload_key(func: PrimFunc, target: Target) -> str:
    """A stable key for (workload, target): hash of the script text
    (names included — the builder generates them deterministically) and
    the target name.

    Public API: identical keys mean a tuned record for one workload is
    exactly replayable for the other, which is what session-level
    deduplication — and the schedule server's request coalescing —
    relies on.  The serialization is memoized per process on
    ``structural_hash`` plus a name fingerprint (the exact content the
    script adds over structure), so repeat lookups on the serve path
    skip the full-function print.
    """
    if not _cache.caches_enabled():
        return _workload_key_impl(func, target)
    cache_key = (structural_hash(func), _names_fingerprint(func), target.name)
    hit = _KEY_CACHE.lookup(cache_key)
    if hit is not _cache.MISS:
        return hit
    value = _workload_key_impl(func, target)
    _KEY_CACHE.put(cache_key, value)
    return value


def _workload_key_impl(func: PrimFunc, target: Target) -> str:
    digest = hashlib.sha256()
    digest.update(script(func).encode())
    digest.update(target.name.encode())
    return digest.hexdigest()[:24]


@dataclass(frozen=True)
class DatabaseEntry:
    """One stored tuning record (the typed result of ``get``)."""

    key: str
    workload: str
    target: str
    sketch: str
    decisions: List[object]
    cycles: float
    #: where the record came from: ``"search"`` for a fresh tuning run,
    #: ``"session"`` for a session-recorded result, ``"serve"`` for a
    #: schedule-server miss, ``"disk"`` when loaded from a persisted
    #: database file.
    provenance: str = "search"
    #: alpha-invariant hash of the *base* workload function — a second
    #: identity check alongside the script-text key, so a persisted
    #: record is never replayed onto a structurally different workload.
    structural_hash: Optional[int] = None
    #: the winning schedule trace (:meth:`repro.schedule.Trace.to_json`)
    #: when the recorder captured one — lets external tools re-derive
    #: the program without knowing the sketch registry.
    trace: Optional[dict] = None

    def to_record(self) -> dict:
        record = asdict(self)
        record.pop("key")
        return record


class Database:
    """The typed store protocol every backend implements.

    Four primitives — ``get`` / ``put`` / ``evict`` / ``keys`` — plus
    shared conveniences (``record``, ``replay``, ``entries``) built on
    them.  Subclasses only implement the primitives; everything keyed
    flows through them, so an on-disk backend inherits record/replay
    for free.
    """

    # -- the protocol ---------------------------------------------------
    def get(self, key: str) -> Optional[DatabaseEntry]:
        """The stored entry for a :func:`workload_key`, or ``None``."""
        raise NotImplementedError

    def put(self, entry: DatabaseEntry) -> DatabaseEntry:
        """Store ``entry`` if it beats the stored one for its key;
        returns the entry now held for the key."""
        raise NotImplementedError

    def evict(self, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        raise NotImplementedError

    def keys(self) -> List[str]:
        """Every stored workload key (stable order)."""
        raise NotImplementedError

    # -- shared conveniences --------------------------------------------
    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def entries(self) -> List[DatabaseEntry]:
        return [e for e in (self.get(k) for k in self.keys()) if e is not None]

    def record(
        self,
        func: PrimFunc,
        target: Target,
        sketch_name: str,
        decisions: List[object],
        cycles: float,
        provenance: str = "search",
        trace: Optional[dict] = None,
    ) -> DatabaseEntry:
        """Store a result if it beats the stored one for this workload;
        returns the entry now held for the workload."""
        from ..tir import structural_hash

        return self.put(
            DatabaseEntry(
                key=workload_key(func, target),
                workload=func.name,
                target=target.name,
                sketch=sketch_name,
                decisions=list(decisions),
                cycles=cycles,
                provenance=provenance,
                structural_hash=structural_hash(func),
                trace=trace,
            )
        )

    def replay(self, func: PrimFunc, target: Target) -> Optional[Schedule]:
        """Rebuild the stored best schedule (no search, no measurement)."""
        entry = self.get(workload_key(func, target))
        if entry is None:
            return None
        return self.replay_entry(func, entry)

    def replay_entry(
        self,
        func: PrimFunc,
        entry: DatabaseEntry,
        *,
        decision_mode: str = "strict",
        ctx: Optional[DiagnosticContext] = None,
    ) -> Optional[Schedule]:
        """Apply one stored record's sketch + decision vector to ``func``.

        ``func`` need not be the function the entry was recorded for:
        with ``decision_mode="adapt"`` this is §5.2 forced-decision
        replay across a shape bucket — each stored decision is coerced
        to the nearest feasible choice at ``func``'s extents, and a
        sketch constraint that cannot hold at the new shape surfaces as
        ``None`` with a ``TIR701`` diagnostic in ``ctx``.
        """
        from .sketch import (
            CpuScalarSketch,
            CpuSdotSketch,
            GpuScalarSketch,
            TensorCoreSketch,
        )

        sketches = {
            "tensor-core": TensorCoreSketch,
            "gpu-scalar": GpuScalarSketch,
            "cpu-sdot": CpuSdotSketch,
            "cpu-scalar": CpuScalarSketch,
        }
        cls = sketches.get(entry.sketch)
        if cls is None:
            return None
        sch = Schedule(func, seed=0, record_trace=False)
        sch.decision_mode = decision_mode
        sch.forced_decisions = list(entry.decisions)
        try:
            cls().apply(sch)
        except ScheduleError as err:
            if ctx is not None:
                ctx.emit(
                    "TIR701",
                    f"stored decisions for {entry.key} are infeasible at the "
                    f"shape of {func.name}: {err}",
                    func=func,
                )
            return None
        return sch

    def replay_bucketed(
        self,
        bucketed,
        target: Target,
        *,
        ctx: Optional[DiagnosticContext] = None,
    ) -> Optional[Schedule]:
        """Replay the bucket representative's record at the concrete shape.

        ``bucketed`` is a :class:`~repro.frontend.shapes.BucketedWorkload`;
        the lookup key is the *representative*'s, the schedule is built
        for the *concrete* function.  Degenerate buckets (representative
        == concrete) replay strictly.
        """
        entry = self.get(workload_key(bucketed.representative, target))
        if entry is None:
            return None
        mode = "adapt" if bucketed.bucketed else "strict"
        return self.replay_entry(bucketed.concrete, entry, decision_mode=mode, ctx=ctx)

    # -- deprecation shims ----------------------------------------------
    def lookup(self, func: PrimFunc, target: Target) -> Optional[DatabaseEntry]:
        """Deprecated: use ``get(workload_key(func, target))``."""
        warnings.warn(_LOOKUP_DEPRECATED_MSG, DeprecationWarning, stacklevel=2)
        return self.get(workload_key(func, target))

    def lookup_key(self, key: str) -> Optional[DatabaseEntry]:
        """Deprecated: use ``get(key)``."""
        warnings.warn(_LOOKUP_DEPRECATED_MSG, DeprecationWarning, stacklevel=2)
        return self.get(key)


class TuningDatabase(Database):
    """The in-memory backend (optionally snapshotted to one JSON file).

    ``path`` keeps the legacy whole-database single-file persistence:
    loaded eagerly at construction, written only on :meth:`save`.  For
    incremental, crash-safe, multi-process-friendly persistence use
    :class:`PersistentDatabase`.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._store: Dict[str, DatabaseEntry] = {}
        self._lock = threading.Lock()
        if path and os.path.exists(path):
            with open(path) as f:
                for key, record in json.load(f).items():
                    record.setdefault("provenance", "disk")
                    self._store[key] = DatabaseEntry(key=key, **record)

    # -- the protocol ---------------------------------------------------
    def get(self, key: str) -> Optional[DatabaseEntry]:
        with self._lock:
            return self._store.get(key)

    def put(self, entry: DatabaseEntry) -> DatabaseEntry:
        with self._lock:
            existing = self._store.get(entry.key)
            if existing is not None and existing.cycles <= entry.cycles:
                return existing
            self._store[entry.key] = entry
            return entry

    def evict(self, key: str) -> bool:
        with self._lock:
            return self._store.pop(key, None) is not None

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._store)

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._store

    def save(self) -> None:
        if self.path:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            with self._lock:
                payload = {k: e.to_record() for k, e in self._store.items()}
            with open(self.path, "w") as f:
                json.dump(payload, f, indent=1)

    @property
    def _entries(self) -> Dict[str, DatabaseEntry]:
        """Deprecated: the raw store was never API; use the protocol."""
        warnings.warn(
            "TuningDatabase._entries is deprecated; use get/put/evict/keys",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._store


@dataclass
class _LruState:
    """Per-key access bookkeeping for the persistent backend."""

    last_access: float
    stored_at: float
    hits: int = 0


class PersistentDatabase(Database):
    """A durable on-disk database: one JSONL file per entry.

    Layout under ``root``::

        root/
          entries/<workload_key>.jsonl   # one versioned record per line
          lru.json                       # access bookkeeping (best-effort)

    Contracts:

    * **Atomic commits** — every :meth:`put` writes the full entry file
      to a temp file in the same directory and ``os.replace``s it into
      place, so a crashed writer can never leave a truncated record.
      Persistence is *incremental*: the entry is durable the moment
      ``put`` returns, which is what lets a tuning session commit each
      task as it finishes.
    * **Corruption recovery** — a truncated or unparseable JSONL line is
      skipped with a diagnostic (collected in :attr:`diagnostics`),
      never a crash; the last valid line in a file wins, so an appended
      half-line cannot shadow a good record.
    * **Versioned schema** — each line carries ``schema``; records from
      an unknown major version are skipped with a diagnostic.
    * **TTL / LRU eviction** — ``ttl_seconds`` expires entries not
      accessed within the window (:meth:`evict_expired`, also applied
      lazily on ``get``); ``max_entries`` bounds the store, evicting the
      least-recently-used key on overflow.  Access times persist in
      ``lru.json`` (best-effort: bookkeeping loss degrades eviction
      ordering, never correctness).
    """

    def __init__(
        self,
        root: str,
        *,
        ttl_seconds: Optional[float] = None,
        max_entries: Optional[int] = None,
        clock=time.time,
    ):
        self.root = root
        self.ttl_seconds = ttl_seconds
        self.max_entries = max_entries
        self._clock = clock
        self._lock = threading.RLock()
        #: human-readable notes about skipped/corrupt records, in scan order.
        self.diagnostics: List[str] = []
        #: corrupt/skipped records recovered (scan + reload) — mirrors
        #: into the bound metrics counter.
        self._recovered = 0
        # metrics instruments (duck-typed — see :meth:`bind_metrics`);
        # unbound, the storage path pays a single None check.
        self._m_get = None
        self._m_put = None
        self._m_corrupt = None
        self._m_evictions = None
        self._m_tick = 0  # get-latency sampling counter (1-in-8)
        self._cache: Dict[str, DatabaseEntry] = {}
        self._lru: Dict[str, _LruState] = {}
        os.makedirs(self._entries_dir, exist_ok=True)
        self._load_lru()
        self._scan()

    # -- metrics binding -------------------------------------------------
    def bind_metrics(self, registry) -> None:
        """Bind serving metrics (duck-typed against
        :class:`repro.obs.metrics.MetricsRegistry` so the storage layer
        carries no obs dependency): get/put latency histograms,
        corrupt-line recoveries, evictions labeled by reason
        (``ttl`` / ``lru`` / ``explicit``), and a live entry-count
        gauge.  Recoveries already seen (the construction-time scan)
        are backfilled into the counter."""
        if not getattr(registry, "enabled", True) or self._m_get is not None:
            return
        # ``.labels()`` on an unlabeled family resolves its single child
        # instrument — bound once here so the per-get observe skips the
        # family proxy on the warm-hit path.
        self._m_get = registry.histogram(
            "db_get_seconds", "persistent database get latency (1-in-8 sampled)"
        ).labels()
        self._m_put = registry.histogram(
            "db_put_seconds", "persistent database put latency (incl. fsync path)"
        ).labels()
        self._m_corrupt = registry.counter(
            "db_corrupt_lines_total", "corrupt/skipped records recovered"
        )
        self._m_evictions = registry.counter(
            "db_evictions_total", "entries evicted by reason", labels=("reason",)
        )
        registry.gauge(
            "db_entries", "entries in the persistent database",
            fn=lambda: len(self._cache),
        )
        if self._recovered:
            self._m_corrupt.inc(self._recovered)

    def _note_recovery(self, message: str) -> None:
        self.diagnostics.append(message)
        self._recovered += 1
        if self._m_corrupt is not None:
            self._m_corrupt.inc()

    # -- layout ---------------------------------------------------------
    @property
    def _entries_dir(self) -> str:
        return os.path.join(self.root, "entries")

    @property
    def _lru_path(self) -> str:
        return os.path.join(self.root, "lru.json")

    def _entry_path(self, key: str) -> str:
        return os.path.join(self._entries_dir, f"{key}.jsonl")

    # -- loading --------------------------------------------------------
    def _parse_line(self, path: str, lineno: int, line: str) -> Optional[DatabaseEntry]:
        line = line.strip()
        if not line:
            return None
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            self._note_recovery(
                f"{os.path.basename(path)}:{lineno}: truncated/corrupt JSONL "
                "line skipped"
            )
            return None
        schema = data.get("schema")
        if schema is not None and str(schema).split("/")[0] != DB_SCHEMA.split("/")[0]:
            self._note_recovery(
                f"{os.path.basename(path)}:{lineno}: unknown schema "
                f"{schema!r} skipped"
            )
            return None
        try:
            known = {f for f in DatabaseEntry.__dataclass_fields__}
            fields = {k: v for k, v in data.items() if k in known}
            fields.setdefault("provenance", "disk")
            return DatabaseEntry(**fields)
        except (TypeError, KeyError):
            self._note_recovery(
                f"{os.path.basename(path)}:{lineno}: record missing required "
                "fields, skipped"
            )
            return None

    def _load_entry_file(self, path: str) -> Optional[DatabaseEntry]:
        """The last valid line of one entry file (line order = history)."""
        best: Optional[DatabaseEntry] = None
        try:
            with open(path) as f:
                for lineno, line in enumerate(f, 1):
                    entry = self._parse_line(path, lineno, line)
                    if entry is not None:
                        best = entry
        except OSError as err:
            self.diagnostics.append(f"{os.path.basename(path)}: unreadable ({err})")
        return best

    def _scan(self) -> None:
        now = self._clock()
        for name in sorted(os.listdir(self._entries_dir)):
            if not name.endswith(".jsonl"):
                continue
            entry = self._load_entry_file(os.path.join(self._entries_dir, name))
            if entry is None:
                continue
            key = name[: -len(".jsonl")]
            if entry.key != key:
                self._note_recovery(
                    f"{name}: record key {entry.key!r} does not match "
                    "filename, skipped"
                )
                continue
            self._cache[key] = entry
            self._lru.setdefault(key, _LruState(last_access=now, stored_at=now))

    def _load_lru(self) -> None:
        if not os.path.exists(self._lru_path):
            return
        try:
            with open(self._lru_path) as f:
                data = json.load(f)
            for key, state in data.items():
                self._lru[key] = _LruState(
                    last_access=float(state.get("last_access", 0.0)),
                    stored_at=float(state.get("stored_at", 0.0)),
                    hits=int(state.get("hits", 0)),
                )
        except (json.JSONDecodeError, OSError, TypeError, ValueError):
            # Bookkeeping is best-effort: a corrupt sidecar only costs
            # eviction ordering, never stored records.
            self.diagnostics.append("lru.json: corrupt bookkeeping, reset")
            self._lru = {}

    def flush_lru(self) -> None:
        """Persist access bookkeeping (atomic tmp+rename)."""
        with self._lock:
            payload = {
                key: {
                    "last_access": st.last_access,
                    "stored_at": st.stored_at,
                    "hits": st.hits,
                }
                for key, st in sorted(self._lru.items())
            }
        self._atomic_write(self._lru_path, json.dumps(payload, indent=1))

    def _atomic_write(self, path: str, payload: str) -> None:
        directory = os.path.dirname(os.path.abspath(path)) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".db-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                f.write(payload)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # -- the protocol ---------------------------------------------------
    def get(self, key: str) -> Optional[DatabaseEntry]:
        if self._m_get is None:
            return self._get_impl(key)
        # Sampled 1-in-8: the server's memoized hit path calls get() at
        # microsecond rates, where even two perf_counter reads plus one
        # staged observe are measurable against the <2% overhead budget.
        # The sampling tick is unsynchronized on purpose — a lost tick
        # under contention shifts *which* call is sampled, nothing more.
        self._m_tick += 1
        if self._m_tick & 7:
            return self._get_impl(key)
        t0 = time.perf_counter()
        try:
            return self._get_impl(key)
        finally:
            self._m_get.observe(time.perf_counter() - t0)

    def _get_impl(self, key: str) -> Optional[DatabaseEntry]:
        with self._lock:
            entry = self._cache.get(key)
            if entry is None:
                return None
            now = self._clock()
            state = self._lru.get(key)
            if (
                self.ttl_seconds is not None
                and state is not None
                and now - state.last_access > self.ttl_seconds
            ):
                self._evict_locked(key, reason="ttl")
                return None
            if state is None:
                state = self._lru[key] = _LruState(last_access=now, stored_at=now)
            state.last_access = now
            state.hits += 1
            return entry

    def put(self, entry: DatabaseEntry) -> DatabaseEntry:
        if self._m_put is None:
            return self._put_impl(entry)
        t0 = time.perf_counter()
        try:
            return self._put_impl(entry)
        finally:
            self._m_put.observe(time.perf_counter() - t0)

    def _put_impl(self, entry: DatabaseEntry) -> DatabaseEntry:
        with self._lock:
            existing = self._cache.get(entry.key)
            if existing is not None and existing.cycles <= entry.cycles:
                return existing
            record = {"schema": DB_SCHEMA, "key": entry.key}
            record.update(entry.to_record())
            self._atomic_write(
                self._entry_path(entry.key), json.dumps(record, sort_keys=True) + "\n"
            )
            now = self._clock()
            self._cache[entry.key] = entry
            state = self._lru.get(entry.key)
            if state is None:
                self._lru[entry.key] = _LruState(last_access=now, stored_at=now)
            else:
                state.last_access = now
                state.stored_at = now
            if self.max_entries is not None:
                while len(self._cache) > self.max_entries:
                    victim = min(
                        (k for k in self._cache if k != entry.key),
                        key=lambda k: self._lru[k].last_access
                        if k in self._lru
                        else 0.0,
                        default=None,
                    )
                    if victim is None:
                        break
                    self._evict_locked(victim, reason="lru")
            self.flush_lru()
            return entry

    def _evict_locked(self, key: str, reason: str = "explicit") -> bool:
        existed = self._cache.pop(key, None) is not None
        self._lru.pop(key, None)
        path = self._entry_path(key)
        if os.path.exists(path):
            os.unlink(path)
            existed = True
        if existed and self._m_evictions is not None:
            self._m_evictions.labels(reason=reason).inc()
        return existed

    def evict(self, key: str) -> bool:
        with self._lock:
            existed = self._evict_locked(key)
            if existed:
                self.flush_lru()
            return existed

    def evict_expired(self, now: Optional[float] = None) -> List[str]:
        """Drop every entry whose last access is beyond the TTL window;
        returns the evicted keys."""
        if self.ttl_seconds is None:
            return []
        now = self._clock() if now is None else now
        evicted = []
        with self._lock:
            for key in list(self._cache):
                state = self._lru.get(key)
                if state is not None and now - state.last_access > self.ttl_seconds:
                    self._evict_locked(key, reason="ttl")
                    evicted.append(key)
            if evicted:
                self.flush_lru()
        return evicted

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._cache)

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._cache

    def stats(self) -> Dict[str, float]:
        """Store-level accounting: size, total hits, diagnostics count."""
        with self._lock:
            return {
                "entries": float(len(self._cache)),
                "hits": float(sum(st.hits for st in self._lru.values())),
                "diagnostics": float(len(self.diagnostics)),
            }
