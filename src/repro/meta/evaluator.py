"""Pluggable candidate-evaluation backends (the §4.4 measurement seam).

Evolutionary search draws *candidate specs* — (seed, forced-decision
prefix) pairs — centrally, from one RNG stream, and hands them to an
:class:`Evaluator` to be built and validated wherever capacity exists.
The contract that keeps every backend interchangeable:

* **Specs are data.** A :class:`CandidateSpec` is picklable and carries
  no live compiler state; the per-search invariants (base function,
  sketch, target, validation switch) travel once per batch as an
  :class:`EvalContext`.
* **Submission order is result order.** ``evaluate`` returns outcomes
  in the order specs were submitted, regardless of completion order —
  so the search, its statistics, and the flight recording are a pure
  function of (workload, config), never of scheduling.
* **Building is pure.** Candidate construction touches no shared
  mutable state (see ``search._build_candidate``), so it can run on a
  thread, in another process, or inline and produce identical results.

Three backends ship:

* :class:`SerialEvaluator` — the exact inline path; zero overhead,
  the default for ``search_workers=1``.
* :class:`ThreadEvaluator` — a ``ThreadPoolExecutor`` batch evaluator;
  cheap to start, but the pure-Python build path serializes on the GIL.
* :class:`ProcessEvaluator` — a ``ProcessPoolExecutor`` backend: specs
  ship to warmed-up worker processes with private memo-cache
  registries, results (and the workers' cache counters) ship back, and
  anything unpicklable falls back to the thread backend gracefully.

Pools are expensive, so module-level shared instances are reused across
searches (:func:`get_evaluator`) and torn down at interpreter exit or
explicitly via :func:`shutdown_evaluators`.
"""

from __future__ import annotations

import atexit
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import cache as _cache
from ..sim import Target
from ..tir import PrimFunc, structural_hash

__all__ = [
    "CandidateSpec",
    "EvalContext",
    "EvalOutcome",
    "Evaluator",
    "SerialEvaluator",
    "ThreadEvaluator",
    "ProcessEvaluator",
    "EVALUATOR_KINDS",
    "get_evaluator",
    "resolve_evaluator",
    "shutdown_evaluators",
]

#: the evaluator names accepted by ``TuneConfig.evaluator``
EVALUATOR_KINDS = ("auto", "serial", "threads", "processes")


@dataclass(frozen=True)
class CandidateSpec:
    """One candidate to instantiate: pure picklable data.

    ``seed`` drives the candidate's private decision RNG; ``forced``
    replays a prefix of a parent's decisions (mutation); and
    ``parent_trial`` is flight-recorder lineage only — it never crosses
    into the build, so provenance cannot perturb the search.
    """

    seed: int
    forced: Optional[Tuple[object, ...]] = None
    parent_trial: Optional[int] = None

    def forced_list(self) -> Optional[List[object]]:
        return list(self.forced) if self.forced is not None else None


@dataclass(frozen=True)
class EvalContext:
    """The per-search invariants every spec in a batch shares."""

    func: PrimFunc
    sketch: object  # Sketch — kept loose to avoid an import cycle
    target: Target
    validate: bool = True

    def key(self) -> tuple:
        """A content-stable identity used for per-process context caching."""
        return (
            self.func.name,
            structural_hash(self.func),
            type(self.sketch).__qualname__,
            self.sketch.token(),
            getattr(self.target, "name", None),
            self.validate,
        )


@dataclass
class EvalOutcome:
    """The result of building one spec, in submission order.

    Exactly one of (``func``, ``rejection``) is set: a successful build
    carries the scheduled function and its consumed decision vector, a
    failed one carries ``("apply" | "invalid", TIR-code)``.
    """

    spec: CandidateSpec
    func: Optional[PrimFunc] = None
    decisions: Optional[List[object]] = None
    rejection: Optional[Tuple[str, str]] = None
    validate_seconds: float = 0.0


def _build_one(ctx: EvalContext, spec: CandidateSpec) -> EvalOutcome:
    """Build a single spec in-process (shared by serial and threads)."""
    from .search import _build_candidate_cached

    cand, rejection, validate_seconds = _build_candidate_cached(
        ctx.func, ctx.sketch, spec.seed, spec.forced_list(), ctx.target, ctx.validate
    )
    if cand is None:
        return EvalOutcome(spec, rejection=rejection, validate_seconds=validate_seconds)
    return EvalOutcome(
        spec, func=cand.func, decisions=cand.decisions,
        validate_seconds=validate_seconds,
    )


class Evaluator:
    """Protocol base for candidate-evaluation backends.

    Subclasses implement :meth:`evaluate`; everything else has working
    defaults.  ``workers`` is the parallel width the backend exposes
    (``SearchStats.eval_batch_slots`` accounting), ``counters()`` the
    occupancy/latency telemetry the search folds into its report, and
    ``overlap_model_updates`` tells the search whether cost-model refits
    may run concurrently with the next pool fill (safe whenever
    evaluation does not need the coordinating thread).
    """

    name = "abstract"
    workers = 1
    #: may the search overlap cost-model refits with candidate builds?
    overlap_model_updates = False

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {
            "batches": 0,
            "candidates": 0,
            "busy_seconds": 0.0,
            "feature_batches": 0,
        }

    # -- the protocol ---------------------------------------------------
    def evaluate(
        self, ctx: EvalContext, specs: Sequence[CandidateSpec]
    ) -> List[EvalOutcome]:  # pragma: no cover - interface
        raise NotImplementedError

    def map_features(
        self, funcs: Sequence[PrimFunc], target: Target
    ) -> Optional[List]:
        """Feature vectors for ``funcs`` computed on this backend, or
        ``None`` to let the cost model extract them inline."""
        return None

    def close(self) -> None:
        """Release pool resources; the instance is dead afterwards."""

    # -- shared accounting ----------------------------------------------
    def _account(self, n_specs: int, seconds: float) -> None:
        with self._lock:
            self._counters["batches"] += 1
            self._counters["candidates"] += n_specs
            self._counters["busy_seconds"] += seconds

    def counters(self) -> Dict[str, float]:
        """A snapshot of this backend's occupancy/latency counters."""
        with self._lock:
            return dict(self._counters)

    def __enter__(self) -> "Evaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} workers={self.workers}>"


class SerialEvaluator(Evaluator):
    """The exact inline build path — no pool, no reordering, no cost."""

    name = "serial"

    def evaluate(self, ctx, specs):
        t0 = time.perf_counter()
        outcomes = [_build_one(ctx, spec) for spec in specs]
        self._account(len(specs), time.perf_counter() - t0)
        return outcomes


class ThreadEvaluator(Evaluator):
    """Batched evaluation on a thread pool.

    Futures are consumed in submission order, so results are
    deterministic regardless of thread scheduling.  Threads share the
    coordinating process's memo caches (and its GIL — build-heavy
    searches want :class:`ProcessEvaluator`).
    """

    name = "threads"
    overlap_model_updates = True

    def __init__(self, workers: int = 2):
        super().__init__()
        self.workers = max(1, int(workers))
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="eval-worker"
        )

    def evaluate(self, ctx, specs):
        t0 = time.perf_counter()
        futures = [self._executor.submit(_build_one, ctx, spec) for spec in specs]
        outcomes = [fut.result() for fut in futures]
        self._account(len(specs), time.perf_counter() - t0)
        return outcomes

    def map_features(self, funcs, target):
        if len(funcs) < 2:
            return None
        from .feature import extract_features

        with self._lock:
            self._counters["feature_batches"] += 1
        return list(self._executor.map(lambda f: extract_features(f, target), funcs))

    def close(self) -> None:
        self._executor.shutdown(wait=True)


# ---------------------------------------------------------------------------
# the process backend
# ---------------------------------------------------------------------------

#: per-worker-process context cache: ctx.key() -> unpickled EvalContext.
#: Bounded crudely — contexts are small and a worker serves few searches.
_WORKER_CONTEXTS: Dict[tuple, EvalContext] = {}
_WORKER_CONTEXTS_MAX = 32
#: per-worker-process cache-counter snapshot for delta shipping.
_WORKER_SNAPSHOT: Dict[str, tuple] = {}


def _worker_init() -> None:
    """Warm a worker process up-front: import the registries a candidate
    build touches (sketch classes, the tensor-intrinsic table, schedule
    primitives) so the first real spec doesn't pay import latency.  With
    the ``fork`` start method these are inherited already; under
    ``spawn`` this is what makes the first batch representative."""
    import repro.intrin  # noqa: F401
    import repro.meta.sketch  # noqa: F401
    import repro.schedule  # noqa: F401
    global _WORKER_SNAPSHOT
    _WORKER_SNAPSHOT = _cache.snapshot_counts()


def _worker_cache_delta() -> Dict[str, Tuple[int, int, int]]:
    """Cache-counter activity in this worker since the last shipment —
    the payload :func:`repro.cache.absorb_worker_counts` merges."""
    global _WORKER_SNAPSHOT
    now = _cache.snapshot_counts()
    last = _WORKER_SNAPSHOT
    _WORKER_SNAPSHOT = now
    delta = {}
    for name, (hits, misses, evictions) in now.items():
        prior = last.get(name, (0, 0, 0))
        d = (hits - prior[0], misses - prior[1], evictions - prior[2])
        if any(d):
            delta[name] = d
    return delta


def _resolve_context(ctx_key: tuple, ctx_blob: bytes) -> EvalContext:
    ctx = _WORKER_CONTEXTS.get(ctx_key)
    if ctx is None:
        ctx = pickle.loads(ctx_blob)
        if len(_WORKER_CONTEXTS) >= _WORKER_CONTEXTS_MAX:
            _WORKER_CONTEXTS.clear()
        _WORKER_CONTEXTS[ctx_key] = ctx
    return ctx


def _build_spec_in_worker(ctx: EvalContext, spec: CandidateSpec):
    """One spec → plain picklable result tuple (no cache delta)."""
    from .search import _build_candidate_cached

    cand, rejection, validate_seconds = _build_candidate_cached(
        ctx.func, ctx.sketch, spec.seed, spec.forced_list(), ctx.target, ctx.validate
    )
    if cand is None:
        return None, None, rejection, validate_seconds
    return cand.func, cand.decisions, None, validate_seconds


def _worker_build(ctx_key: tuple, ctx_blob: bytes, spec_blob: bytes):
    """Build one spec inside a worker process.

    Returns ``(func, decisions, rejection, validate_seconds, cache_delta)``
    — plain picklable data.  The worker's own memo caches serve repeat
    builds; their counters ride back as a delta so the coordinator's
    merged cache view covers the whole fleet.
    """
    ctx = _resolve_context(ctx_key, ctx_blob)
    spec: CandidateSpec = pickle.loads(spec_blob)
    return _build_spec_in_worker(ctx, spec) + (_worker_cache_delta(),)


def _worker_build_batch(ctx_key: tuple, ctx_blob: bytes, specs_blob: bytes):
    """Build a whole chunk of specs in one IPC round-trip.

    Per-candidate pickling cost is what a 1-core process pool pays for
    nothing, so specs ship as one blob per chunk and results return as
    one list per chunk (submission order preserved), with a single
    cache-counter delta covering the chunk.
    """
    ctx = _resolve_context(ctx_key, ctx_blob)
    specs: List[CandidateSpec] = pickle.loads(specs_blob)
    results = [_build_spec_in_worker(ctx, spec) for spec in specs]
    return results, _worker_cache_delta()


def _worker_features(ctx_key: tuple, ctx_blob: bytes, func_blob: bytes):
    """Extract one feature vector inside a worker process."""
    ctx = _resolve_context(ctx_key, ctx_blob)
    func: PrimFunc = pickle.loads(func_blob)
    from .feature import extract_features

    vec = extract_features(func, ctx.target)
    return vec, _worker_cache_delta()


def _worker_ping() -> int:
    import os

    return os.getpid()


class ProcessEvaluator(Evaluator):
    """Candidate evaluation on a pool of worker processes.

    Escapes the GIL: the pure-Python build/validate path runs truly in
    parallel, one private memo-cache registry per worker.  Contexts are
    pickled once per search and cached per-process; specs ship as tiny
    blobs; results ship back with each worker's cache-counter delta,
    which is merged into the coordinator's registry
    (:func:`repro.cache.absorb_worker_counts`).

    Specs are shipped in **chunks** — one IPC round-trip per worker
    rather than one per candidate — so a 64-candidate batch on a 1-core
    pool costs one pickle/unpickle cycle instead of 64 (the per-spec
    overhead the PR-6 single-core run exposed).  Chunks are formed and
    flattened in submission order, so results remain byte-identical to
    the serial backend regardless of worker count or chunking.

    Anything that fails to pickle — a closure-carrying sketch, an exotic
    decision object — degrades gracefully: the batch runs on an
    embedded :class:`ThreadEvaluator` instead and the ``fallbacks``
    counter records it.  A broken pool (a worker killed by the OS)
    degrades the same way permanently.
    """

    name = "processes"
    overlap_model_updates = True

    def __init__(self, workers: int = 2):
        super().__init__()
        self.workers = max(1, int(workers))
        self._counters["fallbacks"] = 0
        self._counters["ipc_batches"] = 0
        self._pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=self.workers, initializer=_worker_init
        )
        self._fallback: Optional[ThreadEvaluator] = None
        self._blobs: Dict[tuple, bytes] = {}

    # -- plumbing -------------------------------------------------------
    def warm_up(self) -> int:
        """Spin every worker up now (rather than on first submit);
        returns the number of live workers."""
        if self._pool is None:
            return 0
        futures = [self._pool.submit(_worker_ping) for _ in range(self.workers)]
        return len({fut.result() for fut in futures})

    def _context_blob(self, ctx: EvalContext, key: tuple) -> bytes:
        blob = self._blobs.get(key)
        if blob is None:
            blob = pickle.dumps(ctx)
            if len(self._blobs) >= _WORKER_CONTEXTS_MAX:
                self._blobs.clear()
            self._blobs[key] = blob
        return blob

    def _thread_fallback(self) -> ThreadEvaluator:
        if self._fallback is None:
            self._fallback = ThreadEvaluator(self.workers)
        with self._lock:
            self._counters["fallbacks"] += 1
        return self._fallback

    @staticmethod
    def _chunk(specs: Sequence[CandidateSpec], n_chunks: int) -> List[List[CandidateSpec]]:
        """Split ``specs`` into at most ``n_chunks`` contiguous runs.

        Contiguity is what preserves determinism: flattening the chunk
        results in chunk order reproduces the original submission order
        exactly, so chunking is invisible to the search.
        """
        n_chunks = max(1, min(n_chunks, len(specs)))
        size, extra = divmod(len(specs), n_chunks)
        chunks, start = [], 0
        for i in range(n_chunks):
            end = start + size + (1 if i < extra else 0)
            chunks.append(list(specs[start:end]))
            start = end
        return chunks

    # -- the protocol ---------------------------------------------------
    def evaluate(self, ctx, specs):
        t0 = time.perf_counter()
        if not specs:
            return []
        if self._pool is None:
            return self._thread_fallback().evaluate(ctx, specs)
        try:
            key = ctx.key()
            ctx_blob = self._context_blob(ctx, key)
            chunks = self._chunk(specs, self.workers)
            chunk_blobs = [pickle.dumps(chunk) for chunk in chunks]
        except (pickle.PicklingError, TypeError, AttributeError):
            # Unpicklable context or decisions: evaluate on threads.
            return self._thread_fallback().evaluate(ctx, specs)
        try:
            futures = [
                self._pool.submit(_worker_build_batch, key, ctx_blob, blob)
                for blob in chunk_blobs
            ]
            outcomes = []
            for fut, chunk in zip(futures, chunks):
                results, delta = fut.result()
                if delta:
                    _cache.absorb_worker_counts(delta)
                for spec, (func, decisions, rejection, validate_seconds) in zip(
                    chunk, results
                ):
                    outcomes.append(
                        EvalOutcome(
                            spec, func=func, decisions=decisions,
                            rejection=rejection, validate_seconds=validate_seconds,
                        )
                    )
        except BrokenProcessPool:
            self._pool = None  # degrade permanently, keep searching
            return self._thread_fallback().evaluate(ctx, specs)
        with self._lock:
            self._counters["ipc_batches"] += len(chunks)
        self._account(len(specs), time.perf_counter() - t0)
        return outcomes

    def map_features(self, funcs, target):
        if self._pool is None or len(funcs) < 2:
            return None
        ctx = EvalContext(funcs[0], _NullSketch(), target)
        try:
            key = ctx.key()
            ctx_blob = self._context_blob(ctx, key)
            blobs = [pickle.dumps(f) for f in funcs]
        except (pickle.PicklingError, TypeError, AttributeError):
            return None
        try:
            futures = [
                self._pool.submit(_worker_features, key, ctx_blob, blob)
                for blob in blobs
            ]
            out = []
            for fut in futures:
                vec, delta = fut.result()
                if delta:
                    _cache.absorb_worker_counts(delta)
                out.append(vec)
        except BrokenProcessPool:
            self._pool = None
            return None
        with self._lock:
            self._counters["feature_batches"] += 1
        return out

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._fallback is not None:
            self._fallback.close()
            self._fallback = None
        self._blobs.clear()


class _NullSketch:
    """Stand-in sketch for contexts that only carry a target (feature
    extraction); keeps EvalContext.key() uniform."""

    name = "null"

    def token(self) -> str:
        return "null"


# ---------------------------------------------------------------------------
# shared instances + config resolution
# ---------------------------------------------------------------------------

_SHARED_LOCK = threading.Lock()
_SHARED: Dict[Tuple[str, int], Evaluator] = {}


def get_evaluator(kind: str, workers: int = 1) -> Evaluator:
    """The process-wide shared evaluator for (kind, workers).

    Pools are expensive to start (process workers especially), so every
    search with the same backend shape reuses one instance; they are
    torn down at interpreter exit or via :func:`shutdown_evaluators`.
    """
    workers = max(1, int(workers))
    if kind == "serial":
        workers = 1
    with _SHARED_LOCK:
        evaluator = _SHARED.get((kind, workers))
        if evaluator is None:
            if kind == "serial":
                evaluator = SerialEvaluator()
            elif kind == "threads":
                evaluator = ThreadEvaluator(workers)
            elif kind == "processes":
                evaluator = ProcessEvaluator(workers)
            else:
                raise ValueError(
                    f"unknown evaluator kind {kind!r}; expected one of "
                    f"{', '.join(EVALUATOR_KINDS[1:])}"
                )
            _SHARED[(kind, workers)] = evaluator
    return evaluator


def shutdown_evaluators() -> None:
    """Close every shared evaluator (tests, interpreter exit)."""
    with _SHARED_LOCK:
        shared = list(_SHARED.values())
        _SHARED.clear()
    for evaluator in shared:
        evaluator.close()


atexit.register(shutdown_evaluators)


def resolve_evaluator(config) -> Evaluator:
    """The evaluator a :class:`~repro.meta.config.TuneConfig` asks for.

    ``config.evaluator`` may be a backend name (``"auto"`` picks serial
    for one worker, threads otherwise — the pre-redesign behaviour) or
    a ready :class:`Evaluator` instance, which is used as-is (the caller
    owns its lifecycle).  Named backends resolve to shared instances.
    """
    choice = getattr(config, "evaluator", "auto")
    if isinstance(choice, Evaluator):
        return choice
    workers = max(1, getattr(config, "search_workers", 1))
    if choice in (None, "auto"):
        choice = "serial" if workers == 1 else "threads"
    return get_evaluator(choice, workers)
