"""Program feature extraction for the learned cost model (§4.4).

"The feature vector contains information related to memory access
patterns, reuse, and loop annotations.  Importantly, we extract features
from both block signatures in an isolated way as well as the body of the
block (e.g., to mark the use of Tensor Core)."

We reuse the performance-model walker's counters (they are exactly
memory-pattern/annotation aggregates) plus signature-level statistics,
log-scaled into a fixed vector.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..sim.cost import _Walker
from ..sim.target import Target
from ..tir import Block, BlockRealize, For, ForKind, PrimFunc, const_int_value
from ..schedule.sref import find_blocks, find_loops

__all__ = ["extract_features", "FEATURE_NAMES"]

FEATURE_NAMES = [
    "log_scalar_ops",
    "log_tensor_busy",
    "log_global_bytes",
    "log_shared_bytes",
    "log_loop_iters",
    "log_blocks",
    "log_threads",
    "log_parallel",
    "vthread",
    "n_blocks_ir",
    "n_tensorized",
    "n_cache_stages",
    "n_vectorized",
    "n_unrolled",
    "max_vector_width",
    "n_loops",
    "log_flops_per_byte",
    "log_shared_alloc",
    "n_reduce_blocks",
    "log_touched_buffers",
]


def _log1(x: float) -> float:
    return math.log1p(max(0.0, float(x)))


def extract_features(func: PrimFunc, target: Target) -> np.ndarray:
    """A fixed-length feature vector for one scheduled function."""
    walker = _Walker(target)
    walker.walk(func.body.block.body, 1.0)
    c = walker.c

    realizes = [r for r in find_blocks(func.body) if r is not func.body]
    n_tensorized = sum(1 for r in realizes if r.block.annotations.get("tensorize"))
    n_cache = sum(1 for r in realizes if r.block.annotations.get("data_movement"))
    n_reduce = sum(1 for r in realizes if r.block.is_reduction)
    loops = find_loops(func.body)
    n_vec = sum(1 for lp in loops if lp.kind == ForKind.VECTORIZED)
    n_unroll = sum(1 for lp in loops if lp.kind == ForKind.UNROLLED)
    max_vec = max(
        [const_int_value(lp.extent) or 0 for lp in loops if lp.kind == ForKind.VECTORIZED],
        default=0,
    )
    from ..schedule.validation import shared_footprint_bytes

    shared_alloc = shared_footprint_bytes(func)
    flops = c.scalar_ops + c.tensor_busy * 64.0
    total_bytes = c.global_bytes + 1.0

    vec = [
        _log1(c.scalar_ops),
        _log1(c.tensor_busy),
        _log1(c.global_bytes),
        _log1(c.shared_bytes),
        _log1(c.loop_iters),
        _log1(c.blocks),
        _log1(c.threads),
        _log1(c.parallel),
        float(c.max_vthread),
        float(len(realizes)),
        float(n_tensorized),
        float(n_cache),
        float(n_vec),
        float(n_unroll),
        float(max_vec),
        float(len(loops)),
        _log1(flops / total_bytes),
        _log1(shared_alloc),
        float(n_reduce),
        float(len(c.buffer_bytes)),
    ]
    return np.array(vec, dtype=np.float64)
