"""Program feature extraction for the learned cost model (§4.4).

"The feature vector contains information related to memory access
patterns, reuse, and loop annotations.  Importantly, we extract features
from both block signatures in an isolated way as well as the body of the
block (e.g., to mark the use of Tensor Core)."

We reuse the performance-model walker's counters (they are exactly
memory-pattern/annotation aggregates) plus signature-level statistics,
log-scaled into a fixed vector.

Extraction is on the search hot path (every candidate is ranked), so it
is kept lean: one combined traversal collects every block/loop
statistic (the old code walked the tree once per statistic family), the
shared-memory footprint comes from the structurally-hashed cache in
:mod:`repro.schedule.validation`, and whole vectors are memoized on
:func:`repro.tir.structural_hash` — mutated candidates that resurface
are a dictionary hit, not a walk.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from .. import cache as _cache
from ..sim.cost import _Walker
from ..sim.target import Target
from ..tir import Block, BlockRealize, For, ForKind, PrimFunc, const_int_value
from ..schedule.sref import children_of

__all__ = ["extract_features", "FEATURE_NAMES"]

FEATURE_NAMES = [
    "log_scalar_ops",
    "log_tensor_busy",
    "log_global_bytes",
    "log_shared_bytes",
    "log_loop_iters",
    "log_blocks",
    "log_threads",
    "log_parallel",
    "vthread",
    "n_blocks_ir",
    "n_tensorized",
    "n_cache_stages",
    "n_vectorized",
    "n_unrolled",
    "max_vector_width",
    "n_loops",
    "log_flops_per_byte",
    "log_shared_alloc",
    "n_reduce_blocks",
    "log_touched_buffers",
]

#: memoized feature vectors keyed on (structural hash, target).  Cached
#: arrays are frozen (``writeable = False``) because every hit returns
#: the same object.
_FEATURE_CACHE = _cache.MemoCache("meta.features", maxsize=8192)


def _log1(x: float) -> float:
    return math.log1p(max(0.0, float(x)))


def _collect_ir_stats(func: PrimFunc) -> Tuple[List[BlockRealize], List[For]]:
    """All non-root block realizes and all loops, in one traversal
    (replacing the separate ``find_blocks`` + ``find_loops`` walks)."""
    realizes: List[BlockRealize] = []
    loops: List[For] = []
    stack = list(children_of(func.body))
    while stack:
        node = stack.pop()
        if isinstance(node, BlockRealize):
            realizes.append(node)
        elif isinstance(node, For):
            loops.append(node)
        stack.extend(children_of(node))
    return realizes, loops


def extract_features(func: PrimFunc, target: Target) -> np.ndarray:
    """A fixed-length feature vector for one scheduled function.

    Memoized on program structure; cached vectors are read-only (copy
    before mutating, which no caller currently does).
    """
    if not _cache.caches_enabled():
        return _extract_features_impl(func, target)
    from ..tir.structural import structural_hash

    key = (structural_hash(func), getattr(target, "name", repr(target)))
    hit = _FEATURE_CACHE.lookup(key)
    if hit is not _cache.MISS:
        return hit
    vec = _extract_features_impl(func, target)
    vec.flags.writeable = False
    _FEATURE_CACHE.put(key, vec)
    return vec


def _extract_features_impl(func: PrimFunc, target: Target) -> np.ndarray:
    walker = _Walker(target)
    walker.walk(func.body.block.body, 1.0)
    c = walker.c

    realizes, loops = _collect_ir_stats(func)
    n_tensorized = n_cache = n_reduce = 0
    for r in realizes:
        block = r.block
        if block.annotations.get("tensorize"):
            n_tensorized += 1
        if block.annotations.get("data_movement"):
            n_cache += 1
        if block.is_reduction:
            n_reduce += 1
    n_vec = n_unroll = 0
    max_vec = 0
    for lp in loops:
        if lp.kind == ForKind.VECTORIZED:
            n_vec += 1
            max_vec = max(max_vec, const_int_value(lp.extent) or 0)
        elif lp.kind == ForKind.UNROLLED:
            n_unroll += 1
    from ..schedule.validation import shared_footprint_bytes

    shared_alloc = shared_footprint_bytes(func)
    flops = c.scalar_ops + c.tensor_busy * 64.0
    total_bytes = c.global_bytes + 1.0

    vec = [
        _log1(c.scalar_ops),
        _log1(c.tensor_busy),
        _log1(c.global_bytes),
        _log1(c.shared_bytes),
        _log1(c.loop_iters),
        _log1(c.blocks),
        _log1(c.threads),
        _log1(c.parallel),
        float(c.max_vthread),
        float(len(realizes)),
        float(n_tensorized),
        float(n_cache),
        float(n_vec),
        float(n_unroll),
        float(max_vec),
        float(len(loops)),
        _log1(flops / total_bytes),
        _log1(shared_alloc),
        float(n_reduce),
        float(len(c.buffer_bytes)),
    ]
    return np.array(vec, dtype=np.float64)
