"""Evolutionary search over sketch decisions (§4.4).

Candidates are (sketch, decision-vector) pairs.  Each generation:
random/mutated decision vectors are replayed through the sketch,
validated (§3.3 — invalid mutants are rejected before costing anything),
ranked by the learned cost model, and the most promising are *measured*
on the simulated hardware (the stand-in for on-device profiling).
Measurements feed back into the cost model.

Tuning-time accounting mirrors the paper's Table 1 analysis: hardware
profiling dominates tuning time, so each measurement is charged its
simulated wall-clock x repeat count plus a fixed compile/RPC overhead.
When a :class:`~repro.meta.telemetry.Telemetry` collector is passed,
real wall-clock is additionally partitioned into ``evolve`` /
``validate`` / ``measure`` / ``model-update`` spans per task.
"""

from __future__ import annotations

import dataclasses
import random
import time
import warnings
from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..schedule import Schedule, ScheduleError, verify
from ..sim import PerfReport, Target, estimate
from ..sim.cost import CostModelError
from ..tir import PrimFunc
from .config import TuneConfig
from .cost_model import CostModel
from .sketch import Sketch
from .telemetry import Telemetry

__all__ = ["MeasureRecord", "TuneResult", "SearchStats", "evolutionary_search"]

#: profiling parameters of the simulated measurement harness
MEASURE_REPEATS = 10
MEASURE_OVERHEAD_SECONDS = 0.08  # compile + upload + RPC per candidate

_LEGACY_KWARGS_MSG = (
    "passing tuning options as keyword arguments is deprecated; "
    "pass a repro.TuneConfig instead (e.g. tune(func, target, "
    "TuneConfig(trials=32)))"
)


def _resolve_config(config, legacy: dict, caller: str) -> TuneConfig:
    """The shim: fold old-style kwargs (or a positional trial count)
    into a ``TuneConfig``, warning on use of the old signature."""
    if isinstance(config, int):
        legacy.setdefault("trials", config)
        config = None
    if legacy:
        warnings.warn(
            f"{caller}: {_LEGACY_KWARGS_MSG}", DeprecationWarning, stacklevel=3
        )
        return TuneConfig.from_kwargs(config, **legacy)
    return config or TuneConfig()


@dataclass
class MeasureRecord:
    sketch: str
    decisions: List[object]
    cycles: float
    seconds: float
    bound: str


@dataclass
class SearchStats:
    candidates_generated: int = 0
    invalid_rejected: int = 0
    apply_failed: int = 0
    measured: int = 0
    profiling_seconds: float = 0.0
    #: rejected candidates per diagnostic error code: validation
    #: failures count their primary (first) code, primitive-precondition
    #: failures the ScheduleError's code — so the per-code counts sum to
    #: ``invalid_rejected + apply_failed``.
    rejected_by_code: Counter = field(default_factory=Counter)

    def merge(self, other: "SearchStats") -> "SearchStats":
        """Accumulate ``other`` into this stats object, field-generic so
        a newly added counter can never be silently dropped (Counter
        fields merge key-wise)."""
        for f in dataclasses.fields(self):
            mine, theirs = getattr(self, f.name), getattr(other, f.name)
            if isinstance(mine, Counter):
                mine.update(theirs)
            else:
                setattr(self, f.name, mine + theirs)
        return self


@dataclass
class TuneResult:
    workload: str
    best_func: Optional[PrimFunc]
    best_cycles: float
    best_report: Optional[PerfReport]
    best_sketch: Optional[str]
    records: List[MeasureRecord] = field(default_factory=list)
    stats: SearchStats = field(default_factory=SearchStats)
    #: the winning candidate's decision vector — enough to rebuild the
    #: program via the tuning database (no search, §5.2).
    best_decisions: Optional[List[object]] = None
    #: True when the result was rebuilt from a database record instead
    #: of searched (§5.2's record-replay path).
    replayed: bool = False

    @property
    def tuning_seconds(self) -> float:
        """Simulated wall-clock spent tuning (profiling-dominated)."""
        return self.stats.profiling_seconds + self.stats.measured * MEASURE_OVERHEAD_SECONDS

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TuneResult({self.workload}: best {self.best_cycles:.0f} cycles via "
            f"{self.best_sketch}, {self.stats.measured} measured)"
        )


class _Candidate:
    __slots__ = ("sketch", "schedule", "decisions")

    def __init__(self, sketch: Sketch, schedule: Schedule):
        self.sketch = sketch
        self.schedule = schedule
        self.decisions = list(schedule.decisions)


def _instantiate(
    func: PrimFunc,
    sketch: Sketch,
    seed: int,
    forced: Optional[List[object]],
    target: Target,
    stats: SearchStats,
    validate: bool = True,
    timings: Optional[dict] = None,
) -> Optional[_Candidate]:
    sch = Schedule(func, seed=seed, record_trace=False)
    sch.forced_decisions = forced
    stats.candidates_generated += 1
    try:
        sketch.apply(sch)
    except ScheduleError as err:
        stats.apply_failed += 1
        stats.rejected_by_code[err.diagnostics[0].code if err.diagnostics else "TIR400"] += 1
        return None
    if validate:
        t0 = time.perf_counter()
        problems = verify(sch.func, target)
        if timings is not None:
            timings["validate"] += time.perf_counter() - t0
        if problems:
            stats.invalid_rejected += 1
            stats.rejected_by_code[problems[0].code] += 1
            return None
    return _Candidate(sketch, sch)


def evolutionary_search(
    func: PrimFunc,
    sketch: Sketch,
    target: Target,
    config: Optional[TuneConfig] = None,
    *,
    cost_model: Optional[CostModel] = None,
    telemetry: Optional[Telemetry] = None,
    task: Optional[str] = None,
    **legacy,
) -> TuneResult:
    """Search one sketch's decision space; ``config.trials`` bounds the
    number of measured candidates."""
    config = _resolve_config(config, legacy, "evolutionary_search")
    rng = random.Random(config.seed)
    model = cost_model or CostModel(target, seed=config.seed)
    stats = SearchStats()
    result = TuneResult(func.name, None, float("inf"), None, None, stats=stats)
    task = task or func.name
    timings = {"validate": 0.0, "measure": 0.0, "model-update": 0.0}
    t_start = time.perf_counter()

    trials, population = config.trials, config.population
    elites: List[Tuple[float, _Candidate]] = []
    measured_budget = trials
    generation = 0
    max_generations = config.generations or max(2, trials // max(population // 2, 1))

    while stats.measured < measured_budget and generation < max_generations:
        generation += 1
        pool: List[_Candidate] = []
        attempts = 0
        while len(pool) < population and attempts < population * 6:
            attempts += 1
            forced = None
            if elites and rng.random() < 0.7:
                # Mutation: keep a prefix of an elite's decisions, then
                # resample the rest.
                _, parent = rng.choice(elites)
                if parent.decisions:
                    cut = rng.randrange(len(parent.decisions))
                    forced = parent.decisions[:cut]
            cand = _instantiate(
                func,
                sketch,
                rng.randrange(1 << 30),
                forced,
                target,
                stats,
                config.validate,
                timings,
            )
            if cand is not None:
                pool.append(cand)
        if not pool:
            break
        # Rank by the learned cost model; measure the top half.
        scores = model.predict([c.schedule.func for c in pool])
        order = sorted(range(len(pool)), key=lambda i: -scores[i])
        to_measure = order[: max(1, min(len(pool) // 2 + 1, measured_budget - stats.measured))]
        measured_funcs = []
        measured_cycles = []
        for idx in to_measure:
            cand = pool[idx]
            t0 = time.perf_counter()
            try:
                report = estimate(cand.schedule.func, target)
            except CostModelError:
                stats.invalid_rejected += 1
                continue
            finally:
                timings["measure"] += time.perf_counter() - t0
            stats.measured += 1
            stats.profiling_seconds += report.seconds * MEASURE_REPEATS
            record = MeasureRecord(
                sketch.name, cand.decisions, report.cycles, report.seconds, report.bound
            )
            result.records.append(record)
            measured_funcs.append(cand.schedule.func)
            measured_cycles.append(report.cycles)
            if report.cycles < result.best_cycles:
                result.best_cycles = report.cycles
                result.best_func = cand.schedule.func
                result.best_report = report
                result.best_sketch = sketch.name
                result.best_decisions = list(cand.decisions)
            elites.append((report.cycles, cand))
        if measured_funcs:
            t0 = time.perf_counter()
            model.update(measured_funcs, measured_cycles)
            timings["model-update"] += time.perf_counter() - t0
        elites.sort(key=lambda t: t[0])
        del elites[max(4, population // 2) :]

    if telemetry is not None:
        total = time.perf_counter() - t_start
        # Everything not accounted to a finer stage is candidate
        # generation + mutation + ranking: the "evolve" share.
        evolve = max(total - sum(timings.values()), 0.0)
        telemetry.add("evolve", evolve, task)
        for stage, seconds in timings.items():
            telemetry.add(stage, seconds, task)
        telemetry.absorb_stats(stats)
    return result
