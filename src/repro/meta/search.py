"""Evolutionary search over sketch decisions (§4.4).

Candidates are (sketch, decision-vector) pairs.  Each generation:
random/mutated decision vectors are replayed through the sketch,
validated (§3.3 — invalid mutants are rejected before costing anything),
ranked by the learned cost model, and the most promising are *measured*
on the simulated hardware (the stand-in for on-device profiling).
Measurements feed back into the cost model.

Tuning-time accounting mirrors the paper's Table 1 analysis: hardware
profiling dominates tuning time, so each measurement is charged its
simulated wall-clock x repeat count plus a fixed compile/RPC overhead.
When a :class:`~repro.meta.telemetry.Telemetry` collector is passed,
real wall-clock is additionally partitioned into ``evolve`` /
``validate`` / ``measure`` / ``model-update`` spans per task.
"""

from __future__ import annotations

import dataclasses
import random
import time
import warnings
from collections import Counter
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .. import cache as _cache
from ..obs.record import Recorder
from ..schedule import Schedule, ScheduleError, verify
from ..sim import PerfReport, Target, estimate
from ..sim.cost import CostModelError
from ..tir import PrimFunc, structural_hash
from .config import TuneConfig
from .cost_model import CostModel
from .evaluator import CandidateSpec, EvalContext, Evaluator, resolve_evaluator
from .sketch import Sketch
from .telemetry import Telemetry

__all__ = ["MeasureRecord", "TuneResult", "SearchStats", "evolutionary_search"]

#: profiling parameters of the simulated measurement harness
MEASURE_REPEATS = 10
MEASURE_OVERHEAD_SECONDS = 0.08  # compile + upload + RPC per candidate

_LEGACY_KWARGS_MSG = (
    "passing tuning options as keyword arguments is deprecated; "
    "pass a repro.TuneConfig instead (e.g. tune(func, target, "
    "TuneConfig(trials=32)))"
)


def _resolve_config(config, legacy: dict, caller: str) -> TuneConfig:
    """The shim: fold old-style kwargs (or a positional trial count)
    into a ``TuneConfig``, warning on use of the old signature."""
    if isinstance(config, int):
        legacy.setdefault("trials", config)
        config = None
    if legacy:
        warnings.warn(
            f"{caller}: {_LEGACY_KWARGS_MSG}", DeprecationWarning, stacklevel=3
        )
        return TuneConfig.from_kwargs(config, **legacy)
    return config or TuneConfig()


@dataclass
class MeasureRecord:
    sketch: str
    decisions: List[object]
    cycles: float
    seconds: float
    bound: str


@dataclass
class SearchStats:
    candidates_generated: int = 0
    invalid_rejected: int = 0
    apply_failed: int = 0
    measured: int = 0
    profiling_seconds: float = 0.0
    #: batched-evaluation accounting: ``eval_batches`` evaluator batches
    #: submitted, holding ``eval_batch_candidates`` candidates over
    #: ``eval_batch_slots`` worker slots — occupancy = candidates /
    #: slots.  Batch and candidate counts are a pure function of the
    #: search stream (backend-invariant); only ``eval_batch_slots``
    #: scales with the configured worker count.
    eval_batches: int = 0
    eval_batch_candidates: int = 0
    eval_batch_slots: int = 0
    #: rejected candidates per diagnostic error code: validation
    #: failures count their primary (first) code, primitive-precondition
    #: failures the ScheduleError's code, and candidates the analytical
    #: model cannot cost count ``TIR501`` — so the per-code counts sum
    #: to ``invalid_rejected + apply_failed`` (asserted in tests).
    rejected_by_code: Counter = field(default_factory=Counter)

    def search_signature(self) -> dict:
        """The backend-invariant view of these stats.

        Every field except ``eval_batch_slots`` is a pure function of
        (workload, config seed) — slots scale with the configured worker
        count, which is exactly the knob an evaluation backend is
        allowed to turn.  The determinism matrix asserts this view is
        identical across serial/thread/process evaluation.
        """
        out = {}
        for f in dataclasses.fields(self):
            if f.name == "eval_batch_slots":
                continue
            value = getattr(self, f.name)
            out[f.name] = dict(value) if isinstance(value, Counter) else value
        return out

    def merge(self, other: "SearchStats") -> "SearchStats":
        """Accumulate ``other`` into this stats object, field-generic so
        a newly added counter can never be silently dropped (Counter
        fields merge key-wise)."""
        for f in dataclasses.fields(self):
            mine, theirs = getattr(self, f.name), getattr(other, f.name)
            if isinstance(mine, Counter):
                mine.update(theirs)
            else:
                setattr(self, f.name, mine + theirs)
        return self


@dataclass
class TuneResult:
    workload: str
    best_func: Optional[PrimFunc]
    best_cycles: float
    best_report: Optional[PerfReport]
    best_sketch: Optional[str]
    records: List[MeasureRecord] = field(default_factory=list)
    stats: SearchStats = field(default_factory=SearchStats)
    #: the winning candidate's decision vector — enough to rebuild the
    #: program via the tuning database (no search, §5.2).
    best_decisions: Optional[List[object]] = None
    #: True when the result was rebuilt from a database record instead
    #: of searched (§5.2's record-replay path).
    replayed: bool = False

    @property
    def tuning_seconds(self) -> float:
        """Simulated wall-clock spent tuning (profiling-dominated)."""
        return self.stats.profiling_seconds + self.stats.measured * MEASURE_OVERHEAD_SECONDS

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TuneResult({self.workload}: best {self.best_cycles:.0f} cycles via "
            f"{self.best_sketch}, {self.stats.measured} measured)"
        )


class _Candidate:
    __slots__ = ("sketch", "func", "decisions", "trial_id", "parent_trial")

    def __init__(self, sketch: Sketch, func: PrimFunc, decisions: List[object]):
        self.sketch = sketch
        self.func = func
        self.decisions = decisions
        #: flight-recorder lineage (set only when a recorder is active):
        #: the ledger id this candidate got when measured, and the
        #: ledger id of the elite it was mutated from.
        self.trial_id: Optional[int] = None
        self.parent_trial: Optional[int] = None


#: Whole-candidate memo: ``_build_candidate`` is a pure function of
#: (base func, sketch, seed, forced prefix, target, validate), so its
#: result — the scheduled func + consumed decisions, or the rejection —
#: can be replayed from cache.  Within one cold search hits are rare
#: (seeds are fresh), but re-tuning the same workload (§5.2's workflow,
#: parameter sweeps, session restarts) replays every build for free;
#: candidate construction dominates search time, so this is the cache
#: that moves candidates/sec.
_CANDIDATE_CACHE = _cache.MemoCache("search.candidates", maxsize=2048)


def _sketch_token(sketch: Sketch) -> tuple:
    """A cache key for a sketch that is stable across instances."""
    return (
        type(sketch).__qualname__,
        sketch.name,
        getattr(sketch, "intrin_name", None),
    )


def _freeze(values):
    """Decisions → hashable (sample_perfect_tile decisions are lists)."""
    if values is None:
        return None
    return tuple(
        _freeze(v) if isinstance(v, (list, tuple)) else v for v in values
    )


def _build_candidate_cached(
    func: PrimFunc,
    sketch: Sketch,
    seed: int,
    forced: Optional[List[object]],
    target: Target,
    validate: bool,
) -> Tuple[Optional[_Candidate], Optional[Tuple[str, str]], float]:
    """Memoizing front of :func:`_build_candidate` (see cache note above)."""
    if not _cache.caches_enabled():
        return _build_candidate(func, sketch, seed, forced, target, validate)
    try:
        key = (
            structural_hash(func),
            _sketch_token(sketch),
            seed,
            _freeze(forced),
            getattr(target, "name", None),
            validate,
        )
        hash(key)  # tuple() never hashes; probe before the table does
    except TypeError:
        # Unhashable decision type: build uncached — but *count* the
        # bypass as a miss, so hit rates reflect what the cache actually
        # served rather than only what it was able to index.
        _CANDIDATE_CACHE.record_miss()
        return _build_candidate(func, sketch, seed, forced, target, validate)
    hit = _CANDIDATE_CACHE.lookup(key)
    if hit is not _cache.MISS:
        built, decisions, rejection = hit
        cand = _Candidate(sketch, built, list(decisions)) if rejection is None else None
        return cand, rejection, 0.0
    cand, rejection, seconds = _build_candidate(func, sketch, seed, forced, target, validate)
    _CANDIDATE_CACHE.put(
        key,
        (
            cand.func if cand is not None else None,
            tuple(cand.decisions) if cand is not None else None,
            rejection,
        ),
    )
    return cand, rejection, seconds


def _build_candidate(
    func: PrimFunc,
    sketch: Sketch,
    seed: int,
    forced: Optional[List[object]],
    target: Target,
    validate: bool,
) -> Tuple[Optional[_Candidate], Optional[Tuple[str, str]], float]:
    """Instantiate one candidate without touching shared state — pure in
    its arguments, so worker threads can run it concurrently.

    Returns ``(candidate, rejection, validate_seconds)`` where
    ``rejection`` is ``("apply" | "invalid", code)`` on failure.
    """
    sch = Schedule(func, seed=seed, record_trace=False)
    sch.forced_decisions = forced
    try:
        sketch.apply(sch)
    except ScheduleError as err:
        code = err.diagnostics[0].code if err.diagnostics else "TIR400"
        return None, ("apply", code), 0.0
    if validate:
        t0 = time.perf_counter()
        problems = verify(sch.func, target)
        validate_seconds = time.perf_counter() - t0
        if problems:
            return None, ("invalid", problems[0].code), validate_seconds
        return _Candidate(sketch, sch.func, list(sch.decisions)), None, validate_seconds
    return _Candidate(sketch, sch.func, list(sch.decisions)), None, 0.0


def _count_rejection(stats: SearchStats, rejection: Tuple[str, str]) -> None:
    kind, code = rejection
    if kind == "apply":
        stats.apply_failed += 1
    else:
        stats.invalid_rejected += 1
    stats.rejected_by_code[code] += 1


def evolutionary_search(
    func: PrimFunc,
    sketch: Sketch,
    target: Target,
    config: Optional[TuneConfig] = None,
    *,
    cost_model: Optional[CostModel] = None,
    telemetry: Optional[Telemetry] = None,
    task: Optional[str] = None,
    recorder: Optional[Recorder] = None,
    evaluator: Optional[Evaluator] = None,
    **legacy,
) -> TuneResult:
    """Search one sketch's decision space; ``config.trials`` bounds the
    number of measured candidates.

    Candidate builds run on an :class:`~repro.meta.evaluator.Evaluator`
    (resolved from ``config.evaluator``/``config.search_workers`` unless
    one is passed explicitly).  Specs are drawn serially from the search
    RNG and outcomes consumed in submission order, so the programs
    found, the stats (modulo worker-slot accounting) and the flight
    recording are identical across backends and worker counts.

    With a :class:`~repro.obs.record.Recorder` attached (or
    ``config.obs.enabled``), every generation, rejection, measured trial
    and best-improvement is recorded — without consuming search RNG, so
    recorded and unrecorded runs find identical programs.
    """
    config = _resolve_config(config, legacy, "evolutionary_search")
    rng = random.Random(config.seed)
    if recorder is None and config.obs.enabled:
        recorder = Recorder(config.obs, telemetry=telemetry)
    recording = recorder is not None and recorder.enabled
    model = cost_model or CostModel(target, seed=config.seed, recorder=recorder)
    stats = SearchStats()
    result = TuneResult(func.name, None, float("inf"), None, None, stats=stats)
    task = task or func.name
    wl_key = None
    sk_token = sketch.token()
    if recording:
        from .database import workload_key

        wl_key = workload_key(func, target)
    timings = {"validate": 0.0, "measure": 0.0, "model-update": 0.0}
    t_start = time.perf_counter()

    trials, population = config.trials, config.population
    elites: List[Tuple[float, _Candidate]] = []
    measured_budget = trials
    generation = 0
    max_generations = config.generations or max(2, trials // max(population // 2, 1))
    evaluator = evaluator or resolve_evaluator(config)
    eval_ctx = EvalContext(func, sketch, target, config.validate)
    eval_counters_before = evaluator.counters()

    def _draw_spec() -> CandidateSpec:
        """One candidate spec, drawn from the search RNG on the
        coordinating thread.  The parent trial id is provenance only —
        it never feeds back into the RNG stream, so recording cannot
        perturb the search."""
        forced = None
        parent_trial = None
        if elites and rng.random() < 0.7:
            # Mutation: keep a prefix of an elite's decisions, then
            # resample the rest.
            _, parent = rng.choice(elites)
            if parent.decisions:
                cut = rng.randrange(len(parent.decisions))
                forced = tuple(parent.decisions[:cut])
                parent_trial = parent.trial_id
        return CandidateSpec(rng.randrange(1 << 30), forced, parent_trial)

    def _emit_rejection(rejection: Tuple[str, str]) -> None:
        if recording:
            kind, code = rejection
            recorder.rejection(task, sk_token, generation, kind, code)

    def _fill_pool() -> List[_Candidate]:
        # One loop for every backend.  Each round draws exactly the
        # pool's current deficit (never more), so the RNG stream — and
        # with it every downstream result — is identical to the
        # historical one-at-a-time serial path, for any evaluator and
        # any worker count.  Outcomes come back in submission order, so
        # stats/recording fold in deterministically too.
        pool: List[_Candidate] = []
        attempts = 0
        cap = population * 6
        while len(pool) < population and attempts < cap:
            want = min(cap - attempts, population - len(pool))
            specs = [_draw_spec() for _ in range(want)]
            attempts += want
            stats.candidates_generated += want
            stats.eval_batches += 1
            stats.eval_batch_candidates += want
            stats.eval_batch_slots += evaluator.workers
            for outcome in evaluator.evaluate(eval_ctx, specs):
                timings["validate"] += outcome.validate_seconds
                if outcome.rejection is not None:
                    _count_rejection(stats, outcome.rejection)
                    _emit_rejection(outcome.rejection)
                elif outcome.func is not None:
                    cand = _Candidate(sketch, outcome.func, list(outcome.decisions))
                    cand.parent_trial = outcome.spec.parent_trial
                    pool.append(cand)
        return pool

    try:
        while stats.measured < measured_budget and generation < max_generations:
            generation += 1
            gen_span = (
                telemetry.span("generation", task)
                if telemetry is not None
                else nullcontext()
            )
            with gen_span:
                gen_t0 = time.perf_counter()
                gen_prev = dict(timings)
                # Stage start times within this generation, for the
                # exported timeline (validation begins with pool fill).
                gen_starts = {"validate": gen_t0}
                pool = _fill_pool()
                if not pool:
                    break
                # Rank by the learned cost model; measure the top half.
                # Feature extraction rides the evaluation backend when
                # that pays (order-preserving, so scores are identical
                # to inline extraction).
                pool_funcs = [c.func for c in pool]
                scores = model.predict(
                    pool_funcs,
                    features=evaluator.map_features(pool_funcs, target),
                )
                order = sorted(range(len(pool)), key=lambda i: -scores[i])
                to_measure = order[
                    : max(1, min(len(pool) // 2 + 1, measured_budget - stats.measured))
                ]
                measured_funcs = []
                measured_cycles = []
                for idx in to_measure:
                    cand = pool[idx]
                    t0 = time.perf_counter()
                    gen_starts.setdefault("measure", t0)
                    try:
                        report = estimate(cand.func, target)
                    except CostModelError:
                        stats.invalid_rejected += 1
                        stats.rejected_by_code["TIR501"] += 1
                        if recording:
                            recorder.trial(
                                task=task, workload=wl_key, sketch=sk_token,
                                generation=generation, parent=cand.parent_trial,
                                decisions=cand.decisions,
                                predicted=float(scores[idx]),
                                rejection="TIR501", func=cand.func,
                            )
                            recorder.rejection(
                                task, sk_token, generation, "estimate", "TIR501"
                            )
                        continue
                    finally:
                        timings["measure"] += time.perf_counter() - t0
                    stats.measured += 1
                    stats.profiling_seconds += report.seconds * MEASURE_REPEATS
                    record = MeasureRecord(
                        sketch.name, cand.decisions, report.cycles, report.seconds, report.bound
                    )
                    result.records.append(record)
                    measured_funcs.append(cand.func)
                    measured_cycles.append(report.cycles)
                    if recording:
                        trial_rec = recorder.trial(
                            task=task, workload=wl_key, sketch=sk_token,
                            generation=generation, parent=cand.parent_trial,
                            decisions=cand.decisions, predicted=float(scores[idx]),
                            cycles=report.cycles, seconds=report.seconds,
                            bound=report.bound, func=cand.func,
                            base_func=func, sketch_obj=sketch,
                        )
                        cand.trial_id = trial_rec.trial_id
                    if report.cycles < result.best_cycles:
                        previous = result.best_cycles
                        result.best_cycles = report.cycles
                        result.best_func = cand.func
                        result.best_report = report
                        result.best_sketch = sketch.name
                        result.best_decisions = list(cand.decisions)
                        if recording:
                            recorder.best_improved(
                                task,
                                cand.trial_id or 0,
                                report.cycles,
                                None if previous == float("inf") else previous,
                            )
                    elites.append((report.cycles, cand))
                if measured_funcs:
                    t0 = time.perf_counter()
                    gen_starts.setdefault("model-update", t0)
                    if evaluator.overlap_model_updates:
                        # Refit on a background thread, overlapped with
                        # the next generation's pool fill; committed
                        # before the next prediction reads the model.
                        model.update_async(measured_funcs, measured_cycles)
                    else:
                        model.update(measured_funcs, measured_cycles)
                    timings["model-update"] += time.perf_counter() - t0
                elites.sort(key=lambda t: t[0])
                del elites[max(4, population // 2) :]
                if recording:
                    recorder.generation_end(
                        task, sk_token, generation, len(pool),
                        stats.measured, result.best_cycles,
                    )
                if telemetry is not None:
                    # Flush this generation's stage deltas as child spans
                    # of the generation span, placed at their true starts.
                    gen_total = time.perf_counter() - gen_t0
                    gen_deltas = {
                        stage: timings[stage] - gen_prev[stage] for stage in timings
                    }
                    evolve = max(gen_total - sum(gen_deltas.values()), 0.0)
                    telemetry.add("evolve", evolve, task, start=gen_t0)
                    for stage, seconds in gen_deltas.items():
                        if seconds:
                            telemetry.add(
                                stage, seconds, task, start=gen_starts.get(stage)
                            )
    finally:
        # Any refit still in flight is installed now, so the model a
        # caller (tune(), the next sketch's search) sees is the same one
        # a synchronous update would have left.
        model.commit_update()
        # Per-backend occupancy/latency deltas.  Telemetry counters and
        # the recorder's *meta* section get them — never the event
        # stream or the trial ledger, which must stay hash-identical
        # across backends.
        eval_delta = {
            key: value - eval_counters_before.get(key, 0)
            for key, value in evaluator.counters().items()
            if value - eval_counters_before.get(key, 0)
        }
        if telemetry is not None:
            for key, value in eval_delta.items():
                telemetry.count(f"evaluator.{evaluator.name}.{key}", value)
        if recording:
            recorder.record_evaluator(evaluator.name, evaluator.workers, eval_delta)

    if telemetry is not None:
        telemetry.absorb_stats(stats)
    return result
