"""Multi-workload tuning orchestration: the §5.2 evaluation loop as a
first-class subsystem.

A :class:`TuningSession` takes a set of workloads (or a whole
``NetworkSpec``), deduplicates them by :func:`~repro.meta.database.workload_key`,
tunes the unique ones concurrently on a ``concurrent.futures`` worker
pool, and replays every duplicate from the shared
:class:`~repro.meta.database.TuningDatabase` instead of re-searching —
the paper's record-replay behaviour (§5.2) promoted to the default
path.  Given a total trial budget, it allocates trials across tasks
proportionally to each layer's estimated cost share (heavy layers get
the search time; a 1x1 conv does not get a GEMM's budget).

Results are deterministic regardless of worker count or completion
order: every task's search depends only on (workload, config), never on
shared mutable state.

The session threads one :class:`~repro.meta.telemetry.Telemetry`
through every search, and :meth:`TuningSession.run` returns a
:class:`SessionReport` — per-task accounting plus stage timings as one
JSON document, so Table 1-style tuning-time analysis comes from
instrumentation instead of ad-hoc arithmetic.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from .. import cache as _cache
from ..diagnostics import DiagnosticContext
from ..obs.record import Recorder
from ..schedule import Schedule
from ..sim import Target, estimate
from ..tir import PrimFunc, const_int_value
from .config import TuneConfig
from .database import Database, TuningDatabase, workload_key
from .search import SearchStats, TuneResult
from .sketch import main_block_of
from .telemetry import Telemetry
from .tune import _replay_result, tune

if TYPE_CHECKING:  # pragma: no cover
    from ..frontend.graph import NetworkSpec
    from ..frontend.shapes import BucketedWorkload, BucketSpec

__all__ = ["TuningSession", "SessionReport", "TaskReport", "estimated_cost"]

#: floor for proportional budget allocation — every searched task gets
#: at least a token search even if its cost share rounds to nothing.
MIN_TRIALS_PER_TASK = 4


def estimated_cost(func: PrimFunc) -> float:
    """A static cost proxy for budget allocation: the iteration-space
    size of the dominant block (FLOP-proportional for the §5 operators).
    """
    sch = Schedule(func, record_trace=False)
    rv = main_block_of(sch)
    if rv is None:
        return 1.0
    size = 1.0
    for iv in sch.block_of(rv).iter_vars:
        extent = const_int_value(iv.dom.extent)
        size *= extent if extent else 1
    return max(size, 1.0)


@dataclass
class _Task:
    name: str
    func: PrimFunc
    weight: float
    key: str = ""
    #: the shape-bucket mapping when the session runs with a
    #: :class:`~repro.frontend.shapes.BucketSpec` — ``None`` otherwise.
    bucketed: Optional["BucketedWorkload"] = None

    @property
    def search_func(self) -> PrimFunc:
        """What actually gets tuned: the bucket representative when
        bucketing is on, the concrete function otherwise."""
        if self.bucketed is not None:
            return self.bucketed.representative
        return self.func


@dataclass
class TaskReport:
    """Per-task accounting row of the session report."""

    name: str
    key: str
    status: str  # "searched" | "replayed" | "failed"
    weight: float
    sketch: Optional[str] = None
    cycles: Optional[float] = None
    seconds: Optional[float] = None
    trials_allocated: int = 0
    measured: int = 0
    #: simulated tuning wall-clock (profiling + compile/RPC overhead) —
    #: the Table 1 accounting unit.  Replayed tasks cost zero.
    tuning_seconds: float = 0.0
    error: Optional[str] = None


@dataclass
class SessionReport:
    """The structured result of one :meth:`TuningSession.run`."""

    target: str
    workers: int
    tasks: List[TaskReport]
    totals: Dict[str, float]
    telemetry: dict = field(default_factory=dict)
    wall_seconds: float = 0.0
    #: invalid candidates rejected across all searches, grouped by
    #: diagnostic error code (TIR1xx–TIR3xx validation, TIR4xx
    #: primitive preconditions) — the §3.3 battery made observable.
    invalid_by_code: Dict[str, int] = field(default_factory=dict)
    #: memoization activity during this run, per cache: hits, misses
    #: and hit rate (see :mod:`repro.cache`).  The same numbers appear
    #: as ``cache.<name>.hits`` / ``.misses`` telemetry counters.
    cache_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: flight-recorder activity when observability was on (event/trial
    #: counts + sink path); the full recording is written separately by
    #: :meth:`TuningSession.save_recording`.
    obs: Dict[str, object] = field(default_factory=dict)

    def task(self, name: str) -> TaskReport:
        for t in self.tasks:
            if t.name == name:
                return t
        raise KeyError(f"no task named {name!r} in session report")

    def seconds_for(self, name: str) -> float:
        t = self.task(name)
        if t.seconds is None:
            raise RuntimeError(f"task {name!r} {t.status}: {t.error or 'no result'}")
        return t.seconds

    def cycles_for(self, name: str) -> float:
        t = self.task(name)
        if t.cycles is None:
            raise RuntimeError(f"task {name!r} {t.status}: {t.error or 'no result'}")
        return t.cycles

    @property
    def tuning_seconds(self) -> float:
        return self.totals["tuning_seconds"]

    def to_json(self) -> dict:
        return {
            "target": self.target,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "tasks": [asdict(t) for t in self.tasks],
            "totals": dict(self.totals),
            "invalid_by_code": dict(self.invalid_by_code),
            "cache_stats": {k: dict(v) for k, v in sorted(self.cache_stats.items())},
            "obs": dict(self.obs),
            "telemetry": self.telemetry,
        }

    def dumps(self, **kwargs) -> str:
        return json.dumps(self.to_json(), **kwargs)

    def write(self, path: str) -> None:
        """Write the report atomically (tmp file + ``os.replace``) so a
        crashed worker can never leave a truncated JSON report."""
        payload = self.dumps(indent=1, sort_keys=True)
        directory = os.path.dirname(os.path.abspath(path)) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".report-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                f.write(payload)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise


class TuningSession:
    """Parallel, cached, observable tuning of many workloads.

    >>> session = TuningSession(SimGPU(), TuneConfig(trials=16), workers=4)
    >>> session.add(ops.matmul(512, 512, 512), name="gemm")
    >>> session.add_network(gpu_network("ResNet-50"))
    >>> report = session.run()
    >>> report.tuning_seconds, report.totals["tasks_replayed"]
    """

    def __init__(
        self,
        target: Target,
        config: Optional[TuneConfig] = None,
        *,
        database: Optional[Database] = None,
        workers: int = 1,
        telemetry: Optional[Telemetry] = None,
        recorder: Optional[Recorder] = None,
        evaluator=None,
        provenance: str = "session",
        buckets: Optional["BucketSpec"] = None,
        metrics=None,
    ):
        self.target = target
        self.config = config or TuneConfig()
        if evaluator is not None:
            # A backend name or a ready Evaluator instance; overrides
            # the config's choice for every search this session runs.
            self.config = self.config.with_(evaluator=evaluator)
        self.database = database if database is not None else TuningDatabase()
        #: the provenance tag stamped on every entry this session commits
        #: (``"serve"`` when the schedule server runs a session as its
        #: cache-miss handler).
        self.provenance = provenance
        self.workers = max(1, workers)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        #: the serving/ops metrics registry
        #: (:class:`repro.obs.metrics.MetricsRegistry`) this session
        #: folds cache and evaluator accounting into — the single source
        #: of truth for those numbers when set (the schedule server
        #: passes its own).  The ``cache.<name>.hits``/``.misses`` and
        #: ``evaluator.<name>.*`` telemetry counters are kept as
        #: deprecated spellings of the same windows.
        self.metrics = metrics
        #: the flight recorder — built from ``config.obs`` (a no-op
        #: object when observability is off) unless one is injected.
        self.recorder = (
            recorder
            if recorder is not None
            else Recorder(self.config.obs, telemetry=self.telemetry, metrics=metrics)
        )
        if metrics is not None and getattr(self.recorder, "metrics", None) is None:
            self.recorder.metrics = metrics
        #: shape-bucket spec (``repro.frontend.shapes.BucketSpec``): when
        #: set, tasks are canonicalized to bucket representatives before
        #: dedup, so every in-bucket shape shares one search and replays
        #: the stored trace adaptively at its concrete extents (§5.2).
        self.buckets = buckets
        #: typed TIR7xx diagnostics from bucket canonicalization and
        #: cross-shape replay (TIR701 infeasible, TIR702 fallback).
        self.diagnostics = DiagnosticContext()
        self._tasks: List[_Task] = []
        self.results: Dict[str, TuneResult] = {}

    def save_recording(self, path: str) -> dict:
        """Write the flight recording (events + trial provenance +
        telemetry) atomically; see ``python -m repro.obs`` for readers."""
        return self.recorder.save(path)

    # -- workload intake -----------------------------------------------
    def add(self, func: PrimFunc, name: Optional[str] = None, weight: float = 1.0) -> str:
        """Register one workload; returns the (unique) task name."""
        base = name or func.name
        task_name = base
        suffix = 1
        existing = {t.name for t in self._tasks}
        while task_name in existing:
            suffix += 1
            task_name = f"{base}#{suffix}"
        self._tasks.append(_Task(task_name, func, weight))
        return task_name

    def add_network(self, net: "NetworkSpec", include_fusible: bool = True) -> List[str]:
        """Register every layer of a network (weight = occurrence count)."""
        names = []
        for layer in net.layers:
            if not include_fusible and layer.fusible:
                continue
            names.append(self.add(layer.builder(), name=layer.name, weight=layer.count))
        return names

    def add_graph(self, plan_or_graph, fuse: bool = True) -> List[str]:
        """Register one task per fusion group of a dataflow graph.

        Accepts a :class:`~repro.frontend.fuse.FusionPlan` or a raw
        :class:`~repro.frontend.graph.Graph` (partitioned here with
        ``fuse_graph(fuse=...)``).  Group task names are the plan's
        ``task_name``s (``anchor+member+...``); structurally identical
        groups share a workload key, so the session searches each unique
        fused program once and replays the rest from the database.
        """
        from ..frontend.fuse import FusionPlan, fuse_graph, lower_group

        plan = plan_or_graph
        if not isinstance(plan, FusionPlan):
            plan = fuse_graph(plan, fuse=fuse)
        return [self.add(lower_group(g), name=g.task_name) for g in plan.groups]

    # -- budget allocation ---------------------------------------------
    def _allocate(
        self, uniques: List[_Task], weights: Dict[str, float], total_trials: Optional[int]
    ) -> Dict[str, int]:
        """Trials per unique workload key: proportional to estimated
        cost x occurrence weight when a total budget is given, else
        ``config.trials`` each."""
        if total_trials is None:
            return {t.key: self.config.trials for t in uniques}
        costs = {t.key: estimated_cost(t.search_func) * weights[t.key] for t in uniques}
        total_cost = sum(costs.values()) or 1.0
        return {
            key: max(MIN_TRIALS_PER_TASK, round(total_trials * cost / total_cost))
            for key, cost in costs.items()
        }

    # -- the run --------------------------------------------------------
    def run(self, total_trials: Optional[int] = None) -> SessionReport:
        """Tune everything; returns the session report.

        Exactly one search per unique (workload, target) not already in
        the database; every other task replays.  With ``total_trials``
        the budget is split across searched tasks by cost share.
        """
        t_run = time.perf_counter()
        # Resolve (and for process pools, spawn) the evaluation backend
        # *now*, on the coordinating thread, before any tune-worker
        # threads exist — forking a process pool out of a multi-threaded
        # parent is where fork-safety bugs live.
        from .evaluator import ProcessEvaluator, resolve_evaluator

        session_evaluator = resolve_evaluator(self.config)
        if isinstance(session_evaluator, ProcessEvaluator):
            session_evaluator.warm_up()
        cache_before = _cache.snapshot_counts()
        eval_before = session_evaluator.counters()
        with self.telemetry.span("session") as session_span:
            # Worker-thread spans have an empty thread-local stack; the
            # root link attaches them to this session span.
            self.telemetry.set_root(session_span)
            try:
                reports = self._run_inner(total_trials)
            finally:
                self.telemetry.set_root(None)
        cache_delta = _cache.delta_since(cache_before)
        for name, counts in sorted(cache_delta.items()):
            # Deprecated spellings of the cache window — the canonical
            # home is the metrics registry (``cache_hits_total{name=}``
            # via the recorder's fold); kept so existing report readers
            # keep working.
            self.telemetry.count(f"cache.{name}.hits", int(counts["hits"]))
            self.telemetry.count(f"cache.{name}.misses", int(counts["misses"]))
        self.recorder.record_cache_delta(cache_delta)
        self.recorder.close()
        if self.metrics is not None:
            # Evaluator occupancy for this run: the backend instance is
            # shared across searches (and sessions), so the fold is a
            # counter *delta* over the run window, labeled by backend.
            from ..obs.metrics import fold_evaluator_counters

            eval_delta = {
                key: value - eval_before.get(key, 0)
                for key, value in session_evaluator.counters().items()
                if value - eval_before.get(key, 0)
            }
            fold_evaluator_counters(
                self.metrics,
                session_evaluator.name,
                session_evaluator.workers,
                eval_delta,
            )

        ordered = [reports[t.name] for t in self._tasks]
        totals = {
            "tasks": float(len(ordered)),
            "tasks_searched": float(sum(1 for r in ordered if r.status == "searched")),
            "tasks_replayed": float(sum(1 for r in ordered if r.status == "replayed")),
            "tasks_failed": float(sum(1 for r in ordered if r.status == "failed")),
            "trials_measured": float(sum(r.measured for r in ordered)),
            "tuning_seconds": sum(r.tuning_seconds for r in ordered),
        }
        if self.buckets is not None:
            totals["tasks_bucket_replayed"] = float(
                self.telemetry.counters.get("tasks_bucket_replayed", 0)
            )
            totals["tasks_bucket_fallback"] = float(
                self.telemetry.counters.get("tasks_bucket_fallback", 0)
            )
        obs_summary: Dict[str, object] = {}
        if self.recorder.enabled:
            obs_summary = dict(self.recorder.stream.stats())
            obs_summary["trials_recorded"] = len(self.recorder.trials)
            obs_summary["sink_path"] = self.recorder.config.sink_path
        return SessionReport(
            target=self.target.name,
            workers=self.telemetry.threads_used("evolve") or 1,
            tasks=ordered,
            totals=totals,
            telemetry=self.telemetry.report(),
            wall_seconds=time.perf_counter() - t_run,
            invalid_by_code={
                code: int(count)
                for code, count in sorted(
                    self.telemetry.counters_by_prefix("rejected_by_code").items()
                )
            },
            cache_stats=cache_delta,
            obs=obs_summary,
        )

    def _run_inner(self, total_trials: Optional[int]) -> Dict[str, TaskReport]:
        """The search/replay body of :meth:`run`, inside the session span."""
        with self.telemetry.span("plan"):
            if self.buckets is not None:
                from ..frontend.shapes import canonicalize

                for task in self._tasks:
                    task.bucketed = canonicalize(
                        task.func, self.buckets, ctx=self.diagnostics
                    )
            for task in self._tasks:
                # Keyed on the *search* function: with bucketing on, every
                # in-bucket shape collapses onto the representative's key,
                # so the whole family dedups into one search.
                task.key = workload_key(task.search_func, self.target)
            uniques: List[_Task] = []
            weights: Dict[str, float] = {}
            for task in self._tasks:
                if task.key not in weights:
                    weights[task.key] = 0.0
                    uniques.append(task)
                weights[task.key] += task.weight
            budgets = self._allocate(uniques, weights, total_trials)

        to_search = [t for t in uniques if self.database.get(t.key) is None]
        reports: Dict[str, TaskReport] = {}

        def _search(task: _Task) -> TuneResult:
            return tune(
                task.search_func,
                self.target,
                self.config.with_(trials=budgets[task.key]),
                telemetry=self.telemetry,
                task=task.name,
                recorder=self.recorder,
            )

        with ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="tune-worker"
        ) as pool:
            futures = {pool.submit(_search, task): task for task in to_search}
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    task = futures[fut]
                    try:
                        result = fut.result()
                    except Exception as err:  # noqa: BLE001 — per-task isolation
                        reports[task.name] = TaskReport(
                            task.name, task.key, "failed", task.weight,
                            trials_allocated=budgets[task.key], error=str(err),
                        )
                        continue
                    self.results[task.name] = result
                    if result.best_sketch is None or result.best_decisions is None:
                        reports[task.name] = TaskReport(
                            task.name, task.key, "failed", task.weight,
                            trials_allocated=budgets[task.key],
                            measured=result.stats.measured,
                            tuning_seconds=result.tuning_seconds,
                            error="search found no valid program",
                        )
                        continue
                    # Database writes stay on the coordinating thread.
                    # A persistent backend makes each commit durable the
                    # moment it lands — tuned entries are written
                    # incrementally as tasks finish, never batched until
                    # the session ends.
                    self.database.record(
                        task.search_func, self.target, result.best_sketch,
                        result.best_decisions, result.best_cycles,
                        provenance=self.provenance,
                    )
                    measured = result.stats.measured
                    tuning_seconds = result.tuning_seconds
                    if task.bucketed is not None and task.bucketed.bucketed:
                        # The search ran at the bucket representative; the
                        # task's own result is the stored trace replayed
                        # adaptively at the concrete shape.  The tuning
                        # cost stays attributed to this task (it paid for
                        # the representative's search).
                        concrete = self._replay_task(task)
                        if concrete is None:
                            try:
                                concrete = self._fallback_tune(
                                    task, budgets[task.key]
                                )
                            except Exception as err:  # noqa: BLE001
                                reports[task.name] = TaskReport(
                                    task.name, task.key, "failed", task.weight,
                                    trials_allocated=budgets[task.key],
                                    error=str(err),
                                )
                                continue
                            measured += concrete.stats.measured
                            tuning_seconds += concrete.tuning_seconds
                        else:
                            self.telemetry.count("tasks_bucket_replayed")
                        result = concrete
                        self.results[task.name] = result
                    reports[task.name] = TaskReport(
                        task.name, task.key, "searched", task.weight,
                        sketch=result.best_sketch,
                        cycles=result.best_cycles,
                        seconds=result.best_report.seconds,
                        trials_allocated=budgets[task.key],
                        measured=measured,
                        tuning_seconds=tuning_seconds,
                    )

        # Everything not searched above replays from the database: the
        # duplicates, plus uniques already tuned in a previous run.  With
        # bucketing on, "duplicate" includes every other shape in a
        # bucket — replayed adaptively, with a fresh tune as the fallback
        # when the stored decisions are infeasible at the concrete shape.
        for task in self._tasks:
            if task.name in reports:
                continue
            result = None
            status = "replayed"
            trials_allocated = 0
            measured = 0
            tuning_seconds = 0.0
            if self.database.get(task.key) is not None:
                t0 = time.perf_counter()
                result = self._replay_task(task)
                self.telemetry.add(
                    "replay", time.perf_counter() - t0, task.name, start=t0
                )
                if result is not None:
                    self.telemetry.count("tasks_replayed")
                    if task.bucketed is not None and task.bucketed.bucketed:
                        self.telemetry.count("tasks_bucket_replayed")
                elif task.bucketed is not None and task.bucketed.bucketed:
                    trials_allocated = budgets.get(task.key, self.config.trials)
                    try:
                        result = self._fallback_tune(task, trials_allocated)
                    except Exception as err:  # noqa: BLE001
                        reports[task.name] = TaskReport(
                            task.name, task.key, "failed", task.weight,
                            trials_allocated=trials_allocated, error=str(err),
                        )
                        continue
                    status = "searched"
                    measured = result.stats.measured
                    tuning_seconds = result.tuning_seconds
            if result is None:
                searched = reports.get(self._name_for_key(task.key))
                reports[task.name] = TaskReport(
                    task.name, task.key, "failed", task.weight,
                    error=(searched.error if searched else "no database record"),
                )
                continue
            self.results[task.name] = result
            reports[task.name] = TaskReport(
                task.name, task.key, status, task.weight,
                sketch=result.best_sketch,
                cycles=result.best_cycles,
                seconds=result.best_report.seconds,
                trials_allocated=trials_allocated,
                measured=measured,
                tuning_seconds=tuning_seconds,
            )

        return reports

    # -- bucket-aware replay -------------------------------------------
    def _replay_task(self, task: _Task) -> Optional[TuneResult]:
        """Rebuild ``task``'s best program from the database — adaptively
        at the concrete shape when the record is the bucket
        representative's (§5.2 forced-decision replay)."""
        if task.bucketed is None or not task.bucketed.bucketed:
            return _replay_result(task.func, self.target, self.database)
        entry = self.database.get(task.key)
        if entry is None:
            return None
        sch = self.database.replay_bucketed(
            task.bucketed, self.target, ctx=self.diagnostics
        )
        if sch is None:
            return None
        report = estimate(sch.func, self.target)
        return TuneResult(
            task.func.name,
            sch.func,
            report.cycles,
            report,
            entry.sketch,
            stats=SearchStats(),
            best_decisions=list(entry.decisions),
            replayed=True,
        )

    def _fallback_tune(self, task: _Task, trials: int) -> TuneResult:
        """Fresh tune of the concrete shape after an infeasible bucket
        replay; the result is recorded under the concrete exact key."""
        self.diagnostics.emit(
            "TIR702",
            f"bucket replay for task {task.name!r} fell back to a fresh "
            f"tune at the concrete shape",
            func=task.func,
        )
        self.telemetry.count("tasks_bucket_fallback")
        return tune(
            task.func,
            self.target,
            self.config.with_(trials=trials),
            database=self.database,
            telemetry=self.telemetry,
            task=task.name,
            recorder=self.recorder,
        )

    def _name_for_key(self, key: str) -> str:
        for t in self._tasks:
            if t.key == key:
                return t.name
        return key
