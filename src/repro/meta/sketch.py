"""Tensorized program sketch generation (§4.3).

A *sketch* fixes the structure of the program (tiling hierarchy, data
movement block placement, tensorization) while leaving parametric
choices (tile sizes, vector widths, unrolling) as sampled decisions
recorded on the schedule — the evolutionary search mutates those
decisions and replays the sketch.

Sketches:

* :class:`TensorCoreSketch` — the paper's headline flow (Figure 8):
  auto-tensorization (§4.2) + multi-level tiling over blocks/warps with
  AutoCopy data-movement blocks through shared memory and fragments.
* :class:`GpuScalarSketch` — Ansor-style thread-tiled schedule on the
  CUDA-core (scalar) pipeline; used for workloads with no intrinsic
  mapping and by the TVM baseline.
* :class:`CpuSdotSketch` — sdot micro-kernel tiling for the simulated
  ARM CPU.
* :class:`CpuScalarSketch` — parallel + vectorised CPU schedule.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .. import cache as _cache
from ..autotensorize import generate_candidates, prepare_tensorize
from ..intrin import get_intrin
from ..schedule import BlockRV, LoopRV, Schedule, ScheduleError
from ..sim.target import SimCPU, SimGPU, Target
from ..tir import ForKind, const_int_value, structural_hash
from .autocopy import (
    own_loops,
    schedule_default_spatial_cpu,
    schedule_default_spatial_gpu,
    schedule_fragment_copy,
    schedule_shared_copy,
)

__all__ = [
    "Sketch",
    "TensorCoreSketch",
    "GpuScalarSketch",
    "CpuSdotSketch",
    "CpuScalarSketch",
    "generate_sketches",
    "main_block_of",
    "inline_prologue",
    "collapse_epilogue",
    "schedule_remaining_stages",
]


def main_block_of(sch: Schedule) -> Optional[BlockRV]:
    """The block carrying the most work: prefer the reduction block with
    the largest iteration space."""
    best = None
    best_size = -1.0
    for rv in sch.get_blocks():
        block = sch.block_of(rv)
        size = 1.0
        for iv in block.iter_vars:
            extent = const_int_value(iv.dom.extent)
            size *= extent if extent else 1
        if block.is_reduction:
            size *= 1e6  # reductions dominate
        if size > best_size:
            best_size = size
            best = rv
    return best


def inline_prologue(sch: Schedule) -> None:
    """Inline gather/pad/relayout stages into the data-movement blocks
    that consume them (the paper: "ReIndex stages ... will be inlined
    into consumers during the sketch generation phase")."""
    from ..schedule.primitives.compute import _blocks_reading

    changed = True
    while changed:
        changed = False
        for rv in list(sch.get_blocks()):
            try:
                block = sch.block_of(rv)
            except ScheduleError:
                continue
            notes = block.annotations
            # Padding stages are kept standalone: inlining them would
            # drop their clipped read signatures (the Select guard is
            # invisible to region detection).
            is_stage = notes.get("reindex") == "read" or (
                notes.get("reshape") and notes.get("padding") is None
            )
            if not is_stage or block.is_reduction or not block.writes:
                continue
            out_buf = block.writes[0].buffer
            consumers = _blocks_reading(sch.func.body, out_buf)
            if not consumers:
                continue
            if not all(
                c.block.annotations.get("data_movement")
                or c.block.annotations.get("padding")
                or c.block.annotations.get("reindex")
                for c in consumers
            ):
                continue
            try:
                sch.compute_inline(rv)
                changed = True
            except ScheduleError:
                continue


def _has_epilogue(sch: Schedule, main: BlockRV) -> bool:
    """True when another block consumes the main block's output — a
    fused elementwise epilogue that a local write-back stage can absorb
    (see :mod:`repro.frontend.fuse`)."""
    from ..schedule.primitives.compute import _blocks_reading

    block = sch.block_of(main)
    if not block.writes:
        return False
    return bool(_blocks_reading(sch.func.body, block.writes[0].buffer))


def collapse_epilogue(sch: Schedule, main: BlockRV) -> None:
    """Fold identity/elementwise consumers back into their producers
    (extract stages, relayouts, elementwise epilogues like ReLU)."""
    changed = True
    while changed:
        changed = False
        for rv in list(sch.get_blocks()):
            if rv.name == main.name:
                continue
            try:
                block = sch.block_of(rv)
            except ScheduleError:
                continue
            if block.is_reduction or block.init is not None:
                continue
            if block.annotations.get("data_movement"):
                continue  # cache stages are scheduled, not collapsed
            if any(w.buffer.scope != "global" for w in block.writes):
                continue
            # Never inline into the tensorization target: its body must
            # keep the canonical einsum form for intrinsic matching.
            from ..schedule.primitives.compute import _blocks_writing

            producer_is_main = False
            for region in block.reads:
                writers = _blocks_writing(sch.func.body, region.buffer)
                if any(w.block.name_hint == main.name for w in writers):
                    producer_is_main = True
                    break
            if producer_is_main:
                continue
            try:
                sch.reverse_compute_inline(rv)
                changed = True
            except ScheduleError:
                continue


def schedule_remaining_stages(sch: Schedule, target: Target, exclude: Sequence[str]) -> None:
    """Give every still-serial root-level stage a default schedule."""
    skip = set(exclude)
    for rv in list(sch.get_blocks()):
        if rv.name in skip:
            continue
        try:
            block = sch.block_of(rv)
        except ScheduleError:
            continue
        if block.annotations.get("tensorize") or block.annotations.get("reshape"):
            continue
        loops = sch.get_loops(rv)
        kinds = [sch.loop_of(lp).kind for lp in loops]
        if any(k in (ForKind.THREAD_BINDING, ForKind.PARALLEL) for k in kinds):
            continue  # already scheduled / nested under a scheduled nest
        try:
            if isinstance(target, SimGPU):
                schedule_default_spatial_gpu(sch, rv)
            else:
                schedule_default_spatial_cpu(sch, rv)
        except ScheduleError:
            continue


def _sample_tile3(sch: Schedule, loop: LoopRV, cap_mid: int, cap_inner: int):
    """Split a loop into [outer, mid<=cap_mid, inner<=cap_inner] with the
    caps enforced at sampling time (recorded categorical decisions)."""
    from ..schedule import divisors_of

    extent = const_int_value(sch.loop_of(loop).extent)
    inner_choices = [d for d in divisors_of(extent) if d <= cap_inner] or [1]
    inner = sch.sample_categorical(inner_choices)
    rem = extent // inner
    mid_choices = [d for d in divisors_of(rem) if d <= cap_mid] or [1]
    mid = sch.sample_categorical(mid_choices)
    outer = rem // mid
    return sch.split(loop, [outer, mid, inner])


def _sample_tile2(sch: Schedule, loop: LoopRV, cap_inner: int):
    from ..schedule import divisors_of

    extent = const_int_value(sch.loop_of(loop).extent)
    inner_choices = [d for d in divisors_of(extent) if d <= cap_inner] or [1]
    inner = sch.sample_categorical(inner_choices)
    return sch.split(loop, [extent // inner, inner])


class Sketch:
    """Base class: ``apply`` transforms a fresh schedule, consuming
    sampled decisions."""

    name = "sketch"

    def applicable(self, sch: Schedule) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def apply(self, sch: Schedule) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def token(self) -> str:
        """Stable identity string used by the flight recorder and the
        tuning database — ``name`` plus the intrinsic it binds, if any,
        so two parameterizations of one sketch class stay distinguishable
        in recordings."""
        intrin = getattr(self, "intrin_name", None)
        return f"{self.name}@{intrin}" if intrin else self.name


class TensorCoreSketch(Sketch):
    """Figure 8's tensorized sketch for the simulated GPU."""

    name = "tensor-core"

    def __init__(self, intrin_name: str = "wmma_16x16x16_f16"):
        self.intrin_name = intrin_name

    def applicable(self, sch: Schedule) -> bool:
        main = main_block_of(sch)
        if main is None:
            return False
        return bool(generate_candidates(sch, main, [self.intrin_name]))

    def apply(self, sch: Schedule) -> None:
        intrin = get_intrin(self.intrin_name)
        main = main_block_of(sch)
        prep = prepare_tensorize(sch, main, self.intrin_name)
        tm, tn, tk = prep.tile_shape

        # --- data movement blocks (AutoCopy insertion) ------------------
        a_shared = sch.cache_read(main, 0, "shared")
        a_frag = sch.cache_read(main, 0, "wmma.matrix_a")
        b_shared = sch.cache_read(main, 1, "shared")
        b_frag = sch.cache_read(main, 1, "wmma.matrix_b")
        acc = sch.cache_write(main, 0, "wmma.accumulator")

        inline_prologue(sch)
        collapse_epilogue(sch, main)

        # --- multi-level tiling ------------------------------------------
        x, y, k = prep.tile_loops
        xo, xt = sch.split(x, [None, tm])
        yo, yt = sch.split(y, [None, tn])
        ko, kt = sch.split(k, [None, tk])
        x_bx, x_ty, x_i = _sample_tile3(sch, xo, cap_mid=4, cap_inner=4)
        y_bx, y_ty, y_i = _sample_tile3(sch, yo, cap_mid=4, cap_inner=4)
        k_o, k_i = _sample_tile2(sch, ko, cap_inner=4)
        sch.reorder(x_bx, y_bx, x_ty, y_ty, k_o, k_i, x_i, y_i, xt, yt, kt)
        x_rows = (
            const_int_value(sch.loop_of(x_ty).extent)
            * const_int_value(sch.loop_of(x_i).extent)
            * tm
        )
        y_cols = (
            const_int_value(sch.loop_of(y_ty).extent)
            * const_int_value(sch.loop_of(y_i).extent)
            * tn
        )
        k_depth = const_int_value(sch.loop_of(k_i).extent) * tk
        bx_parts = list(prep.outer_loops) + [x_bx, y_bx]
        bx = sch.fuse(*bx_parts) if len(bx_parts) > 1 else bx_parts[0]
        ty = sch.fuse(x_ty, y_ty)
        ty_extent = const_int_value(sch.loop_of(ty).extent)
        if ty_extent > 16:
            raise ScheduleError(
                f"tensor-core sketch: {ty_extent} warps per block exceeds the "
                "useful range; resample"
            )
        # Cheap shared-memory feasibility check before building copies.
        if (x_rows + y_cols) * k_depth * 2 > SimGPU.shared_memory_per_block:
            raise ScheduleError("tensor-core sketch: staging tile exceeds shared memory")
        sch.bind(bx, "blockIdx.x")
        sch.bind(ty, "threadIdx.y")

        # --- AutoCopy placement (before blockize so consumer regions are
        # expressed over plain loops) ---------------------------------------
        sch.compute_at(a_frag, k_i)
        sch.compute_at(b_frag, k_i)
        sch.compute_at(a_shared, k_o)
        sch.compute_at(b_shared, k_o)
        sch.reverse_compute_at(acc, ty)

        # --- reduction decomposition + tensorization ----------------------
        init = sch.decompose_reduction(main, k_o)
        sch.tensorize(xt, self.intrin_name)
        fill = intrin.paired.get("fill")
        init_loops = own_loops(sch, init)
        fm, fn = init_loops[-2], init_loops[-1]
        fmo, fmi = sch.split(fm, [None, tm])
        fno, fni = sch.split(fn, [None, tn])
        sch.reorder(fmo, fno, fmi, fni)
        if fill:
            sch.tensorize(fmi, fill)

        # --- AutoCopy scheduling ------------------------------------------
        vec = sch.sample_categorical([1, 2, 4, 8])
        schedule_shared_copy(sch, a_shared, ty_extent, vector_len=vec)
        schedule_shared_copy(sch, b_shared, ty_extent, vector_len=vec)
        load_a = intrin.paired.get("load_A")
        load_b = intrin.paired.get("load_B")
        store = intrin.paired.get("store")
        if load_a:
            schedule_fragment_copy(sch, a_frag, load_a)
        if load_b:
            schedule_fragment_copy(sch, b_frag, load_b)
        if store:
            try:
                schedule_fragment_copy(sch, acc, store)
            except ScheduleError:
                # A fused epilogue changed the copy body: keep plain loops.
                pass

        # --- annotations ----------------------------------------------------
        unroll = sch.sample_categorical([0, 16, 64])
        if unroll:
            sch.annotate(k_i, "pragma_auto_unroll", unroll)
        schedule_remaining_stages(sch, SimGPU(), exclude=[main.name])


class GpuScalarSketch(Sketch):
    """Ansor-style multi-level thread tiling on the scalar pipeline."""

    name = "gpu-scalar"

    def applicable(self, sch: Schedule) -> bool:
        return main_block_of(sch) is not None

    def apply(self, sch: Schedule) -> None:
        from ..schedule import divisors_of

        main = main_block_of(sch)
        block = sch.block_of(main)
        n_reads = len(block.reads)
        copies = []
        writeback = None
        use_cache = bool(sch.sample_categorical([0, 1, 1])) and block.is_reduction
        if use_cache:
            # Stage the inputs through shared memory (cooperative fetch)
            # — the classic Ansor structure; placement happens after
            # tiling.
            for idx in range(min(n_reads, 2)):
                try:
                    copies.append(sch.cache_read(main, idx, "shared"))
                except ScheduleError:
                    pass
        if block.is_reduction:
            # Accumulate in registers; write the output once at the end.
            try:
                writeback = sch.cache_write(main, 0, "local")
            except ScheduleError:
                writeback = None
        collapse_epilogue(sch, main)
        inline_prologue(sch)
        block = sch.block_of(main)
        loops = own_loops(sch, main)
        spatial = [lp for lp, iv in zip(loops, block.iter_vars) if iv.is_spatial]
        reduce = [lp for lp, iv in zip(loops, block.iter_vars) if iv.is_reduce]

        # Per-axis multi-level tiling (Ansor's S-S-S-R-R-S structure):
        # each spatial axis splits into [block, vthread, thread, inner].
        bx_parts, vt_parts, tx_parts, inner_parts = [], [], [], []
        tx_total = 1
        vt_total = 1
        for lp in spatial:
            extent = const_int_value(sch.loop_of(lp).extent)
            i_f = sch.sample_categorical([d for d in divisors_of(extent) if d <= 4] or [1])
            rem = extent // i_f
            t_f = sch.sample_categorical([d for d in divisors_of(rem) if d <= 32] or [1])
            rem //= t_f
            v_f = sch.sample_categorical([d for d in divisors_of(rem) if d <= 2] or [1])
            b, v, t, i = sch.split(lp, [rem // v_f, v_f, t_f, i_f])
            tx_total *= t_f
            vt_total *= v_f
            bx_parts.append(b)
            vt_parts.append(v)
            tx_parts.append(t)
            inner_parts.append(i)
        if not 8 <= tx_total <= 512:
            raise ScheduleError(f"gpu-scalar sketch: {tx_total} threads; resample")
        if vt_total > 8:
            raise ScheduleError("gpu-scalar sketch: too many vthreads; resample")
        r_outer, r_inner = [], []
        for r in reduce:
            ro, ri = sch.split(r, sch.sample_perfect_tile(r, 2, 16))
            r_outer.append(ro)
            r_inner.append(ri)
        order = bx_parts + vt_parts + tx_parts + r_outer + r_inner + inner_parts
        sch.reorder(*order)
        bx = sch.fuse(*bx_parts) if len(bx_parts) > 1 else bx_parts[0]
        vt = sch.fuse(*vt_parts) if len(vt_parts) > 1 else vt_parts[0]
        tx = sch.fuse(*tx_parts) if len(tx_parts) > 1 else tx_parts[0]
        sch.bind(bx, "blockIdx.x")
        sch.bind(vt, "vthread")
        sch.bind(tx, "threadIdx.x")
        if inner_parts:
            sch.unroll(inner_parts[-1])

        # Sink the shared staging to the outer reduction loop, and the
        # register write-back to the thread tile.
        anchor = r_outer[0] if r_outer else None
        for copy in copies:
            try:
                if anchor is not None:
                    sch.compute_at(copy, anchor)
                schedule_shared_copy(
                    sch,
                    copy,
                    1,
                    thread_x=tx_total,
                    vector_len=sch.sample_categorical([1, 2, 4]),
                )
            except ScheduleError:
                pass
        if writeback is not None:
            try:
                sch.reverse_compute_at(writeback, tx)
            except ScheduleError:
                pass
        schedule_remaining_stages(sch, SimGPU(), exclude=[main.name])


class CpuSdotSketch(Sketch):
    """Micro-kernel tiling over the sdot instruction (§5.3)."""

    name = "cpu-sdot"

    def __init__(self, intrin_name: str = "sdot_4x4x4_i8"):
        self.intrin_name = intrin_name

    def applicable(self, sch: Schedule) -> bool:
        main = main_block_of(sch)
        if main is None:
            return False
        return bool(generate_candidates(sch, main, [self.intrin_name]))

    def apply(self, sch: Schedule) -> None:
        intrin = get_intrin(self.intrin_name)
        main = main_block_of(sch)
        prep = prepare_tensorize(sch, main, self.intrin_name)
        tm, tn, tk = prep.tile_shape
        writeback = None
        if _has_epilogue(sch, main):
            # Accumulate in registers so a fused epilogue can collapse
            # into the write-back instead of re-reading the output.
            try:
                writeback = sch.cache_write(main, 0, "local")
            except ScheduleError:
                writeback = None
        inline_prologue(sch)
        collapse_epilogue(sch, main)

        x, y, k = prep.tile_loops
        xo, xt = sch.split(x, [None, tm])
        yo, yt = sch.split(y, [None, tn])
        ko, kt = sch.split(k, [None, tk])
        x_p, x_i = [LoopRV(n.name) for n in sch.split(xo, sch.sample_perfect_tile(xo, 2, 16))]
        y_o, y_i = [LoopRV(n.name) for n in sch.split(yo, sch.sample_perfect_tile(yo, 2, 16))]
        k_o, k_i = [LoopRV(n.name) for n in sch.split(ko, sch.sample_perfect_tile(ko, 2, 16))]
        sch.reorder(x_p, y_o, k_o, x_i, y_i, k_i, xt, yt, kt)
        to_fuse = list(prep.outer_loops) + [x_p]
        par = sch.fuse(*to_fuse) if len(to_fuse) > 1 else to_fuse[0]
        sch.parallel(par)
        if writeback is not None:
            try:
                sch.reverse_compute_at(writeback, par)
            except ScheduleError:
                pass
        init = sch.decompose_reduction(main, k_o)
        sch.tensorize(xt, self.intrin_name)
        fill = intrin.paired.get("fill")
        init_loops = own_loops(sch, init)
        fm, fn = init_loops[-2], init_loops[-1]
        fmo, fmi = sch.split(fm, [None, tm])
        fno, fni = sch.split(fn, [None, tn])
        sch.reorder(fmo, fno, fmi, fni)
        if fill:
            sch.tensorize(fmi, fill)
        if sch.sample_categorical([0, 1]):
            sch.unroll(k_i)
        schedule_remaining_stages(sch, SimCPU(), exclude=[main.name])


class CpuScalarSketch(Sketch):
    """Parallel + vectorised CPU tiling (TVM-on-CPU baseline shape)."""

    name = "cpu-scalar"

    def applicable(self, sch: Schedule) -> bool:
        return main_block_of(sch) is not None

    def apply(self, sch: Schedule) -> None:
        main = main_block_of(sch)
        writeback = None
        if sch.block_of(main).is_reduction and _has_epilogue(sch, main):
            try:
                writeback = sch.cache_write(main, 0, "local")
            except ScheduleError:
                writeback = None
        collapse_epilogue(sch, main)
        inline_prologue(sch)
        block = sch.block_of(main)
        loops = own_loops(sch, main)
        spatial = [lp for lp, iv in zip(loops, block.iter_vars) if iv.is_spatial]
        reduce = [lp for lp, iv in zip(loops, block.iter_vars) if iv.is_reduce]
        if len(spatial) > 1:
            sch.reorder(*(spatial + reduce))
            fused = sch.fuse(*spatial)
        else:
            fused = spatial[0]
        tiles = sch.sample_perfect_tile(fused, 3, 16)
        par, mid, inner = [LoopRV(n.name) for n in sch.split(fused, tiles)]
        sch.parallel(par)
        if reduce:
            order = reduce + [mid, inner]
            sch.reorder(*order)
        vec_ok = const_int_value(sch.loop_of(inner).extent)
        if vec_ok and vec_ok > 1:
            sch.vectorize(inner)
        if sch.sample_categorical([0, 1]):
            sch.unroll(mid)
        if writeback is not None:
            try:
                sch.reverse_compute_at(writeback, par)
            except ScheduleError:
                pass
        schedule_remaining_stages(sch, SimCPU(), exclude=[main.name])


#: Applicability analysis is a pure function of (workload structure,
#: target, allow_tensorize), and sketch objects carry no per-schedule
#: state — the same instances can parameterise any number of searches.
_SKETCH_CACHE = _cache.MemoCache("meta.sketches", maxsize=512)


def generate_sketches(sch: Schedule, target: Target, allow_tensorize: bool = True) -> List[Sketch]:
    """The applicable sketches for a workload on a target (tensorized
    candidates first, following §4.3's candidate-centric construction)."""
    if not _cache.caches_enabled():
        return _generate_sketches_impl(sch, target, allow_tensorize)
    key = (
        structural_hash(sch.func),
        type(target).__qualname__,
        getattr(target, "name", None),
        allow_tensorize,
    )
    hit = _SKETCH_CACHE.lookup(key)
    if hit is not _cache.MISS:
        return list(hit)
    out = _generate_sketches_impl(sch, target, allow_tensorize)
    _SKETCH_CACHE.put(key, tuple(out))
    return out


def _generate_sketches_impl(
    sch: Schedule, target: Target, allow_tensorize: bool
) -> List[Sketch]:
    out: List[Sketch] = []
    if isinstance(target, SimGPU):
        if allow_tensorize:
            for name in target.compute_intrins:
                sk = TensorCoreSketch(name)
                if sk.applicable(sch):
                    out.append(sk)
        out.append(GpuScalarSketch())
    else:
        if allow_tensorize:
            for name in target.compute_intrins:
                sk = CpuSdotSketch(name)
                if sk.applicable(sch):
                    out.append(sk)
        out.append(CpuScalarSketch())
    return out
