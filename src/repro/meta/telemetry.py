"""Structured instrumentation for the tuning stack.

Table 1 of the paper is a tuning-*time* result, so where time goes must
be observable, not reconstructed.  ``Telemetry`` collects

* **spans** — wall-clock stage timings (``sketch-gen``, ``evolve``,
  ``validate``, ``measure``, ``model-update``, ``replay``…), each
  optionally attributed to a task.  Spans form a **hierarchy**: every
  span carries a ``span_id`` and a ``parent_id`` link
  (``session → task → generation → build/verify/estimate/measure``),
  maintained per-thread via a context-manager stack so nesting needs no
  plumbing.  A session marks its own span as the *root*, so spans
  recorded on worker threads (whose thread-local stack is empty) still
  attach to the session instead of floating free.  The flat
  ``stage_seconds()`` / ``task_seconds()`` views aggregate **leaf**
  spans only, so their sums still track wall time — hierarchy is
  additive, container spans are never double-counted.
* **counters** — monotonic counts (candidates generated, mutants
  rejected, tasks replayed…).  ``absorb_stats`` folds any dataclass of
  numeric fields (e.g. :class:`~repro.meta.search.SearchStats`) into the
  counters field-by-field, so a newly added counter can never be
  silently dropped.

All mutation is lock-protected: one ``Telemetry`` can be shared by every
worker of a parallel :class:`~repro.meta.session.TuningSession`.
``report()`` returns a JSON-ready dict with counters sorted by key and
spans sorted by start time, so two identical runs produce byte-identical
reports; a session wraps it with per-task accounting into its own
session report.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

__all__ = ["Span", "Telemetry"]


@dataclass
class Span:
    """One completed timing span."""

    stage: str
    task: Optional[str]
    start: float
    duration: float
    thread: str
    #: unique id within one Telemetry (allocation order, not start order).
    span_id: int = 0
    #: enclosing span at record time: the innermost open ``span()`` on
    #: this thread, else the telemetry root, else ``None``.
    parent_id: Optional[int] = None
    #: serving request id this span was stamped with (``None`` for spans
    #: not tied to one request).  Only the entry-point span of a request
    #: needs the stamp — descendants are reachable via ``parent_id``
    #: links (:meth:`Telemetry.span_tree`).
    request: Optional[str] = None


class Telemetry:
    """Thread-safe span/counter collector for one tuning run."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._lock = threading.Lock()
        self.spans: List[Span] = []
        self.counters: Dict[str, float] = {}
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._root: Optional[int] = None

    # -- span hierarchy -------------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Optional[int]:
        """The innermost open span id on this thread (or the root)."""
        stack = self._stack()
        return stack[-1] if stack else self._root

    def set_root(self, span_id: Optional[int]) -> None:
        """Declare a fallback parent for spans recorded with an empty
        thread-local stack — how worker-thread spans attach to the
        session span that spawned them."""
        self._root = span_id

    # -- spans ---------------------------------------------------------
    @contextmanager
    def span(
        self,
        stage: str,
        task: Optional[str] = None,
        request: Optional[str] = None,
    ):
        """Time a stage; nested/concurrent spans are all recorded.

        Yields the span id so callers may reference it (e.g.
        :meth:`set_root`); spans opened inside the ``with`` body on the
        same thread become children automatically.  ``request`` stamps
        the span with a serving request id — the anchor
        :meth:`span_tree` grows a per-request trace from.
        """
        span_id = next(self._ids)
        parent = self.current_span()
        stack = self._stack()
        stack.append(span_id)
        start = self._clock()
        try:
            yield span_id
        finally:
            duration = self._clock() - start
            stack.pop()
            with self._lock:
                self.spans.append(
                    Span(
                        stage, task, start, duration,
                        threading.current_thread().name, span_id, parent,
                        request,
                    )
                )

    def add(
        self,
        stage: str,
        duration: float,
        task: Optional[str] = None,
        start: Optional[float] = None,
        request: Optional[str] = None,
    ) -> None:
        """Record an already-measured duration as a span (used by inner
        loops that accumulate many tiny timings into one span).

        ``start`` is the stage's true start time on the telemetry clock;
        without it the span is assumed to end "now", which misplaces
        accumulated spans on an exported timeline.
        """
        if start is None:
            start = self._clock() - duration
        span_id = next(self._ids)
        parent = self.current_span()
        with self._lock:
            self.spans.append(
                Span(
                    stage, task, start, duration,
                    threading.current_thread().name, span_id, parent,
                    request,
                )
            )

    def span_tree(self, request: str) -> List[Span]:
        """Every completed span belonging to one serving request.

        Roots are the spans stamped ``request=...``; the tree is closed
        over ``parent_id`` links, so work a request triggered on other
        threads (a coalesced tuning batch, evaluator spans attached via
        :meth:`set_root`) rides along without any per-call plumbing.
        Sorted by (start, span_id) like :meth:`report`.

        Note: only *completed* spans are visible — a request's own
        entry-point span joins the tree once its ``with`` block exits.
        """
        with self._lock:
            spans = list(self.spans)
        keep = {s.span_id for s in spans if s.request == request}
        if not keep:
            return []
        grew = True
        while grew:
            grew = False
            for s in spans:
                if (
                    s.span_id not in keep
                    and s.parent_id is not None
                    and s.parent_id in keep
                ):
                    keep.add(s.span_id)
                    grew = True
        return sorted(
            (s for s in spans if s.span_id in keep),
            key=lambda s: (s.start, s.span_id),
        )

    def _leaf_spans(self) -> List[Span]:
        """Spans with no recorded children.

        The flat aggregate views count only leaves: container spans
        (``session``/``task``/``generation``) cover the same wall-clock
        as their children, so counting both would double-count — this is
        what keeps ``stage_seconds()`` sums ≈ wall time now that spans
        form a hierarchy."""
        with self._lock:
            spans = list(self.spans)
        parents = {s.parent_id for s in spans if s.parent_id is not None}
        return [s for s in spans if s.span_id not in parents]

    def stage_seconds(self) -> Dict[str, float]:
        """Total wall-clock per stage over **leaf** spans (concurrent
        spans both count; container spans are structure, not stages)."""
        out: Dict[str, float] = {}
        for s in self._leaf_spans():
            out[s.stage] = out.get(s.stage, 0.0) + s.duration
        return dict(sorted(out.items()))

    def task_seconds(self, stage: Optional[str] = None) -> Dict[str, float]:
        """Total leaf-span seconds per task, optionally for one stage."""
        out: Dict[str, float] = {}
        for s in self._leaf_spans():
            if s.task is None or (stage is not None and s.stage != stage):
                continue
            out[s.task] = out.get(s.task, 0.0) + s.duration
        return dict(sorted(out.items()))

    def threads_used(self, stage: Optional[str] = None) -> int:
        """Distinct worker threads that recorded spans (for ``stage``)."""
        with self._lock:
            return len(
                {s.thread for s in self.spans if stage is None or s.stage == stage}
            )

    # -- counters ------------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def absorb_stats(self, stats, prefix: str = "") -> None:
        """Fold every numeric field of a stats dataclass into counters.

        Field-generic on purpose: a counter added to ``SearchStats``
        later is aggregated here without touching this module.  A
        mapping-valued field (e.g. ``rejected_by_code``) is folded
        key-wise as dotted counters (``rejected_by_code.TIR105``).
        """
        for f in dataclasses.fields(stats):
            value = getattr(stats, f.name)
            if isinstance(value, (int, float)):
                self.count(prefix + f.name, value)
            elif isinstance(value, Mapping):
                for key, v in value.items():
                    if isinstance(v, (int, float)):
                        self.count(f"{prefix}{f.name}.{key}", v)

    def counters_by_prefix(self, prefix: str) -> Dict[str, float]:
        """Counters under ``prefix.`` with the prefix stripped — e.g.
        ``counters_by_prefix("rejected_by_code")`` returns per-code
        rejection counts."""
        head = prefix + "."
        with self._lock:
            return {
                name[len(head):]: value
                for name, value in self.counters.items()
                if name.startswith(head)
            }

    # -- reporting -----------------------------------------------------
    def report(self) -> dict:
        """A JSON-ready snapshot of everything collected.

        Deterministically ordered — counters sorted by name, spans by
        (start, span_id) — so identical runs diff cleanly.
        """
        with self._lock:
            spans = sorted(self.spans, key=lambda s: (s.start, s.span_id))
            counters = dict(sorted(self.counters.items()))
        return {
            "counters": counters,
            "stage_seconds": self.stage_seconds(),
            "spans": [dataclasses.asdict(s) for s in spans],
        }

    def to_json(self, **dump_kwargs) -> str:
        return json.dumps(self.report(), **dump_kwargs)
