"""Structured instrumentation for the tuning stack.

Table 1 of the paper is a tuning-*time* result, so where time goes must
be observable, not reconstructed.  ``Telemetry`` collects

* **spans** — wall-clock stage timings (``sketch-gen``, ``evolve``,
  ``validate``, ``measure``, ``model-update``, ``replay``…), each
  optionally attributed to a task, and
* **counters** — monotonic counts (candidates generated, mutants
  rejected, tasks replayed…).  ``absorb_stats`` folds any dataclass of
  numeric fields (e.g. :class:`~repro.meta.search.SearchStats`) into the
  counters field-by-field, so a newly added counter can never be
  silently dropped.

All mutation is lock-protected: one ``Telemetry`` can be shared by every
worker of a parallel :class:`~repro.meta.session.TuningSession`.
``report()`` returns a JSON-ready dict; a session wraps it with
per-task accounting into its own session report.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

__all__ = ["Span", "Telemetry"]


@dataclass
class Span:
    """One completed timing span."""

    stage: str
    task: Optional[str]
    start: float
    duration: float
    thread: str


class Telemetry:
    """Thread-safe span/counter collector for one tuning run."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._lock = threading.Lock()
        self.spans: List[Span] = []
        self.counters: Dict[str, float] = {}

    # -- spans ---------------------------------------------------------
    @contextmanager
    def span(self, stage: str, task: Optional[str] = None):
        """Time a stage; nested/concurrent spans are all recorded."""
        start = self._clock()
        try:
            yield
        finally:
            duration = self._clock() - start
            with self._lock:
                self.spans.append(
                    Span(stage, task, start, duration, threading.current_thread().name)
                )

    def add(self, stage: str, duration: float, task: Optional[str] = None) -> None:
        """Record an already-measured duration as a span (used by inner
        loops that accumulate many tiny timings into one span)."""
        end = self._clock()
        with self._lock:
            self.spans.append(
                Span(stage, task, end - duration, duration, threading.current_thread().name)
            )

    def stage_seconds(self) -> Dict[str, float]:
        """Total wall-clock per stage (concurrent spans both count)."""
        with self._lock:
            spans = list(self.spans)
        out: Dict[str, float] = {}
        for s in spans:
            out[s.stage] = out.get(s.stage, 0.0) + s.duration
        return out

    def task_seconds(self, stage: Optional[str] = None) -> Dict[str, float]:
        """Total span seconds per task, optionally for one stage."""
        with self._lock:
            spans = list(self.spans)
        out: Dict[str, float] = {}
        for s in spans:
            if s.task is None or (stage is not None and s.stage != stage):
                continue
            out[s.task] = out.get(s.task, 0.0) + s.duration
        return out

    def threads_used(self, stage: Optional[str] = None) -> int:
        """Distinct worker threads that recorded spans (for ``stage``)."""
        with self._lock:
            return len(
                {s.thread for s in self.spans if stage is None or s.stage == stage}
            )

    # -- counters ------------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def absorb_stats(self, stats, prefix: str = "") -> None:
        """Fold every numeric field of a stats dataclass into counters.

        Field-generic on purpose: a counter added to ``SearchStats``
        later is aggregated here without touching this module.  A
        mapping-valued field (e.g. ``rejected_by_code``) is folded
        key-wise as dotted counters (``rejected_by_code.TIR105``).
        """
        for f in dataclasses.fields(stats):
            value = getattr(stats, f.name)
            if isinstance(value, (int, float)):
                self.count(prefix + f.name, value)
            elif isinstance(value, Mapping):
                for key, v in value.items():
                    if isinstance(v, (int, float)):
                        self.count(f"{prefix}{f.name}.{key}", v)

    def counters_by_prefix(self, prefix: str) -> Dict[str, float]:
        """Counters under ``prefix.`` with the prefix stripped — e.g.
        ``counters_by_prefix("rejected_by_code")`` returns per-code
        rejection counts."""
        head = prefix + "."
        with self._lock:
            return {
                name[len(head):]: value
                for name, value in self.counters.items()
                if name.startswith(head)
            }

    # -- reporting -----------------------------------------------------
    def report(self) -> dict:
        """A JSON-ready snapshot of everything collected."""
        with self._lock:
            spans = list(self.spans)
            counters = dict(self.counters)
        return {
            "counters": counters,
            "stage_seconds": self.stage_seconds(),
            "spans": [dataclasses.asdict(s) for s in spans],
        }

    def to_json(self, **dump_kwargs) -> str:
        return json.dumps(self.report(), **dump_kwargs)
