"""The per-workload tuner: sketch generation + evolutionary search.

``tune`` is the full §4 pipeline for one operator: generate the
applicable sketches (tensorized candidates first), search each with the
shared cost model, and return the best program found.  Disabling
``TuneConfig.allow_tensorize`` is exactly the Ansor/TVM baseline
configuration used in the evaluation.

Record-replay (§5.2) is the default path: pass a ``database`` and an
already-tuned workload is rebuilt from its stored decision vector with
zero search; fresh results are recorded back.  The old
``tune(func, target, trials=..., seed=..., ...)`` keyword signature
still works through a deprecation shim.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import Optional

from .. import cache as _cache
from ..obs.record import Recorder
from ..schedule import Schedule
from ..sim import Target, estimate
from ..tir import PrimFunc
from .config import TuneConfig
from .cost_model import CostModel
from .database import Database, workload_key
from .search import SearchStats, TuneResult, _resolve_config, evolutionary_search
from .sketch import generate_sketches
from .telemetry import Telemetry

__all__ = ["tune"]


def _replay_result(
    func: PrimFunc, target: Target, database: Database
) -> Optional[TuneResult]:
    """Rebuild a stored best program with zero search (§5.2)."""
    entry = database.get(workload_key(func, target))
    if entry is None:
        return None
    sch = database.replay(func, target)
    if sch is None:
        return None
    report = estimate(sch.func, target)
    return TuneResult(
        func.name,
        sch.func,
        report.cycles,
        report,
        entry.sketch,
        stats=SearchStats(),
        best_decisions=list(entry.decisions),
        replayed=True,
    )


def tune(
    func: PrimFunc,
    target: Target,
    config: Optional[TuneConfig] = None,
    *,
    database: Optional[Database] = None,
    telemetry: Optional[Telemetry] = None,
    task: Optional[str] = None,
    recorder: Optional[Recorder] = None,
    **legacy,
) -> TuneResult:
    """Tune one workload; returns the best schedule found.

    ``config.trials`` bounds the total number of measured candidates
    across all sketches.  Tensorized sketches get the larger share of
    the budget (their search space is the one that matters once an
    intrinsic matches — and the paper's §5.2 observes the
    divide-and-conquer search space is *smaller*, converging in fewer
    trials).

    With ``config.obs.enabled`` (or an explicit ``recorder``) the run is
    flight-recorded: hierarchical spans, per-candidate events and a
    per-trial provenance ledger.  A recorder created here (from the
    config) has its JSONL sink flushed before returning; pass your own
    ``recorder`` to keep the in-memory ledger across calls.
    """
    config = _resolve_config(config, legacy, "tune")
    task = task or func.name
    owns_recorder = False
    if recorder is None and config.obs.enabled:
        recorder = Recorder(config.obs, telemetry=telemetry)
        owns_recorder = True
    recording = recorder is not None and recorder.enabled
    cache_before = _cache.snapshot_counts() if owns_recorder and recording else None

    task_span = (
        telemetry.span("task", task) if telemetry is not None else nullcontext()
    )
    with task_span:
        if database is not None:
            t0 = time.perf_counter()
            replayed = _replay_result(func, target, database)
            if replayed is not None:
                if telemetry is not None:
                    telemetry.add("replay", time.perf_counter() - t0, task, start=t0)
                    telemetry.count("tasks_replayed")
                return replayed

        probe = Schedule(func, record_trace=False)
        sketches = config.sketches
        if sketches is None:
            t0 = time.perf_counter()
            sketches = generate_sketches(
                probe, target, allow_tensorize=config.allow_tensorize
            )
            if telemetry is not None:
                telemetry.add("sketch-gen", time.perf_counter() - t0, task, start=t0)
        if not sketches:
            raise ValueError(f"no applicable sketches for {func.name}")

        model = CostModel(target, seed=config.seed, recorder=recorder)
        best: Optional[TuneResult] = None
        combined_stats = SearchStats()
        records = []
        has_tensor = any(s.name in ("tensor-core", "cpu-sdot") for s in sketches)
        for i, sketch in enumerate(sketches):
            if has_tensor and len(sketches) > 1:
                share = 0.75 if sketch.name in ("tensor-core", "cpu-sdot") else 0.25
            else:
                share = 1.0 / len(sketches)
            budget = max(2, int(config.trials * share))
            result = evolutionary_search(
                func,
                sketch,
                target,
                config.with_(trials=budget, seed=config.seed + i * 7919, sketches=None),
                cost_model=model,
                telemetry=telemetry,
                task=task,
                recorder=recorder,
            )
            records.extend(result.records)
            combined_stats.merge(result.stats)
            if best is None or result.best_cycles < best.best_cycles:
                best = result
        assert best is not None
        out = TuneResult(
            func.name,
            best.best_func,
            best.best_cycles,
            best.best_report,
            best.best_sketch,
            records=records,
            stats=combined_stats,
            best_decisions=best.best_decisions,
        )
        if telemetry is not None:
            telemetry.count("tasks_searched")
        if database is not None and out.best_sketch is not None and out.best_decisions is not None:
            database.record(
                func, target, out.best_sketch, out.best_decisions, out.best_cycles
            )
        if cache_before is not None:
            recorder.record_cache_delta(_cache.delta_since(cache_before))
        if owns_recorder:
            recorder.close()
        return out
