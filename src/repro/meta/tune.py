"""The per-workload tuner: sketch generation + evolutionary search.

``tune`` is the full §4 pipeline for one operator: generate the
applicable sketches (tensorized candidates first), search each with the
shared cost model, and return the best program found.  ``allow_tensorize``
switches auto-tensorization off — that is exactly the Ansor/TVM baseline
configuration used in the evaluation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..schedule import Schedule
from ..sim import Target
from ..tir import PrimFunc
from .cost_model import CostModel
from .search import SearchStats, TuneResult, evolutionary_search
from .sketch import Sketch, generate_sketches

__all__ = ["tune"]


def tune(
    func: PrimFunc,
    target: Target,
    trials: int = 32,
    seed: int = 0,
    allow_tensorize: bool = True,
    sketches: Optional[Sequence[Sketch]] = None,
    validate: bool = True,
) -> TuneResult:
    """Tune one workload; returns the best schedule found.

    ``trials`` bounds the total number of measured candidates across all
    sketches.  Tensorized sketches get the larger share of the budget
    (their search space is the one that matters once an intrinsic
    matches — and the paper's §5.2 observes the divide-and-conquer
    search space is *smaller*, converging in fewer trials).
    """
    probe = Schedule(func, record_trace=False)
    if sketches is None:
        sketches = generate_sketches(probe, target, allow_tensorize=allow_tensorize)
    if not sketches:
        raise ValueError(f"no applicable sketches for {func.name}")

    model = CostModel(target, seed=seed)
    best: Optional[TuneResult] = None
    combined_stats = SearchStats()
    records = []
    has_tensor = any(s.name in ("tensor-core", "cpu-sdot") for s in sketches)
    for i, sketch in enumerate(sketches):
        if has_tensor and len(sketches) > 1:
            share = 0.75 if sketch.name in ("tensor-core", "cpu-sdot") else 0.25
        else:
            share = 1.0 / len(sketches)
        budget = max(2, int(trials * share))
        result = evolutionary_search(
            func,
            sketch,
            target,
            trials=budget,
            seed=seed + i * 7919,
            cost_model=model,
            validate=validate,
        )
        records.extend(result.records)
        combined_stats.candidates_generated += result.stats.candidates_generated
        combined_stats.invalid_rejected += result.stats.invalid_rejected
        combined_stats.apply_failed += result.stats.apply_failed
        combined_stats.measured += result.stats.measured
        combined_stats.profiling_seconds += result.stats.profiling_seconds
        if best is None or result.best_cycles < best.best_cycles:
            best = result
    assert best is not None
    out = TuneResult(
        func.name,
        best.best_func,
        best.best_cycles,
        best.best_report,
        best.best_sketch,
        records=records,
        stats=combined_stats,
        best_decisions=best.best_decisions,
    )
    return out
