"""``repro.obs`` — the tuning flight recorder.

A structured tracing layer threaded through the whole tuning stack
(§Table 1 of the paper is a tuning-*time* result; explaining one
requires knowing where every second and every rejected candidate went):

* **Hierarchical spans** — :class:`~repro.meta.telemetry.Telemetry`
  spans carry ids and parent links
  (``session → task → generation → build/verify/estimate/measure``);
  the flat ``stage_seconds()`` view is unchanged.
* **Typed events** — a bounded, thread-safe
  :class:`~repro.obs.events.EventStream` (:class:`TrialEvent`,
  :class:`Rejection`, :class:`BestImproved`, :class:`GenerationEnd`,
  :class:`ModelUpdate`, :class:`CacheEvent`) with an optional JSONL
  sink, so long sessions never grow memory unboundedly.
* **Per-trial provenance** — every candidate that reaches the measurer
  gets a :class:`~repro.obs.record.TrialRecord` (workload key, sketch,
  generation, mutation lineage, decision vector, serialized schedule
  trace, structural hash): any recorded best program can be re-derived
  by :func:`replay_trial`.
* **Exporters + CLI** — ``python -m repro.obs`` summarizes a recording,
  exports a Chrome-trace/Perfetto timeline (optionally narrowed to one
  serving request's span tree), diffs two runs, and digests a
  serving-metrics snapshot (``serve-report``, ``--prom`` for Prometheus
  text exposition).
* **Serving metrics** — :mod:`repro.obs.metrics`: a typed, thread-safe
  Counter/Gauge/Histogram registry with labeled families,
  ``snapshot()``/``delta_since()`` and zero-dep Prometheus exposition,
  threaded through the schedule server, tuning sessions, evaluator
  backends and the persistent database.

Switch it on through the tune config::

    cfg = TuneConfig(trials=32, obs=ObsConfig(enabled=True, sink_path="run.jsonl"))
    session = TuningSession(SimGPU(), cfg)
    session.add(ops.matmul(512, 512, 512))
    report = session.run()
    session.recorder.save("run.json")          # the flight recording
    # then: python -m repro.obs summarize run.json
"""

from .config import ObsConfig
from .events import (
    BestImproved,
    CacheEvent,
    EventStream,
    GenerationEnd,
    JsonlSink,
    ModelUpdate,
    Rejection,
    ServeRequest,
    TrialEvent,
    event_to_json,
)
from .export import chrome_trace, diff_recordings, serve_report, summarize
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from .record import Recorder, TrialRecord, load_recording, replay_trial

__all__ = [
    "ObsConfig",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "render_prometheus",
    "serve_report",
    "Recorder",
    "TrialRecord",
    "EventStream",
    "JsonlSink",
    "TrialEvent",
    "Rejection",
    "BestImproved",
    "GenerationEnd",
    "ModelUpdate",
    "CacheEvent",
    "ServeRequest",
    "event_to_json",
    "chrome_trace",
    "summarize",
    "diff_recordings",
    "load_recording",
    "replay_trial",
]
