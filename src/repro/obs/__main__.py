"""CLI over saved flight recordings and serving-metrics snapshots.

    python -m repro.obs summarize RUN.json
    python -m repro.obs export --chrome RUN.json -o TIMELINE.json
    python -m repro.obs export --chrome --request req-000003 RUN.json
    python -m repro.obs diff A.json B.json
    python -m repro.obs serve-report METRICS.json [--prom]

``summarize`` prints the per-stage / per-task / rejection-mix tables;
``export --chrome`` writes a Chrome-trace/Perfetto timeline
(``--request`` narrows it to one serving request's span tree); ``diff``
compares two runs (stage seconds, rejection mix, best-cost curve);
``serve-report`` digests a ``MetricsRegistry.save()`` snapshot into
summary tables, or dumps it in Prometheus text exposition with
``--prom``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from .export import chrome_trace, diff_recordings, serve_report, summarize
from .metrics import render_prometheus
from .record import load_recording


def _write_atomic(path: str, payload: str) -> None:
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".obs-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            f.write(payload)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and export tuning flight recordings.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="per-stage/per-task summary table")
    p_sum.add_argument("recording", help="path to a Recorder.save artifact")

    p_exp = sub.add_parser("export", help="convert a recording to a timeline")
    p_exp.add_argument("recording", help="path to a Recorder.save artifact")
    p_exp.add_argument(
        "--chrome", action="store_true",
        help="Chrome-trace/Perfetto JSON (the only format, and the default)",
    )
    p_exp.add_argument("-o", "--out", default=None, help="output path (default: stdout)")
    p_exp.add_argument(
        "--request", default=None, metavar="REQ_ID",
        help="narrow the timeline to one serving request's span tree "
             "(e.g. req-000003)",
    )

    p_diff = sub.add_parser("diff", help="compare two recordings")
    p_diff.add_argument("recording_a")
    p_diff.add_argument("recording_b")

    p_srv = sub.add_parser(
        "serve-report", help="summarize a serving-metrics snapshot"
    )
    p_srv.add_argument(
        "snapshot", help="path to a MetricsRegistry.save() JSON snapshot"
    )
    p_srv.add_argument(
        "--prom", action="store_true",
        help="dump Prometheus text exposition instead of summary tables",
    )

    args = parser.parse_args(argv)
    try:
        if args.command == "summarize":
            print(summarize(load_recording(args.recording)))
        elif args.command == "export":
            trace = chrome_trace(load_recording(args.recording), request=args.request)
            payload = json.dumps(trace, indent=1, sort_keys=True)
            if args.out:
                _write_atomic(args.out, payload)
                print(
                    f"wrote {args.out} ({len(trace['traceEvents'])} trace events)",
                    file=sys.stderr,
                )
            else:
                print(payload)
        elif args.command == "diff":
            a = load_recording(args.recording_a)
            b = load_recording(args.recording_b)
            print(
                diff_recordings(
                    a, b,
                    label_a=os.path.basename(args.recording_a),
                    label_b=os.path.basename(args.recording_b),
                )
            )
        elif args.command == "serve-report":
            with open(args.snapshot) as f:
                snapshot = json.load(f)
            if args.prom:
                print(render_prometheus(snapshot), end="")
            else:
                print(serve_report(snapshot))
    except FileNotFoundError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    except (json.JSONDecodeError, KeyError, ValueError) as err:
        print(f"error: malformed recording: {err}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
