"""Observability configuration.

``ObsConfig`` is the single switch for the flight recorder: it rides on
:class:`~repro.meta.config.TuneConfig` (``TuneConfig(obs=ObsConfig(...))``)
and is consumed by a :class:`~repro.obs.record.Recorder`.  The default
is **off** — with ``enabled=False`` every recorder call is a no-op and
the search hot path pays only a handful of predicate checks (the
overhead contract is benchmarked in ``scripts/bench_hotpaths.py
--obs-overhead`` and reported in EXPERIMENTS.md).

This module imports only the standard library so configuration can be
constructed anywhere without pulling the compiler stack.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["ObsConfig"]


@dataclass(frozen=True)
class ObsConfig:
    """Flight-recorder settings for one tuning run.

    * ``enabled`` — master switch; off by default.
    * ``sink_path`` — append events as JSON lines to this file while the
      run progresses, so long sessions don't grow memory unboundedly
      (the in-memory stream stays bounded by ``max_events`` either way).
    * ``max_events`` — capacity of the in-memory event ring; the oldest
      events are dropped (and counted) once it fills.
    * ``sample_rate`` — fraction of *high-volume* events (per-candidate
      rejections) kept, applied deterministically by count so identical
      runs record identical event streams.  Trials, generation marks,
      best-improvements and cache events are never sampled out.
    * ``record_traces`` — serialize the schedule trace of every measured
      trial (the replayable provenance).  Costs one extra candidate
      build per *measured* trial; disable to trade replayability for
      overhead.
    * ``on_generation`` / ``on_best_improved`` — live progress callbacks
      for driving scripts; called synchronously with a JSON-ready dict.
      Callbacks are excluded from serialized form.
    """

    enabled: bool = False
    sink_path: Optional[str] = None
    max_events: int = 65536
    sample_rate: float = 1.0
    record_traces: bool = True
    on_generation: Optional[Callable[[dict], None]] = None
    on_best_improved: Optional[Callable[[dict], None]] = None

    def with_(self, **changes) -> "ObsConfig":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def to_json(self) -> dict:
        """JSON-ready form (callbacks omitted — they don't serialize)."""
        return {
            "enabled": self.enabled,
            "sink_path": self.sink_path,
            "max_events": self.max_events,
            "sample_rate": self.sample_rate,
            "record_traces": self.record_traces,
        }
