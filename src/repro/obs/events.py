"""Typed events and the bounded, thread-safe event stream.

The flight recorder observes the search loop through a small set of
typed events rather than log lines, so exporters and diffs can work on
a schema instead of parsing text:

* :class:`TrialEvent` — one measured candidate (the event-stream face of
  a :class:`~repro.obs.record.TrialRecord`).
* :class:`Rejection` — one candidate killed before measurement, with its
  diagnostic code.  High-volume; subject to sampling.
* :class:`BestImproved` — the best-cost curve, one point per improvement.
* :class:`GenerationEnd` — one evolutionary generation completed.
* :class:`ModelUpdate` — the cost model refit on new measurements.
* :class:`CacheEvent` — memoization activity over a run window.
* :class:`ServeRequest` — one schedule-server request resolved
  (hit / miss / coalesced), with the search trials it cost.

Every event carries ``ts`` on the telemetry clock
(``time.perf_counter``), so exported timelines interleave events with
spans on one time axis.  :class:`EventStream` is a bounded ring: once
``max_events`` is reached the oldest in-memory events are dropped (and
counted), while an attached :class:`JsonlSink` has already streamed
every kept event to disk — long sessions never grow memory unboundedly.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from collections import deque
from dataclasses import dataclass
from typing import ClassVar, Dict, List, Optional

__all__ = [
    "BestImproved",
    "CacheEvent",
    "EventStream",
    "GenerationEnd",
    "JsonlSink",
    "ModelUpdate",
    "Rejection",
    "ServeRequest",
    "TrialEvent",
    "event_to_json",
]


@dataclass
class TrialEvent:
    """One candidate measured on the (simulated) hardware."""

    kind: ClassVar[str] = "trial"
    ts: float
    task: str
    sketch: str
    generation: int
    trial_id: int
    predicted: Optional[float]
    cycles: float
    seconds: float
    bound: str


@dataclass
class Rejection:
    """One candidate rejected before measurement.

    ``stage`` is where it died — ``"apply"`` (a primitive precondition),
    ``"invalid"`` (the §3.3 validation battery) or ``"estimate"`` (the
    analytical model could not cost it) — and ``code`` the diagnostic
    error code (``TIRnnn``)."""

    kind: ClassVar[str] = "rejection"
    ts: float
    task: str
    sketch: str
    generation: int
    stage: str
    code: str


@dataclass
class BestImproved:
    """The incumbent best program was beaten."""

    kind: ClassVar[str] = "best-improved"
    ts: float
    task: str
    trial_id: int
    cycles: float
    previous: Optional[float]


@dataclass
class GenerationEnd:
    """One evolutionary generation finished (the live-progress beat)."""

    kind: ClassVar[str] = "generation"
    ts: float
    task: str
    sketch: str
    index: int
    pool: int
    measured: int
    best_cycles: Optional[float]


@dataclass
class ModelUpdate:
    """The learned cost model absorbed a measurement batch."""

    kind: ClassVar[str] = "model-update"
    ts: float
    samples: int
    trained: bool


@dataclass
class CacheEvent:
    """Memoization activity of one named cache over a run window."""

    kind: ClassVar[str] = "cache"
    ts: float
    name: str
    hits: int
    misses: int
    evictions: int = 0


@dataclass
class ServeRequest:
    """One schedule-server request resolved.

    ``source`` is the serving path (``"hit"`` / ``"miss"`` /
    ``"coalesced"``), ``trials`` the search trials spent serving this
    request (0 on hits and coalesced waiters), ``wait_seconds`` the
    submit-to-resolve latency."""

    kind: ClassVar[str] = "serve-request"
    ts: float
    workload: str
    source: str
    trials: int
    wait_seconds: float


def event_to_json(event) -> dict:
    """``{"kind": ..., <fields>}`` — the JSONL/artifact wire form."""
    out = {"kind": event.kind}
    out.update(dataclasses.asdict(event))
    return out


class JsonlSink:
    """Append-only JSON-lines writer, safe to share across threads.

    The file is opened lazily on the first write and re-opened (append)
    after :meth:`close`, so one sink can span several ``run()`` calls.
    Lines are ``json.dumps(..., sort_keys=True)`` — stable for diffing.
    """

    def __init__(self, path: str):
        self.path = path
        self.lines_written = 0
        self._lock = threading.Lock()
        self._fh = None

    def write(self, obj: dict) -> None:
        line = json.dumps(obj, sort_keys=True)
        with self._lock:
            if self._fh is None:
                self._fh = open(self.path, "a")
            self._fh.write(line + "\n")
            self.lines_written += 1

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: event kinds subject to ``sample_rate`` (the per-candidate firehose).
SAMPLED_KINDS = ("rejection",)


class EventStream:
    """Bounded, thread-safe event collector with optional JSONL sink.

    Sampling is deterministic: the *n*-th event of a sampled kind is
    kept iff ``floor(n * rate) > floor((n-1) * rate)``, so two identical
    runs keep identical events (no RNG involved, and the search RNG is
    never touched).
    """

    def __init__(
        self,
        max_events: int = 65536,
        sink: Optional[JsonlSink] = None,
        sample_rate: float = 1.0,
    ):
        self.sink = sink
        self.sample_rate = max(0.0, min(1.0, sample_rate))
        self.emitted = 0       # events offered
        self.sampled_out = 0   # dropped by sampling (never reached memory/sink)
        self.dropped = 0       # evicted from the bounded in-memory ring
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=max_events)
        self._kind_counts: Dict[str, int] = {}

    def emit(self, event) -> bool:
        """Record one event; returns whether it was kept (vs sampled out)."""
        with self._lock:
            self.emitted += 1
            if event.kind in SAMPLED_KINDS and self.sample_rate < 1.0:
                n = self._kind_counts.get(event.kind, 0) + 1
                self._kind_counts[event.kind] = n
                if int(n * self.sample_rate) <= int((n - 1) * self.sample_rate):
                    self.sampled_out += 1
                    return False
            obj = event_to_json(event)
            if self._events.maxlen and len(self._events) == self._events.maxlen:
                self.dropped += 1
            self._events.append(obj)
        # The sink has its own lock; writing outside ours keeps emitters
        # from serializing on file I/O ordering (JSONL lines are
        # self-contained, so interleaving across threads is fine).
        if self.sink is not None:
            self.sink.write(obj)
        return True

    def events(self, kind: Optional[str] = None) -> List[dict]:
        """A snapshot of the in-memory events (oldest first)."""
        with self._lock:
            out = list(self._events)
        if kind is not None:
            out = [e for e in out if e.get("kind") == kind]
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "emitted": self.emitted,
                "kept": len(self._events),
                "sampled_out": self.sampled_out,
                "dropped": self.dropped,
            }
