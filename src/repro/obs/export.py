"""Exporters over a saved flight recording.

* :func:`chrome_trace` — the telemetry span hierarchy + event stream as
  a Chrome-trace/Perfetto JSON timeline (``traceEvents`` with complete
  ``ph: "X"`` slices per span, ``ph: "i"`` instants per event, and
  thread-name metadata).  Load it at ``ui.perfetto.dev`` or
  ``chrome://tracing``.
* :func:`summarize` — a per-stage / per-task text table: where the
  seconds went, what was rejected and why, the best program per task.
* :func:`diff_recordings` — two runs side by side: stage seconds,
  rejection mix, and the best-cost curve, so a tuning-time regression
  can be localized without re-running anything.

All three consume the plain-dict artifact written by
:meth:`~repro.obs.record.Recorder.save`; nothing here imports the
compiler stack, so post-mortem analysis works in any Python.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["chrome_trace", "summarize", "diff_recordings", "serve_report"]


def _spans(recording: dict) -> List[dict]:
    return recording.get("telemetry", {}).get("spans", [])


def _request_tree(spans: List[dict], request: str) -> List[dict]:
    """The span tree of one serving request: spans stamped with the
    request id, closed over ``parent_id`` links — the exporter-side
    mirror of :meth:`repro.meta.telemetry.Telemetry.span_tree`."""
    keep = {s.get("span_id") for s in spans if s.get("request") == request}
    grew = bool(keep)
    while grew:
        grew = False
        for s in spans:
            parent = s.get("parent_id")
            if s.get("span_id") not in keep and parent is not None and parent in keep:
                keep.add(s.get("span_id"))
                grew = True
    return [s for s in spans if s.get("span_id") in keep]


def _leaf_spans(recording: dict) -> List[dict]:
    """Spans with no recorded children — the same leaf-only rule
    :meth:`repro.meta.telemetry.Telemetry.stage_seconds` uses, so
    summed seconds track wall time instead of double-counting the
    ``session``/``task``/``generation`` containers."""
    spans = _spans(recording)
    parents = {s.get("parent_id") for s in spans if s.get("parent_id") is not None}
    return [s for s in spans if s.get("span_id") not in parents]


def _base_ts(recording: dict) -> float:
    spans = _spans(recording)
    events = recording.get("events", [])
    candidates = [s["start"] for s in spans] + [e["ts"] for e in events]
    anchor = recording.get("clock_anchor")
    if anchor is not None:
        candidates.append(anchor)
    return min(candidates) if candidates else 0.0


def chrome_trace(recording: dict, request: Optional[str] = None) -> dict:
    """Convert a recording to Chrome-trace JSON (Perfetto-loadable).

    Timestamps are microseconds relative to the earliest span/event.
    Each telemetry thread becomes a ``tid`` (named via ``thread_name``
    metadata); spans carry their ``span_id``/``parent_id``/``task`` —
    and, for serving spans, the ``request`` id — in ``args`` so the
    hierarchy survives into the UI and a request's span tree
    round-trips through the export.  ``request`` narrows the timeline
    to one serving request's span tree (events are dropped).
    """
    base = _base_ts(recording)
    tids: Dict[str, int] = {}
    trace_events: List[dict] = []

    def tid_of(thread: str) -> int:
        if thread not in tids:
            tids[thread] = len(tids) + 1
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tids[thread],
                    "args": {"name": thread},
                }
            )
        return tids[thread]

    spans = _spans(recording)
    if request is not None:
        spans = _request_tree(spans, request)
    for span in spans:
        trace_events.append(
            {
                "name": span["stage"],
                "cat": "span",
                "ph": "X",
                "ts": round((span["start"] - base) * 1e6, 3),
                "dur": round(span["duration"] * 1e6, 3),
                "pid": 1,
                "tid": tid_of(span.get("thread", "main")),
                "args": {
                    "task": span.get("task"),
                    "span_id": span.get("span_id"),
                    "parent_id": span.get("parent_id"),
                    "request": span.get("request"),
                },
            }
        )
    for event in [] if request is not None else recording.get("events", []):
        args = {k: v for k, v in event.items() if k not in ("kind", "ts")}
        trace_events.append(
            {
                "name": event.get("kind", "event"),
                "cat": "event",
                "ph": "i",
                "s": "p",  # process-scoped instant
                "ts": round((event.get("ts", base) - base) * 1e6, 3),
                "pid": 1,
                "tid": tid_of("events"),
                "args": args,
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": recording.get("schema"),
            "created_unix": recording.get("created_unix"),
        },
    }


# ---------------------------------------------------------------------------
# summary
# ---------------------------------------------------------------------------


def _table(rows: List[List[str]], header: List[str]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)).rstrip())
    return "\n".join(lines)


def _rejection_mix(recording: dict) -> Dict[str, int]:
    """Per-code rejection counts: prefer exact telemetry counters, fall
    back to the (possibly sampled) event stream."""
    counters = recording.get("telemetry", {}).get("counters", {})
    prefix = "rejected_by_code."
    mix = {
        name[len(prefix):]: int(value)
        for name, value in counters.items()
        if name.startswith(prefix)
    }
    if mix:
        return mix
    out: Dict[str, int] = {}
    for event in recording.get("events", []):
        if event.get("kind") == "rejection":
            out[event["code"]] = out.get(event["code"], 0) + 1
    return out


def _best_by_task(recording: dict) -> Dict[str, float]:
    best: Dict[str, float] = {}
    for trial in recording.get("trials", []):
        cycles = trial.get("cycles")
        if cycles is None:
            continue
        task = trial.get("task", "?")
        if task not in best or cycles < best[task]:
            best[task] = cycles
    if best:
        return best
    for event in recording.get("events", []):
        if event.get("kind") == "best-improved":
            best[event["task"]] = event["cycles"]
    return best


def summarize(recording: dict) -> str:
    """A human-readable digest of one recording."""
    telemetry = recording.get("telemetry", {})
    out: List[str] = []
    out.append(f"flight recording ({recording.get('schema', '?')})")
    stats = recording.get("event_stats", {})
    trials = recording.get("trials", [])
    measured = [t for t in trials if t.get("cycles") is not None]
    out.append(
        f"events: {stats.get('emitted', 0)} emitted, {stats.get('kept', 0)} kept, "
        f"{stats.get('sampled_out', 0)} sampled out, {stats.get('dropped', 0)} dropped; "
        f"trials: {len(trials)} recorded, {len(measured)} measured, "
        f"{sum(1 for t in measured if t.get('trace'))} with replayable traces"
    )

    stage_seconds = telemetry.get("stage_seconds", {})
    if stage_seconds:
        total = sum(stage_seconds.values()) or 1.0
        rows = [
            [stage, f"{seconds:.4f}", f"{100 * seconds / total:.1f}%"]
            for stage, seconds in sorted(
                stage_seconds.items(), key=lambda kv: -kv[1]
            )
        ]
        out.append("")
        out.append(_table(rows, ["stage", "seconds", "share"]))

    tasks: Dict[str, Dict[str, float]] = {}
    for span in _leaf_spans(recording):
        task = span.get("task")
        if task is None:
            continue
        tasks.setdefault(task, {"seconds": 0.0})
        tasks[task]["seconds"] += span["duration"]
    best = _best_by_task(recording)
    trials_per_task: Dict[str, int] = {}
    for t in measured:
        trials_per_task[t["task"]] = trials_per_task.get(t["task"], 0) + 1
    if tasks or best:
        rows = []
        for task in sorted(set(tasks) | set(best)):
            rows.append(
                [
                    task,
                    f"{tasks.get(task, {}).get('seconds', 0.0):.4f}",
                    str(trials_per_task.get(task, 0)),
                    f"{best[task]:.0f}" if task in best else "-",
                ]
            )
        out.append("")
        out.append(_table(rows, ["task", "span-seconds", "measured", "best-cycles"]))

    mix = _rejection_mix(recording)
    if mix:
        total_rej = sum(mix.values()) or 1
        rows = [
            [code, str(count), f"{100 * count / total_rej:.1f}%"]
            for code, count in sorted(mix.items(), key=lambda kv: (-kv[1], kv[0]))
        ]
        out.append("")
        out.append(_table(rows, ["rejection", "count", "share"]))
    return "\n".join(out)


# ---------------------------------------------------------------------------
# serving metrics
# ---------------------------------------------------------------------------


def _fmt_seconds(value: Optional[float]) -> str:
    return f"{value:.6f}" if value is not None else "-"


def _fmt_num(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else f"{value:.4f}"


def serve_report(snapshot: dict) -> str:
    """A human-readable digest of one serving-metrics snapshot
    (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`/``save``).

    Histograms get count / mean / p50 / p95 / p99 rows — quantiles come
    from the rolling window of raw observations when present (exact,
    matching ``ScheduleServer.health()``), else interpolated from the
    bucket counts.  Counters and gauges each get one table.
    """
    from .metrics import quantile_from_buckets

    import math

    metrics = snapshot.get("metrics", {})
    counter_rows: List[List[str]] = []
    gauge_rows: List[List[str]] = []
    hist_rows: List[List[str]] = []
    for name, family in sorted(metrics.items()):
        kind = family.get("kind", "gauge")
        for key, value in sorted(family.get("series", {}).items()):
            label = f"{name}{{{key}}}" if key else name
            if kind == "counter":
                counter_rows.append([label, _fmt_num(value)])
            elif kind == "gauge":
                gauge_rows.append([label, _fmt_num(value)])
            else:
                count = int(value.get("count", 0))
                total = float(value.get("sum", 0.0))
                mean = total / count if count else None
                window = sorted(value.get("window", []))

                def _q(q: float) -> Optional[float]:
                    if window:
                        return window[min(len(window) - 1, int(q * len(window)))]
                    cumulative, running = [], 0
                    for bound, n in zip(
                        value.get("bounds", []), value.get("bucket_counts", [])
                    ):
                        running += n
                        cumulative.append((bound, running))
                    cumulative.append((math.inf, count))
                    return quantile_from_buckets(cumulative, q)

                hist_rows.append(
                    [
                        label,
                        str(count),
                        _fmt_seconds(mean),
                        _fmt_seconds(_q(0.50)),
                        _fmt_seconds(_q(0.95)),
                        _fmt_seconds(_q(0.99)),
                    ]
                )
    out = [f"serving metrics ({snapshot.get('namespace', 'repro')})"]
    if hist_rows:
        out.append("")
        out.append(_table(hist_rows, ["histogram", "count", "mean", "p50", "p95", "p99"]))
    if counter_rows:
        out.append("")
        out.append(_table(counter_rows, ["counter", "total"]))
    if gauge_rows:
        out.append("")
        out.append(_table(gauge_rows, ["gauge", "value"]))
    if len(out) == 1:
        out.append("no metrics recorded")
    return "\n".join(out)


# ---------------------------------------------------------------------------
# diff
# ---------------------------------------------------------------------------


def _best_curve(recording: dict, task: Optional[str] = None) -> List[float]:
    curve = [
        e["cycles"]
        for e in recording.get("events", [])
        if e.get("kind") == "best-improved" and (task is None or e.get("task") == task)
    ]
    return curve


def diff_recordings(a: dict, b: dict, label_a: str = "A", label_b: str = "B") -> str:
    """Compare two recordings: stage seconds, rejection mix, best cost."""
    out: List[str] = [f"diff: {label_a} vs {label_b}"]

    sa = a.get("telemetry", {}).get("stage_seconds", {})
    sb = b.get("telemetry", {}).get("stage_seconds", {})
    rows = []
    for stage in sorted(set(sa) | set(sb)):
        va, vb = sa.get(stage, 0.0), sb.get(stage, 0.0)
        delta = vb - va
        pct = f"{100 * delta / va:+.1f}%" if va else "new"
        rows.append([stage, f"{va:.4f}", f"{vb:.4f}", f"{delta:+.4f}", pct])
    if rows:
        out.append("")
        out.append(_table(rows, ["stage", label_a, label_b, "delta", "pct"]))

    ma, mb = _rejection_mix(a), _rejection_mix(b)
    rows = []
    for code in sorted(set(ma) | set(mb)):
        rows.append(
            [code, str(ma.get(code, 0)), str(mb.get(code, 0)),
             f"{mb.get(code, 0) - ma.get(code, 0):+d}"]
        )
    if rows:
        out.append("")
        out.append(_table(rows, ["rejection", label_a, label_b, "delta"]))

    besta, bestb = _best_by_task(a), _best_by_task(b)
    rows = []
    for task in sorted(set(besta) | set(bestb)):
        va, vb = besta.get(task), bestb.get(task)
        if va is not None and vb is not None:
            verdict = "same" if va == vb else ("better" if vb < va else "worse")
        else:
            verdict = "only-" + (label_a if va is not None else label_b)
        rows.append(
            [
                task,
                f"{va:.0f}" if va is not None else "-",
                f"{vb:.0f}" if vb is not None else "-",
                f"{len(_best_curve(a, task))}/{len(_best_curve(b, task))}",
                verdict,
            ]
        )
    if rows:
        out.append("")
        out.append(
            _table(rows, ["task", f"best({label_a})", f"best({label_b})",
                          "improvements", "verdict"])
        )
    return "\n".join(out)
