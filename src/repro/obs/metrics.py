"""``repro.obs.metrics`` — the typed, thread-safe metrics layer for the
serving stack.

PR 4's flight recorder observes *tuning runs*; this module observes
*the service*.  Three instrument types, Prometheus-shaped but with zero
dependencies:

* :class:`Counter` — monotonic counts (requests, evictions, corrupt
  lines recovered).
* :class:`Gauge` — point-in-time values, settable directly or sourced
  from a callback at read time (queue depth, cache hit rates).
* :class:`Histogram` — fixed-bucket distributions with cumulative
  bucket counts, sum and count, plus a bounded **rolling window** of
  raw observations for exact recent quantiles (the ``health()``
  p50/p95/p99 source).

Instruments are created through a :class:`MetricsRegistry` as **labeled
families** (``registry.counter("serve_requests_total",
labels=("outcome",))`` → ``family.labels(outcome="hit").inc()``).
Label cardinality is bounded per family (:data:`MAX_LABEL_SETS`):
once a family holds that many distinct label sets, further new label
values collapse onto an ``"other"`` overflow series instead of growing
without limit — high-cardinality keys (workload hashes, request ids)
must never be labels.

Reading is uniform: ``registry.snapshot()`` returns one JSON-ready
dict, ``registry.delta_since(snapshot)`` the activity window between
two snapshots, and :func:`render_prometheus` (also
``registry.prometheus_text()``) the standard text exposition format —
all three work for every instrument type, so dashboards, the
``serve-report`` CLI and the bench harness share one data shape.

A disabled registry (``MetricsRegistry(enabled=False)``) turns every
instrument into a no-op that still type-checks — the overhead gate in
``scripts/bench_hotpaths.py --serve-obs`` measures exactly this
on/off difference on the warm hit path.
"""

from __future__ import annotations

import json
import math
import threading
import time
from bisect import bisect_right
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "MAX_LABEL_SETS",
    "OVERFLOW_LABEL",
    "render_prometheus",
    "quantile_from_buckets",
    "fold_cache_delta",
    "fold_evaluator_counters",
]

#: fixed latency bucket upper bounds (seconds): log-spaced from 10 µs to
#: 10 s — wide enough for microsecond-class warm hits and multi-second
#: cache-miss tuning runs on one axis.  ``inf`` is implicit.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1, 1.0, 2.5, 5.0, 10.0,
)

#: distinct label sets one family may hold before new ones collapse
#: onto the :data:`OVERFLOW_LABEL` series (the cardinality guard).
MAX_LABEL_SETS = 64

#: the label value every over-cardinality series collapses onto.
OVERFLOW_LABEL = "other"

#: rolling-window capacity for histograms (raw recent observations kept
#: for exact quantiles; the bucket counts keep the full distribution).
DEFAULT_WINDOW = 512


#: staged-write fold threshold: writers stage observations with one
#: GIL-atomic ``deque.append`` and fold them into the aggregate state
#: lazily (at read time, or inline once this many pile up) — the write
#: side of the hot path is one C call, not a lock + Python arithmetic.
_STAGE_LIMIT = 4096


class Counter:
    """A monotonic counter.  ``inc`` only; negative increments raise.

    Writes are staged (atomic ``deque.append``) and folded under the
    lock at read time, so no increment is ever lost and ``inc`` costs
    ~0.1 µs on the serve hot path.
    """

    kind = "counter"

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0
        self._staged: deque = deque()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"Counter.inc({amount}): counters are monotonic")
        staged = self._staged
        staged.append(amount)
        if len(staged) >= _STAGE_LIMIT:
            with self._lock:
                self._fold_locked()

    def _fold_locked(self) -> None:
        staged = self._staged
        # Bounded drain: concurrent appends racing past ``len`` simply
        # wait for the next fold, and no per-item exception handling.
        pending = len(staged)
        if pending:
            self._value += sum(staged.popleft() for _ in range(pending))

    @property
    def value(self) -> float:
        with self._lock:
            self._fold_locked()
            return self._value

    def to_json(self) -> float:
        return self.value


class Gauge:
    """A settable point-in-time value, or a callback sampled at read
    time (``fn``) — callback gauges ignore ``set``/``inc``."""

    kind = "gauge"

    def __init__(self, lock: threading.Lock, fn: Optional[Callable[[], float]] = None):
        self._lock = lock
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:  # noqa: BLE001 — a dead callback reads as 0
                return 0.0
        with self._lock:
            return self._value

    def to_json(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket distribution + bounded rolling window.

    Bucket counts are **cumulative** (Prometheus ``le`` semantics): the
    count for bound ``b`` is the number of observations ``<= b``; the
    implicit ``+Inf`` bucket equals ``count``.  The rolling window keeps
    the last ``window`` raw observations for exact recent quantiles;
    :meth:`quantile` interpolates over the full bucket distribution.

    Like :class:`Counter`, writes are staged: ``observe`` is one atomic
    ``deque.append``; bucketing, sum/count and the rolling window are
    folded under the lock at read time.  Every reader folds first, so
    the two views (buckets vs window) can never disagree about which
    observations they have seen.
    """

    kind = "histogram"

    def __init__(
        self,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        window: int = DEFAULT_WINDOW,
    ):
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("Histogram needs at least one bucket bound")
        self._lock = lock
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self._counts = [0] * len(bounds)  # per-bucket (non-cumulative)
        self._sum = 0.0
        self._count = 0
        self._window: deque = deque(maxlen=max(1, int(window)))
        self._staged: deque = deque()

    def observe(self, value: float) -> None:
        staged = self._staged
        staged.append(float(value))
        if len(staged) >= _STAGE_LIMIT:
            with self._lock:
                self._fold_locked()

    def observe_many(self, values: Sequence[float]) -> None:
        """Fold a batch of observations in one locked pass.

        Bucketing is done by bisecting each *bound* into the sorted
        batch — O(bounds · log n) instead of O(n · log bounds) — so a
        collector folding a few thousand staged latencies pays tens of
        bisects, not thousands.  The rolling window receives the batch
        in its original (chronological) order.
        """
        raw = [float(v) for v in values]
        if not raw:
            return
        with self._lock:
            self._fold_locked()
            self._fold_batch_locked(raw)

    def _fold_locked(self) -> None:
        staged = self._staged
        # Bounded drain (see Counter._fold_locked).
        pending = len(staged)
        if pending:
            self._fold_batch_locked(
                [staged.popleft() for _ in range(pending)]
            )

    def _fold_batch_locked(self, raw: List[float]) -> None:
        ordered = sorted(raw)
        size = len(ordered)
        self._sum += sum(ordered)
        self._count += size
        window = self._window
        limit = window.maxlen
        if limit is not None and size > limit:
            # Only the tail can survive a maxlen deque: skip the items
            # extend() would immediately rotate out, keeping the window
            # chronological (most-recent last).
            window.extend(raw[-limit:])
        else:
            window.extend(raw)
        counts = self._counts
        previous = 0
        for index, bound in enumerate(self.bounds):
            # Values beyond the last bound touch only the implicit
            # +Inf bucket (== count).
            position = bisect_right(ordered, bound)
            if position != previous:
                counts[index] += position - previous
                previous = position
            if position == size:
                break

    @property
    def count(self) -> int:
        with self._lock:
            self._fold_locked()
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            self._fold_locked()
            return self._sum

    def cumulative(self) -> List[Tuple[float, int]]:
        """``[(le_bound, cumulative_count), ...]`` ending at ``+Inf``."""
        with self._lock:
            self._fold_locked()
            counts = list(self._counts)
            total = self._count
        out, running = [], 0
        for bound, n in zip(self.bounds, counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, total))
        return out

    def quantile(self, q: float) -> Optional[float]:
        """The q-quantile interpolated over the full bucket distribution
        (``None`` when empty).  Consistent by construction with the
        exported cumulative counts — what ``health()`` must agree with."""
        return quantile_from_buckets(self.cumulative(), q)

    def window_values(self) -> List[float]:
        with self._lock:
            self._fold_locked()
            return list(self._window)

    def window_quantile(self, q: float) -> Optional[float]:
        """Exact q-quantile over the rolling window of recent raw
        observations (``None`` when empty)."""
        values = sorted(self.window_values())
        if not values:
            return None
        q = min(max(q, 0.0), 1.0)
        index = min(len(values) - 1, int(q * len(values)))
        return values[index]

    def to_json(self) -> dict:
        with self._lock:
            self._fold_locked()
            return {
                "count": self._count,
                "sum": self._sum,
                "bounds": list(self.bounds),
                "bucket_counts": list(self._counts),
                "window": list(self._window),
            }


def quantile_from_buckets(
    cumulative: Sequence[Tuple[float, int]], q: float
) -> Optional[float]:
    """Linear-interpolated quantile from cumulative ``(le, count)`` rows.

    The standard Prometheus ``histogram_quantile`` estimator: find the
    first bucket whose cumulative count reaches ``q * total`` and
    interpolate inside it (the lowest bucket interpolates from 0; a
    quantile landing in ``+Inf`` returns the largest finite bound).
    """
    if not cumulative:
        return None
    total = cumulative[-1][1]
    if total <= 0:
        return None
    q = min(max(q, 0.0), 1.0)
    rank = q * total
    prev_bound, prev_count = 0.0, 0
    for bound, count in cumulative:
        if count >= rank:
            if math.isinf(bound):
                finite = [b for b, _ in cumulative if not math.isinf(b)]
                return finite[-1] if finite else None
            if count == prev_count:
                return bound
            fraction = (rank - prev_count) / (count - prev_count)
            return prev_bound + fraction * (bound - prev_bound)
        prev_bound, prev_count = bound, count
    return None


class _NullInstrument:
    """The do-nothing instrument a disabled registry hands out."""

    kind = "null"
    bounds: Tuple[float, ...] = ()
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Sequence[float]) -> None:
        pass

    def cumulative(self) -> List[Tuple[float, int]]:
        return []

    def quantile(self, q: float) -> Optional[float]:
        return None

    def window_values(self) -> List[float]:
        return []

    def window_quantile(self, q: float) -> Optional[float]:
        return None

    def labels(self, **labels) -> "_NullInstrument":
        return self

    def to_json(self) -> float:
        return 0.0


_NULL = _NullInstrument()


class MetricFamily:
    """One named metric with zero or more label dimensions.

    Unlabeled families proxy the single underlying instrument
    (``family.inc()`` works directly); labeled families vend children
    via :meth:`labels`.  Children are created on first use and capped at
    :data:`MAX_LABEL_SETS` distinct label sets — past the cap, unseen
    label values collapse onto :data:`OVERFLOW_LABEL` so a mislabeled
    high-cardinality key degrades accounting, never memory.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: Tuple[str, ...],
        make: Callable[[], object],
    ):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self._make = make
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        if not label_names:
            self._children[()] = make()

    def labels(self, **labels) -> object:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if len(self._children) >= MAX_LABEL_SETS:
                    key = tuple(OVERFLOW_LABEL for _ in self.label_names)
                    child = self._children.get(key)
                    if child is None:
                        child = self._children[key] = self._make()
                else:
                    child = self._children[key] = self._make()
            return child

    def children(self) -> Dict[Tuple[str, ...], object]:
        with self._lock:
            return dict(self._children)

    # -- unlabeled proxy -------------------------------------------------
    def _solo(self):
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} is labeled {self.label_names}; "
                "use .labels(...)"
            )
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def observe_many(self, values: Sequence[float]) -> None:
        self._solo().observe_many(values)

    @property
    def value(self):
        return self._solo().value

    def quantile(self, q: float):
        return self._solo().quantile(q)

    def window_quantile(self, q: float):
        return self._solo().window_quantile(q)

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
            "series": {
                _series_key(self.label_names, key): child.to_json()
                for key, child in sorted(self.children().items())
            },
        }


def _escape_label_value(value: str) -> str:
    """Backslash-escape the series-key structural characters so a label
    value containing ``,`` or ``=`` (e.g. a cache or backend name)
    round-trips through the flat key string."""
    return value.replace("\\", "\\\\").replace(",", "\\,").replace("=", "\\=")


def _series_key(label_names: Tuple[str, ...], label_values: Tuple[str, ...]) -> str:
    """The stable JSON key for one label set (empty string when unlabeled)."""
    return ",".join(
        f"{n}={_escape_label_value(v)}" for n, v in zip(label_names, label_values)
    )


def _parse_series_key(key: str) -> List[Tuple[str, str]]:
    """Invert :func:`_series_key`, honouring backslash escapes (label
    *names* are identifiers and never need escaping; values may contain
    any character)."""
    if not key:
        return []
    pairs: List[Tuple[str, str]] = []
    name: List[str] = []
    value: List[str] = []
    current = name
    chars = iter(key)
    for ch in chars:
        if ch == "\\":
            current.append(next(chars, ""))
        elif ch == "=" and current is name:
            current = value
        elif ch == ",":
            pairs.append(("".join(name), "".join(value)))
            name, value = [], []
            current = name
        else:
            current.append(ch)
    pairs.append(("".join(name), "".join(value)))
    return pairs


class MetricsRegistry:
    """A named collection of metric families; the unit of exposition.

    One registry per server (the default), or shared across components
    of one process.  ``enabled=False`` vends no-op instruments — the
    single switch the overhead bench flips.
    """

    def __init__(self, namespace: str = "repro", enabled: bool = True):
        self.namespace = namespace
        self.enabled = bool(enabled)
        self.created_unix = time.time()
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}
        self._fn_families: Dict[str, tuple] = {}
        self._collectors: List[Callable[[], None]] = []

    def register_collector(self, fn: Callable[[], None]) -> None:
        """Register a callback run before every :meth:`snapshot` (and
        therefore every exposition/delta read).

        The batching hook for microsecond-class hot paths: a subsystem
        stages raw observations in its own GIL-atomic buffer and folds
        them into real instruments inside its collector, paying one
        ``deque.append`` per event instead of per-instrument updates.
        Collector exceptions are swallowed — a broken collector reads
        as stale, never as a serving failure.
        """
        if not self.enabled:
            return
        with self._lock:
            self._collectors.append(fn)

    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            try:
                fn()
            except Exception:  # noqa: BLE001 — see register_collector
                pass

    # -- family constructors --------------------------------------------
    def _family(
        self, name: str, kind: str, help_text: str,
        labels: Sequence[str], make: Callable[[], object],
    ):
        if not self.enabled:
            return _NULL
        labels = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != labels:
                    raise ValueError(
                        f"metric {name!r} re-registered as {kind}{labels} "
                        f"(was {family.kind}{family.label_names})"
                    )
                return family
            if name in self._fn_families:
                raise ValueError(
                    f"metric {name!r} already registered as a callback "
                    f"gauge family (gauge_fn)"
                )
            family = MetricFamily(name, kind, help_text, labels, make)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "", labels: Sequence[str] = ()):
        return self._family(
            name, "counter", help_text, labels, lambda: Counter(threading.Lock())
        )

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        fn: Optional[Callable[[], float]] = None,
    ):
        """A gauge family; ``fn`` makes an unlabeled callback gauge
        sampled at snapshot/exposition time."""
        if fn is not None and labels:
            raise ValueError("callback gauges cannot be labeled")
        return self._family(
            name, "gauge", help_text, labels,
            lambda: Gauge(threading.Lock(), fn=fn),
        )

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        window: int = DEFAULT_WINDOW,
    ):
        bounds = tuple(buckets)
        return self._family(
            name, "histogram", help_text, labels,
            lambda: Histogram(threading.Lock(), buckets=bounds, window=window),
        )

    def gauge_fn(self, name: str, help_text: str, fn: Callable[[], Dict[str, float]]):
        """Register a callback gauge family label-wise: ``fn`` returns
        ``{label_value: gauge_value}``; each key becomes one series of a
        single-label family at read time (used for the per-cache
        hit-rate gauges sourced from :mod:`repro.cache`).  Re-binding
        the same callback-family name replaces its callback; colliding
        with a regular family raises (snapshots merge both dicts, so a
        silent shadow would drop one family from every read view)."""
        if not self.enabled:
            return
        with self._lock:
            if name in self._families:
                raise ValueError(
                    f"metric {name!r} already registered as a "
                    f"{self._families[name].kind} family"
                )
            self._fn_families[name] = (help_text, fn)

    # -- reading ---------------------------------------------------------
    def families(self) -> Dict[str, MetricFamily]:
        with self._lock:
            return dict(self._families)

    def _fn_snapshot(self) -> Dict[str, dict]:
        out: Dict[str, dict] = {}
        with self._lock:
            fn_families = dict(self._fn_families)
        for name, (help_text, fn) in sorted(fn_families.items()):
            try:
                values = fn() or {}
            except Exception:  # noqa: BLE001 — a dead callback reads empty
                values = {}
            out[name] = {
                "kind": "gauge",
                "help": help_text,
                "labels": ["name"],
                "series": {
                    _series_key(("name",), (str(key),)): float(value)
                    for key, value in sorted(values.items())
                },
            }
        return out

    def snapshot(self) -> dict:
        """Every family as one JSON-ready document (stable key order)."""
        self._run_collectors()
        doc = {
            "namespace": self.namespace,
            "created_unix": self.created_unix,
            "metrics": {},
        }
        for name, family in sorted(self.families().items()):
            doc["metrics"][name] = family.to_json()
        doc["metrics"].update(self._fn_snapshot())
        return doc

    def delta_since(self, before: dict) -> dict:
        """Counter/histogram activity since a prior :meth:`snapshot`.

        Gauges are point-in-time and pass through at their current
        value; counters subtract; histograms subtract count/sum and
        per-bucket counts (windows pass through — they are already
        recency-bounded).  Series absent from ``before`` diff against
        zero; series with no activity are dropped.
        """
        now = self.snapshot()
        prior_metrics = (before or {}).get("metrics", {})
        out = {
            "namespace": self.namespace,
            "metrics": {},
        }
        for name, family in now["metrics"].items():
            prior_series = prior_metrics.get(name, {}).get("series", {})
            kind = family["kind"]
            series_out = {}
            for key, value in family["series"].items():
                prev = prior_series.get(key)
                if kind == "counter":
                    delta = value - (prev or 0.0)
                    if delta:
                        series_out[key] = delta
                elif kind == "gauge":
                    series_out[key] = value
                else:  # histogram
                    prev = prev or {}
                    d_count = value["count"] - prev.get("count", 0)
                    if not d_count:
                        continue
                    prev_buckets = prev.get("bucket_counts") or [0] * len(
                        value["bucket_counts"]
                    )
                    series_out[key] = {
                        "count": d_count,
                        "sum": value["sum"] - prev.get("sum", 0.0),
                        "bounds": value["bounds"],
                        "bucket_counts": [
                            n - p
                            for n, p in zip(value["bucket_counts"], prev_buckets)
                        ],
                    }
            if series_out:
                out["metrics"][name] = {**family, "series": series_out}
        return out

    def prometheus_text(self) -> str:
        """The registry in Prometheus text exposition format."""
        return render_prometheus(self.snapshot())

    def save(self, path: str) -> dict:
        """Write :meth:`snapshot` as JSON; returns the document."""
        doc = self.snapshot()
        with open(path, "w") as f:
            json.dump(doc, f, indent=1, sort_keys=True)
            f.write("\n")
        return doc


def _prom_labels(pairs: List[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    body = ",".join(
        '{}="{}"'.format(name, value.replace("\\", "\\\\").replace('"', '\\"'))
        for name, value in pairs
    )
    return "{" + body + "}"


def _prom_number(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: dict) -> str:
    """Zero-dep Prometheus text exposition of a registry snapshot.

    Works from the plain :meth:`MetricsRegistry.snapshot` dict so the
    CLI can render saved snapshots without a live registry.
    """
    namespace = snapshot.get("namespace", "repro")
    lines: List[str] = []
    for name, family in sorted(snapshot.get("metrics", {}).items()):
        full = f"{namespace}_{name}"
        kind = family.get("kind", "gauge")
        help_text = family.get("help") or name.replace("_", " ")
        lines.append(f"# HELP {full} {help_text}")
        lines.append(f"# TYPE {full} {kind}")
        for key, value in sorted(family.get("series", {}).items()):
            pairs = _parse_series_key(key)
            if kind in ("counter", "gauge"):
                lines.append(f"{full}{_prom_labels(pairs)} {_prom_number(value)}")
                continue
            # histogram: cumulative le-buckets + _sum/_count
            running = 0
            for bound, n in zip(value["bounds"], value["bucket_counts"]):
                running += n
                le = pairs + [("le", _prom_number(bound))]
                lines.append(f"{full}_bucket{_prom_labels(le)} {running}")
            inf = pairs + [("le", "+Inf")]
            lines.append(f"{full}_bucket{_prom_labels(inf)} {value['count']}")
            lines.append(
                f"{full}_sum{_prom_labels(pairs)} {_prom_number(value['sum'])}"
            )
            lines.append(f"{full}_count{_prom_labels(pairs)} {value['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# folds: the single source of truth for cache + evaluator accounting
# ---------------------------------------------------------------------------


def fold_cache_delta(registry: MetricsRegistry, delta: Dict[str, Dict[str, float]]) -> None:
    """Fold one :func:`repro.cache.delta_since` window into ``registry``.

    The canonical spelling of cache accounting: one labeled counter
    family per event kind (``cache_hits_total{name=...}`` etc.).  Both
    the flight recorder and the tuning session route through this, so
    the registry is the single source of truth; the legacy
    ``cache.<name>.hits`` Telemetry counters are kept as deprecation
    shims fed from the same window.
    """
    if not registry.enabled or not delta:
        return
    hits = registry.counter(
        "cache_hits_total", "memo cache hits", labels=("name",)
    )
    misses = registry.counter(
        "cache_misses_total", "memo cache misses", labels=("name",)
    )
    evictions = registry.counter(
        "cache_evictions_total", "memo cache evictions", labels=("name",)
    )
    for name, counts in sorted(delta.items()):
        if counts.get("hits"):
            hits.labels(name=name).inc(counts["hits"])
        if counts.get("misses"):
            misses.labels(name=name).inc(counts["misses"])
        if counts.get("evictions"):
            evictions.labels(name=name).inc(counts["evictions"])


def fold_evaluator_counters(
    registry: MetricsRegistry,
    name: str,
    workers: int,
    counters: Dict[str, float],
) -> None:
    """Fold one evaluation backend's occupancy/latency counters into
    ``registry`` (labeled by backend; ``workers`` rides as a gauge).

    The canonical home of evaluator accounting — the flight recorder's
    ``meta["evaluators"]`` side channel and the ``evaluator.<name>.*``
    Telemetry counters are fed from the same numbers.
    """
    if not registry.enabled or not counters:
        return
    batches = registry.counter(
        "evaluator_batches_total", "candidate batches evaluated", labels=("backend",)
    )
    candidates = registry.counter(
        "evaluator_candidates_total", "candidates evaluated", labels=("backend",)
    )
    busy = registry.counter(
        "evaluator_busy_seconds_total", "evaluator busy time", labels=("backend",)
    )
    ipc = registry.counter(
        "evaluator_ipc_batches_total", "process-pool IPC round-trips",
        labels=("backend",),
    )
    pool = registry.gauge(
        "evaluator_pool_workers", "evaluation pool width", labels=("backend",)
    )
    if counters.get("batches"):
        batches.labels(backend=name).inc(counters["batches"])
    if counters.get("candidates"):
        candidates.labels(backend=name).inc(counters["candidates"])
    if counters.get("busy_seconds"):
        busy.labels(backend=name).inc(counters["busy_seconds"])
    if counters.get("ipc_batches"):
        ipc.labels(backend=name).inc(counters["ipc_batches"])
    pool.labels(backend=name).set(workers)
