"""The flight recorder: per-trial provenance + the run artifact.

A :class:`Recorder` is threaded through ``tune`` /
``evolutionary_search`` / ``TuningSession`` / ``CostModel`` (built from
``TuneConfig.obs``).  It owns

* the bounded :class:`~repro.obs.events.EventStream` (optionally backed
  by a JSONL sink),
* the **provenance ledger** — one :class:`TrialRecord` per candidate
  that reached the measurer, carrying everything needed to re-derive
  the program: workload key, sketch, generation index, mutation lineage
  (parent trial id), the decision vector, the serialized schedule
  :class:`~repro.schedule.trace.Trace` and the program's
  ``structural_hash``,
* the live callbacks (``on_generation`` / ``on_best_improved``).

Disabled (the default), every method returns immediately — the search
hot path pays only an attribute check.  All methods are thread-safe;
trial ids are globally ordered across concurrent task searches.

:func:`replay_trial` is the other half of the contract: given a record
and the base workload function, it replays the stored trace and asserts
the rebuilt program hashes to the recorded value.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os
import threading
import time
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import cache as _cache
from .config import ObsConfig
from .events import (
    BestImproved,
    CacheEvent,
    EventStream,
    GenerationEnd,
    JsonlSink,
    ModelUpdate,
    Rejection,
    ServeRequest,
    TrialEvent,
)

__all__ = ["Recorder", "TrialRecord", "replay_trial", "load_recording"]

#: artifact schema identifier (bump on breaking changes to the layout).
SCHEMA = "repro.obs/1"

#: Serialized-trace memo: re-deriving a measured candidate's trace is a
#: full (deterministic) candidate build, keyed exactly like the
#: candidate cache — so re-tuning a recorded workload, or measuring the
#: same decision vector twice, serializes its provenance once.  Cached
#: values are the JSON dicts stored verbatim in the artifact; callers
#: must not mutate them.
_TRACE_CACHE = _cache.MemoCache("obs.traces", maxsize=1024)


def _freeze(values):
    """Decisions → hashable (sample_perfect_tile decisions are lists)."""
    if values is None:
        return None
    return tuple(
        _freeze(v) if isinstance(v, (list, tuple)) else v for v in values
    )


@dataclass
class TrialRecord:
    """Provenance of one candidate that reached the measurer.

    ``rejection`` is the diagnostic code when the measurer itself killed
    the candidate (``TIR501`` — the analytical model could not cost it);
    otherwise ``predicted``/``cycles``/``seconds`` hold the scored and
    measured cost.  ``trace`` is the serialized schedule trace
    (:meth:`~repro.schedule.trace.Trace.to_json`); replaying it onto a
    fresh schedule of the workload re-derives a program whose
    ``structural_hash`` equals the recorded one.
    """

    trial_id: int
    task: str
    workload: str  # workload_key(func, target) — database-compatible
    sketch: str
    generation: int
    parent: Optional[int]  # trial id of the mutation parent, if any
    decisions: List[object] = field(default_factory=list)
    predicted: Optional[float] = None
    cycles: Optional[float] = None
    seconds: Optional[float] = None
    bound: Optional[str] = None
    rejection: Optional[str] = None
    structural_hash: Optional[int] = None
    trace: Optional[dict] = None

    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "TrialRecord":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


class Recorder:
    """Collects events + trial provenance for one run (or many)."""

    def __init__(
        self,
        config: Optional[ObsConfig] = None,
        telemetry=None,
        clock=time.perf_counter,
        metrics=None,
    ):
        self.config = config or ObsConfig()
        self.enabled = bool(self.config.enabled)
        self.telemetry = telemetry
        #: optional :class:`repro.obs.metrics.MetricsRegistry` — when
        #: set, cache windows handed to :meth:`record_cache_delta` are
        #: folded into it (the single source of truth for cache
        #: accounting) even while event recording is off.  Folding never
        #: touches the event stream or the trial ledger, so recordings
        #: stay hash-identical with or without a registry.
        self.metrics = metrics
        self._clock = clock
        self.sink = (
            JsonlSink(self.config.sink_path)
            if self.enabled and self.config.sink_path
            else None
        )
        self.stream = EventStream(
            max_events=self.config.max_events,
            sink=self.sink,
            sample_rate=self.config.sample_rate,
        )
        self.trials: List[TrialRecord] = []
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        #: wall-clock ↔ telemetry-clock anchor, so exporters can place
        #: perf_counter timestamps in absolute time.
        self.created_unix = time.time()
        self.created_clock = clock()
        self.meta: Dict[str, object] = {}

    # -- trial provenance ----------------------------------------------
    def trial(
        self,
        *,
        task: str,
        workload: str,
        sketch: str,
        generation: int,
        parent: Optional[int],
        decisions: List[object],
        predicted: Optional[float] = None,
        cycles: Optional[float] = None,
        seconds: Optional[float] = None,
        bound: Optional[str] = None,
        rejection: Optional[str] = None,
        func=None,
        base_func=None,
        sketch_obj=None,
    ) -> Optional[TrialRecord]:
        """Ledger one measured (or measurer-rejected) candidate.

        ``func`` is the scheduled program (hashed); ``base_func`` +
        ``sketch_obj`` let the recorder serialize the replayable trace by
        re-deriving the candidate from its decision vector — the hot
        path builds candidates without trace recording, so provenance is
        reconstructed only for the few candidates that get measured.
        """
        if not self.enabled:
            return None
        from ..tir import structural_hash

        record = TrialRecord(
            trial_id=next(self._ids),
            task=task,
            workload=workload,
            sketch=sketch,
            generation=generation,
            parent=parent,
            decisions=list(decisions),
            predicted=predicted,
            cycles=cycles,
            seconds=seconds,
            bound=bound,
            rejection=rejection,
        )
        if func is not None:
            record.structural_hash = structural_hash(func)
        if (
            self.config.record_traces
            and cycles is not None
            and base_func is not None
            and sketch_obj is not None
        ):
            record.trace = self._serialize_trace(base_func, sketch_obj, decisions)
        with self._lock:
            self.trials.append(record)
        if cycles is not None:
            self.stream.emit(
                TrialEvent(
                    ts=self._clock(),
                    task=task,
                    sketch=sketch,
                    generation=generation,
                    trial_id=record.trial_id,
                    predicted=predicted,
                    cycles=cycles,
                    seconds=seconds if seconds is not None else 0.0,
                    bound=bound or "",
                )
            )
        return record

    def _serialize_trace(self, base_func, sketch_obj, decisions) -> Optional[dict]:
        """Re-derive the candidate with trace recording on and serialize.

        Replaying the sketch with the full forced-decision vector is the
        §5.2 database-replay mechanism; it is deterministic, consumes no
        search RNG, and costs one candidate build — memoized through
        :data:`_TRACE_CACHE` since the rebuild is a pure function of the
        (workload, sketch, decisions) key.
        """
        from ..tir import structural_hash

        def rebuild() -> Optional[dict]:
            from ..schedule import Schedule, ScheduleError

            sch = Schedule(base_func, seed=0, record_trace=True)
            sch.forced_decisions = list(decisions)
            try:
                sketch_obj.apply(sch)
            except ScheduleError:  # pragma: no cover — build succeeded once
                return None
            return sch.trace.to_json() if sch.trace is not None else None

        try:
            key = (
                structural_hash(base_func),
                type(sketch_obj).__qualname__,
                sketch_obj.token(),
                _freeze(decisions),
            )
        except TypeError:  # unhashable decision type: rebuild uncached
            return rebuild()
        return _TRACE_CACHE.get_or_compute(key, rebuild)

    # -- events ---------------------------------------------------------
    def rejection(
        self, task: str, sketch: str, generation: int, stage: str, code: str
    ) -> None:
        if not self.enabled:
            return
        self.stream.emit(
            Rejection(
                ts=self._clock(), task=task, sketch=sketch,
                generation=generation, stage=stage, code=code,
            )
        )

    def best_improved(
        self, task: str, trial_id: int, cycles: float, previous: Optional[float]
    ) -> None:
        if not self.enabled:
            return
        event = BestImproved(
            ts=self._clock(), task=task, trial_id=trial_id,
            cycles=cycles, previous=previous,
        )
        self.stream.emit(event)
        if self.config.on_best_improved is not None:
            from .events import event_to_json

            self.config.on_best_improved(event_to_json(event))

    def generation_end(
        self,
        task: str,
        sketch: str,
        index: int,
        pool: int,
        measured: int,
        best_cycles: Optional[float],
    ) -> None:
        if not self.enabled:
            return
        if best_cycles is not None and best_cycles == float("inf"):
            best_cycles = None
        event = GenerationEnd(
            ts=self._clock(), task=task, sketch=sketch, index=index,
            pool=pool, measured=measured, best_cycles=best_cycles,
        )
        self.stream.emit(event)
        if self.config.on_generation is not None:
            from .events import event_to_json

            self.config.on_generation(event_to_json(event))

    def serve_request(
        self, workload: str, source: str, trials: int, wait_seconds: float
    ) -> None:
        """One schedule-server request resolved (hit/miss/coalesced)."""
        if not self.enabled:
            return
        self.stream.emit(
            ServeRequest(
                ts=self._clock(), workload=workload, source=source,
                trials=trials, wait_seconds=wait_seconds,
            )
        )

    def model_update(self, samples: int, trained: bool) -> None:
        if not self.enabled:
            return
        self.stream.emit(
            ModelUpdate(ts=self._clock(), samples=samples, trained=trained)
        )

    def record_evaluator(
        self, name: str, workers: int, counters: Dict[str, float]
    ) -> None:
        """Fold one search's evaluation-backend occupancy/latency
        counters into the recording's **meta** section.

        Deliberately *not* an event: the event stream and trial ledger
        must stay hash-identical across evaluation backends, so backend
        identity and timing live only in this side channel.
        """
        if not self.enabled:
            return
        with self._lock:
            backends = self.meta.setdefault("evaluators", {})
            slot = backends.setdefault(f"{name}x{workers}", {})
            for key, value in counters.items():
                slot[key] = slot.get(key, 0) + value

    def record_cache_delta(self, delta: Dict[str, Dict[str, float]]) -> None:
        """One :class:`CacheEvent` per cache active in a run window
        (fed from :func:`repro.cache.delta_since`) — and the same window
        folded into the bound metrics registry, which works even while
        event recording is off."""
        if self.metrics is not None and delta:
            from .metrics import fold_cache_delta

            fold_cache_delta(self.metrics, delta)
        if not self.enabled:
            return
        now = self._clock()
        for name, counts in sorted(delta.items()):
            self.stream.emit(
                CacheEvent(
                    ts=now,
                    name=name,
                    hits=int(counts.get("hits", 0)),
                    misses=int(counts.get("misses", 0)),
                    evictions=int(counts.get("evictions", 0)),
                )
            )

    # -- the artifact ----------------------------------------------------
    def recording(self) -> dict:
        """The flight recording as one JSON-ready document."""
        with self._lock:
            trials = [t.to_json() for t in self.trials]
        out = {
            "schema": SCHEMA,
            "created_unix": self.created_unix,
            "clock_anchor": self.created_clock,
            "config": self.config.to_json(),
            "meta": dict(self.meta),
            "events": self.stream.events(),
            "event_stats": self.stream.stats(),
            "trials": trials,
        }
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry.report()
        return out

    def save(self, path: str) -> dict:
        """Write the recording atomically (tmp file + ``os.replace``);
        returns the document written."""
        doc = self.recording()
        payload = json.dumps(doc, indent=1, sort_keys=True)
        directory = os.path.dirname(os.path.abspath(path)) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".obs-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                f.write(payload)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return doc

    def close(self) -> None:
        """Flush the JSONL sink (the stream stays usable — the sink
        reopens in append mode on the next write)."""
        if self.sink is not None:
            self.sink.close()

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_recording(path: str) -> dict:
    """Load a saved recording (``Recorder.save`` artifact)."""
    with open(path) as f:
        return json.load(f)


def replay_trial(record, base_func):
    """Re-derive a trial's program from its serialized trace.

    ``record`` is a :class:`TrialRecord` or its JSON dict.  Returns the
    rebuilt :class:`~repro.tir.function.PrimFunc`; raises ``ValueError``
    if no trace was recorded or the rebuilt program's
    ``structural_hash`` does not match the recorded one.
    """
    from ..schedule import Schedule
    from ..schedule.trace import Trace
    from ..tir import structural_hash

    if isinstance(record, TrialRecord):
        record = record.to_json()
    trace_json = record.get("trace")
    if trace_json is None:
        raise ValueError(
            f"trial {record.get('trial_id')} has no serialized trace "
            "(recorded with record_traces=False, or never measured)"
        )
    sch = Schedule(base_func, seed=0, record_trace=False)
    Trace.from_json(trace_json).apply_to(sch)
    rebuilt_hash = structural_hash(sch.func)
    expected = record.get("structural_hash")
    if expected is not None and rebuilt_hash != expected:
        raise ValueError(
            f"trial {record.get('trial_id')}: replayed program hash "
            f"{rebuilt_hash} != recorded {expected}"
        )
    return sch.func
