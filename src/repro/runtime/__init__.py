"""Lowering and execution: TensorIR → Python/NumPy."""

from .codegen import CompiledFunc, compile_func
from .executor import Executor, alloc_args, random_args, run
from .interp import interpret

__all__ = [
    "compile_func",
    "CompiledFunc",
    "Executor",
    "run",
    "alloc_args",
    "random_args",
    "interpret",
]
