"""Code generation: TensorIR → executable Python.

The reproduction's "backend": a scheduled PrimFunc is compiled into a
Python function over NumPy arrays.  Loops become ``for`` statements
(thread bindings and parallel loops execute sequentially — the
*performance* of threading is the business of :mod:`repro.sim`, the
*semantics* are sequentialisable), block realizes become iterator
assignments with predicate guards, and reduction ``init`` statements run
on the first iteration of their reduction (all reduce iterators at their
domain minimum).

Blocks that were tensorized (annotation ``"tensorize"``) are emitted as
calls into the intrinsic's NumPy tile implementation over the matched
buffer regions — the executable analogue of emitting the hardware
instruction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .. import cache as _cache
from ..tir import structural_hash
from ..tir import (
    BinaryOp,
    Block,
    BlockRealize,
    Buffer,
    BufferStore,
    Call,
    Cast,
    FloatImm,
    For,
    IfThenElse,
    IntImm,
    LetStmt,
    Max,
    Min,
    Not,
    PrimFunc,
    PrimExpr,
    Select,
    SeqStmt,
    Stmt,
    StringImm,
    TruncDiv,
    Var,
)
from ..tir import dtype as _dt
from ..tir.eval import INTRINSIC_IMPLS
from ..tir.expr import (
    Add,
    And,
    BufferLoad,
    Div,
    FloorDiv,
    FloorMod,
    Mul,
    Or,
    Sub,
    const_int_value,
)
from ..tir.stmt import AllocateConst, Evaluate

__all__ = ["compile_func", "CompiledFunc"]

_PY_BINOPS = {
    "Add": "+",
    "Sub": "-",
    "Mul": "*",
    "Div": "/",
    "FloorDiv": "//",
    "FloorMod": "%",
    "EQ": "==",
    "NE": "!=",
    "LT": "<",
    "LE": "<=",
    "GT": ">",
    "GE": ">=",
}


class _PyPrinter:
    """Renders expressions as Python source."""

    def __init__(self, buffer_names: Dict[int, str]):
        self.buffer_names = buffer_names

    def expr(self, e: PrimExpr) -> str:
        if isinstance(e, Var):
            return e.name
        if isinstance(e, IntImm):
            if e.dtype == "bool":
                return "True" if e.value else "False"
            return repr(e.value)
        if isinstance(e, FloatImm):
            return repr(e.value)
        if isinstance(e, StringImm):
            return repr(e.value)
        if isinstance(e, Cast):
            inner = self.expr(e.value)
            if _dt.is_float(e.dtype):
                if e.dtype == "float64":
                    return f"float({inner})"
                return f"__np.{e.dtype}({inner})"
            if e.dtype == "bool":
                return f"bool({inner})"
            if e.dtype in ("int32", "int64"):
                # Exact in Python; wrap-around at these widths is out of
                # range for every workload in the suite.
                return f"int({inner})"
            return f"__np.{e.dtype}({inner})"
        if isinstance(e, Min):
            return f"min({self.expr(e.a)}, {self.expr(e.b)})"
        if isinstance(e, Max):
            return f"max({self.expr(e.a)}, {self.expr(e.b)})"
        if isinstance(e, TruncDiv):
            return f"int({self.expr(e.a)} / {self.expr(e.b)})"
        if isinstance(e, And):
            return f"({self.expr(e.a)} and {self.expr(e.b)})"
        if isinstance(e, Or):
            return f"({self.expr(e.a)} or {self.expr(e.b)})"
        if isinstance(e, Not):
            return f"(not {self.expr(e.a)})"
        if isinstance(e, BinaryOp):
            op = _PY_BINOPS.get(type(e).__name__)
            if op is None:
                raise NotImplementedError(f"codegen: {type(e).__name__}")
            return f"({self.expr(e.a)} {op} {self.expr(e.b)})"
        if isinstance(e, Select):
            return (
                f"({self.expr(e.true_value)} if {self.expr(e.condition)} "
                f"else {self.expr(e.false_value)})"
            )
        if isinstance(e, BufferLoad):
            name = self.buffer_names[id(e.buffer)]
            idx = ", ".join(self.expr(i) for i in e.indices)
            return f"{name}[{idx}]"
        if isinstance(e, Call):
            args = ", ".join(self.expr(a) for a in e.args)
            return f"__calls[{e.op!r}]({args})"
        raise NotImplementedError(f"codegen: {type(e).__name__}")


class _NotVectorizable(Exception):
    """Raised by :class:`_VecPrinter` on a construct with no NumPy
    array rendering — the caller falls back to the scalar loop."""


class _VecPrinter(_PyPrinter):
    """Renders expressions as NumPy *array* source, with one loop
    variable mapped to the index vector ``__vec``.

    Scalar-only renderings are replaced by dtype-polymorphic NumPy
    forms (``min``→``__np.minimum``, ``int(x)``→``__np.int64(x)``,
    select→``__np.where``); constructs without a sound array form
    (short-circuit booleans, external calls, trunc-div) raise
    :class:`_NotVectorizable` instead of producing wrong code.
    """

    def __init__(self, buffer_names: Dict[int, str], vec_name: str):
        super().__init__(buffer_names)
        self.vec_name = vec_name

    def expr(self, e: PrimExpr) -> str:
        if isinstance(e, Var) and e.name == self.vec_name:
            return "__vec"
        if isinstance(e, Cast):
            if e.dtype == "bool":
                raise _NotVectorizable("bool cast")
            inner = self.expr(e.value)
            if e.dtype == "float64":
                return f"__np.float64({inner})"
            # numpy scalar types double as elementwise dtype converters
            return f"__np.{e.dtype}({inner})"
        if isinstance(e, Min):
            return f"__np.minimum({self.expr(e.a)}, {self.expr(e.b)})"
        if isinstance(e, Max):
            return f"__np.maximum({self.expr(e.a)}, {self.expr(e.b)})"
        if isinstance(e, Select):
            return (
                f"__np.where({self.expr(e.condition)}, "
                f"{self.expr(e.true_value)}, {self.expr(e.false_value)})"
            )
        if isinstance(e, (And, Or, Not, TruncDiv, Call)):
            raise _NotVectorizable(type(e).__name__)
        return super().expr(e)


def _collect_loads(e: PrimExpr, out: List[BufferLoad]) -> List[BufferLoad]:
    if isinstance(e, BufferLoad):
        out.append(e)
        for i in e.indices:
            _collect_loads(i, out)
    elif isinstance(e, (BinaryOp, Min, Max)):
        _collect_loads(e.a, out)
        _collect_loads(e.b, out)
    elif isinstance(e, (Cast, Not)):
        _collect_loads(e.value if isinstance(e, Cast) else e.a, out)
    elif isinstance(e, Select):
        _collect_loads(e.condition, out)
        _collect_loads(e.true_value, out)
        _collect_loads(e.false_value, out)
    elif isinstance(e, Call):
        for a in e.args:
            _collect_loads(a, out)
    return out


def _depends_on(e: PrimExpr, name: str, env: Dict[str, PrimExpr]) -> bool:
    """Does ``e`` vary with loop var ``name``, resolving block iterator
    bindings through ``env``?"""
    if isinstance(e, Var):
        if e.name == name:
            return True
        sub = env.get(e.name)
        return _depends_on(sub, name, env) if sub is not None else False
    if isinstance(e, (BinaryOp, Min, Max)):
        return _depends_on(e.a, name, env) or _depends_on(e.b, name, env)
    if isinstance(e, Cast):
        return _depends_on(e.value, name, env)
    if isinstance(e, Not):
        return _depends_on(e.a, name, env)
    if isinstance(e, Select):
        return (
            _depends_on(e.condition, name, env)
            or _depends_on(e.true_value, name, env)
            or _depends_on(e.false_value, name, env)
        )
    if isinstance(e, BufferLoad):
        return any(_depends_on(i, name, env) for i in e.indices)
    if isinstance(e, Call):
        return any(_depends_on(a, name, env) for a in e.args)
    return False


def _stride_of(e: PrimExpr, name: str, env: Dict[str, PrimExpr]) -> Optional[int]:
    """The constant stride of index expression ``e`` per unit step of
    loop var ``name`` (0 ⇒ invariant), or ``None`` when unknown —
    non-affine in the loop var, or scaled by a non-constant.  Sound but
    deliberately conservative: ``None`` always falls back to the scalar
    loop."""
    if isinstance(e, (IntImm, FloatImm, StringImm)):
        return 0
    if isinstance(e, Var):
        if e.name == name:
            return 1
        sub = env.get(e.name)
        return _stride_of(sub, name, env) if sub is not None else 0
    if isinstance(e, Add):
        a, b = _stride_of(e.a, name, env), _stride_of(e.b, name, env)
        return None if a is None or b is None else a + b
    if isinstance(e, Sub):
        a, b = _stride_of(e.a, name, env), _stride_of(e.b, name, env)
        return None if a is None or b is None else a - b
    if isinstance(e, Mul):
        ca, cb = const_int_value(e.a), const_int_value(e.b)
        if ca is not None:
            s = _stride_of(e.b, name, env)
            return None if s is None else s * ca
        if cb is not None:
            s = _stride_of(e.a, name, env)
            return None if s is None else s * cb
    if isinstance(e, (Mul, Div, FloorDiv, FloorMod, TruncDiv)):
        a, b = _stride_of(e.a, name, env), _stride_of(e.b, name, env)
        return 0 if a == 0 and b == 0 else None
    return 0 if not _depends_on(e, name, env) else None


class _Codegen:
    def __init__(self, func: PrimFunc, vectorize: bool = True):
        self.func = func
        self.vectorize = vectorize
        self.lines: List[str] = []
        self.indent = 1
        self.buffer_names: Dict[int, str] = {}
        self.printer = _PyPrinter(self.buffer_names)
        self.tensorized_calls: Dict[str, object] = {}
        self._tmp = 0

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    # -- naming ---------------------------------------------------------
    def _register_buffer(self, buf: Buffer) -> str:
        name = buf.name.replace(".", "_")
        existing = set(self.buffer_names.values())
        candidate = name
        n = 0
        while candidate in existing:
            n += 1
            candidate = f"{name}_{n}"
        self.buffer_names[id(buf)] = candidate
        return candidate

    # -- top level --------------------------------------------------------
    def run(self) -> str:
        params = [self._register_buffer(self.func.buffer_map[p]) for p in self.func.params]
        header = f"def __kernel({', '.join(params)}, __np, __calls, __intrins):"
        root = self.func.body.block
        for buf in root.alloc_buffers:
            self._emit_alloc(buf)
        self.stmt(root.body)
        body = "\n".join(self.lines) if self.lines else "    pass"
        return header + "\n" + body

    def _emit_alloc(self, buf: Buffer) -> None:
        name = self._register_buffer(buf)
        shape = buf.shape_ints()
        np_dtype = "bool_" if buf.dtype == "bool" else buf.dtype
        self.emit(f"{name} = __np.zeros({shape!r}, dtype=__np.{np_dtype})")

    # -- statements --------------------------------------------------------
    def stmt(self, s: Stmt) -> None:
        if isinstance(s, SeqStmt):
            for sub in s.stmts:
                self.stmt(sub)
        elif isinstance(s, For):
            if self.vectorize and self._try_vectorize(s):
                return
            self.emit(f"for {s.loop_var.name} in range({self.printer.expr(s.min)}, "
                      f"{self.printer.expr(s.min + s.extent)}):")
            self.indent += 1
            self.stmt(s.body)
            self.indent -= 1
        elif isinstance(s, BufferStore):
            name = self.buffer_names[id(s.buffer)]
            idx = ", ".join(self.printer.expr(i) for i in s.indices)
            self.emit(f"{name}[{idx}] = {self.printer.expr(s.value)}")
        elif isinstance(s, IfThenElse):
            self.emit(f"if {self.printer.expr(s.condition)}:")
            self.indent += 1
            self.stmt(s.then_case)
            self.indent -= 1
            if s.else_case is not None:
                self.emit("else:")
                self.indent += 1
                self.stmt(s.else_case)
                self.indent -= 1
        elif isinstance(s, LetStmt):
            self.emit(f"{s.var.name} = {self.printer.expr(s.value)}")
            self.stmt(s.body)
        elif isinstance(s, Evaluate):
            self.emit(f"{self.printer.expr(s.value)}")
        elif isinstance(s, BlockRealize):
            self._block_realize(s)
        elif isinstance(s, AllocateConst):
            name = self._register_buffer(s.buffer)
            key = f"__const_{name}"
            self.tensorized_calls[key] = s.data
            self.emit(f"{name} = __intrins[{key!r}]")
            self.stmt(s.body)
        else:
            raise NotImplementedError(f"codegen: {type(s).__name__}")

    # -- the vectorized fast path ----------------------------------------
    def _try_vectorize(self, s: For) -> bool:
        """Lower an innermost loop to one NumPy array statement.

        Two sound shapes, both built on arange fancy indexing
        (``__vec = arange(min, min+extent)`` substituted for the loop
        var, so index arithmetic vectorizes for free):

        * **elementwise** — the store lands at a distinct location per
          iteration (some store index has a nonzero constant stride in
          the loop var), and the value reads the stored buffer only at
          exactly the stored location;
        * **reduction** — every store index is loop-invariant and the
          body is ``buf[i] = buf[i] + rest(v)``, which becomes
          ``buf[i] = buf[i] + sum(rest(__vec))`` (skipped for float16,
          where re-associated accumulation drifts too far).

        A reduction-``init`` store (``if vk == 0: C[...] = 0``) is
        folded in when it provably fires uniformly over the vector (all
        reduce iterators loop-invariant) or exactly at its first element
        (the vectorized loop *is* the identity-bound reduce iterator).
        Anything else — guarded predicates, tensorized blocks, unknown
        strides, constructs without an array form — falls back to the
        scalar loop.  Returns True when emitted.
        """
        env: Dict[str, PrimExpr] = {}
        bindings = []
        block = None
        realize = None
        body = s.body
        if isinstance(body, BlockRealize):
            realize = body
            block = body.block
            pred = body.predicate
            if (
                block.annotations.get("tensorize")
                or block.alloc_buffers
                or not (isinstance(pred, IntImm) and pred.value == 1)
            ):
                return False
            for iv, value in zip(block.iter_vars, body.iter_values):
                env[iv.var.name] = value
                bindings.append((iv.var.name, value))
            body = block.body
        if not isinstance(body, BufferStore) or not body.indices:
            return False
        store = body
        v = s.loop_var.name
        strides = [_stride_of(i, v, env) for i in store.indices]
        if any(st is None for st in strides):
            return False
        vp = _VecPrinter(self.buffer_names, v)
        try:
            bind_txt = [(name, vp.expr(value)) for name, value in bindings]
            idx_txt = [vp.expr(i) for i in store.indices]
            store_key = ", ".join(idx_txt)
            init_txt = None
            if block is not None and block.init is not None:
                ini = block.init
                if (
                    not isinstance(ini, BufferStore)
                    or ini.buffer is not store.buffer
                    or ", ".join(vp.expr(i) for i in ini.indices) != store_key
                    or _depends_on(ini.value, v, env)
                ):
                    return False
                conds = []
                for iv, value in zip(block.iter_vars, realize.iter_values):
                    if not iv.is_reduce:
                        continue
                    if _depends_on(value, v, env):
                        # Must fire exactly once, at the vector's first
                        # element: the loop var *is* the reduce iterator
                        # and starts at its domain minimum — and the
                        # store cell must be loop-invariant, else a
                        # first-iteration init can't be expressed as one
                        # array statement.
                        if (
                            not (isinstance(value, Var) and value.name == v)
                            or any(st != 0 for st in strides)
                        ):
                            return False
                        lo_c = const_int_value(s.min)
                        min_c = const_int_value(iv.dom.min)
                        if lo_c is None or min_c is None or lo_c != min_c:
                            return False
                    else:
                        conds.append(
                            f"{iv.var.name} == {vp.expr(iv.dom.min)}"
                        )
                init_txt = (conds, vp.expr(ini.value))
            if any(st != 0 for st in strides):
                # Elementwise: distinct store locations per iteration.
                for load in _collect_loads(store.value, []):
                    if load.buffer is store.buffer and (
                        ", ".join(vp.expr(i) for i in load.indices) != store_key
                    ):
                        return False  # reads other (possibly written) cells
                value_txt = vp.expr(store.value)
                rest_txt = None
            else:
                # Reduction into one loop-invariant cell.
                if store.buffer.dtype == "float16" or not isinstance(store.value, Add):
                    return False

                def self_load(x: PrimExpr) -> bool:
                    return (
                        isinstance(x, BufferLoad)
                        and x.buffer is store.buffer
                        and ", ".join(vp.expr(i) for i in x.indices) == store_key
                    )

                if self_load(store.value.a):
                    rest = store.value.b
                elif self_load(store.value.b):
                    rest = store.value.a
                else:
                    return False
                if not _depends_on(rest, v, env):
                    return False  # sum() would scale the addend by extent
                if any(l.buffer is store.buffer for l in _collect_loads(rest, [])):
                    return False
                rest_txt = vp.expr(rest)
                value_txt = None
        except (_NotVectorizable, NotImplementedError, KeyError):
            return False
        name = self.buffer_names[id(store.buffer)]
        self.emit(
            f"__vec = __np.arange({self.printer.expr(s.min)}, "
            f"{self.printer.expr(s.min + s.extent)})"
        )
        for bind_name, bind_value in bind_txt:
            self.emit(f"{bind_name} = {bind_value}")
        if init_txt is not None:
            conds, init_value = init_txt
            if conds:
                self.emit(f"if {' and '.join(conds)}:")
                self.indent += 1
                self.emit(f"{name}[{store_key}] = {init_value}")
                self.indent -= 1
            else:
                self.emit(f"{name}[{store_key}] = {init_value}")
        if rest_txt is None:
            self.emit(f"{name}[{store_key}] = {value_txt}")
        else:
            self.emit(
                f"{name}[{store_key}] = {name}[{store_key}] + "
                f"__np.sum({rest_txt})"
            )
        return True

    def _block_realize(self, realize: BlockRealize) -> None:
        block = realize.block
        for iv, value in zip(block.iter_vars, realize.iter_values):
            self.emit(f"{iv.var.name} = {self.printer.expr(value)}")
        pred = realize.predicate
        guarded = not (isinstance(pred, IntImm) and pred.value == 1)
        if guarded:
            self.emit(f"if {self.printer.expr(pred)}:")
            self.indent += 1
        for buf in block.alloc_buffers:
            self._emit_alloc(buf)
        if block.annotations.get("tensorize"):
            self._tensorized(block)
        else:
            if block.init is not None:
                conds = [
                    f"{iv.var.name} == {self.printer.expr(iv.dom.min)}"
                    for iv in block.iter_vars
                    if iv.is_reduce
                ]
                cond = " and ".join(conds) if conds else "True"
                self.emit(f"if {cond}:")
                self.indent += 1
                self.stmt(block.init)
                self.indent -= 1
            self.stmt(block.body)
        if guarded:
            self.indent -= 1

    def _tensorized(self, block: Block) -> None:
        from ..intrin import get_intrin

        intrin = get_intrin(block.annotations["tensorize"])
        operands = block.annotations.get("tensorize_operands", {})
        views: List[str] = []
        for param in intrin.desc.params:
            role = intrin.desc.buffer_map[param].name
            buf_name = operands.get(role)
            region = self._find_region(block, buf_name)
            if region is None:
                raise NotImplementedError(
                    f"codegen: operand {role} of {intrin.name} not found in block signature"
                )
            desc_rank = intrin.desc.buffer_map[param].ndim
            extra = len(region.region) - desc_rank
            slices = []
            for d, rng in enumerate(region.region):
                lo = self.printer.expr(rng.min)
                if d < extra:
                    # Leading dims outside the tile: scalar index (the
                    # region extent is 1 there by construction).
                    slices.append(lo)
                else:
                    hi = self.printer.expr(rng.min + rng.extent)
                    slices.append(f"{lo}:{hi}")
            views.append(f"{self.buffer_names[id(region.buffer)]}[{', '.join(slices)}]")
        key = f"__intrin_{intrin.name}"
        self.tensorized_calls[key] = intrin.numpy_impl
        # Reduction init (e.g. a separate fill block) is handled by the
        # fill intrinsic; an init on the tensorized block itself runs on
        # the first reduction iteration like any other block.
        if block.init is not None:
            conds = [
                f"{iv.var.name} == {self.printer.expr(iv.dom.min)}"
                for iv in block.iter_vars
                if iv.is_reduce
            ]
            cond = " and ".join(conds) if conds else "True"
            self.emit(f"if {cond}:")
            self.indent += 1
            self.stmt(block.init)
            self.indent -= 1
        self.emit(f"__intrins[{key!r}]({', '.join(views)})")

    def _find_region(self, block: Block, buffer_name: Optional[str]):
        if buffer_name is None:
            return None
        for region in list(block.reads) + list(block.writes):
            if region.buffer.name == buffer_name:
                return region
        return None


class CompiledFunc:
    """A compiled PrimFunc: callable over NumPy arrays (by param order)."""

    def __init__(self, func: PrimFunc, source: str, pyfunc, intrins):
        self.func = func
        self.source = source
        self._pyfunc = pyfunc
        self._intrins = intrins

    def __call__(self, *arrays) -> None:
        import numpy as np

        if len(arrays) != len(self.func.params):
            raise TypeError(
                f"{self.func.name} expects {len(self.func.params)} arrays, "
                f"got {len(arrays)}"
            )
        for arr, param in zip(arrays, self.func.params):
            buf = self.func.buffer_map[param]
            if tuple(arr.shape) != buf.shape_ints():
                raise ValueError(
                    f"argument {buf.name}: shape {arr.shape} != {buf.shape_ints()}"
                )
        self._pyfunc(*arrays, np, INTRINSIC_IMPLS, self._intrins)


#: compiled-function memo, keyed by structural hash: evaluating many
#: candidates (or running fused-vs-unfused cross-checks) recompiles the
#: same program repeatedly; hits surface in telemetry as
#: ``cache.runtime.compile.hits``.
_COMPILE_CACHE = _cache.MemoCache("runtime.compile")


def compile_func(func: PrimFunc, vectorize: bool = True) -> CompiledFunc:
    """Compile a PrimFunc to executable Python.

    ``vectorize`` (default on) lowers qualifying innermost loops to
    single NumPy array statements instead of interpreted ``for`` loops —
    often 10-100x faster to execute.  Loops that cannot be proven safe
    are emitted scalar, so the flag only ever changes speed (and, for
    reductions, floating-point summation order within rounding), never
    which elements are computed.

    Results are memoized on ``(structural_hash(func), vectorize)``.  The
    cached ``CompiledFunc`` still validates argument shapes against its
    own (structurally identical) signature.
    """
    key = (structural_hash(func), vectorize)
    return _COMPILE_CACHE.get_or_compute(key, lambda: _compile_uncached(func, vectorize))


def _compile_uncached(func: PrimFunc, vectorize: bool) -> CompiledFunc:
    gen = _Codegen(func, vectorize=vectorize)
    source = gen.run()
    namespace: Dict[str, object] = {}
    code = compile(source, f"<tensorir:{func.name}>", "exec")
    exec(code, namespace)  # noqa: S102 - this is the codegen backend
    return CompiledFunc(func, source, namespace["__kernel"], gen.tensorized_calls)
