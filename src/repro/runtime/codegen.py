"""Code generation: TensorIR → executable Python.

The reproduction's "backend": a scheduled PrimFunc is compiled into a
Python function over NumPy arrays.  Loops become ``for`` statements
(thread bindings and parallel loops execute sequentially — the
*performance* of threading is the business of :mod:`repro.sim`, the
*semantics* are sequentialisable), block realizes become iterator
assignments with predicate guards, and reduction ``init`` statements run
on the first iteration of their reduction (all reduce iterators at their
domain minimum).

Blocks that were tensorized (annotation ``"tensorize"``) are emitted as
calls into the intrinsic's NumPy tile implementation over the matched
buffer regions — the executable analogue of emitting the hardware
instruction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..tir import (
    BinaryOp,
    Block,
    BlockRealize,
    Buffer,
    BufferStore,
    Call,
    Cast,
    FloatImm,
    For,
    IfThenElse,
    IntImm,
    LetStmt,
    Max,
    Min,
    Not,
    PrimFunc,
    PrimExpr,
    Select,
    SeqStmt,
    Stmt,
    StringImm,
    TruncDiv,
    Var,
)
from ..tir import dtype as _dt
from ..tir.eval import INTRINSIC_IMPLS
from ..tir.expr import And, BufferLoad, Div, Or
from ..tir.stmt import AllocateConst, Evaluate

__all__ = ["compile_func", "CompiledFunc"]

_PY_BINOPS = {
    "Add": "+",
    "Sub": "-",
    "Mul": "*",
    "Div": "/",
    "FloorDiv": "//",
    "FloorMod": "%",
    "EQ": "==",
    "NE": "!=",
    "LT": "<",
    "LE": "<=",
    "GT": ">",
    "GE": ">=",
}


class _PyPrinter:
    """Renders expressions as Python source."""

    def __init__(self, buffer_names: Dict[int, str]):
        self.buffer_names = buffer_names

    def expr(self, e: PrimExpr) -> str:
        if isinstance(e, Var):
            return e.name
        if isinstance(e, IntImm):
            if e.dtype == "bool":
                return "True" if e.value else "False"
            return repr(e.value)
        if isinstance(e, FloatImm):
            return repr(e.value)
        if isinstance(e, StringImm):
            return repr(e.value)
        if isinstance(e, Cast):
            inner = self.expr(e.value)
            if _dt.is_float(e.dtype):
                if e.dtype == "float64":
                    return f"float({inner})"
                return f"__np.{e.dtype}({inner})"
            if e.dtype == "bool":
                return f"bool({inner})"
            if e.dtype in ("int32", "int64"):
                # Exact in Python; wrap-around at these widths is out of
                # range for every workload in the suite.
                return f"int({inner})"
            return f"__np.{e.dtype}({inner})"
        if isinstance(e, Min):
            return f"min({self.expr(e.a)}, {self.expr(e.b)})"
        if isinstance(e, Max):
            return f"max({self.expr(e.a)}, {self.expr(e.b)})"
        if isinstance(e, TruncDiv):
            return f"int({self.expr(e.a)} / {self.expr(e.b)})"
        if isinstance(e, And):
            return f"({self.expr(e.a)} and {self.expr(e.b)})"
        if isinstance(e, Or):
            return f"({self.expr(e.a)} or {self.expr(e.b)})"
        if isinstance(e, Not):
            return f"(not {self.expr(e.a)})"
        if isinstance(e, BinaryOp):
            op = _PY_BINOPS.get(type(e).__name__)
            if op is None:
                raise NotImplementedError(f"codegen: {type(e).__name__}")
            return f"({self.expr(e.a)} {op} {self.expr(e.b)})"
        if isinstance(e, Select):
            return (
                f"({self.expr(e.true_value)} if {self.expr(e.condition)} "
                f"else {self.expr(e.false_value)})"
            )
        if isinstance(e, BufferLoad):
            name = self.buffer_names[id(e.buffer)]
            idx = ", ".join(self.expr(i) for i in e.indices)
            return f"{name}[{idx}]"
        if isinstance(e, Call):
            args = ", ".join(self.expr(a) for a in e.args)
            return f"__calls[{e.op!r}]({args})"
        raise NotImplementedError(f"codegen: {type(e).__name__}")


class _Codegen:
    def __init__(self, func: PrimFunc):
        self.func = func
        self.lines: List[str] = []
        self.indent = 1
        self.buffer_names: Dict[int, str] = {}
        self.printer = _PyPrinter(self.buffer_names)
        self.tensorized_calls: Dict[str, object] = {}
        self._tmp = 0

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    # -- naming ---------------------------------------------------------
    def _register_buffer(self, buf: Buffer) -> str:
        name = buf.name.replace(".", "_")
        existing = set(self.buffer_names.values())
        candidate = name
        n = 0
        while candidate in existing:
            n += 1
            candidate = f"{name}_{n}"
        self.buffer_names[id(buf)] = candidate
        return candidate

    # -- top level --------------------------------------------------------
    def run(self) -> str:
        params = [self._register_buffer(self.func.buffer_map[p]) for p in self.func.params]
        header = f"def __kernel({', '.join(params)}, __np, __calls, __intrins):"
        root = self.func.body.block
        for buf in root.alloc_buffers:
            self._emit_alloc(buf)
        self.stmt(root.body)
        body = "\n".join(self.lines) if self.lines else "    pass"
        return header + "\n" + body

    def _emit_alloc(self, buf: Buffer) -> None:
        name = self._register_buffer(buf)
        shape = buf.shape_ints()
        np_dtype = "bool_" if buf.dtype == "bool" else buf.dtype
        self.emit(f"{name} = __np.zeros({shape!r}, dtype=__np.{np_dtype})")

    # -- statements --------------------------------------------------------
    def stmt(self, s: Stmt) -> None:
        if isinstance(s, SeqStmt):
            for sub in s.stmts:
                self.stmt(sub)
        elif isinstance(s, For):
            self.emit(f"for {s.loop_var.name} in range({self.printer.expr(s.min)}, "
                      f"{self.printer.expr(s.min + s.extent)}):")
            self.indent += 1
            self.stmt(s.body)
            self.indent -= 1
        elif isinstance(s, BufferStore):
            name = self.buffer_names[id(s.buffer)]
            idx = ", ".join(self.printer.expr(i) for i in s.indices)
            self.emit(f"{name}[{idx}] = {self.printer.expr(s.value)}")
        elif isinstance(s, IfThenElse):
            self.emit(f"if {self.printer.expr(s.condition)}:")
            self.indent += 1
            self.stmt(s.then_case)
            self.indent -= 1
            if s.else_case is not None:
                self.emit("else:")
                self.indent += 1
                self.stmt(s.else_case)
                self.indent -= 1
        elif isinstance(s, LetStmt):
            self.emit(f"{s.var.name} = {self.printer.expr(s.value)}")
            self.stmt(s.body)
        elif isinstance(s, Evaluate):
            self.emit(f"{self.printer.expr(s.value)}")
        elif isinstance(s, BlockRealize):
            self._block_realize(s)
        elif isinstance(s, AllocateConst):
            name = self._register_buffer(s.buffer)
            key = f"__const_{name}"
            self.tensorized_calls[key] = s.data
            self.emit(f"{name} = __intrins[{key!r}]")
            self.stmt(s.body)
        else:
            raise NotImplementedError(f"codegen: {type(s).__name__}")

    def _block_realize(self, realize: BlockRealize) -> None:
        block = realize.block
        for iv, value in zip(block.iter_vars, realize.iter_values):
            self.emit(f"{iv.var.name} = {self.printer.expr(value)}")
        pred = realize.predicate
        guarded = not (isinstance(pred, IntImm) and pred.value == 1)
        if guarded:
            self.emit(f"if {self.printer.expr(pred)}:")
            self.indent += 1
        for buf in block.alloc_buffers:
            self._emit_alloc(buf)
        if block.annotations.get("tensorize"):
            self._tensorized(block)
        else:
            if block.init is not None:
                conds = [
                    f"{iv.var.name} == {self.printer.expr(iv.dom.min)}"
                    for iv in block.iter_vars
                    if iv.is_reduce
                ]
                cond = " and ".join(conds) if conds else "True"
                self.emit(f"if {cond}:")
                self.indent += 1
                self.stmt(block.init)
                self.indent -= 1
            self.stmt(block.body)
        if guarded:
            self.indent -= 1

    def _tensorized(self, block: Block) -> None:
        from ..intrin import get_intrin

        intrin = get_intrin(block.annotations["tensorize"])
        operands = block.annotations.get("tensorize_operands", {})
        views: List[str] = []
        for param in intrin.desc.params:
            role = intrin.desc.buffer_map[param].name
            buf_name = operands.get(role)
            region = self._find_region(block, buf_name)
            if region is None:
                raise NotImplementedError(
                    f"codegen: operand {role} of {intrin.name} not found in block signature"
                )
            desc_rank = intrin.desc.buffer_map[param].ndim
            extra = len(region.region) - desc_rank
            slices = []
            for d, rng in enumerate(region.region):
                lo = self.printer.expr(rng.min)
                if d < extra:
                    # Leading dims outside the tile: scalar index (the
                    # region extent is 1 there by construction).
                    slices.append(lo)
                else:
                    hi = self.printer.expr(rng.min + rng.extent)
                    slices.append(f"{lo}:{hi}")
            views.append(f"{self.buffer_names[id(region.buffer)]}[{', '.join(slices)}]")
        key = f"__intrin_{intrin.name}"
        self.tensorized_calls[key] = intrin.numpy_impl
        # Reduction init (e.g. a separate fill block) is handled by the
        # fill intrinsic; an init on the tensorized block itself runs on
        # the first reduction iteration like any other block.
        if block.init is not None:
            conds = [
                f"{iv.var.name} == {self.printer.expr(iv.dom.min)}"
                for iv in block.iter_vars
                if iv.is_reduce
            ]
            cond = " and ".join(conds) if conds else "True"
            self.emit(f"if {cond}:")
            self.indent += 1
            self.stmt(block.init)
            self.indent -= 1
        self.emit(f"__intrins[{key!r}]({', '.join(views)})")

    def _find_region(self, block: Block, buffer_name: Optional[str]):
        if buffer_name is None:
            return None
        for region in list(block.reads) + list(block.writes):
            if region.buffer.name == buffer_name:
                return region
        return None


class CompiledFunc:
    """A compiled PrimFunc: callable over NumPy arrays (by param order)."""

    def __init__(self, func: PrimFunc, source: str, pyfunc, intrins):
        self.func = func
        self.source = source
        self._pyfunc = pyfunc
        self._intrins = intrins

    def __call__(self, *arrays) -> None:
        import numpy as np

        if len(arrays) != len(self.func.params):
            raise TypeError(
                f"{self.func.name} expects {len(self.func.params)} arrays, "
                f"got {len(arrays)}"
            )
        for arr, param in zip(arrays, self.func.params):
            buf = self.func.buffer_map[param]
            if tuple(arr.shape) != buf.shape_ints():
                raise ValueError(
                    f"argument {buf.name}: shape {arr.shape} != {buf.shape_ints()}"
                )
        self._pyfunc(*arrays, np, INTRINSIC_IMPLS, self._intrins)


def compile_func(func: PrimFunc) -> CompiledFunc:
    """Compile a PrimFunc to executable Python."""
    gen = _Codegen(func)
    source = gen.run()
    namespace: Dict[str, object] = {}
    code = compile(source, f"<tensorir:{func.name}>", "exec")
    exec(code, namespace)  # noqa: S102 - this is the codegen backend
    return CompiledFunc(func, source, namespace["__kernel"], gen.tensorized_calls)
