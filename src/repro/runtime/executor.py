"""Execution helpers over compiled functions."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..tir import PrimFunc
from ..tir.dtype import numpy_dtype
from .codegen import CompiledFunc, compile_func

__all__ = ["Executor", "run", "alloc_args", "random_args"]


def alloc_args(func: PrimFunc, fill: float = 0.0) -> Dict[str, np.ndarray]:
    """Zero/constant-filled arrays for every parameter, keyed by name."""
    out = {}
    for param in func.params:
        buf = func.buffer_map[param]
        arr = np.full(buf.shape_ints(), fill, dtype=numpy_dtype(buf.dtype))
        out[buf.name] = arr
    return out


def random_args(func: PrimFunc, seed: int = 0) -> Dict[str, np.ndarray]:
    """Random arrays for every parameter (ints in [-4, 4], floats in
    [-1, 1]) — small magnitudes keep low-precision accumulation stable."""
    rng = np.random.default_rng(seed)
    out = {}
    for param in func.params:
        buf = func.buffer_map[param]
        dt = numpy_dtype(buf.dtype)
        shape = buf.shape_ints()
        if buf.dtype.startswith("float"):
            arr = rng.uniform(-1.0, 1.0, size=shape).astype(dt)
        elif buf.dtype == "bool":
            arr = rng.integers(0, 2, size=shape).astype(dt)
        else:
            arr = rng.integers(-4, 5, size=shape).astype(dt)
        out[buf.name] = arr
    return out


class Executor:
    """Compiles once, runs many times."""

    def __init__(self, func: PrimFunc):
        self.func = func
        self.compiled: CompiledFunc = compile_func(func)

    def __call__(self, arrays: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        ordered = [arrays[self.func.buffer_map[p].name] for p in self.func.params]
        self.compiled(*ordered)
        return arrays


def run(func: PrimFunc, arrays: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Compile and execute ``func`` in place over ``arrays``.

    ``arrays`` maps parameter buffer names to NumPy arrays; outputs are
    written in place and the dict is returned for convenience.
    """
    return Executor(func)(arrays)
