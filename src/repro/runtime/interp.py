"""A reference interpreter for TensorIR.

Executes a PrimFunc by walking the statement tree directly with
:func:`~repro.tir.evaluate_expr` — no code generation, no fast paths
(tensorized blocks run their scalar bodies).  It is an order of
magnitude slower than the compiled path and exists as an *independent
semantics oracle*: the test suite cross-checks ``compile_func`` against
it on randomly scheduled programs.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from ..tir import (
    Block,
    BlockRealize,
    BufferStore,
    For,
    IfThenElse,
    LetStmt,
    PrimFunc,
    SeqStmt,
    Stmt,
    Var,
    const_int_value,
    evaluate_expr,
)
from ..tir.buffer import Buffer
from ..tir.dtype import numpy_dtype
from ..tir.stmt import AllocateConst, Evaluate

__all__ = ["interpret"]


class _Interp:
    def __init__(self):
        self.env: Dict[Var, int] = {}
        self.buffers: Dict[Buffer, np.ndarray] = {}

    def eval(self, expr):
        return evaluate_expr(expr, self.env, self.buffers)

    def exec(self, stmt: Stmt) -> None:
        if isinstance(stmt, SeqStmt):
            for s in stmt.stmts:
                self.exec(s)
        elif isinstance(stmt, For):
            lo = int(self.eval(stmt.min))
            extent = int(self.eval(stmt.extent))
            for value in range(lo, lo + extent):
                self.env[stmt.loop_var] = value
                self.exec(stmt.body)
            self.env.pop(stmt.loop_var, None)
        elif isinstance(stmt, BufferStore):
            idx = tuple(int(self.eval(i)) for i in stmt.indices)
            self.buffers[stmt.buffer][idx] = self.eval(stmt.value)
        elif isinstance(stmt, IfThenElse):
            if self.eval(stmt.condition):
                self.exec(stmt.then_case)
            elif stmt.else_case is not None:
                self.exec(stmt.else_case)
        elif isinstance(stmt, LetStmt):
            self.env[stmt.var] = self.eval(stmt.value)
            self.exec(stmt.body)
            self.env.pop(stmt.var, None)
        elif isinstance(stmt, Evaluate):
            self.eval(stmt.value)
        elif isinstance(stmt, BlockRealize):
            self._exec_block(stmt)
        elif isinstance(stmt, AllocateConst):
            self.buffers[stmt.buffer] = np.asarray(stmt.data)
            self.exec(stmt.body)
        else:
            raise TypeError(f"interpreter: unhandled {type(stmt).__name__}")

    def _exec_block(self, realize: BlockRealize) -> None:
        if not self.eval(realize.predicate):
            return
        block = realize.block
        saved = {}
        for iv, value in zip(block.iter_vars, realize.iter_values):
            saved[iv.var] = self.env.get(iv.var)
            self.env[iv.var] = int(self.eval(value))
        for buf in block.alloc_buffers:
            if buf not in self.buffers:
                self.buffers[buf] = np.zeros(buf.shape_ints(), dtype=numpy_dtype(buf.dtype))
        if block.init is not None:
            first = all(
                self.env[iv.var] == int(self.eval(iv.dom.min))
                for iv in block.iter_vars
                if iv.is_reduce
            )
            if first:
                self.exec(block.init)
        self.exec(block.body)
        for var, old in saved.items():
            if old is None:
                self.env.pop(var, None)
            else:
                self.env[var] = old


def interpret(func: PrimFunc, arrays: Mapping[str, np.ndarray]) -> Mapping[str, np.ndarray]:
    """Execute ``func`` over ``arrays`` (parameter-name keyed), in place."""
    interp = _Interp()
    for param in func.params:
        buf = func.buffer_map[param]
        interp.buffers[buf] = arrays[buf.name]
    root = func.body.block
    for buf in root.alloc_buffers:
        interp.buffers[buf] = np.zeros(buf.shape_ints(), dtype=numpy_dtype(buf.dtype))
    interp.exec(root.body)
    return arrays
