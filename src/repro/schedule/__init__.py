"""Scheduling: transformation primitives, replayable traces and
validation (paper §3.2–§3.3).

Entry points:

* :class:`Schedule` — construct one over a
  :class:`~repro.tir.PrimFunc` and apply primitives; failed primitive
  preconditions raise :class:`ScheduleError` (code ``TIR4xx``) and are
  recorded on ``Schedule.diagnostics``.
* :func:`verify` — the §3.3 check battery; returns a list of typed
  :class:`~repro.diagnostics.Diagnostic` objects (empty = valid), each
  with a stable error code and a renderable source span.
  :func:`is_valid` / :func:`assert_valid` are the boolean / raising
  views; ``assert_valid`` raises :class:`VerificationError`.

Both exception types subclass :class:`repro.diagnostics.DiagnosticError`
and carry ``.diagnostics``.
"""

from ..diagnostics import Diagnostic, DiagnosticContext, DiagnosticError
from .sampling import all_factorizations, divisors_of
from .sref import ScheduleError
from .state import BlockRV, LoopRV, Schedule
from .trace import Instruction, Trace
from .validation import VerificationError, assert_valid, is_valid, verify

__all__ = [
    "Schedule",
    "BlockRV",
    "LoopRV",
    "ScheduleError",
    "Trace",
    "Instruction",
    "verify",
    "is_valid",
    "assert_valid",
    "VerificationError",
    "Diagnostic",
    "DiagnosticContext",
    "DiagnosticError",
    "divisors_of",
    "all_factorizations",
]
