"""Scheduling: transformation primitives, replayable traces and
validation (paper §3.2–§3.3).

Entry point: :class:`Schedule` — construct one over a
:class:`~repro.tir.PrimFunc` and apply primitives; ``verify`` validates
the resulting program.
"""

from .sampling import all_factorizations, divisors_of
from .sref import ScheduleError
from .state import BlockRV, LoopRV, Schedule
from .trace import Instruction, Trace
from .validation import VerificationError, assert_valid, is_valid, verify

__all__ = [
    "Schedule",
    "BlockRV",
    "LoopRV",
    "ScheduleError",
    "Trace",
    "Instruction",
    "verify",
    "is_valid",
    "assert_valid",
    "VerificationError",
    "divisors_of",
    "all_factorizations",
]
