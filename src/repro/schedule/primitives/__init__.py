"""Schedule primitive implementations, one module per family.

Each primitive is a standalone TensorIR→TensorIR transformation (the
paper's "Separation of Scheduling and TensorIR" design, §3.2): it takes
the schedule state, rebuilds the relevant subtree, and never mutates IR
nodes in place.
"""
