"""Blockization and tensorization (paper §3.2 Figure 7, §4.1).

``blockize(loop)`` wraps the subtree rooted at ``loop`` into a new outer
block whose iterators summarise the outer components of the leaf block's
bindings.  The leaf block keeps its body; its bindings are rewritten in
terms of the new outer block's iterators.  This is the isolation step
that makes a sub-computation a tensorization candidate.

``tensorize(block, intrin)`` checks that a blockized computation matches
a registered :class:`~repro.intrin.TensorIntrin`'s semantics and marks
the block as an opaque tensorized computation.  The block body is
replaced by the intrinsic's implementation body (instantiated over the
matched buffer regions); the simulated hardware recognises the intrinsic
annotation and charges the instruction's cost, while the NumPy executor
uses the intrinsic's fast tile implementation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...diagnostics import tagged
from ...arith import Analyzer
from ...arith.simplify import structural_key
from ...tir import (
    Block,
    BlockRealize,
    For,
    ForKind,
    IterVar,
    PrimExpr,
    Range,
    Stmt,
    Var,
    collect_vars,
    const,
    const_int_value,
    substitute,
)
from ...tir.analysis.regions import detect_block_access_regions
from ...tir.structural import StructuralMatcher
from ..sref import ScheduleError, find_blocks, loops_above, path_to
from ..state import BlockRV, LoopRV, Schedule

__all__ = ["blockize", "tensorize"]


def _separate_binding(
    binding: PrimExpr,
    outer_vars: Dict[int, Var],
    inner_vars: Dict[int, Var],
    analyzer: Analyzer,
) -> Tuple[PrimExpr, PrimExpr, int]:
    """Split ``binding`` into ``outer_part * c + inner_part``.

    ``inner_part`` ranges over ``[0, c)``.  Raises if the binding mixes
    outer and inner loop variables non-separably.
    """
    binding = analyzer.simplify(binding)
    used = collect_vars(binding)
    uses_outer = any(id(v) in outer_vars for v in used)
    uses_inner = any(id(v) in inner_vars for v in used)
    zero = const(0)
    if not uses_inner:
        return binding, zero, 1
    if not uses_outer:
        inner_set = analyzer.int_set(binding)
        if not inner_set.is_bounded or inner_set.min_value != 0:
            raise ScheduleError(
                "blockize: inner binding component must start at 0"
            )
        return zero, binding, inner_set.max_value + 1
    # Mixed: substitute inner vars with 0 to obtain the outer component.
    inner_zero = {v: const(0) for v in inner_vars.values()}
    outer_part = analyzer.simplify(substitute(binding, inner_zero))
    inner_part = analyzer.simplify(binding - outer_part)
    if any(id(v) in outer_vars for v in collect_vars(inner_part)):
        raise ScheduleError("blockize: binding is not separable into outer + inner")
    inner_set = analyzer.int_set(inner_part)
    if not inner_set.is_bounded or inner_set.min_value != 0:
        raise ScheduleError("blockize: inner binding component must start at 0")
    c = inner_set.max_value + 1
    # outer_part must be a multiple of c for the tile decomposition.
    quotient = analyzer.simplify(outer_part // c)
    if not analyzer.prove_equal(quotient * c, outer_part):
        raise ScheduleError(
            "blockize: outer binding component is not aligned to the tile size"
        )
    return quotient, inner_part, c


@tagged("TIR440")
def blockize(sch: Schedule, loop_rv: LoopRV) -> BlockRV:
    """Isolate the subtree under ``loop`` into a new outer block."""
    loop = sch._loop(loop_rv)
    realizes = find_blocks(loop)
    if len(realizes) != 1:
        raise ScheduleError(
            f"blockize: expected exactly one leaf block under the loop, found {len(realizes)}"
        )
    realize = realizes[0]
    leaf = realize.block
    if leaf.init is not None:
        # Initialisation per outer-block instance would re-run across
        # outer reduction instances; require decompose_reduction first
        # unless every reduce iterator is fully inside the new block.
        reduce_outer = False
        inner_var_ids = {id(lp.loop_var) for lp in loops_above(loop, realize)} | {
            id(loop.loop_var)
        }
        for iv, binding in zip(leaf.iter_vars, realize.iter_values):
            if iv.is_reduce and any(
                id(v) not in inner_var_ids for v in collect_vars(binding)
            ):
                reduce_outer = True
        if reduce_outer:
            raise ScheduleError(
                "blockize: decompose_reduction before blockizing a reduction "
                "whose reduce iterators cross the block boundary"
            )

    inner_loops = [loop] + loops_above(loop, realize)
    inner_vars = {id(lp.loop_var): lp.loop_var for lp in inner_loops}
    outer_loops = loops_above(sch.func.body, loop)
    outer_vars = {id(lp.loop_var): lp.loop_var for lp in outer_loops}

    analyzer = Analyzer()
    for lp in outer_loops + inner_loops:
        analyzer.bind(lp.loop_var, Range(lp.min, lp.extent))

    outer_iter_vars: List[IterVar] = []
    outer_bindings: List[PrimExpr] = []
    new_leaf_bindings: List[PrimExpr] = []
    for iv, binding in zip(leaf.iter_vars, realize.iter_values):
        outer_part, inner_part, c = _separate_binding(binding, outer_vars, inner_vars, analyzer)
        if const_int_value(outer_part) == 0 and c > 1:
            # Fully inner: the leaf binding is unchanged; no outer iter.
            new_leaf_bindings.append(inner_part)
            continue
        extent = const_int_value(iv.dom.extent)
        if extent is None:
            raise ScheduleError("blockize: symbolic iterator domain")
        if extent % c != 0:
            raise ScheduleError(
                f"blockize: domain {extent} of {iv.var.name} is not divisible "
                f"by tile size {c}"
            )
        outer_var = sch.fresh_var(f"{iv.var.name}_o")
        outer_iter_vars.append(IterVar(outer_var, Range(0, extent // c), iv.kind))
        outer_bindings.append(outer_part)
        new_leaf_bindings.append(outer_var * c + inner_part)

    new_realize = BlockRealize(new_leaf_bindings, realize.predicate, leaf)
    new_subtree = _rebuild_loops(loop, realize, new_realize)
    outer_block = Block(
        name_hint=sch.fresh_block_name(f"{leaf.name_hint}_o"),
        iter_vars=outer_iter_vars,
        reads=(),
        writes=(),
        body=new_subtree,
    )
    reads, writes = detect_block_access_regions(outer_block)
    outer_block = outer_block.replace(reads=reads, writes=writes)
    sch.replace(loop, BlockRealize(outer_bindings, const(True), outer_block))
    return BlockRV(outer_block.name_hint)


def _rebuild_loops(loop: For, old_realize: BlockRealize, new_realize: BlockRealize) -> Stmt:
    """Rebuild the loop chain from ``loop`` down, swapping the leaf."""

    def rebuild(node: Stmt) -> Stmt:
        if node is old_realize:
            return new_realize
        if isinstance(node, For):
            return For(
                node.loop_var,
                node.min,
                node.extent,
                node.kind,
                rebuild(node.body),
                node.thread_tag,
                node.annotations,
            )
        from ...tir import SeqStmt, seq

        if isinstance(node, SeqStmt):
            return seq([rebuild(s) for s in node.stmts])
        raise ScheduleError("blockize: unsupported statement between loop and block")

    return rebuild(loop)


# ---------------------------------------------------------------------------
# tensorize
# ---------------------------------------------------------------------------


def _zeroed_body(block: Block, realize: BlockRealize, outer_iters: List[IterVar]) -> Stmt:
    """The computation of ``block`` with its outer block iterators set to
    zero: the representative tile at the origin, used for matching."""
    zero_map = {iv.var: const(0) for iv in outer_iters}
    body = substitute(block.body, zero_map)
    return body


def _flatten_leaf(stmt: Stmt, analyzer: Analyzer) -> Stmt:
    """Replace leaf BlockRealize nodes with their bodies, substituting
    iterator bindings (and dropping init, which must be absent)."""
    from ...tir import SeqStmt, seq

    if isinstance(stmt, BlockRealize):
        block = stmt.block
        if block.init is not None:
            raise ScheduleError("tensorize: leaf block must not carry init")
        vmap = {iv.var: val for iv, val in zip(block.iter_vars, stmt.iter_values)}
        return _flatten_leaf(_simplify_stmt(substitute(block.body, vmap), analyzer), analyzer)
    if isinstance(stmt, For):
        if const_int_value(stmt.extent) == 1:
            # Unit loops carry no iteration structure: normalise away.
            body = substitute(stmt.body, {stmt.loop_var: stmt.min})
            return _flatten_leaf(_simplify_stmt(body, analyzer), analyzer)
        return For(
            stmt.loop_var,
            stmt.min,
            stmt.extent,
            stmt.kind,
            _flatten_leaf(stmt.body, analyzer),
            stmt.thread_tag,
            stmt.annotations,
        )
    if isinstance(stmt, SeqStmt):
        return seq([_flatten_leaf(s, analyzer) for s in stmt.stmts])
    return _simplify_stmt(stmt, analyzer)


def _simplify_stmt(stmt: Stmt, analyzer: Analyzer) -> Stmt:
    from ...tir import StmtMutator

    class _Simp(StmtMutator):
        def rewrite(self, expr):
            return analyzer.simplify(expr)

    return _Simp().rewrite_stmt(stmt)


class _ScopeAgnosticMatcher(StructuralMatcher):
    """Structural matcher for intrinsic matching.

    Buffers map regardless of storage scope (the intrinsic's scope
    constraints are validated separately) and regardless of rank: a
    candidate operand may carry extra *leading* dimensions (e.g. a batch
    axis that stays outside the tensorized tile) as long as the
    representative tile indexes them at zero.
    """

    def bind_buffer(self, a, b) -> bool:
        if a in self.buffer_map:
            return self.buffer_map[a] is b
        if b in self.rev_buffer_map:
            return False
        if a.dtype != b.dtype or a.ndim < b.ndim:
            return False
        self.buffer_map[a] = b
        self.rev_buffer_map[b] = a
        return True

    def _match_indices(self, cand_indices, desc_indices) -> bool:
        extra = len(cand_indices) - len(desc_indices)
        if extra < 0:
            return False
        from ...tir import IntImm

        for idx in cand_indices[:extra]:
            if not (isinstance(idx, IntImm) and idx.value == 0):
                return False
        return all(
            self.match_expr(ia, ib)
            for ia, ib in zip(cand_indices[extra:], desc_indices)
        )

    def _snapshot(self):
        return (
            dict(self.var_map),
            dict(self.rev_var_map),
            dict(self.buffer_map),
            dict(self.rev_buffer_map),
        )

    def _restore(self, snap) -> None:
        self.var_map, self.rev_var_map, self.buffer_map, self.rev_buffer_map = (
            dict(snap[0]),
            dict(snap[1]),
            dict(snap[2]),
            dict(snap[3]),
        )

    def match_expr(self, a, b) -> bool:
        from ...tir.expr import Add, BufferLoad, Mul

        if isinstance(a, BufferLoad) and isinstance(b, BufferLoad):
            if a.dtype != b.dtype:
                return False
            if not self.match_buffer_use(a.buffer, b.buffer):
                return False
            return self._match_indices(a.indices, b.indices)
        if type(a) is type(b) and isinstance(a, (Add, Mul)) and a.dtype == b.dtype:
            # Commutative matching: the simplifier canonicalizes operand
            # order by a name-dependent sort, so ``C + a*b`` in a
            # candidate may appear as ``a*b + t0`` while the intrinsic
            # semantics keep the accumulator first.  Try both orders,
            # rolling bindings back between attempts.
            snap = self._snapshot()
            if self.match_expr(a.a, b.a) and self.match_expr(a.b, b.b):
                return True
            self._restore(snap)
            if self.match_expr(a.a, b.b) and self.match_expr(a.b, b.a):
                return True
            self._restore(snap)
            return False
        return super().match_expr(a, b)

    def match_stmt(self, a, b) -> bool:
        from ...tir import BufferStore

        if isinstance(a, BufferStore) and isinstance(b, BufferStore):
            if not self.match_buffer_use(a.buffer, b.buffer):
                return False
            if not self.match_expr(a.value, b.value):
                return False
            return self._match_indices(a.indices, b.indices)
        return super().match_stmt(a, b)


@tagged("TIR441")
def tensorize(sch: Schedule, target, intrin_name: str) -> None:
    """Map a blockized computation onto a tensor intrinsic."""
    from ...intrin import get_intrin

    intrin = get_intrin(intrin_name)
    if isinstance(target, LoopRV):
        target = blockize(sch, target)
    realize = sch._block_realize(target)
    block = realize.block

    analyzer = Analyzer()
    for lp in loops_above(sch.func.body, realize):
        analyzer.bind(lp.loop_var, Range(lp.min, lp.extent))
    for iv in block.iter_vars:
        analyzer.bind(iv.var, iv.dom)

    candidate = _flatten_leaf(_zeroed_body(block, realize, list(block.iter_vars)), _zero_analyzer(block, analyzer))
    desc_body = intrin.desc_computation()

    matcher = _ScopeAgnosticMatcher(map_free_vars=True)
    if not matcher.match_stmt(candidate, desc_body):
        from ...tir.printer import script

        raise ScheduleError(
            f"tensorize: computation does not match intrinsic {intrin_name!r}\n"
            f"--- candidate ---\n{script(candidate)}\n"
            f"--- intrinsic semantics ---\n{script(desc_body)}"
        )
    # Record which candidate buffer plays which intrinsic operand role.
    operand_map = {}
    for cand_buf, desc_buf in matcher.buffer_map.items():
        role = intrin.operand_role(desc_buf)
        if role is not None:
            operand_map[role] = cand_buf.name
    notes = dict(block.annotations)
    notes["tensorize"] = intrin_name
    notes["tensorize_operands"] = operand_map
    new_block = block.replace(annotations=notes)
    sch.replace(realize, realize.replace(block=new_block))


def _zero_analyzer(block: Block, analyzer: Analyzer) -> Analyzer:
    out = analyzer.copy()
    for iv in block.iter_vars:
        out.bind(iv.var, 0)
    return out
