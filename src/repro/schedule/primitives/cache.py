"""Caching primitives: cache_read, cache_write, set_scope.

``cache_read``/``cache_write`` introduce the data-movement sub-blocks of
§3.2 ("caching primitives that introduce sub-blocks to cache input data
into shared memory").  The copy block is created over the full buffer and
is expected to be sunk to the right loop level with ``compute_at`` /
``reverse_compute_at`` — mirroring the AutoCopy flow of §4.3 where data
movement is scheduled separately.
"""

from __future__ import annotations

from typing import Dict, List

from ...diagnostics import tagged
from ...tir import (
    Block,
    BlockRealize,
    Buffer,
    BufferRegion,
    BufferStore,
    For,
    ForKind,
    IterVar,
    Range,
    SeqStmt,
    Stmt,
    StmtMutator,
    Var,
    const,
    seq,
)
from ...tir.expr import BufferLoad
from ..sref import ScheduleError, find_blocks, path_to
from ..state import BlockRV, LoopRV, Schedule
from .compute import _blocks_reading, _blocks_writing

__all__ = ["cache_read", "cache_write", "set_scope"]


class _BufferReplacer(StmtMutator):
    """Replace a buffer in loads/stores/regions (not allocations)."""

    def __init__(self, mapping: Dict[Buffer, Buffer]):
        self._mapping = mapping

    def rewrite_buffer(self, buffer: Buffer) -> Buffer:
        return self._mapping.get(buffer, buffer)


def _make_copy_block(
    sch: Schedule, name: str, src: Buffer, dst: Buffer, annotations=None
) -> Stmt:
    """A block copying ``src`` into ``dst`` element-wise (full extent)."""
    shape = src.shape_ints()
    loop_vars = [sch.fresh_var(f"cp{d}") for d in range(len(shape))]
    iter_vars = [
        IterVar(sch.fresh_var(f"v{lv.name}"), Range(0, extent), IterVar.SPATIAL)
        for lv, extent in zip(loop_vars, shape)
    ]
    ivs = [iv.var for iv in iter_vars]
    body = BufferStore(dst, BufferLoad(src, ivs), ivs)
    block = Block(
        name_hint=name,
        iter_vars=iter_vars,
        reads=(BufferRegion.from_point(src, ivs),),
        writes=(BufferRegion.from_point(dst, ivs),),
        body=body,
        annotations=annotations or {},
    )
    realize: Stmt = BlockRealize(list(loop_vars), const(True), block)
    for lv, extent in zip(reversed(loop_vars), reversed(shape)):
        realize = For(lv, 0, extent, ForKind.SERIAL, realize)
    return realize


def _root_child_containing(sch: Schedule, realize: BlockRealize) -> Stmt:
    """The top-level statement (child of the root block) containing
    ``realize``."""
    root_block = sch.func.body.block
    path = path_to(root_block.body, realize)
    if path is None:
        raise ScheduleError("block is not under the root block")
    return path[0] if not isinstance(root_block.body, SeqStmt) else path[1]


def _insert_at_root(sch: Schedule, anchor: Stmt, new_stmt: Stmt, before: bool) -> None:
    root_realize = sch.func.body
    root_block = root_realize.block
    if isinstance(root_block.body, SeqStmt):
        stmts = list(root_block.body.stmts)
        idx = next(i for i, s in enumerate(stmts) if s is anchor)
        stmts.insert(idx if before else idx + 1, new_stmt)
    else:
        stmts = [new_stmt, root_block.body] if before else [root_block.body, new_stmt]
    new_root = root_block.replace(body=seq(stmts))
    sch.func = sch.func.with_body(BlockRealize((), const(True), new_root))


def _alloc_on_root(sch: Schedule, buffer: Buffer) -> None:
    root_realize = sch.func.body
    root_block = root_realize.block
    new_root = root_block.replace(alloc_buffers=tuple(root_block.alloc_buffers) + (buffer,))
    sch.func = sch.func.with_body(BlockRealize((), const(True), new_root))


@tagged("TIR420")
def cache_read(sch: Schedule, block_rv: BlockRV, read_index: int, scope: str) -> BlockRV:
    """Read ``block``'s ``read_index``-th input through a new buffer in
    ``scope``; returns the copy block."""
    realize = sch._block_realize(block_rv)
    block = realize.block
    if not 0 <= read_index < len(block.reads):
        raise ScheduleError(
            f"cache_read: block {block.name_hint} has {len(block.reads)} reads"
        )
    src = block.reads[read_index].buffer
    # The full-buffer copy is inserted at root just before this block's
    # nest; every producer of the source must already have run by then.
    consumer_anchor = _root_child_containing(sch, realize)
    for producer in _blocks_writing(sch.func.body, src):
        anchor = _root_child_containing(sch, producer)
        if anchor is consumer_anchor:
            raise ScheduleError(
                f"cache_read: producer of {src.name} lives inside the same "
                "nest as the consumer; cache before applying compute_at"
            )
    cache_name = sch.fresh_block_name(f"{src.name}_{scope.replace('.', '_')}")
    cache_buf = Buffer(cache_name, src.shape, src.dtype, scope)
    copy_nest = _make_copy_block(
        sch,
        cache_name,
        src,
        cache_buf,
        annotations={"data_movement": "read", "src_scope": src.scope, "dst_scope": scope},
    )
    # Rewrite only this block to read through the cache.
    replacer = _BufferReplacer({src: cache_buf})
    new_block = replacer.rewrite_stmt(block)
    sch.replace(realize, realize.replace(block=new_block))
    new_realize = sch._block_realize(block_rv)
    anchor = _root_child_containing(sch, new_realize)
    _insert_at_root(sch, anchor, copy_nest, before=True)
    _alloc_on_root(sch, cache_buf)
    return BlockRV(cache_name)


@tagged("TIR421")
def cache_write(sch: Schedule, block_rv: BlockRV, write_index: int, scope: str) -> BlockRV:
    """Make ``block`` write into a new buffer in ``scope``, with a
    copy-back block writing the original buffer; returns the copy block."""
    realize = sch._block_realize(block_rv)
    block = realize.block
    if not 0 <= write_index < len(block.writes):
        raise ScheduleError(
            f"cache_write: block {block.name_hint} has {len(block.writes)} writes"
        )
    dst = block.writes[write_index].buffer
    producer_anchor = _root_child_containing(sch, realize)
    for consumer in _blocks_reading(sch.func.body, dst):
        anchor = _root_child_containing(sch, consumer)
        if anchor is producer_anchor:
            raise ScheduleError(
                f"cache_write: consumer of {dst.name} lives inside the same "
                "nest as the producer; cache before applying compute_at"
            )
    cache_name = sch.fresh_block_name(f"{dst.name}_{scope.replace('.', '_')}")
    cache_buf = Buffer(cache_name, dst.shape, dst.dtype, scope)
    copy_nest = _make_copy_block(
        sch,
        cache_name,
        cache_buf,
        dst,
        annotations={"data_movement": "write", "src_scope": scope, "dst_scope": dst.scope},
    )
    replacer = _BufferReplacer({dst: cache_buf})
    new_block = replacer.rewrite_stmt(block)
    sch.replace(realize, realize.replace(block=new_block))
    new_realize = sch._block_realize(block_rv)
    anchor = _root_child_containing(sch, new_realize)
    _insert_at_root(sch, anchor, copy_nest, before=False)
    _alloc_on_root(sch, cache_buf)
    return BlockRV(cache_name)


@tagged("TIR422")
def set_scope(sch: Schedule, block_rv: BlockRV, write_index: int, scope: str) -> None:
    """Move the storage scope of a block's output buffer."""
    realize = sch._block_realize(block_rv)
    block = realize.block
    if not 0 <= write_index < len(block.writes):
        raise ScheduleError(
            f"set_scope: block {block.name_hint} has {len(block.writes)} writes"
        )
    buffer = block.writes[write_index].buffer
    if buffer in sch.func.buffer_map.values():
        raise ScheduleError("set_scope: cannot change the scope of a function output")
    if buffer.scope == scope:
        return
    new_buf = Buffer(buffer.name, buffer.shape, buffer.dtype, scope)
    # _BufferReplacer rewrites loads, stores, regions and allocation
    # lists in one pass (StmtMutator routes alloc_buffers through
    # rewrite_buffer).
    replacer = _BufferReplacer({buffer: new_buf})
    sch.func = sch.func.with_body(replacer.rewrite_stmt(sch.func.body))
