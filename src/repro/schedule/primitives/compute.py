"""Compute-location primitives: compute_at, reverse_compute_at and the
inline pair.

These mutate *where* a block's instances execute relative to its
producers/consumers, using only block-signature information (read/write
regions) for the required-region computation — the paper's central claim
about transformability through block isolation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ...diagnostics import tagged
from ...arith import Analyzer
from ...tir import (
    Block,
    BlockRealize,
    BufferRegion,
    BufferStore,
    For,
    ForKind,
    IterVar,
    PrimExpr,
    Range,
    SeqStmt,
    Stmt,
    StmtMutator,
    Var,
    collect_vars,
    const_int_value,
    seq,
    substitute,
)
from ...tir.analysis.regions import SymInterval, detect_block_access_regions, eval_sym_interval
from ...tir.expr import BufferLoad
from ..sref import ScheduleError, children_of, find_blocks, loops_above, path_to
from ..state import BlockRV, LoopRV, Schedule

__all__ = [
    "compute_at",
    "reverse_compute_at",
    "compute_inline",
    "reverse_compute_inline",
]


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _single_write_buffer(block: Block):
    if len(block.writes) != 1:
        raise ScheduleError(
            f"block {block.name_hint} writes {len(block.writes)} buffers, expected 1"
        )
    return block.writes[0].buffer


def _blocks_reading(root: Stmt, buffer) -> List[BlockRealize]:
    return [
        r
        for r in find_blocks(root)
        if any(region.buffer is buffer for region in r.block.reads)
    ]


def _blocks_writing(root: Stmt, buffer) -> List[BlockRealize]:
    return [
        r
        for r in find_blocks(root)
        if any(region.buffer is buffer for region in r.block.writes)
    ]


def _is_under(root: Stmt, node: Stmt, ancestor: Stmt) -> bool:
    path = path_to(root, node)
    return path is not None and any(s is ancestor for s in path[:-1])


def _remove_exclusive_nest(sch: Schedule, realize: BlockRealize) -> None:
    """Delete ``realize`` together with enclosing loops that contain
    nothing else."""
    path = path_to(sch.func.body, realize)
    if path is None:
        raise ScheduleError("block is not in the function body")
    # Walk upward while the parent is a For whose entire body funnels to us.
    victim: Stmt = realize
    idx = len(path) - 1
    while idx > 0 and isinstance(path[idx - 1], For):
        idx -= 1
        victim = path[idx]
    sch.replace(victim, None)


def _bound_region_under(
    loop: For,
    accesses: List[Tuple[BlockRealize, BufferRegion]],
    analyzer: Analyzer,
) -> List[Range]:
    """Union of buffer regions accessed by ``accesses`` within one
    iteration of ``loop``, as ranges over the outer/symbolic vars."""
    from ...tir.analysis.regions import _interval_to_range, _union_interval

    result: Optional[List[SymInterval]] = None
    for realize, region in accesses:
        # Bind block iterators to their binding values.
        vmap = {iv.var: val for iv, val in zip(realize.block.iter_vars, realize.iter_values)}
        # Relax loops strictly between `loop` and the realize.
        path = path_to(loop, realize)
        if path is None:
            raise ScheduleError("access is not under the target loop")
        dom: Dict[Var, SymInterval] = {}
        # A bounds-complete analyzer (all inner loops registered) lets the
        # simplifier collapse fused-then-split div/mod compositions back
        # to the underlying affine expression before interval relaxation
        # — otherwise tile footprints look symbolic.
        full = analyzer.copy()
        for node in path[1:]:
            if isinstance(node, For):
                full.bind(node.loop_var, Range(node.min, node.extent))
        for node in path[1:]:
            if isinstance(node, For):
                lo = eval_sym_interval(node.min, dom, full)
                hi = eval_sym_interval(node.min + node.extent - 1, dom, full)
                dom[node.loop_var] = SymInterval(
                    full.simplify(lo.min), full.simplify(hi.max)
                )
        intervals: List[SymInterval] = []
        for rng in region.region:
            lo_e = full.simplify(substitute(rng.min, vmap))
            hi_e = full.simplify(substitute(rng.min + rng.extent - 1, vmap))
            lo = eval_sym_interval(lo_e, dom, full)
            hi = eval_sym_interval(hi_e, dom, full)
            intervals.append(SymInterval(full.simplify(lo.min), full.simplify(hi.max)))
        if result is None:
            result = intervals
        else:
            result = [_union_interval(a, b, analyzer) for a, b in zip(result, intervals)]
    assert result is not None
    return [_interval_to_range(iv, analyzer) for iv in result]


def _identity_write_iters(block: Block, buffer) -> List[IterVar]:
    """The block iterators that index ``buffer``'s write region
    one-to-one (write region must be exactly ``buf[v0, v1, ...]``)."""
    for region in block.writes:
        if region.buffer is buffer:
            iters = []
            for rng in region.region:
                if const_int_value(rng.extent) != 1 or not isinstance(rng.min, Var):
                    raise ScheduleError(
                        f"block {block.name_hint} does not write {buffer.name} "
                        "point-wise at its iterators"
                    )
                iters.append(block.iter_var_of(rng.min))
            return iters
    raise ScheduleError(f"block {block.name_hint} does not write {buffer.name}")


def _analyzer_for(sch: Schedule, anchor: Stmt) -> Analyzer:
    """Analyzer with domains of all loops enclosing ``anchor``."""
    analyzer = Analyzer()
    for lp in loops_above(sch.func.body, anchor):
        analyzer.bind(lp.loop_var, Range(lp.min, lp.extent))
    return analyzer


def _insert_into_loop(sch: Schedule, loop: For, stmt: Stmt, where: str) -> None:
    """Insert ``stmt`` at the front or back of ``loop``'s body."""
    if isinstance(loop.body, SeqStmt):
        stmts = list(loop.body.stmts)
    else:
        stmts = [loop.body]
    if where == "front":
        stmts.insert(0, stmt)
    else:
        stmts.append(stmt)
    new_loop = For(
        loop.loop_var, loop.min, loop.extent, loop.kind, seq(stmts), loop.thread_tag, loop.annotations
    )
    sch.replace(loop, new_loop)


def _insert_into_loop_ordered(
    sch: Schedule, loop: For, nest: Stmt, moved_block: Block, prefer: str
) -> None:
    """Insert ``nest`` into ``loop``'s body after every producer of the
    moved block's inputs and before every consumer of its outputs.

    ``prefer`` chooses within the legal window: ``"late"`` (just before
    the first consumer — compute_at) or ``"early"`` (just after the last
    producer — reverse_compute_at).
    """
    read_bufs = {id(r.buffer) for r in moved_block.reads}
    write_bufs = {id(w.buffer) for w in moved_block.writes}
    if isinstance(loop.body, SeqStmt):
        stmts = list(loop.body.stmts)
    else:
        stmts = [loop.body]
    lo, hi = 0, len(stmts)
    for idx, s in enumerate(stmts):
        for realize in find_blocks(s):
            b = realize.block
            if any(id(w.buffer) in read_bufs for w in b.writes):
                lo = max(lo, idx + 1)
            if any(id(r.buffer) in write_bufs for r in b.reads):
                hi = min(hi, idx)
    if lo > hi:
        raise ScheduleError(
            f"no legal position for block {moved_block.name_hint} inside loop "
            f"{loop.loop_var.name}: its producers come after its consumers"
        )
    stmts.insert(hi if prefer == "late" else lo, nest)
    new_loop = For(
        loop.loop_var, loop.min, loop.extent, loop.kind, seq(stmts), loop.thread_tag, loop.annotations
    )
    sch.replace(loop, new_loop)


def _rebuild_nest_for_block(
    sch: Schedule,
    realize: BlockRealize,
    target_iters: List[IterVar],
    region: List[Range],
    analyzer: Analyzer,
) -> Stmt:
    """Build a fresh loop nest realizing ``realize.block`` over ``region``.

    ``target_iters[d]`` is the block iterator identity-mapped to dim
    ``d``.  Spatial iterators get loops of the region extents with
    bindings ``min_d + ax_d``; remaining (e.g. reduce) iterators get
    full-domain loops.
    """
    block = realize.block
    bindings: Dict[Var, PrimExpr] = {}
    loops: List[Tuple[Var, PrimExpr]] = []
    covered = {id(iv.var) for iv in target_iters}
    for iv, rng in zip(target_iters, region):
        extent = analyzer.simplify(rng.extent)
        if const_int_value(extent) is None:
            raise ScheduleError(
                f"compute_at: required region of {block.name_hint} has a "
                "non-constant extent at this loop (tile the consumer so the "
                "footprint is uniform)"
            )
        ax = sch.fresh_var(f"ax{len(loops)}")
        loops.append((ax, extent))
        bindings[iv.var] = analyzer.simplify(rng.min + ax)
    for iv in block.iter_vars:
        if id(iv.var) not in covered:
            ax = sch.fresh_var(f"ax{len(loops)}")
            loops.append((ax, iv.dom.extent))
            bindings[iv.var] = iv.dom.min + ax
    iter_values = [bindings[iv.var] for iv in block.iter_vars]
    # Keep any predicate, rewritten through the old binding values is not
    # possible in general; require the predicate be trivially true.
    if const_int_value(realize.predicate) != 1:
        raise ScheduleError(
            f"cannot move block {block.name_hint} with a non-trivial predicate"
        )
    body: Stmt = BlockRealize(iter_values, realize.predicate, block)
    for ax, extent in reversed(loops):
        body = For(ax, 0, extent, ForKind.SERIAL, body)
    return body


# ---------------------------------------------------------------------------
# compute_at / reverse_compute_at
# ---------------------------------------------------------------------------


@tagged("TIR410")
def compute_at(sch: Schedule, block_rv: BlockRV, loop_rv: LoopRV) -> None:
    """Move producer ``block`` under ``loop``, computing exactly the
    region its consumers need per loop iteration (Figure 6)."""
    realize = sch._block_realize(block_rv)
    loop = sch._loop(loop_rv)
    block = realize.block
    buffer = _single_write_buffer(block)
    if _is_under(sch.func.body, realize, loop):
        raise ScheduleError("compute_at: block is already under the target loop")
    consumers = _blocks_reading(sch.func.body, buffer)
    if not consumers:
        raise ScheduleError(f"compute_at: {buffer.name} has no consumers")
    for consumer in consumers:
        if not _is_under(sch.func.body, consumer, loop):
            raise ScheduleError(
                f"compute_at: consumer {consumer.block.name_hint} is outside the target loop"
            )
    target_iters = _identity_write_iters(block, buffer)
    analyzer = _analyzer_for(sch, loop)
    analyzer.bind(loop.loop_var, Range(loop.min, loop.extent))
    accesses = []
    for consumer in consumers:
        for region in consumer.block.reads:
            if region.buffer is buffer:
                accesses.append((consumer, region))
    region = _bound_region_under(loop, accesses, analyzer)
    nest = _rebuild_nest_for_block(sch, realize, target_iters, region, analyzer)
    _remove_exclusive_nest(sch, realize)
    # Re-resolve the loop (the tree was rebuilt by the removal).
    loop = sch._loop(loop_rv)
    _insert_into_loop_ordered(sch, loop, nest, realize.block, prefer="late")


@tagged("TIR411")
def reverse_compute_at(sch: Schedule, block_rv: BlockRV, loop_rv: LoopRV) -> None:
    """Move consumer ``block`` under ``loop``, consuming exactly what the
    producers generate per loop iteration."""
    realize = sch._block_realize(block_rv)
    loop = sch._loop(loop_rv)
    block = realize.block
    if _is_under(sch.func.body, realize, loop):
        raise ScheduleError("reverse_compute_at: block is already under the target loop")
    # The consumer must read exactly one buffer that is produced inside
    # the loop; move it to consume that buffer tile-by-tile.
    produced = []
    for region in block.reads:
        writers = _blocks_writing(sch.func.body, region.buffer)
        if writers and all(_is_under(sch.func.body, w, loop) for w in writers):
            produced.append((region.buffer, writers))
    if not produced:
        raise ScheduleError("reverse_compute_at: no producer found under the target loop")
    buffer, writers = produced[0]
    target_iters = _identity_read_iters(block, buffer)
    analyzer = _analyzer_for(sch, loop)
    analyzer.bind(loop.loop_var, Range(loop.min, loop.extent))
    accesses = []
    for writer in writers:
        for region in writer.block.writes:
            if region.buffer is buffer:
                accesses.append((writer, region))
    region = _bound_region_under(loop, accesses, analyzer)
    nest = _rebuild_nest_for_block(sch, realize, target_iters, region, analyzer)
    _remove_exclusive_nest(sch, realize)
    loop = sch._loop(loop_rv)
    _insert_into_loop_ordered(sch, loop, nest, realize.block, prefer="early")


def _identity_read_iters(block: Block, buffer) -> List[IterVar]:
    for region in block.reads:
        if region.buffer is buffer:
            iters = []
            for rng in region.region:
                if const_int_value(rng.extent) != 1 or not isinstance(rng.min, Var):
                    raise ScheduleError(
                        f"block {block.name_hint} does not read {buffer.name} "
                        "point-wise at its iterators"
                    )
                iters.append(block.iter_var_of(rng.min))
            return iters
    raise ScheduleError(f"block {block.name_hint} does not read {buffer.name}")


# ---------------------------------------------------------------------------
# inlining
# ---------------------------------------------------------------------------


class _InlineRewriter(StmtMutator):
    """Replace loads of ``buffer`` with the producer's value expression."""

    def __init__(self, buffer, iter_vars: Sequence[Var], value: PrimExpr):
        self.buffer = buffer
        self.iter_vars = list(iter_vars)
        self.value = value
        self.applied = False

    def rewrite_buffer_load(self, expr: BufferLoad) -> PrimExpr:
        expr = super().rewrite_buffer_load(expr)
        if not isinstance(expr, BufferLoad) or expr.buffer is not self.buffer:
            return expr
        self.applied = True
        vmap = dict(zip(self.iter_vars, expr.indices))
        return substitute(self.value, vmap)


def _refresh_block_regions(sch: Schedule, touched_buffer) -> None:
    """Recompute the signatures of blocks that referenced a buffer."""
    for realize in list(find_blocks(sch.func.body)):
        block = realize.block
        involved = any(r.buffer is touched_buffer for r in block.reads) or any(
            w.buffer is touched_buffer for w in block.writes
        )
        if not involved:
            continue
        reads, writes = detect_block_access_regions(block)
        new_block = block.replace(reads=reads, writes=writes)
        sch.replace(realize, realize.replace(block=new_block))


def _drop_alloc(sch: Schedule, buffer) -> None:
    """Remove ``buffer`` from whichever block allocates it."""
    for realize in find_blocks(sch.func.body) + [sch.func.body]:
        block = realize.block
        if buffer in block.alloc_buffers:
            new_allocs = tuple(b for b in block.alloc_buffers if b is not buffer)
            sch.replace(realize, realize.replace(block=block.replace(alloc_buffers=new_allocs)))
            return


@tagged("TIR412")
def compute_inline(sch: Schedule, block_rv: BlockRV) -> None:
    """Inline a point-wise producer into all of its consumers."""
    realize = sch._block_realize(block_rv)
    block = realize.block
    if block.init is not None or block.is_reduction:
        raise ScheduleError("compute_inline: cannot inline a reduction block")
    if not isinstance(block.body, BufferStore):
        raise ScheduleError("compute_inline: block body must be a single store")
    store = block.body
    buffer = store.buffer
    if buffer in sch.func.buffer_map.values():
        raise ScheduleError("compute_inline: cannot inline a write to a function output")
    index_vars: List[Var] = []
    for idx in store.indices:
        if not isinstance(idx, Var):
            raise ScheduleError("compute_inline: store indices must be iterator variables")
        index_vars.append(idx)
    if len(set(id(v) for v in index_vars)) != len(index_vars):
        raise ScheduleError("compute_inline: store indices must be distinct iterators")
    value_vars = {id(v) for v in collect_vars(store.value) if v.dtype == "int32"}
    iter_ids = {id(iv.var) for iv in block.iter_vars}
    if not value_vars <= iter_ids:
        raise ScheduleError("compute_inline: value uses loop variables outside the block")

    _remove_exclusive_nest(sch, realize)
    rewriter = _InlineRewriter(buffer, index_vars, store.value)
    new_body = rewriter.rewrite_stmt(sch.func.body)
    if _blocks_writing(new_body, buffer):
        raise ScheduleError("compute_inline: buffer has other writers")
    sch.func = sch.func.with_body(new_body)
    _refresh_block_regions(sch, buffer)
    _drop_alloc(sch, buffer)


@tagged("TIR413")
def reverse_compute_inline(sch: Schedule, block_rv: BlockRV) -> None:
    """Inline a point-wise consumer back into its single producer."""
    realize = sch._block_realize(block_rv)
    block = realize.block
    if block.init is not None or block.is_reduction:
        raise ScheduleError("reverse_compute_inline: cannot inline a reduction block")
    if not isinstance(block.body, BufferStore):
        raise ScheduleError("reverse_compute_inline: block body must be a single store")
    store = block.body
    loads = [
        e
        for e in _collect_loads(store.value)
    ]
    input_bufs = {id(l.buffer): l.buffer for l in loads}
    # The consumer may read side operands (bias vectors, residual inputs)
    # alongside the produced tensor, as long as exactly one of its read
    # buffers is actually produced inside the function — that one is the
    # inline target; side-operand loads just get their indices remapped.
    produced_bufs = [
        b for b in input_bufs.values() if _blocks_writing(sch.func.body, b)
    ]
    if len(produced_bufs) != 1:
        raise ScheduleError(
            "reverse_compute_inline: consumer must read exactly one produced buffer"
        )
    buffer = produced_bufs[0]
    if buffer in sch.func.buffer_map.values():
        raise ScheduleError("reverse_compute_inline: producer buffer is a function input")
    for load in loads:
        for idx in load.indices:
            if not isinstance(idx, Var):
                raise ScheduleError(
                    "reverse_compute_inline: loads must be at iterator variables"
                )
    writers = _blocks_writing(sch.func.body, buffer)
    readers = _blocks_reading(sch.func.body, buffer)
    if len(writers) != 1:
        raise ScheduleError("reverse_compute_inline: buffer must have exactly one producer")
    if any(r is not realize for r in readers):
        raise ScheduleError("reverse_compute_inline: buffer has other consumers")
    producer = writers[0]
    target_loads = [l for l in loads if l.buffer is buffer]
    is_identity_copy = store.value is target_loads[0]
    if (producer.block.init is not None or producer.block.is_reduction) and not is_identity_copy:
        # Applying the consumer's function to partial sums would be wrong;
        # a pure relayout (identity value) is the one safe exception.
        raise ScheduleError(
            "reverse_compute_inline: producer is a reduction and the "
            "consumer is not a pure copy; decompose the reduction first"
        )

    _remove_exclusive_nest(sch, realize)
    producer = _blocks_writing(sch.func.body, buffer)[0]
    pblock = producer.block
    load_index_vars = list(target_loads[0].indices)

    def rewrite_store(s: BufferStore) -> Stmt:
        if s.buffer is not buffer:
            return s
        # Map the consumer's iterators onto the producer's store indices;
        # the consumer's store indices (possibly permuted/remapped) become
        # the new indices, and the X load is swapped for the stored value.
        vmap = dict(zip(load_index_vars, s.indices))
        new_indices = [substitute(i, vmap) for i in store.indices]
        new_value = substitute(store.value, vmap)

        # Self-reads of the producer (reduction updates of X) become
        # reads of Y at the remapped indices.
        class _SelfSwap(StmtMutator):
            def rewrite_buffer_load(self, e):
                e = super().rewrite_buffer_load(e)
                if isinstance(e, BufferLoad) and e.buffer is buffer:
                    m = dict(zip(load_index_vars, e.indices))
                    return BufferLoad(store.buffer, [substitute(i, m) for i in store.indices])
                return e

        producer_value = _SelfSwap().rewrite(s.value)

        class _Swap(StmtMutator):
            def rewrite_buffer_load(self, e):
                e = super().rewrite_buffer_load(e)
                if isinstance(e, BufferLoad) and e.buffer is buffer:
                    return producer_value
                return e

        new_value = _Swap().rewrite(new_value)
        return BufferStore(store.buffer, new_value, new_indices)

    class _BodyRewriter(StmtMutator):
        def rewrite_buffer_store(self, s: BufferStore) -> Stmt:
            s = super().rewrite_buffer_store(s)
            return rewrite_store(s)

    new_pbody = _BodyRewriter().rewrite_stmt(pblock.body)
    new_init = (
        _BodyRewriter().rewrite_stmt(pblock.init) if pblock.init is not None else None
    )
    new_block = pblock.replace(body=new_pbody, init=new_init)
    # The producer's iteration space must fit the consumer's output
    # buffer (e.g. a padded producer cannot absorb the valid-region
    # extract: its extra instances would write out of bounds).
    analyzer = Analyzer()
    for iv in new_block.iter_vars:
        analyzer.bind(iv.var, iv.dom)
    _, new_writes = detect_block_access_regions(new_block, analyzer)
    for region in new_writes:
        if region.buffer is not store.buffer:
            continue
        for rng, shape in zip(region.region, region.buffer.shape):
            hi = analyzer.int_set(rng.min + rng.extent - 1)
            limit = const_int_value(shape)
            if limit is not None and hi.max_value is not None and hi.max_value >= limit:
                raise ScheduleError(
                    "reverse_compute_inline: producer instances would write "
                    f"outside {region.buffer.name} (padding mismatch)"
                )
    reads, writes = detect_block_access_regions(new_block)
    new_block = new_block.replace(reads=reads, writes=writes)
    sch.replace(producer, producer.replace(block=new_block))
    _drop_alloc(sch, buffer)


def _collect_loads(expr: PrimExpr) -> List[BufferLoad]:
    from ...tir import post_order_visit

    loads: List[BufferLoad] = []
    post_order_visit(expr, lambda n: loads.append(n) if isinstance(n, BufferLoad) else None)
    return loads
