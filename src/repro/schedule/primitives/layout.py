"""Buffer layout transformation: fusing dimensions.

``fuse_buffer_dims`` rewrites a buffer's layout by fusing groups of
consecutive dimensions into one (row-major within the group):
``A[i, j, k]`` with groups ``[[0, 1], [2]]`` becomes
``A[i * e_j + j, k]``.  This is the layout-rewrite step of §4.2's
tensorization candidate generation — after it, the fused loop variable
indexes the fused buffer dimension directly (``A_t[fuse(n, h, w), ...]``
in the paper's Conv2D example).
"""

from __future__ import annotations

from typing import List, Sequence

from ...diagnostics import tagged
from ...tir import (
    Buffer,
    BufferStore,
    PrimExpr,
    Stmt,
    StmtMutator,
    const_int_value,
)
from ...tir.analysis.regions import detect_block_access_regions
from ...tir.expr import BufferLoad
from ..sref import ScheduleError, find_blocks
from ..state import BlockRV, Schedule

__all__ = ["fuse_buffer_dims", "fuse_block_iters"]


@tagged("TIR461")
def fuse_block_iters(
    sch: Schedule, block_rv: BlockRV, groups: Sequence[Sequence[int]]
) -> List[str]:
    """Reshape the block instance space by fusing iterator groups.

    This is §4.2's "reshape the block instance space" step: each group of
    block iterators (positions into ``block.iter_vars``, same kind,
    currently bound to dedicated perfectly-nested loops) is replaced by a
    single fused iterator; the body is rewritten through digit
    substitution, which collapses the ``fuse(...)``-shaped buffer indices
    produced by :func:`fuse_buffer_dims` into direct accesses.

    Returns the new loop variable names (outer→inner), one per group.
    """
    from ...arith import Analyzer
    from ...tir import BlockRealize, For, ForKind, IterVar, Var
    from ...tir.analysis.regions import detect_block_access_regions
    from ...tir.functor import substitute
    from ..sref import loops_above, path_to

    realize = sch._block_realize(block_rv)
    block = realize.block
    n = len(block.iter_vars)
    flat = [d for g in groups for d in g]
    if sorted(flat) != list(range(n)):
        raise ScheduleError("fuse_block_iters: groups must partition the iterators")
    if const_int_value(realize.predicate) != 1:
        raise ScheduleError("fuse_block_iters: block must not carry a predicate")

    # Bindings must be trivial: each iterator bound to its own loop, and
    # those loops perfectly nested in group order.
    loops = loops_above(sch.func.body, realize)
    loop_by_var = {id(lp.loop_var): lp for lp in loops}
    bound_loops = []
    for binding in realize.iter_values:
        if not isinstance(binding, Var) or id(binding) not in loop_by_var:
            raise ScheduleError("fuse_block_iters: iterators must bind plain loops")
        bound_loops.append(loop_by_var[id(binding)])
    ordered = [bound_loops[d] for g in groups for d in g]
    chain = [lp for lp in loops if lp in ordered]
    if len(set(id(lp) for lp in ordered)) != n:
        raise ScheduleError("fuse_block_iters: iterators share loops")
    # Reorder the loops into group order first if needed.
    if [id(lp) for lp in chain] != [id(lp) for lp in ordered]:
        from .loops import reorder as reorder_prim

        from ..state import LoopRV

        reorder_prim(sch, [LoopRV(lp.loop_var.name) for lp in ordered])
        realize = sch._block_realize(block_rv)
        block = realize.block
        loops = loops_above(sch.func.body, realize)
        loop_by_var = {id(lp.loop_var): lp for lp in loops}
        bound_loops = [loop_by_var[id(b)] for b in realize.iter_values]
        ordered = [bound_loops[d] for g in groups for d in g]
    for outer, inner in zip(ordered, ordered[1:]):
        if outer.body is not inner:
            raise ScheduleError("fuse_block_iters: bound loops are not perfectly nested")

    analyzer = Analyzer()
    new_iter_vars: List[IterVar] = []
    new_loop_vars: List[Var] = []
    vmap = {}
    for g in groups:
        ivs = [block.iter_vars[d] for d in g]
        kind = ivs[0].kind
        if any(iv.kind != kind for iv in ivs):
            raise ScheduleError("fuse_block_iters: mixed iterator kinds in one group")
        extents = []
        for iv in ivs:
            e = const_int_value(iv.dom.extent)
            if e is None:
                raise ScheduleError("fuse_block_iters: symbolic iterator domain")
            extents.append(e)
        total = 1
        for e in extents:
            total *= e
        if len(ivs) == 1:
            fused_name = ivs[0].var.name
        else:
            fused_name = "v" + "_".join(iv.var.name.lstrip("v") for iv in ivs) + "_fused"
        new_var = sch.fresh_var(fused_name)
        from ...tir import Range

        new_iter_vars.append(IterVar(new_var, Range(0, total), kind))
        analyzer.bind(new_var, Range(0, total))
        loop_var = sch.fresh_var(
            "_".join(lp.loop_var.name for lp in (bound_loops[d] for d in g))
            + ("_fused" if len(g) > 1 else "_l")
        )
        new_loop_vars.append(loop_var)
        if len(ivs) == 1:
            vmap[ivs[0].var] = new_var
        else:
            remainder = new_var
            for iv, e in zip(reversed(ivs[1:]), reversed(extents[1:])):
                vmap[iv.var] = remainder % e
                remainder = remainder // e
            vmap[ivs[0].var] = remainder

    from ...tir import StmtMutator

    class _Simp(StmtMutator):
        def rewrite(self, expr):
            return analyzer.simplify(expr)

    new_body = _Simp().rewrite_stmt(substitute(block.body, vmap))
    new_init = (
        _Simp().rewrite_stmt(substitute(block.init, vmap)) if block.init is not None else None
    )
    new_block = block.replace(
        iter_vars=new_iter_vars, body=new_body, init=new_init, reads=(), writes=()
    )
    reads, writes = detect_block_access_regions(new_block)
    from ...tir.analysis.regions import clamp_read_regions

    region_analyzer = Analyzer()
    for iv in new_iter_vars:
        region_analyzer.bind(iv.var, iv.dom)
    reads = clamp_read_regions(reads, region_analyzer)
    new_block = new_block.replace(reads=reads, writes=writes)
    new_realize: object = BlockRealize(list(new_loop_vars), realize.predicate, new_block)
    body = new_realize
    for lv, iv in zip(reversed(new_loop_vars), reversed(new_iter_vars)):
        body = For(lv, 0, iv.dom.extent, ForKind.SERIAL, body)
    sch.replace(ordered[0], body)
    return [lv.name for lv in new_loop_vars]


@tagged("TIR460")
def fuse_buffer_dims(
    sch: Schedule, block_rv: BlockRV, buffer_name: str, dim_groups: Sequence[Sequence[int]]
) -> None:
    """Fuse dimension groups of a buffer accessed by ``block``.

    ``dim_groups`` must partition ``range(buffer.ndim)`` into runs of
    consecutive indices.  Every access to the buffer anywhere in the
    function is rewritten; the buffer must be an intermediate (not a
    function parameter).
    """
    realize = sch._block_realize(block_rv)
    block = realize.block
    buffer = None
    for region in list(block.reads) + list(block.writes):
        if region.buffer.name == buffer_name:
            buffer = region.buffer
            break
    if buffer is None:
        raise ScheduleError(f"fuse_buffer_dims: block does not access {buffer_name!r}")
    if buffer in sch.func.buffer_map.values():
        raise ScheduleError("fuse_buffer_dims: cannot transform a parameter buffer")

    flat = [d for group in dim_groups for d in group]
    if flat != list(range(buffer.ndim)):
        raise ScheduleError(
            f"fuse_buffer_dims: groups {dim_groups} must partition consecutive "
            f"dims 0..{buffer.ndim - 1}"
        )
    extents = []
    for s in buffer.shape:
        e = const_int_value(s)
        if e is None:
            raise ScheduleError("fuse_buffer_dims: symbolic buffer shape")
        extents.append(e)

    new_shape = []
    for group in dim_groups:
        total = 1
        for d in group:
            total *= extents[d]
        new_shape.append(total)
    new_buf = Buffer(buffer.name, new_shape, buffer.dtype, buffer.scope)

    def fuse_indices(indices) -> List[PrimExpr]:
        out = []
        for group in dim_groups:
            expr: PrimExpr = indices[group[0]]
            for d in group[1:]:
                expr = expr * extents[d] + indices[d]
            out.append(expr)
        return out

    class _Rewriter(StmtMutator):
        def rewrite_buffer_load(self, e):
            indices = [self.rewrite(i) for i in e.indices]
            if e.buffer is buffer:
                return BufferLoad(new_buf, fuse_indices(indices))
            if all(n is o for n, o in zip(indices, e.indices)):
                return e
            return BufferLoad(e.buffer, indices)

        def rewrite_buffer_store(self, s):
            value = self.rewrite(s.value)
            indices = [self.rewrite(i) for i in s.indices]
            if s.buffer is buffer:
                return BufferStore(new_buf, value, fuse_indices(indices))
            if value is s.value and all(n is o for n, o in zip(indices, s.indices)):
                return s
            return BufferStore(s.buffer, value, indices)

        def rewrite_block(self, blk):
            out = super().rewrite_block(blk)
            if buffer in out.alloc_buffers:
                out = out.replace(
                    alloc_buffers=tuple(
                        new_buf if b is buffer else b for b in out.alloc_buffers
                    )
                )
            return out

        def rewrite_region(self, region):
            # Regions are left stale here and patched selectively below
            # (a wholesale refresh would lose hand-clipped signatures
            # such as the padding blocks' Select-guarded reads).
            return region

    sch.func = sch.func.with_body(_Rewriter().rewrite_stmt(sch.func.body))
    for r in list(find_blocks(sch.func.body)):
        blk = r.block
        stale_read = any(x.buffer is buffer for x in blk.reads)
        stale_write = any(x.buffer is buffer for x in blk.writes)
        if not (stale_read or stale_write):
            continue
        detected_reads, detected_writes = detect_block_access_regions(blk)

        def patched(old_regions, detected):
            kept = [x for x in old_regions if x.buffer is not buffer]
            kept.extend(x for x in detected if x.buffer is new_buf)
            return kept

        sch.replace(
            r,
            r.replace(
                block=blk.replace(
                    reads=patched(blk.reads, detected_reads),
                    writes=patched(blk.writes, detected_writes),
                )
            ),
        )
