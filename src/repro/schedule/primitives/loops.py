"""Loop transformation primitives: split, fuse, reorder, kind changes.

Each primitive mutates only the loop nest *outside* blocks (Figure 6):
block bodies are untouched; only the binding values in BlockRealize
nodes are rewritten through variable substitution.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ...diagnostics import tagged
from ...tir import (
    BlockRealize,
    For,
    ForKind,
    PrimExpr,
    Stmt,
    StmtMutator,
    Var,
    const_int_value,
    logical_and,
    substitute,
)
from ..sref import ScheduleError, children_of, path_to
from ..state import BlockRV, LoopRV, Schedule

__all__ = ["split", "fuse", "reorder", "set_loop_kind", "bind", "annotate"]

#: Hardware thread axes accepted by bind().
THREAD_TAGS = (
    "blockIdx.x",
    "blockIdx.y",
    "blockIdx.z",
    "threadIdx.x",
    "threadIdx.y",
    "threadIdx.z",
    "vthread",
)


def _require_simple(loop: For, primitive: str) -> int:
    """The constant extent of a serial, zero-based loop (or raise)."""
    if const_int_value(loop.min) != 0:
        raise ScheduleError(f"{primitive}: loop {loop.loop_var.name} must start at 0")
    extent = const_int_value(loop.extent)
    if extent is None:
        raise ScheduleError(f"{primitive}: loop {loop.loop_var.name} has symbolic extent")
    if loop.kind != ForKind.SERIAL:
        raise ScheduleError(
            f"{primitive}: loop {loop.loop_var.name} is {loop.kind}, expected serial"
        )
    return extent


class _PredicateAdder(StmtMutator):
    """AND a predicate onto the outermost block-realizes of a subtree."""

    def __init__(self, predicate: PrimExpr):
        self.predicate = predicate
        self.touched = False

    def rewrite_block_realize(self, stmt: BlockRealize) -> Stmt:
        self.touched = True
        return stmt.replace(predicate=logical_and(stmt.predicate, self.predicate))

    def rewrite_block(self, stmt):  # do not descend into blocks
        return stmt


@tagged("TIR401")
def split(sch: Schedule, loop_rv: LoopRV, factors: Sequence[Optional[int]]) -> List[LoopRV]:
    """Split a loop into ``len(factors)`` nested loops.

    At most one factor may be None (inferred).  When the factors do not
    divide the extent the inferred factor rounds up and a guard predicate
    is added to the enclosed blocks.
    """
    loop = sch._loop(loop_rv)
    extent = _require_simple(loop, "split")
    if len(factors) < 2:
        raise ScheduleError("split needs at least two factors")
    nones = [i for i, f in enumerate(factors) if f is None]
    if len(nones) > 1:
        raise ScheduleError("at most one split factor may be None")
    known = 1
    for f in factors:
        if f is not None:
            if f <= 0:
                raise ScheduleError(f"split factor must be positive, got {f}")
            known *= f
    factors = list(factors)
    if nones:
        factors[nones[0]] = -(-extent // known)  # ceildiv
    product = 1
    for f in factors:
        product *= f
    if product < extent:
        raise ScheduleError(
            f"split factors {factors} cover only {product} of extent {extent}"
        )

    base = loop.loop_var.name
    new_vars = [sch.fresh_var(f"{base}_{i}") for i in range(len(factors))]
    index: PrimExpr = new_vars[0]
    for var, factor in zip(new_vars[1:], factors[1:]):
        index = index * factor + var
    body = substitute(loop.body, {loop.loop_var: index})
    if product != extent:
        adder = _PredicateAdder(index < extent)
        body = adder.rewrite_stmt(body)
        if not adder.touched:
            from ...tir import IfThenElse

            body = IfThenElse(index < extent, body)
    for var, factor in zip(reversed(new_vars), reversed(factors)):
        body = For(var, 0, factor, ForKind.SERIAL, body)
    sch.replace(loop, body)
    return [LoopRV(v.name) for v in new_vars]


@tagged("TIR402")
def fuse(sch: Schedule, loop_rvs: Sequence[LoopRV]) -> LoopRV:
    """Fuse perfectly nested loops into one."""
    if len(loop_rvs) < 2:
        raise ScheduleError("fuse needs at least two loops")
    loops = [sch._loop(rv) for rv in loop_rvs]
    extents = [_require_simple(lp, "fuse") for lp in loops]
    for outer, inner in zip(loops, loops[1:]):
        if outer.body is not inner:
            raise ScheduleError(
                f"fuse: loops {outer.loop_var.name} and {inner.loop_var.name} "
                "are not perfectly nested"
            )
    total = 1
    for e in extents:
        total *= e
    fused = sch.fresh_var("_".join(lp.loop_var.name for lp in loops) + "_fused")
    vmap: Dict[Var, PrimExpr] = {}
    remainder: PrimExpr = fused
    for lp, extent in zip(reversed(loops[1:]), reversed(extents[1:])):
        vmap[lp.loop_var] = remainder % extent
        remainder = remainder // extent
    # The outermost loop takes the plain quotient (no needless modulo).
    vmap[loops[0].loop_var] = remainder
    body = substitute(loops[-1].body, vmap)
    sch.replace(loops[0], For(fused, 0, total, ForKind.SERIAL, body))
    return LoopRV(fused.name)


@tagged("TIR403")
def reorder(sch: Schedule, loop_rvs: Sequence[LoopRV]) -> None:
    """Reorder the given loops into the given order.

    The loops must lie on one path and the segment between the outermost
    and innermost of them must be perfectly nested.
    """
    if len(loop_rvs) < 2:
        raise ScheduleError("reorder needs at least two loops")
    loops = [sch._loop(rv) for rv in loop_rvs]
    seen = set()
    for lp in loops:
        if id(lp) in seen:
            raise ScheduleError("reorder: duplicate loop")
        seen.add(id(lp))
    # Locate the chain containing all loops.
    deepest = None
    deepest_path = None
    for lp in loops:
        path = path_to(sch.func.body, lp)
        if path is None:
            raise ScheduleError("reorder: loop not in function body")
        if deepest_path is None or len(path) > len(deepest_path):
            deepest, deepest_path = lp, path
    chain_fors = [s for s in deepest_path if isinstance(s, For)]
    positions = []
    for lp in loops:
        if lp not in chain_fors:
            raise ScheduleError("reorder: loops are not on a single loop path")
        positions.append(chain_fors.index(lp))
    lo, hi = min(positions), max(positions)
    segment = chain_fors[lo : hi + 1]
    for outer, inner in zip(segment, segment[1:]):
        if outer.body is not inner:
            raise ScheduleError("reorder: segment between loops is not perfectly nested")
    # New header order for the segment.
    order_iter = iter(loops)
    new_headers: List[For] = []
    target_ids = {id(lp) for lp in loops}
    for lp in segment:
        if id(lp) in target_ids:
            new_headers.append(next(order_iter))
        else:
            new_headers.append(lp)
    body = segment[-1].body
    for header in reversed(new_headers):
        body = For(
            header.loop_var,
            header.min,
            header.extent,
            header.kind,
            body,
            header.thread_tag,
            header.annotations,
        )
    sch.replace(segment[0], body)


@tagged("TIR404")
def set_loop_kind(sch: Schedule, loop_rv: LoopRV, kind: str) -> None:
    """Mark a loop parallel / vectorized / unrolled."""
    loop = sch._loop(loop_rv)
    if kind not in (ForKind.PARALLEL, ForKind.VECTORIZED, ForKind.UNROLLED):
        raise ScheduleError(f"unsupported loop kind {kind!r}")
    if kind in (ForKind.VECTORIZED, ForKind.UNROLLED) and const_int_value(loop.extent) is None:
        raise ScheduleError(f"{kind} requires a constant extent")
    if kind == ForKind.PARALLEL and _binds_reduce_iter(loop):
        raise ScheduleError("cannot parallelize a loop bound to a reduction iterator")
    sch.replace(
        loop,
        For(loop.loop_var, loop.min, loop.extent, kind, loop.body, None, loop.annotations),
    )


@tagged("TIR405")
def bind(sch: Schedule, loop_rv: LoopRV, thread: str) -> None:
    """Bind a loop to a hardware thread axis (GPU-style)."""
    if thread not in THREAD_TAGS:
        raise ScheduleError(f"unknown thread tag {thread!r}")
    loop = sch._loop(loop_rv)
    if const_int_value(loop.extent) is None:
        raise ScheduleError("thread binding requires a constant extent")
    if thread != "vthread" and _binds_reduce_iter(loop):
        raise ScheduleError(
            f"cannot bind loop {loop.loop_var.name} to {thread}: it drives a "
            "reduction iterator (non-atomic cross-thread reduction)"
        )
    sch.replace(
        loop,
        For(
            loop.loop_var,
            loop.min,
            loop.extent,
            ForKind.THREAD_BINDING,
            loop.body,
            thread,
            loop.annotations,
        ),
    )


def _binds_reduce_iter(loop: For) -> bool:
    """True if the loop var feeds any reduction iterator binding below."""
    from ...tir import collect_vars
    from ..sref import find_blocks

    for realize in find_blocks(loop):
        for iv, value in zip(realize.block.iter_vars, realize.iter_values):
            if iv.is_reduce and any(v is loop.loop_var for v in collect_vars(value)):
                return True
    return False


@tagged("TIR406")
def annotate(sch: Schedule, target, key: str, value: object) -> None:
    """Attach an annotation to a loop or block."""
    if isinstance(target, LoopRV):
        loop = sch._loop(target)
        notes = dict(loop.annotations)
        notes[key] = value
        sch.replace(
            loop,
            For(loop.loop_var, loop.min, loop.extent, loop.kind, loop.body, loop.thread_tag, notes),
        )
    elif isinstance(target, BlockRV):
        realize = sch._block_realize(target)
        notes = dict(realize.block.annotations)
        notes[key] = value
        sch.replace(realize, realize.replace(block=realize.block.replace(annotations=notes)))
    else:
        raise ScheduleError("annotate target must be a loop or block")
