"""Padding for tensorization (§4.2: "we do necessary padding on the
computation block and input/output operands to the closest divisible
shape").

``pad_einsum`` operates on a block in canonical einsum form (after
ReIndex: every operand access indexes buffers directly with block
iterators).  Each block iterator domain is padded up to the requested
extent; inputs gain zero-padding producer blocks (zero is the additive
identity, so padded positions contribute nothing to the reduction) and
the output gains an extraction block for the valid region.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ...diagnostics import tagged
from ...tir import (
    Block,
    BlockRealize,
    Buffer,
    BufferStore,
    For,
    ForKind,
    IterVar,
    Range,
    Select,
    Stmt,
    StmtMutator,
    Var,
    all_of,
    const,
    const_int_value,
    substitute,
)
from ...tir.analysis.regions import detect_block_access_regions
from ...tir.expr import BufferLoad
from ..sref import ScheduleError, loops_above, path_to
from ..state import BlockRV, Schedule
from .cache import _alloc_on_root, _insert_at_root, _root_child_containing

__all__ = ["pad_einsum"]


@tagged("TIR470")
def pad_einsum(sch: Schedule, block_rv: BlockRV, paddings: Sequence[int]) -> None:
    """Pad each block iterator domain up to ``paddings[d]``."""
    realize = sch._block_realize(block_rv)
    block = realize.block
    if len(paddings) != len(block.iter_vars):
        raise ScheduleError(
            f"pad_einsum: got {len(paddings)} paddings for "
            f"{len(block.iter_vars)} iterators"
        )
    old_extents = []
    for iv, padded in zip(block.iter_vars, paddings):
        extent = const_int_value(iv.dom.extent)
        if extent is None:
            raise ScheduleError("pad_einsum: symbolic iterator domain")
        if padded < extent:
            raise ScheduleError(
                f"pad_einsum: padding {padded} below extent {extent} of {iv.var.name}"
            )
        old_extents.append(extent)
    if all(p == e for p, e in zip(paddings, old_extents)):
        return  # nothing to do

    # Bindings must be trivial (iterator == dedicated loop var) so the
    # loops can simply be resized.
    loops = loops_above(sch.func.body, realize)
    loop_by_var: Dict[int, For] = {id(lp.loop_var): lp for lp in loops}
    bound_loops: List[For] = []
    for binding in realize.iter_values:
        if not isinstance(binding, Var) or id(binding) not in loop_by_var:
            raise ScheduleError("pad_einsum: block iterators must bind plain loop variables")
        bound_loops.append(loop_by_var[id(binding)])

    if not isinstance(block.body, BufferStore):
        raise ScheduleError("pad_einsum: block body must be a single store (einsum form)")

    # Collect operands: every access must index a buffer directly with
    # distinct block iterators.
    iter_of: Dict[int, IterVar] = {id(iv.var): iv for iv in block.iter_vars}
    pad_of: Dict[int, int] = {
        id(iv.var): padded for iv, padded in zip(block.iter_vars, paddings)
    }

    def check_indices(indices) -> List[IterVar]:
        iters = []
        for idx in indices:
            if not isinstance(idx, Var) or id(idx) not in iter_of:
                raise ScheduleError(
                    "pad_einsum: operand accesses must index buffers directly "
                    "with block iterators (run reindex first)"
                )
            iters.append(iter_of[id(idx)])
        return iters

    store = block.body
    out_iters = check_indices(store.indices)
    input_accesses: Dict[int, List] = {}

    from ...tir import post_order_visit

    loads: List[BufferLoad] = []
    post_order_visit(store.value, lambda n: loads.append(n) if isinstance(n, BufferLoad) else None)
    if block.init is not None:
        post_order_visit(
            block.init, lambda n: loads.append(n) if isinstance(n, BufferLoad) else None
        )

    buffer_map: Dict[Buffer, Buffer] = {}

    def padded_buffer(buffer: Buffer, iters: List[IterVar]) -> Buffer:
        if buffer in buffer_map:
            return buffer_map[buffer]
        shape = [pad_of[id(iv.var)] for iv in iters]
        new_buf = Buffer(
            sch.fresh_block_name(f"{buffer.name}_pad"), shape, buffer.dtype, buffer.scope
        )
        buffer_map[buffer] = new_buf
        return new_buf

    operand_iters: Dict[Buffer, List[IterVar]] = {}
    for load in loads:
        if load.buffer is store.buffer:
            continue  # reduction self-read follows the output operand
        iters = check_indices(load.indices)
        if load.buffer in operand_iters:
            continue
        operand_iters[load.buffer] = iters
    out_buffer = store.buffer
    operand_out = padded_buffer(out_buffer, out_iters)
    for buffer, iters in operand_iters.items():
        padded_buffer(buffer, iters)

    # --- producer pad blocks for each input -------------------------------
    nests_before: List[Stmt] = []
    for buffer, iters in operand_iters.items():
        new_buf = buffer_map[buffer]
        loop_vars = [sch.fresh_var(f"p{d}") for d in range(len(iters))]
        iter_vars = [
            IterVar(sch.fresh_var(f"v{iv.var.name}_p"), Range(0, pad_of[id(iv.var)]), IterVar.SPATIAL)
            for iv in iters
        ]
        ivs = [iv.var for iv in iter_vars]
        in_bounds = all_of(
            [v < e for v, e in zip(ivs, [const_int_value(iv.dom.extent) for iv in iters])]
        )
        value = Select(in_bounds, BufferLoad(buffer, ivs), const(0, buffer.dtype))
        body = BufferStore(new_buf, value, ivs)
        pad_block = Block(
            name_hint=new_buf.name,
            iter_vars=iter_vars,
            reads=(),
            writes=(),
            body=body,
            annotations={"padding": "input"},
        )
        reads, writes = detect_block_access_regions(pad_block)
        # The Select guard clips the actual read to the original extents;
        # region detection cannot see through it, so state it explicitly.
        from ...tir import BufferRegion

        clipped = BufferRegion(
            buffer, [Range(0, iv.dom.extent) for iv in iters]
        )
        pad_block = pad_block.replace(reads=(clipped,), writes=writes)
        nest: Stmt = BlockRealize(list(loop_vars), const(True), pad_block)
        for lv, iv in zip(reversed(loop_vars), reversed(iter_vars)):
            nest = For(lv, 0, iv.dom.extent, ForKind.SERIAL, nest)
        nests_before.append(nest)
        _alloc_on_root(sch, new_buf)

    # --- extraction block for the output ---------------------------------
    loop_vars = [sch.fresh_var(f"e{d}") for d in range(len(out_iters))]
    iter_vars = [
        IterVar(sch.fresh_var(f"v{iv.var.name}_e"), iv.dom, IterVar.SPATIAL)
        for iv in out_iters
    ]
    ivs = [iv.var for iv in iter_vars]
    extract_body = BufferStore(out_buffer, BufferLoad(operand_out, ivs), ivs)
    extract_block = Block(
        name_hint=operand_out.name + "_extract",
        iter_vars=iter_vars,
        reads=(),
        writes=(),
        body=extract_body,
        annotations={"padding": "output"},
    )
    reads, writes = detect_block_access_regions(extract_block)
    extract_block = extract_block.replace(reads=reads, writes=writes)
    extract_nest: Stmt = BlockRealize(list(loop_vars), const(True), extract_block)
    for lv, iv in zip(reversed(loop_vars), reversed(iter_vars)):
        extract_nest = For(lv, 0, iv.dom.extent, ForKind.SERIAL, extract_nest)
    _alloc_on_root(sch, operand_out)

    # --- rewrite the computation block ------------------------------------
    class _Swap(StmtMutator):
        def rewrite_buffer(self, b):
            return buffer_map.get(b, b)

    new_iter_vars = [
        IterVar(iv.var, Range(0, padded), iv.kind)
        for iv, padded in zip(block.iter_vars, paddings)
    ]
    new_block = _Swap().rewrite_stmt(block)
    new_block = new_block.replace(iter_vars=new_iter_vars)
    reads, writes = detect_block_access_regions(new_block)
    new_block = new_block.replace(reads=reads, writes=writes)
    sch.replace(realize, realize.replace(block=new_block))

    # --- resize the binding loops -----------------------------------------
    for iv, padded, loop in zip(block.iter_vars, paddings, bound_loops):
        extent = const_int_value(loop.extent)
        if extent == padded:
            continue
        current = sch._loop(loop.loop_var.name)
        sch.replace(
            current,
            For(
                current.loop_var,
                current.min,
                padded,
                current.kind,
                current.body,
                current.thread_tag,
                current.annotations,
            ),
        )

    # --- insert the pad/extract nests at root ------------------------------
    new_realize = sch._block_realize(block_rv)
    anchor = _root_child_containing(sch, new_realize)
    for nest in nests_before:
        _insert_at_root(sch, anchor, nest, before=True)
        new_realize = sch._block_realize(block_rv)
        anchor = _root_child_containing(sch, new_realize)
    _insert_at_root(sch, anchor, extract_nest, before=False)
