"""Reduction primitives: decompose_reduction.

The paper (§3.1) represents reductions either as one block with an init
statement or as separate init- and update-blocks, with transformations
between the two forms.  ``decompose_reduction`` goes from the init-block
form to the two-block form, hoisting initialisation above a chosen loop
so the update block can be blockized/tensorized independently.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ...diagnostics import tagged
from ...tir import (
    Block,
    BlockRealize,
    For,
    ForKind,
    IterVar,
    Range,
    Var,
    collect_vars,
    const,
    substitute,
)
from ...tir.analysis.regions import detect_block_access_regions
from ..sref import ScheduleError, path_to
from ..state import BlockRV, LoopRV, Schedule
from .compute import _insert_into_loop

__all__ = ["decompose_reduction", "merge_reduction"]


@tagged("TIR431")
def merge_reduction(sch: Schedule, init_rv: BlockRV, update_rv: BlockRV) -> None:
    """The inverse of :func:`decompose_reduction`: fold a standalone init
    block back into the update block as its ``init`` statement (the
    paper's "back and forth transformations ... so we can pick the best
    representation").

    The init block must write exactly the update block's output buffer,
    point-wise at spatial iterators, and nothing may read the buffer
    between the two blocks.
    """
    init_realize = sch._block_realize(init_rv)
    update_realize = sch._block_realize(update_rv)
    init_block = init_realize.block
    update_block = update_realize.block
    if update_block.init is not None:
        raise ScheduleError("merge_reduction: update block already has an init")
    if not update_block.is_reduction:
        raise ScheduleError("merge_reduction: target block is not a reduction")
    if init_block.is_reduction:
        raise ScheduleError("merge_reduction: init block must be spatial")
    if len(init_block.writes) != 1 or len(update_block.writes) != 1:
        raise ScheduleError("merge_reduction: blocks must each write one buffer")
    buffer = update_block.writes[0].buffer
    if init_block.writes[0].buffer is not buffer:
        raise ScheduleError("merge_reduction: blocks write different buffers")

    # Map the init block's iterators onto the update block's spatial
    # iterators via the store indices (both must be point-wise).
    from ...tir import BufferStore

    if not isinstance(init_block.body, BufferStore):
        raise ScheduleError("merge_reduction: init body must be a single store")
    if not isinstance(update_block.body, BufferStore):
        raise ScheduleError("merge_reduction: update body must be a single store")
    init_idx = init_block.body.indices
    update_idx = update_block.body.indices
    if len(init_idx) != len(update_idx):
        raise ScheduleError("merge_reduction: store rank mismatch")
    vmap: Dict[Var, Var] = {}
    for a, b in zip(init_idx, update_idx):
        if not isinstance(a, Var) or not isinstance(b, Var):
            raise ScheduleError("merge_reduction: stores must index plain iterators")
        vmap[a] = b
    init_stmt = substitute(init_block.body, vmap)

    # Remove the init nest, then attach the init statement.
    from .compute import _remove_exclusive_nest

    _remove_exclusive_nest(sch, init_realize)
    update_realize = sch._block_realize(update_rv)
    sch.replace(
        update_realize,
        update_realize.replace(block=update_realize.block.replace(init=init_stmt)),
    )


@tagged("TIR430")
def decompose_reduction(sch: Schedule, block_rv: BlockRV, loop_rv: LoopRV) -> BlockRV:
    """Split ``block``'s init statement into a standalone init block
    placed just above ``loop``.  Returns the init block."""
    realize = sch._block_realize(block_rv)
    block = realize.block
    loop = sch._loop(loop_rv)
    if block.init is None:
        raise ScheduleError(f"block {block.name_hint} has no init statement")
    path = path_to(sch.func.body, realize)
    if path is None or loop not in path:
        raise ScheduleError("decompose_reduction: loop must enclose the block")
    loop_pos = next(i for i, s in enumerate(path) if s is loop)
    inner_loops: List[For] = [s for s in path[loop_pos:] if isinstance(s, For)]
    outer_loops: List[For] = [s for s in path[:loop_pos] if isinstance(s, For)]
    inner_vars = {id(lp.loop_var) for lp in inner_loops}

    # Reduce-iter bindings must depend only on loops at/inside `loop`:
    # otherwise the init would need to re-run across an outer reduce loop.
    spatial_dep_vars: Set[int] = set()
    for iv, binding in zip(block.iter_vars, realize.iter_values):
        vars_used = {id(v) for v in collect_vars(binding)}
        if iv.is_reduce:
            if vars_used & {id(lp.loop_var) for lp in outer_loops}:
                raise ScheduleError(
                    "decompose_reduction: a reduction iterator is bound "
                    "above the target loop"
                )
        else:
            spatial_dep_vars |= vars_used & inner_vars

    # Clone the inner loops that drive spatial iterators.
    keep = [lp for lp in inner_loops if id(lp.loop_var) in spatial_dep_vars]
    lmap: Dict[Var, Var] = {
        lp.loop_var: sch.fresh_var(f"{lp.loop_var.name}_init") for lp in keep
    }

    # New init block: fresh spatial iterators mirroring the block's.
    imap: Dict[Var, Var] = {}
    init_iter_vars: List[IterVar] = []
    init_values = []
    init_used = {id(v) for v in collect_vars(block.init)}
    for iv, binding in zip(block.iter_vars, realize.iter_values):
        if iv.is_reduce:
            continue
        if id(iv.var) not in init_used:
            continue
        new_var = sch.fresh_var(f"{iv.var.name}_i")
        imap[iv.var] = new_var
        init_iter_vars.append(IterVar(new_var, iv.dom, IterVar.SPATIAL))
        init_values.append(substitute(binding, lmap))
    init_body = substitute(block.init, imap)
    init_block = Block(
        name_hint=sch.fresh_block_name(f"{block.name_hint}_init"),
        iter_vars=init_iter_vars,
        reads=(),
        writes=(),
        body=init_body,
    )
    reads, writes = detect_block_access_regions(init_block)
    init_block = init_block.replace(reads=reads, writes=writes)
    init_nest = BlockRealize(init_values, const(True), init_block)
    for lp in reversed(keep):
        init_nest = For(lmap[lp.loop_var], lp.min, lp.extent, ForKind.SERIAL, init_nest)

    # Strip the init from the update block.
    update = block.replace(init=None)
    sch.replace(realize, realize.replace(block=update))

    # Insert the init nest just before `loop` within its parent.
    loop = sch._loop(loop_rv.name if hasattr(loop_rv, "name") else loop_rv)
    parent_path = path_to(sch.func.body, loop)
    parent = parent_path[-2]
    from ...tir import SeqStmt, seq

    if isinstance(parent, SeqStmt):
        stmts = list(parent.stmts)
        idx = next(i for i, s in enumerate(stmts) if s is loop)
        stmts.insert(idx, init_nest)
        sch.replace(parent, seq(stmts))
    elif isinstance(parent, For):
        _insert_before_in_for(sch, parent, loop, init_nest)
    else:
        sch.replace(loop, seq([init_nest, loop]))
    return BlockRV(init_block.name_hint)


def _insert_before_in_for(sch: Schedule, parent: For, anchor, stmt) -> None:
    from ...tir import seq

    new_body = seq([stmt, parent.body])
    sch.replace(
        parent,
        For(
            parent.loop_var,
            parent.min,
            parent.extent,
            parent.kind,
            new_body,
            parent.thread_tag,
            parent.annotations,
        ),
    )
