"""The ReIndex primitive (§4.2).

``reindex(block, role, index)`` creates an intermediate cache buffer for
one operand whose layout is indexed *directly by the block iterators*
that appear in the operand's access expression — rewriting e.g. the
Conv2D input access ``A[n, h*s+rh, w*s+rw, rc]`` into
``A_reindex[n, h, w, rh, rw, rc]`` with a separate rewrite block
``A_reindex[...] = A[n, h*s+rh, w*s+rw, rc]``.  After ReIndexing all
operands, buffer access indices correspond one-to-one to iterators
(equation (3) of the paper), enabling the characteristic-vector mapping.
"""

from __future__ import annotations

from typing import List, Optional

from ...diagnostics import tagged
from ...tir import (
    Block,
    BlockRealize,
    Buffer,
    BufferRegion,
    BufferStore,
    For,
    ForKind,
    IterVar,
    PrimExpr,
    Range,
    Stmt,
    StmtMutator,
    Var,
    collect_vars,
    const,
    post_order_visit,
    substitute,
)
from ...tir.analysis.regions import detect_block_access_regions
from ...tir.expr import BufferLoad
from ..sref import ScheduleError
from ..state import BlockRV, Schedule
from .cache import _alloc_on_root, _insert_at_root, _root_child_containing

__all__ = ["reindex"]


def _distinct_accesses(block: Block, buffer: Buffer, want_store: bool) -> List:
    """All accesses of ``buffer`` in the block body, deduplicated by
    structural key of the index tuple."""
    from ...arith.simplify import structural_key

    found = {}

    def visit(node):
        if not want_store and isinstance(node, BufferLoad) and node.buffer is buffer:
            key = tuple(structural_key(i) for i in node.indices)
            found[key] = node
        if want_store and isinstance(node, BufferStore) and node.buffer is buffer:
            key = tuple(structural_key(i) for i in node.indices)
            found[key] = node

    post_order_visit(block.body, visit)
    if block.init is not None:
        post_order_visit(block.init, visit)
    return list(found.values())


@tagged("TIR450")
def reindex(
    sch: Schedule,
    block_rv: BlockRV,
    buffer_role: str,
    buffer_index: int,
    iter_order=None,
) -> BlockRV:
    """Create a ReIndex stage for one operand of ``block``.

    ``buffer_role`` is ``"read"`` or ``"write"``; ``buffer_index`` selects
    among the block's read/write regions.  ``iter_order`` optionally
    permutes the reindexed buffer's dimensions (a permutation of the
    operand's iterator list) — the tensorization candidate generator uses
    it to lay operands out in the order the target intrinsic expects
    (§4.2's layout-rewrite step).  Returns the rewrite block.
    """
    realize = sch._block_realize(block_rv)
    block = realize.block
    if buffer_role not in ("read", "write"):
        raise ScheduleError(f"reindex: role must be 'read' or 'write', got {buffer_role!r}")
    regions = block.reads if buffer_role == "read" else block.writes
    if not 0 <= buffer_index < len(regions):
        raise ScheduleError(f"reindex: block has {len(regions)} {buffer_role} regions")
    buffer = regions[buffer_index].buffer

    accesses = _distinct_accesses(block, buffer, want_store=(buffer_role == "write"))
    if len(accesses) != 1:
        raise ScheduleError(
            f"reindex: {buffer.name} is accessed with {len(accesses)} distinct "
            "index patterns; expected exactly one"
        )
    access = accesses[0]
    indices: List[PrimExpr] = list(access.indices)

    # The iterators that parameterise this operand, in block-iter order.
    used_ids = {id(v) for idx in indices for v in collect_vars(idx)}
    iter_ids = {id(iv.var) for iv in block.iter_vars}
    if not used_ids <= iter_ids:
        raise ScheduleError("reindex: access indices use non-iterator variables")
    used_iters: List[IterVar] = [iv for iv in block.iter_vars if id(iv.var) in used_ids]
    if iter_order is not None:
        if sorted(iter_order) != list(range(len(used_iters))):
            raise ScheduleError(
                f"reindex: iter_order must be a permutation of 0..{len(used_iters) - 1}"
            )
        used_iters = [used_iters[i] for i in iter_order]
    if buffer_role == "write" and any(iv.is_reduce for iv in used_iters):
        raise ScheduleError("reindex: write access must not involve reduction iterators")

    from ...tir import const_int_value

    shape = []
    for iv in used_iters:
        extent = const_int_value(iv.dom.extent)
        if extent is None:
            raise ScheduleError("reindex: symbolic iterator domain")
        shape.append(extent)

    new_name = sch.fresh_block_name(f"{buffer.name}_reindex")
    new_buf = Buffer(new_name, shape, buffer.dtype, buffer.scope)

    # Rewrite block: dedicated spatial iterators mirroring used_iters.
    rw_loop_vars = [sch.fresh_var(f"r{d}") for d in range(len(used_iters))]
    rw_iter_vars = [
        IterVar(sch.fresh_var(f"v{iv.var.name}_r"), iv.dom, IterVar.SPATIAL)
        for iv in used_iters
    ]
    vmap = {iv.var: riv.var for iv, riv in zip(used_iters, rw_iter_vars)}
    remapped_indices = [substitute(i, vmap) for i in indices]
    rw_vars = [riv.var for riv in rw_iter_vars]
    if buffer_role == "read":
        rw_body: Stmt = BufferStore(new_buf, BufferLoad(buffer, remapped_indices), rw_vars)
    else:
        rw_body = BufferStore(buffer, BufferLoad(new_buf, rw_vars), remapped_indices)
    rw_block = Block(
        name_hint=new_name,
        iter_vars=rw_iter_vars,
        reads=(),
        writes=(),
        body=rw_body,
        annotations={"reindex": buffer_role},
    )
    reads, writes = detect_block_access_regions(rw_block)
    rw_block = rw_block.replace(reads=reads, writes=writes)
    nest: Stmt = BlockRealize(list(rw_loop_vars), const(True), rw_block)
    for lv, extent in zip(reversed(rw_loop_vars), reversed(shape)):
        nest = For(lv, 0, extent, ForKind.SERIAL, nest)

    # Rewrite the computation block to access the reindexed buffer.
    iter_list = [iv.var for iv in used_iters]

    class _Rewriter(StmtMutator):
        def rewrite_buffer_load(self, e):
            e = super().rewrite_buffer_load(e)
            if (
                buffer_role == "read"
                and isinstance(e, BufferLoad)
                and e.buffer is buffer
            ):
                return BufferLoad(new_buf, iter_list)
            return e

        def rewrite_buffer_store(self, s):
            s = super().rewrite_buffer_store(s)
            if buffer_role == "write" and s.buffer is buffer:
                return BufferStore(new_buf, s.value, iter_list)
            return s

    new_body = _Rewriter().rewrite_stmt(block.body)
    new_init = _Rewriter().rewrite_stmt(block.init) if block.init is not None else None
    # Reduction self-reads of the write buffer must follow the store.
    if buffer_role == "write":

        class _SelfRead(StmtMutator):
            def rewrite_buffer_load(self, e):
                e = super().rewrite_buffer_load(e)
                if isinstance(e, BufferLoad) and e.buffer is buffer:
                    return BufferLoad(new_buf, iter_list)
                return e

        new_body = _SelfRead().rewrite_stmt(new_body)
        if new_init is not None:
            new_init = _SelfRead().rewrite_stmt(new_init)
    new_block = block.replace(body=new_body, init=new_init)
    reads, writes = detect_block_access_regions(new_block)
    new_block = new_block.replace(reads=reads, writes=writes)
    sch.replace(realize, realize.replace(block=new_block))

    new_realize = sch._block_realize(block_rv)
    anchor = _root_child_containing(sch, new_realize)
    _insert_at_root(sch, anchor, nest, before=(buffer_role == "read"))
    _alloc_on_root(sch, new_buf)
    return BlockRV(new_name)
