"""Random sampling helpers for schedule decisions.

These are the decision points recorded in the trace; the evolutionary
search (§4.4) mutates their recorded decisions and replays.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..tir import PrimExpr, const_int_value
from .sref import ScheduleError

__all__ = [
    "sample_perfect_tile",
    "sample_categorical",
    "all_factorizations",
    "divisors_of",
    "coerce_perfect_tile",
    "coerce_categorical",
]


def divisors_of(n: int) -> List[int]:
    """Sorted positive divisors of ``n``."""
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]


def all_factorizations(n: int, parts: int, max_innermost: int = 0) -> List[List[int]]:
    """All ordered factorizations of ``n`` into ``parts`` factors."""
    if parts == 1:
        if max_innermost and n > max_innermost:
            return []
        return [[n]]
    out: List[List[int]] = []
    for d in divisors_of(n):
        for rest in all_factorizations(n // d, parts - 1, max_innermost):
            out.append([d] + rest)
    return out


def sample_perfect_tile(
    rng: random.Random,
    extent: PrimExpr,
    n: int,
    max_innermost_factor: int = 64,
    decision: Optional[Sequence[int]] = None,
) -> List[int]:
    """Factor a loop extent into ``n`` tile sizes (product == extent).

    Sampling is uniform over divisor choices digit-by-digit from the
    innermost factor up, with the innermost capped by
    ``max_innermost_factor``.
    """
    ext = const_int_value(extent)
    if ext is None:
        raise ScheduleError("sample_perfect_tile requires a constant loop extent")
    if decision is not None:
        decision = list(decision)
        if len(decision) != n:
            raise ScheduleError(f"decision has {len(decision)} factors, expected {n}")
        prod = 1
        for f in decision:
            prod *= f
        if prod != ext:
            raise ScheduleError(f"decision product {prod} != extent {ext}")
        return decision
    remaining = ext
    factors = [1] * n
    for pos in range(n - 1, 0, -1):
        choices = divisors_of(remaining)
        if pos == n - 1 and max_innermost_factor:
            choices = [c for c in choices if c <= max_innermost_factor] or [1]
        pick = rng.choice(choices)
        factors[pos] = pick
        remaining //= pick
    factors[0] = remaining
    return factors


def coerce_perfect_tile(
    decision: object, extent: Optional[int], n: int, max_innermost_factor: int = 64
) -> Optional[List[int]]:
    """The feasible tile vector nearest to ``decision`` for ``extent``.

    Used by adaptive cross-shape replay (``Schedule.decision_mode ==
    "adapt"``): a decision recorded at a bucket representative's extent
    may not divide the concrete extent.  Greedily, innermost factor
    first, each stored factor is replaced by the largest divisor of the
    remaining extent that does not exceed it — when the stored vector is
    already feasible this reproduces it exactly (every factor divides
    the product), so strict replays are unaffected.  Returns ``None``
    when the decision cannot be interpreted as a tile vector at all
    (the caller then samples afresh).
    """
    if extent is None or not isinstance(decision, (list, tuple)) or len(decision) != n:
        return None
    if any(not isinstance(f, int) or isinstance(f, bool) for f in decision):
        return None
    remaining = int(extent)
    factors = [1] * n
    for pos in range(n - 1, 0, -1):
        choices = divisors_of(remaining)
        if pos == n - 1 and max_innermost_factor:
            choices = [c for c in choices if c <= max_innermost_factor] or [1]
        want = int(decision[pos])
        pick = max((c for c in choices if c <= want), default=choices[0])
        factors[pos] = pick
        remaining //= pick
    factors[0] = remaining
    return factors


def coerce_categorical(decision: object, n_candidates: int) -> Optional[int]:
    """Clamp a stored categorical index into ``[0, n_candidates)`` —
    candidate lists (e.g. divisors of an extent) shrink and grow with
    the shape, so an index recorded at the bucket representative is
    mapped to the nearest valid choice.  Identity for in-range indices,
    so strict replays are unaffected."""
    if n_candidates <= 0 or not isinstance(decision, int) or isinstance(decision, bool):
        return None
    return min(max(decision, 0), n_candidates - 1)


def sample_categorical(
    rng: random.Random,
    n_candidates: int,
    probs: Optional[Sequence[float]] = None,
    decision: Optional[int] = None,
) -> int:
    """Pick an index in ``[0, n_candidates)``; returns the index."""
    if n_candidates <= 0:
        raise ScheduleError("sample_categorical with no candidates")
    if decision is not None:
        if not 0 <= decision < n_candidates:
            raise ScheduleError(f"decision {decision} out of range [0, {n_candidates})")
        return decision
    if probs is None:
        return rng.randrange(n_candidates)
    if len(probs) != n_candidates:
        raise ScheduleError("probs length mismatch")
    return rng.choices(range(n_candidates), weights=list(probs), k=1)[0]
