"""Tree navigation for scheduling.

Schedules reference IR nodes by *identity* within the current function
body.  Because transforms rebuild (never mutate) trees, these helpers
recompute structure on demand: parents, enclosing loops, child blocks,
and identity-based subtree replacement.

Every statement object appears at most once in a function body (the
builder and all primitives construct fresh nodes), so identity lookup is
unambiguous.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..diagnostics import DiagnosticError
from ..tir import (
    Block,
    BlockRealize,
    For,
    IfThenElse,
    LetStmt,
    PrimFunc,
    SeqStmt,
    Stmt,
)
from ..tir.stmt import AllocateConst

__all__ = [
    "children_of",
    "with_children",
    "find_blocks",
    "find_loops",
    "path_to",
    "replace_stmt",
    "loops_above",
    "child_block_realizes",
    "ScheduleError",
]


class ScheduleError(DiagnosticError):
    """A schedule primitive was applied illegally.

    Carries ``.diagnostics`` (one :class:`~repro.diagnostics.Diagnostic`
    per problem); primitives raise it with a plain message and their
    ``@tagged("TIR4xx")`` decorator assigns the stable precondition
    code, so search/telemetry can count rejections per code.
    """

    default_code = "TIR400"


def children_of(stmt: Stmt) -> List[Stmt]:
    """Direct child statements of ``stmt``."""
    if isinstance(stmt, For):
        return [stmt.body]
    if isinstance(stmt, SeqStmt):
        return list(stmt.stmts)
    if isinstance(stmt, BlockRealize):
        return [stmt.block]
    if isinstance(stmt, Block):
        out = [stmt.body]
        if stmt.init is not None:
            out.append(stmt.init)
        return out
    if isinstance(stmt, IfThenElse):
        out = [stmt.then_case]
        if stmt.else_case is not None:
            out.append(stmt.else_case)
        return out
    if isinstance(stmt, LetStmt):
        return [stmt.body]
    if isinstance(stmt, AllocateConst):
        return [stmt.body]
    return []


def with_children(stmt: Stmt, children: Sequence[Stmt]) -> Stmt:
    """Rebuild ``stmt`` with new children (same shape as children_of)."""
    if isinstance(stmt, For):
        (body,) = children
        return For(
            stmt.loop_var, stmt.min, stmt.extent, stmt.kind, body, stmt.thread_tag, stmt.annotations
        )
    if isinstance(stmt, SeqStmt):
        from ..tir import seq

        return seq(list(children))
    if isinstance(stmt, BlockRealize):
        (block,) = children
        return BlockRealize(stmt.iter_values, stmt.predicate, block)
    if isinstance(stmt, Block):
        body = children[0]
        init = children[1] if len(children) > 1 else None
        return stmt.replace(body=body, init=init)
    if isinstance(stmt, IfThenElse):
        then_case = children[0]
        else_case = children[1] if len(children) > 1 else None
        return IfThenElse(stmt.condition, then_case, else_case)
    if isinstance(stmt, LetStmt):
        (body,) = children
        return LetStmt(stmt.var, stmt.value, body)
    if isinstance(stmt, AllocateConst):
        (body,) = children
        return AllocateConst(stmt.buffer, stmt.data, body)
    raise TypeError(f"{type(stmt).__name__} has no children to rebuild")


def _walk(stmt: Stmt, fvisit: Callable[[Stmt], None]) -> None:
    fvisit(stmt)
    for child in children_of(stmt):
        _walk(child, fvisit)


def find_blocks(root: Stmt, name: Optional[str] = None) -> List[BlockRealize]:
    """All BlockRealize nodes (optionally filtered by block name), preorder."""
    found: List[BlockRealize] = []

    def visit(stmt: Stmt) -> None:
        if isinstance(stmt, BlockRealize):
            if name is None or stmt.block.name_hint == name:
                found.append(stmt)

    _walk(root, visit)
    return found


def find_loops(root: Stmt, var_name: Optional[str] = None) -> List[For]:
    """All For nodes (optionally filtered by loop var name), preorder."""
    found: List[For] = []

    def visit(stmt: Stmt) -> None:
        if isinstance(stmt, For):
            if var_name is None or stmt.loop_var.name == var_name:
                found.append(stmt)

    _walk(root, visit)
    return found


def path_to(root: Stmt, target: Stmt) -> Optional[List[Stmt]]:
    """The chain of statements from ``root`` down to ``target`` inclusive,
    located by identity.  None if ``target`` is not in the tree."""
    if root is target:
        return [root]
    for child in children_of(root):
        sub = path_to(child, target)
        if sub is not None:
            return [root] + sub
    return None


def replace_stmt(root: Stmt, target: Stmt, replacement: Optional[Stmt]) -> Stmt:
    """Return a new tree with ``target`` (found by identity) replaced.

    ``replacement=None`` deletes the statement; deletion is only legal
    inside a SeqStmt (or the deleted node's parent collapses otherwise).
    """
    path = path_to(root, target)
    if path is None:
        raise ScheduleError("statement to replace is not part of the function body")
    return _rebuild_along(path, replacement)


def _rebuild_along(path: List[Stmt], replacement: Optional[Stmt]) -> Stmt:
    if len(path) == 1:
        if replacement is None:
            raise ScheduleError("cannot delete the root statement")
        return replacement
    parent = path[0]
    child = path[1]
    if isinstance(parent, SeqStmt):
        new_stmts: List[Stmt] = []
        for s in parent.stmts:
            if s is child:
                if len(path) == 2:
                    rebuilt = replacement  # direct child: may be a deletion
                else:
                    rebuilt = _rebuild_along(path[1:], replacement)
                if rebuilt is not None:
                    new_stmts.append(rebuilt)
            else:
                new_stmts.append(s)
        from ..tir import seq

        if not new_stmts:
            raise ScheduleError("deletion would empty a statement sequence")
        return seq(new_stmts)
    rebuilt = _rebuild_along(path[1:], replacement)
    if rebuilt is None:
        raise ScheduleError(
            f"cannot delete the only child of {type(parent).__name__}"
        )
    children = children_of(parent)
    new_children = [rebuilt if c is child else c for c in children]
    return with_children(parent, new_children)


def loops_above(root: Stmt, target: Stmt) -> List[For]:
    """The For loops on the path from ``root`` to ``target`` (outer→inner)."""
    path = path_to(root, target)
    if path is None:
        raise ScheduleError("target not found in tree")
    return [s for s in path[:-1] if isinstance(s, For)]


def child_block_realizes(block: Block) -> List[BlockRealize]:
    """The block realizes directly inside ``block`` (not nested in
    sub-blocks)."""
    found: List[BlockRealize] = []

    def visit(stmt: Stmt) -> None:
        if isinstance(stmt, BlockRealize):
            found.append(stmt)
            return
        for child in children_of(stmt):
            visit(child)

    for child in children_of(block):
        visit(child)
    return found
