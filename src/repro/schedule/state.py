"""Schedule state: the user-facing :class:`Schedule` object.

A Schedule wraps one PrimFunc and exposes the paper's transformation
primitives (§3.2) as methods.  Each primitive is implemented as a
standalone TensorIR→TensorIR transformation in
:mod:`repro.schedule.primitives`; the Schedule resolves *random
variables* (:class:`BlockRV`, :class:`LoopRV`) to nodes of the current
body, applies the transform, and records the call in a replayable
:class:`~repro.schedule.trace.Trace`.

Blocks are referenced by their (unique) ``name_hint`` and loops by their
(unique) loop-variable name, so references stay valid across the
tree-rebuilding transforms.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import cache as _cache
from ..diagnostics import DiagnosticContext
from ..tir import (
    Block,
    BlockRealize,
    For,
    PrimFunc,
    Stmt,
    StmtMutator,
    Var,
)
from .sref import (
    ScheduleError,
    find_blocks,
    find_loops,
    loops_above,
    path_to,
    replace_stmt,
)

__all__ = ["BlockRV", "LoopRV", "Schedule", "ScheduleError"]


class BlockRV:
    """A reference to a block, stable across transformations."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover
        return f"BlockRV({self.name})"


class LoopRV:
    """A reference to a loop, stable across transformations."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover
        return f"LoopRV({self.name})"


class _Uniquifier(StmtMutator):
    """Rename duplicate block names and loop variables on entry."""

    def __init__(self):
        self.block_names: Dict[str, int] = {}
        self.var_names: Dict[str, int] = {}
        self._vmap: Dict[Var, Var] = {}

    def _fresh(self, table: Dict[str, int], name: str) -> str:
        count = table.get(name, 0)
        table[name] = count + 1
        return name if count == 0 else f"{name}_{count}"

    def rewrite_var(self, var: Var):
        return self._vmap.get(var, var)

    def rewrite_for(self, stmt: For) -> Stmt:
        new_name = self._fresh(self.var_names, stmt.loop_var.name)
        if new_name != stmt.loop_var.name:
            new_var = Var(new_name, stmt.loop_var.dtype)
            self._vmap[stmt.loop_var] = new_var
            rebuilt = super().rewrite_for(stmt)
            del self._vmap[stmt.loop_var]
            return For(
                new_var,
                rebuilt.min,
                rebuilt.extent,
                rebuilt.kind,
                rebuilt.body,
                rebuilt.thread_tag,
                rebuilt.annotations,
            )
        return super().rewrite_for(stmt)

    def rewrite_block(self, stmt: Block) -> Stmt:
        rebuilt = super().rewrite_block(stmt)
        new_name = self._fresh(self.block_names, stmt.name_hint)
        if new_name != stmt.name_hint:
            rebuilt = rebuilt.replace(name_hint=new_name) if isinstance(rebuilt, Block) else rebuilt
        return rebuilt


#: memoized uniquifier output per base function: evolutionary search
#: builds a Schedule of the *same* base func for every candidate, and
#: the rename pass is a full-tree rewrite.  Keyed on identity; the entry
#: pins the func (and its rewritten form), so a recycled id can never
#: alias a different function.  Mutators are functional, so sharing one
#: rewritten tree across schedules is safe — every primitive builds new
#: nodes — and the shared subtrees make the structural-hash node memo,
#: feature, verify and estimate caches hit across candidates.
_UNIQUIFY_CACHE = _cache.MemoCache("schedule.uniquify", maxsize=512)


class Schedule:
    """A schedulable view over one PrimFunc."""

    def __init__(self, func: PrimFunc, seed: Optional[int] = None, record_trace: bool = True):
        cached = (
            _UNIQUIFY_CACHE.lookup(id(func)) if _cache.caches_enabled() else _cache.MISS
        )
        if cached is not _cache.MISS and cached[0] is func:
            _, self.func, block_names, var_names = cached
        else:
            uniq = _Uniquifier()
            self.func = func.with_body(uniq.rewrite_stmt(func.body))
            block_names, var_names = uniq.block_names, uniq.var_names
            _UNIQUIFY_CACHE.put(id(func), (func, self.func, block_names, var_names))
        self.rng = random.Random(seed)
        from .trace import Trace

        self.trace: Optional[Trace] = Trace() if record_trace else None
        self._name_counts: Dict[str, int] = dict(block_names)
        self._var_counts: Dict[str, int] = dict(var_names)
        #: Decisions taken at sampling instructions, in order.  The
        #: evolutionary search re-runs a sketch generator with
        #: ``forced_decisions`` set to a mutated copy of this vector.
        self.decisions: List[object] = []
        self.forced_decisions: Optional[List[object]] = None
        self._forced_idx = 0
        #: how forced decisions are validated: ``"strict"`` (the search
        #: and same-shape replay contract — an infeasible decision
        #: raises) or ``"adapt"`` (cross-shape bucket replay — each
        #: forced decision is coerced to the nearest feasible choice at
        #: the current extents before it is applied).  Adapted replays
        #: record the *coerced* vector in ``decisions``.
        self.decision_mode: str = "strict"
        #: forced decisions that had to be coerced under ``"adapt"``.
        self.adapted_decisions: int = 0
        #: Every primitive-precondition failure observed on this
        #: schedule, as typed diagnostics (shared sink for tooling).
        self.diagnostics = DiagnosticContext()

    # ------------------------------------------------------------------
    # naming / resolution
    # ------------------------------------------------------------------
    def fresh_block_name(self, hint: str) -> str:
        while True:
            count = self._name_counts.get(hint, 0)
            self._name_counts[hint] = count + 1
            name = hint if count == 0 else f"{hint}_{count}"
            # Different hints can collide on the suffixed form; the name
            # itself is registered so the next request skips it.
            if self._name_counts.get(name, 0) == 0 or name == hint:
                self._name_counts[name] = max(1, self._name_counts.get(name, 0))
                return name

    def fresh_var(self, hint: str) -> Var:
        while True:
            count = self._var_counts.get(hint, 0)
            self._var_counts[hint] = count + 1
            name = hint if count == 0 else f"{hint}_{count}"
            if self._var_counts.get(name, 0) == 0 or name == hint:
                self._var_counts[name] = max(1, self._var_counts.get(name, 0))
                return Var(name, "int32")

    def _block_realize(self, rv: Union[BlockRV, str]) -> BlockRealize:
        name = rv.name if isinstance(rv, BlockRV) else rv
        realizes = find_blocks(self.func.body, name)
        if not realizes:
            raise ScheduleError(f"no block named {name!r}")
        if len(realizes) > 1:
            raise ScheduleError(f"block name {name!r} is ambiguous")
        return realizes[0]

    def _loop(self, rv: Union[LoopRV, str]) -> For:
        name = rv.name if isinstance(rv, LoopRV) else rv
        loops = find_loops(self.func.body, name)
        if not loops:
            raise ScheduleError(f"no loop over a variable named {name!r}")
        if len(loops) > 1:
            raise ScheduleError(f"loop variable name {name!r} is ambiguous")
        return loops[0]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get_block(self, name: str) -> BlockRV:
        """Look up a block by name (raises if absent/ambiguous)."""
        self._block_realize(name)
        return BlockRV(name)

    def get_blocks(self) -> List[BlockRV]:
        """All non-root blocks in preorder."""
        return [
            BlockRV(r.block.name_hint)
            for r in find_blocks(self.func.body)
            if r is not self.func.body
        ]

    def get_loops(self, block: BlockRV) -> List[LoopRV]:
        """Loops enclosing ``block``, outermost first."""
        realize = self._block_realize(block)
        return [LoopRV(lp.loop_var.name) for lp in loops_above(self.func.body, realize)]

    def get_child_blocks(self, block: BlockRV) -> List[BlockRV]:
        from .sref import child_block_realizes

        realize = self._block_realize(block)
        return [BlockRV(r.block.name_hint) for r in child_block_realizes(realize.block)]

    def block_of(self, rv: BlockRV) -> Block:
        """The current Block node behind ``rv`` (read-only inspection)."""
        return self._block_realize(rv).block

    def loop_of(self, rv: LoopRV) -> For:
        """The current For node behind ``rv`` (read-only inspection)."""
        return self._loop(rv)

    # ------------------------------------------------------------------
    # state update
    # ------------------------------------------------------------------
    def replace(self, target: Stmt, replacement: Optional[Stmt]) -> None:
        """Replace ``target`` (by identity) in the function body."""
        new_body = replace_stmt(self.func.body, target, replacement)
        self.func = self.func.with_body(new_body)

    def _record(self, inst: str, inputs: Sequence[object], attrs=None, outputs=(), decision=None):
        if self.trace is not None:
            from .trace import Instruction

            self.trace.append(
                Instruction(inst, list(inputs), dict(attrs or {}), list(outputs), decision)
            )

    # ------------------------------------------------------------------
    # schedule primitives (implemented in repro.schedule.primitives.*)
    # ------------------------------------------------------------------
    def _atomic_call(self, fn, *args, **kwargs):
        """Apply a primitive transactionally: on failure the schedule
        state is rolled back so a raising primitive leaves no trace.
        Precondition failures are recorded into ``self.diagnostics``
        (with the pre-failure function attached for span rendering)
        before propagating."""
        saved = self.func
        try:
            return fn(self, *args, **kwargs)
        except ScheduleError as err:
            self.func = saved
            for diag in err.diagnostics:
                if diag.func is None:
                    diag.func = saved
            self.diagnostics.extend(err.diagnostics)
            raise
        except Exception:
            self.func = saved
            raise

    def split(self, loop: LoopRV, factors: Sequence[Optional[int]]) -> List[LoopRV]:
        from .primitives.loops import split

        out = self._atomic_call(split, loop, factors)
        self._record("split", [loop], {"factors": list(factors)}, out)
        return out

    def fuse(self, *loops: LoopRV) -> LoopRV:
        from .primitives.loops import fuse

        out = self._atomic_call(fuse, list(loops))
        self._record("fuse", list(loops), {}, [out])
        return out

    def reorder(self, *loops: LoopRV) -> None:
        from .primitives.loops import reorder

        self._atomic_call(reorder, list(loops))
        self._record("reorder", list(loops))

    def parallel(self, loop: LoopRV) -> None:
        from .primitives.loops import set_loop_kind

        self._atomic_call(set_loop_kind, loop, "parallel")
        self._record("parallel", [loop])

    def vectorize(self, loop: LoopRV) -> None:
        from .primitives.loops import set_loop_kind

        self._atomic_call(set_loop_kind, loop, "vectorized")
        self._record("vectorize", [loop])

    def unroll(self, loop: LoopRV) -> None:
        from .primitives.loops import set_loop_kind

        self._atomic_call(set_loop_kind, loop, "unrolled")
        self._record("unroll", [loop])

    def bind(self, loop: LoopRV, thread: str) -> None:
        from .primitives.loops import bind

        self._atomic_call(bind, loop, thread)
        self._record("bind", [loop], {"thread": thread})

    def annotate(self, target: Union[LoopRV, BlockRV], key: str, value: object) -> None:
        from .primitives.loops import annotate

        self._atomic_call(annotate, target, key, value)
        self._record("annotate", [target], {"key": key, "value": value})

    def compute_at(self, block: BlockRV, loop: LoopRV) -> None:
        from .primitives.compute import compute_at

        self._atomic_call(compute_at, block, loop)
        self._record("compute_at", [block, loop])

    def reverse_compute_at(self, block: BlockRV, loop: LoopRV) -> None:
        from .primitives.compute import reverse_compute_at

        self._atomic_call(reverse_compute_at, block, loop)
        self._record("reverse_compute_at", [block, loop])

    def compute_inline(self, block: BlockRV) -> None:
        from .primitives.compute import compute_inline

        self._atomic_call(compute_inline, block)
        self._record("compute_inline", [block])

    def reverse_compute_inline(self, block: BlockRV) -> None:
        from .primitives.compute import reverse_compute_inline

        self._atomic_call(reverse_compute_inline, block)
        self._record("reverse_compute_inline", [block])

    def cache_read(self, block: BlockRV, read_index: int, scope: str) -> BlockRV:
        from .primitives.cache import cache_read

        out = self._atomic_call(cache_read, block, read_index, scope)
        self._record("cache_read", [block], {"read_index": read_index, "scope": scope}, [out])
        return out

    def cache_write(self, block: BlockRV, write_index: int, scope: str) -> BlockRV:
        from .primitives.cache import cache_write

        out = self._atomic_call(cache_write, block, write_index, scope)
        self._record("cache_write", [block], {"write_index": write_index, "scope": scope}, [out])
        return out

    def decompose_reduction(self, block: BlockRV, loop: LoopRV) -> BlockRV:
        from .primitives.reduction import decompose_reduction

        out = self._atomic_call(decompose_reduction, block, loop)
        self._record("decompose_reduction", [block, loop], {}, [out])
        return out

    def merge_reduction(self, init_block: BlockRV, update_block: BlockRV) -> None:
        from .primitives.reduction import merge_reduction

        self._atomic_call(merge_reduction, init_block, update_block)
        self._record("merge_reduction", [init_block, update_block])

    def blockize(self, loop: LoopRV) -> BlockRV:
        from .primitives.blockize import blockize

        out = self._atomic_call(blockize, loop)
        self._record("blockize", [loop], {}, [out])
        return out

    def tensorize(self, target: Union[LoopRV, BlockRV], intrin: str) -> None:
        from .primitives.blockize import tensorize

        self._atomic_call(tensorize, target, intrin)
        self._record("tensorize", [target], {"intrin": intrin})

    def reindex(
        self, block: BlockRV, buffer_role: str, buffer_index: int, iter_order=None
    ) -> BlockRV:
        from .primitives.reindex import reindex

        out = self._atomic_call(reindex, block, buffer_role, buffer_index, iter_order)
        self._record(
            "reindex",
            [block],
            {
                "buffer_role": buffer_role,
                "buffer_index": buffer_index,
                "iter_order": list(iter_order) if iter_order is not None else None,
            },
            [out],
        )
        return out

    def fuse_buffer_dims(
        self, block: BlockRV, buffer_name: str, dim_groups: Sequence[Sequence[int]]
    ) -> None:
        from .primitives.layout import fuse_buffer_dims

        self._atomic_call(fuse_buffer_dims, block, buffer_name, dim_groups)
        self._record(
            "fuse_buffer_dims",
            [block],
            {"buffer_name": buffer_name, "dim_groups": [list(g) for g in dim_groups]},
        )

    def fuse_block_iters(
        self, block: BlockRV, groups: Sequence[Sequence[int]]
    ) -> List[LoopRV]:
        from .primitives.layout import fuse_block_iters

        names = self._atomic_call(fuse_block_iters, block, groups)
        self._record(
            "fuse_block_iters",
            [block],
            {"groups": [list(g) for g in groups]},
            [LoopRV(n) for n in names],
        )
        return [LoopRV(n) for n in names]

    def pad_einsum(self, block: BlockRV, paddings: Sequence[int]) -> None:
        from .primitives.padding import pad_einsum

        self._atomic_call(pad_einsum, block, paddings)
        self._record("pad_einsum", [block], {"paddings": list(paddings)})

    def set_scope(self, block: BlockRV, write_index: int, scope: str) -> None:
        from .primitives.cache import set_scope

        self._atomic_call(set_scope, block, write_index, scope)
        self._record("set_scope", [block], {"write_index": write_index, "scope": scope})

    # ------------------------------------------------------------------
    # sampling (recorded decisions, mutable by the evolutionary search)
    # ------------------------------------------------------------------
    def sample_perfect_tile(
        self,
        loop: LoopRV,
        n: int,
        max_innermost_factor: int = 64,
        decision: Optional[List[int]] = None,
    ) -> List[int]:
        """Sample ``n`` factors whose product equals the loop extent."""
        from .sampling import coerce_perfect_tile, sample_perfect_tile

        extent = self._loop(loop).extent
        if decision is None:
            decision = self._next_forced_decision()
            if decision is not None and self.decision_mode == "adapt":
                from ..tir import const_int_value

                coerced = coerce_perfect_tile(
                    decision, const_int_value(extent), n, max_innermost_factor
                )
                if coerced != (list(decision) if isinstance(decision, (list, tuple)) else decision):
                    self.adapted_decisions += 1
                decision = coerced
        factors = sample_perfect_tile(self.rng, extent, n, max_innermost_factor, decision)
        self.decisions.append(list(factors))
        self._record(
            "sample_perfect_tile",
            [loop],
            {"n": n, "max_innermost_factor": max_innermost_factor},
            [],
            decision=list(factors),
        )
        return factors

    def sample_categorical(
        self,
        candidates: Sequence[object],
        probs: Optional[Sequence[float]] = None,
        decision: Optional[int] = None,
    ) -> object:
        """Sample one of ``candidates`` (recorded as an index decision)."""
        from .sampling import coerce_categorical, sample_categorical

        if decision is None:
            decision = self._next_forced_decision()
            if decision is not None and self.decision_mode == "adapt":
                coerced = coerce_categorical(decision, len(candidates))
                if coerced != decision:
                    self.adapted_decisions += 1
                decision = coerced
        index = sample_categorical(self.rng, len(candidates), probs, decision)
        self.decisions.append(index)
        self._record(
            "sample_categorical",
            [],
            {"candidates": list(candidates), "probs": list(probs) if probs else None},
            [],
            decision=index,
        )
        return candidates[index]

    def _next_forced_decision(self) -> Optional[object]:
        if self.forced_decisions is None or self._forced_idx >= len(self.forced_decisions):
            return None
        value = self.forced_decisions[self._forced_idx]
        self._forced_idx += 1
        return value

    # ------------------------------------------------------------------
    def copy(self, seed: Optional[int] = None) -> "Schedule":
        """An independent schedule positioned at the same program.

        Determinism contract: with ``seed=None`` the clone's seed is one
        integer drawn from the parent's RNG stream — so clone streams
        are a reproducible function of the parent seed, successive
        copies get distinct well-defined seeds, and the parent's stream
        advances by exactly one draw.  Passing ``seed`` pins the clone's
        stream without consuming parent entropy.
        """
        if seed is None:
            seed = self.rng.randrange(1 << 30)
        clone = Schedule(self.func, seed=seed)
        if self.trace is not None:
            clone.trace = self.trace.copy()
        return clone

    def show(self) -> str:
        """Script of the current program (paper: print at any stage)."""
        return self.func.script()
