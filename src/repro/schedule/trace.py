"""Replayable schedule traces.

A :class:`Trace` records every primitive applied to a schedule together
with the random decisions taken at sampling instructions.  Traces can be
replayed onto a fresh schedule of the same workload, and their decisions
can be overridden — the mechanism behind the evolutionary search's
mutation step (§4.4).

Traces round-trip through JSON (:meth:`Trace.to_json` /
:meth:`Trace.from_json`): block/loop random variables are tagged
(``{"$block": name}`` / ``{"$loop": name}``) so a deserialized trace
resolves against a fresh schedule of the same workload — the foundation
of the flight recorder's per-trial provenance (``repro.obs``), where a
recorded best program is re-derived by replaying its stored trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .sref import ScheduleError

__all__ = ["Instruction", "Trace"]


def _pack(value):
    """Schedule-trace value → JSON-ready value (RVs become tagged dicts)."""
    from .state import BlockRV, LoopRV

    if isinstance(value, BlockRV):
        return {"$block": value.name}
    if isinstance(value, LoopRV):
        return {"$loop": value.name}
    if isinstance(value, (list, tuple)):
        return [_pack(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _pack(v) for k, v in value.items()}
    return value


def _unpack(value):
    """Inverse of :func:`_pack` (tuples come back as lists, which every
    primitive accepts — they take ``Sequence``s)."""
    from .state import BlockRV, LoopRV

    if isinstance(value, dict):
        if set(value) == {"$block"}:
            return BlockRV(value["$block"])
        if set(value) == {"$loop"}:
            return LoopRV(value["$loop"])
        return {k: _unpack(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_unpack(v) for v in value]
    return value


class Instruction:
    """One recorded primitive application."""

    __slots__ = ("name", "inputs", "attrs", "outputs", "decision")

    def __init__(
        self,
        name: str,
        inputs: Sequence[object],
        attrs: Optional[Dict[str, object]] = None,
        outputs: Sequence[object] = (),
        decision: Optional[object] = None,
    ):
        self.name = name
        self.inputs = list(inputs)
        self.attrs = dict(attrs or {})
        self.outputs = list(outputs)
        self.decision = decision

    @property
    def is_sampling(self) -> bool:
        return self.name.startswith("sample_")

    def to_json(self) -> dict:
        """JSON-ready form; see :meth:`Trace.to_json`."""
        return {
            "name": self.name,
            "inputs": _pack(self.inputs),
            "attrs": _pack(self.attrs),
            "outputs": _pack(self.outputs),
            "decision": _pack(self.decision),
        }

    @classmethod
    def from_json(cls, data: dict) -> "Instruction":
        return cls(
            data["name"],
            _unpack(data.get("inputs", [])),
            _unpack(data.get("attrs", {})),
            _unpack(data.get("outputs", [])),
            _unpack(data.get("decision")),
        )

    def __repr__(self) -> str:  # pragma: no cover
        parts = [repr(i) for i in self.inputs]
        parts += [f"{k}={v!r}" for k, v in self.attrs.items()]
        text = f"{self.name}({', '.join(parts)})"
        if self.decision is not None:
            text += f"  # decision: {self.decision!r}"
        return text


class Trace:
    """An ordered list of instructions with their sampling decisions."""

    def __init__(self, instructions: Optional[Sequence[Instruction]] = None):
        self.instructions: List[Instruction] = list(instructions or [])

    def append(self, inst: Instruction) -> None:
        self.instructions.append(inst)

    def copy(self) -> "Trace":
        return Trace(
            Instruction(i.name, i.inputs, i.attrs, i.outputs, i.decision)
            for i in self.instructions
        )

    @property
    def sampling_indices(self) -> List[int]:
        return [idx for idx, inst in enumerate(self.instructions) if inst.is_sampling]

    def to_json(self) -> dict:
        """Serialize so that ``Trace.from_json(t.to_json())`` replays to a
        structurally identical program (asserted in
        ``tests/obs/test_trace_roundtrip.py`` for every default sketch)."""
        return {"insts": [inst.to_json() for inst in self.instructions]}

    @classmethod
    def from_json(cls, data: dict) -> "Trace":
        return cls(Instruction.from_json(d) for d in data.get("insts", []))

    def with_decision(self, index: int, decision: object) -> "Trace":
        """A copy with the decision of instruction ``index`` replaced."""
        out = self.copy()
        inst = out.instructions[index]
        if not inst.is_sampling:
            raise ScheduleError(f"instruction {index} ({inst.name}) has no decision")
        inst.decision = decision
        return out

    def apply_to(self, sch) -> None:
        """Replay this trace onto ``sch`` (a fresh Schedule of the same
        workload).  Output naming is deterministic, so the recorded RV
        names resolve identically."""
        from .state import BlockRV, LoopRV

        recording = sch.trace
        sch.trace = None  # avoid double-recording during replay
        try:
            for inst in self.instructions:
                args = list(inst.inputs)
                if inst.name == "split":
                    sch.split(args[0], inst.attrs["factors"])
                elif inst.name == "fuse":
                    sch.fuse(*args)
                elif inst.name == "reorder":
                    sch.reorder(*args)
                elif inst.name in ("parallel", "vectorize", "unroll"):
                    getattr(sch, inst.name)(args[0])
                elif inst.name == "bind":
                    sch.bind(args[0], inst.attrs["thread"])
                elif inst.name == "annotate":
                    sch.annotate(args[0], inst.attrs["key"], inst.attrs["value"])
                elif inst.name in (
                    "compute_at",
                    "reverse_compute_at",
                ):
                    getattr(sch, inst.name)(args[0], args[1])
                elif inst.name in ("compute_inline", "reverse_compute_inline"):
                    getattr(sch, inst.name)(args[0])
                elif inst.name == "cache_read":
                    sch.cache_read(args[0], inst.attrs["read_index"], inst.attrs["scope"])
                elif inst.name == "cache_write":
                    sch.cache_write(args[0], inst.attrs["write_index"], inst.attrs["scope"])
                elif inst.name == "decompose_reduction":
                    sch.decompose_reduction(args[0], args[1])
                elif inst.name == "merge_reduction":
                    sch.merge_reduction(args[0], args[1])
                elif inst.name == "blockize":
                    sch.blockize(args[0])
                elif inst.name == "tensorize":
                    sch.tensorize(args[0], inst.attrs["intrin"])
                elif inst.name == "reindex":
                    sch.reindex(
                        args[0],
                        inst.attrs["buffer_role"],
                        inst.attrs["buffer_index"],
                        inst.attrs.get("iter_order"),
                    )
                elif inst.name == "fuse_block_iters":
                    sch.fuse_block_iters(args[0], inst.attrs["groups"])
                elif inst.name == "fuse_buffer_dims":
                    sch.fuse_buffer_dims(
                        args[0], inst.attrs["buffer_name"], inst.attrs["dim_groups"]
                    )
                elif inst.name == "pad_einsum":
                    sch.pad_einsum(args[0], inst.attrs["paddings"])
                elif inst.name == "set_scope":
                    sch.set_scope(args[0], inst.attrs["write_index"], inst.attrs["scope"])
                elif inst.name == "sample_perfect_tile":
                    sch.sample_perfect_tile(
                        args[0],
                        inst.attrs["n"],
                        inst.attrs["max_innermost_factor"],
                        decision=inst.decision,
                    )
                elif inst.name == "sample_categorical":
                    sch.sample_categorical(
                        inst.attrs["candidates"],
                        inst.attrs["probs"],
                        decision=inst.decision,
                    )
                else:
                    raise ScheduleError(f"cannot replay instruction {inst.name!r}")
        finally:
            sch.trace = recording
        if sch.trace is not None:
            sch.trace.instructions = [
                Instruction(i.name, i.inputs, i.attrs, i.outputs, i.decision)
                for i in self.instructions
            ]

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover
        return "\n".join(repr(i) for i in self.instructions)
