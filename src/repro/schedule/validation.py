"""Program validation (§3.3).

Three families of checks, exactly as the paper lays out:

* **Loop nest validation** — block iterator bindings must form an
  independent quasi-affine map of the enclosing loop iterators
  (pattern-matched by :func:`repro.arith.detect_iter_map`), stay inside
  the iterator domains (or be guarded by the realize predicate), and
  reduction iterators must not be driven by parallel/thread loops.
  Producer blocks must cover the regions consumers read.
* **Threading validation** — thread-extent consistency and launch
  limits, shared-memory capacity, cooperative-fetch coverage, and
  execution scope of tensor intrinsics.
* **Intrinsic constraints** — operand storage scopes required by a
  tensorized block's intrinsic.

``verify`` returns a list of :class:`~repro.diagnostics.Diagnostic`
objects (empty = valid), each carrying a stable ``TIRnnn`` error code
(``TIR1xx`` loop nest, ``TIR2xx`` producer/consumer, ``TIR3xx``
threading/intrinsic) and the offending IR node for span rendering.
``str(diag)`` is the legacy message text, so string-matching callers
are unaffected.  The evolutionary search uses ``verify`` to reject
invalid mutants (§4.4) and aggregates the rejection codes.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import cache as _cache
from ..arith import Analyzer, IntSet, detect_iter_map, eval_int_set
from ..diagnostics import Diagnostic, DiagnosticContext, DiagnosticError
from ..tir import (
    Block,
    BlockRealize,
    Buffer,
    For,
    ForKind,
    IntImm,
    PrimFunc,
    Range,
    Stmt,
    Var,
    collect_vars,
    const_int_value,
)
from ..tir.expr import And, LT
from .sref import children_of, find_blocks, loops_above

__all__ = [
    "verify",
    "is_valid",
    "VerificationError",
    "assert_valid",
    "shared_footprint_bytes",
]


#: memoized per-function analyses keyed on structural hash — see the
#: caching notes on :func:`verify`.
_FOOTPRINT_CACHE = _cache.MemoCache("schedule.shared_footprint", maxsize=4096)
_VERIFY_CACHE = _cache.MemoCache("schedule.verify", maxsize=4096)


def shared_footprint_bytes(func: PrimFunc) -> int:
    """Live shared-memory footprint per thread block: for each shared
    buffer, the hull of the region written within one blockIdx iteration
    (what a compacting lowering would allocate).

    Depends only on program structure, so the result is memoized on
    :func:`repro.tir.structural_hash` (both the threading checks and
    feature extraction ask for it, once per candidate each).
    """
    if not _cache.caches_enabled():
        return _shared_footprint_impl(func)
    from ..tir.structural import structural_hash

    return _FOOTPRINT_CACHE.get_or_compute(
        structural_hash(func), lambda: _shared_footprint_impl(func)
    )


def _shared_footprint_impl(func: PrimFunc) -> int:
    from ..tir import dtype as _dt

    footprint: Dict[int, int] = {}
    for realize in find_blocks(func.body):
        for region in realize.block.writes:
            buf = region.buffer
            if buf.scope != "shared":
                continue
            hull = _per_block_hull(func, realize, region)
            if hull is None:
                try:
                    elements = buf.numel()
                except ValueError:
                    continue
            else:
                elements = 1
                for iv in hull:
                    elements *= iv.extent() or 1
            nbytes = elements * _dt.bytes_of(buf.dtype)
            prev = footprint.get(id(buf))
            footprint[id(buf)] = nbytes if prev is None else max(prev, nbytes)
    return sum(footprint.values())


def _per_block_hull(func: PrimFunc, realize: BlockRealize, region):
    """Hull of the region one *instance group* of ``realize`` touches:
    the block's own loops (those its iterator bindings use) and thread
    loops are relaxed; all outer serial/blockIdx loops are pinned — a
    reused staging buffer's live tile, not its lifetime union."""
    loops = loops_above(func.body, realize)
    dom: Dict[Var, IntSet] = {}
    for lp in loops:
        extent = const_int_value(lp.extent)
        lo = const_int_value(lp.min)
        if extent is None or lo is None:
            return None
        is_thread = lp.kind == ForKind.THREAD_BINDING and (lp.thread_tag or "").startswith(
            "threadIdx"
        )
        # "Own" loops host only this block; loops shared with other
        # blocks (e.g. the reduction loop the staging sits under) are
        # pinned — the buffer is refilled there, not enlarged.
        exclusive = len(find_blocks(lp)) == 1
        if exclusive or is_thread:
            dom[lp.loop_var] = IntSet.from_range(lo, extent)
        else:
            dom[lp.loop_var] = IntSet.point(lo)
    block = realize.block
    for iv, binding in zip(block.iter_vars, realize.iter_values):
        dom[iv.var] = eval_int_set(binding, dom)
    hull = []
    for rng in region.region:
        lo_set = eval_int_set(rng.min, dom)
        hi_set = eval_int_set(rng.min + rng.extent - 1, dom)
        if lo_set.min_value is None or hi_set.max_value is None:
            return None
        hull.append(IntSet(lo_set.min_value, hi_set.max_value))
    return hull


class VerificationError(DiagnosticError):
    """§3.3 validation rejected the program.

    Carries ``.diagnostics``; ``str()`` is the legacy ``"; "``-joined
    problem text.  Constructing it from an already-joined string (the
    pre-diagnostics idiom ``VerificationError("; ".join(problems))``)
    still works behind a :class:`DeprecationWarning`.
    """

    def __init__(self, diagnostics=(), **kwargs):
        if isinstance(diagnostics, str):
            warnings.warn(
                "constructing VerificationError from a joined string is "
                "deprecated; pass the Diagnostic list returned by verify()",
                DeprecationWarning,
                stacklevel=2,
            )
            diagnostics = [
                Diagnostic("TIR000", part)
                for part in diagnostics.split("; ")
                if part
            ]
        super().__init__(diagnostics, **kwargs)

    @property
    def problems(self) -> List[str]:
        """The legacy ``List[str]`` view of the diagnostics."""
        return [str(d) for d in self.diagnostics]


def verify(
    func: PrimFunc, target=None, *, ctx: Optional[DiagnosticContext] = None
) -> List[Diagnostic]:
    """Validate ``func``; returns the diagnostics found (empty = valid).

    Each diagnostic's ``str()`` is the old problem string; its ``.code``
    / ``.render()`` give the typed view.  Pass ``ctx`` to accumulate
    into an existing :class:`~repro.diagnostics.DiagnosticContext`.
    """
    if not _cache.caches_enabled():
        return _verify_impl(func, target, ctx)
    from ..tir.structural import structural_hash

    # Diagnostics embed block/loop/buffer *names* in their messages and
    # rendered spans, while structurally-equal programs may differ in
    # names — so the key carries a cheap name fingerprint next to the
    # alpha-invariant hash.
    key = (
        structural_hash(func),
        getattr(target, "name", None) if target is not None else None,
        _names_fingerprint(func),
    )
    hit = _VERIFY_CACHE.lookup(key)
    if hit is not _cache.MISS:
        diagnostics = list(hit)
        if ctx is not None:
            ctx.extend(diagnostics)
        return diagnostics
    diagnostics = _verify_impl(func, target, ctx)
    _VERIFY_CACHE.put(key, tuple(diagnostics))
    return diagnostics


def _verify_impl(
    func: PrimFunc, target=None, ctx: Optional[DiagnosticContext] = None
) -> List[Diagnostic]:
    if ctx is None:
        ctx = DiagnosticContext(func)
    first = len(ctx.diagnostics)
    realizes = [r for r in find_blocks(func.body) if r is not func.body]
    _check_loop_nests(func, realizes, ctx)
    _check_producer_consumer(func, realizes, ctx)
    _check_execution_order(func, ctx)
    _check_intrinsic_scopes(func, realizes, ctx)
    if target is not None and getattr(target, "kind", None) == "gpu":
        _check_threading(func, realizes, target, ctx)
    return ctx.diagnostics[first:]


def _names_fingerprint(func: PrimFunc) -> int:
    """Hash of every name a diagnostic message could mention."""
    parts: List[str] = [func.name]
    parts.extend(buf.name for buf in func.buffer_map.values())
    stack: List[Stmt] = [func.body]
    while stack:
        node = stack.pop()
        if isinstance(node, For):
            parts.append(node.loop_var.name)
            parts.append(node.thread_tag or "")
        elif isinstance(node, Block):
            parts.append(node.name_hint)
            parts.extend(iv.var.name for iv in node.iter_vars)
            parts.extend(buf.name for buf in node.alloc_buffers)
            parts.extend(r.buffer.name for r in node.reads)
            parts.extend(w.buffer.name for w in node.writes)
        stack.extend(children_of(node))
    return hash(tuple(parts))


def _check_execution_order(func: PrimFunc, ctx: DiagnosticContext) -> None:
    """A block must not read an intermediate buffer before any producer
    of that buffer has run.  Checked on the preorder (= first-execution)
    sequence of blocks: the first reader of an intermediate buffer must
    not precede its first writer."""
    first_write: Dict[int, int] = {}
    first_read: Dict[int, Tuple[int, BlockRealize]] = {}
    params = set(func.buffer_map.values())
    order = [r for r in find_blocks(func.body) if r is not func.body]
    for idx, realize in enumerate(order):
        block = realize.block
        for region in block.writes:
            first_write.setdefault(id(region.buffer), idx)
        for region in block.reads:
            if region.buffer not in params:
                first_read.setdefault(id(region.buffer), (idx, realize))
    for buf_id, (ridx, realize) in first_read.items():
        widx = first_write.get(buf_id)
        if widx is not None and ridx < widx:
            name = realize.block.name_hint
            ctx.emit(
                "TIR203",
                f"{name}: reads a buffer before its producer runs",
                block=name,
                stmt=realize,
            )


def is_valid(func: PrimFunc, target=None) -> bool:
    return not verify(func, target)


def assert_valid(func: PrimFunc, target=None) -> None:
    problems = verify(func, target)
    if problems:
        raise VerificationError(problems)


# ---------------------------------------------------------------------------
# loop nest validation
# ---------------------------------------------------------------------------


def _conjuncts(pred) -> List:
    if isinstance(pred, And):
        return _conjuncts(pred.a) + _conjuncts(pred.b)
    return [pred]


def _check_loop_nests(func: PrimFunc, realizes, ctx: DiagnosticContext) -> None:
    from .sref import path_to

    for realize in realizes:
        block = realize.block
        name = block.name_hint
        loops = loops_above(func.body, realize)
        analyzer = Analyzer()
        extents: Dict[Var, int] = {}
        kinds: Dict[int, str] = {}
        ok = True
        # Iterators of enclosing blocks are legal inputs to the bindings:
        # the outer block's signature guarantees their domains.
        path = path_to(func.body, realize) or []
        for node in path[:-1]:
            if isinstance(node, BlockRealize):
                for iv in node.block.iter_vars:
                    ext = const_int_value(iv.dom.extent)
                    if ext is not None and const_int_value(iv.dom.min) == 0:
                        extents[iv.var] = ext
                        analyzer.bind(iv.var, Range(0, ext))
        for lp in loops:
            if const_int_value(lp.min) != 0:
                ctx.emit(
                    "TIR101",
                    f"{name}: loop {lp.loop_var.name} min != 0",
                    block=name,
                    stmt=lp,
                )
                ok = False
                continue
            extent = const_int_value(lp.extent)
            if extent is None:
                ctx.emit(
                    "TIR102",
                    f"{name}: loop {lp.loop_var.name} has symbolic extent",
                    block=name,
                    stmt=lp,
                )
                ok = False
                continue
            extents[lp.loop_var] = extent
            kinds[id(lp.loop_var)] = lp.kind
            analyzer.bind(lp.loop_var, Range(0, extent))
        if not ok:
            continue

        # 1) quasi-affine independent mapping of the bindings.  When a
        # non-divisible split leaves a guard predicate, the digit algebra
        # no longer matches the pattern matcher; fall back to domain
        # containment only (conservative, like the paper's warning path).
        has_predicate = const_int_value(realize.predicate) != 1
        if realize.iter_values:
            detected = detect_iter_map(
                list(realize.iter_values), extents, analyzer, require_bijective=False
            )
            if detected is None and not has_predicate:
                ctx.emit(
                    "TIR103",
                    f"{name}: iterator bindings are not an independent "
                    "quasi-affine map of the loop iterators",
                    block=name,
                    stmt=realize,
                )
                continue

        # 2) domain containment (predicate-aware).
        guards = {
            _guard_key(c) for c in _conjuncts(realize.predicate) if _guard_key(c)
        }
        for iv, binding in zip(block.iter_vars, realize.iter_values):
            extent = const_int_value(iv.dom.extent)
            if extent is None:
                ctx.emit(
                    "TIR104",
                    f"{name}: symbolic domain for {iv.var.name}",
                    block=name,
                    stmt=realize,
                )
                continue
            bound = analyzer.int_set(binding)
            if bound.is_bounded and bound.min_value >= 0 and bound.max_value < extent:
                continue
            key = _guard_key(LT(binding, IntImm(extent)), analyzer)
            if key is not None and key in {
                _guard_key(c, analyzer) for c in _conjuncts(realize.predicate)
            }:
                continue
            ctx.emit(
                "TIR105",
                f"{name}: binding of {iv.var.name} can leave its "
                f"domain [0, {extent}) and is not guarded by the predicate",
                block=name,
                stmt=realize,
            )

        # 3) reduction iterators must not bind parallel/thread loops.
        for iv, binding in zip(block.iter_vars, realize.iter_values):
            if not iv.is_reduce:
                continue
            for v in collect_vars(binding):
                kind = kinds.get(id(v))
                if kind in (ForKind.PARALLEL, ForKind.THREAD_BINDING):
                    lp = next(l for l in loops if l.loop_var is v)
                    if lp.thread_tag == "vthread":
                        continue
                    ctx.emit(
                        "TIR106",
                        f"{name}: reduction iterator {iv.var.name} is "
                        f"driven by {kind} loop {v.name} (non-atomic cross-thread "
                        "reduction)",
                        block=name,
                        stmt=lp,
                    )


def _guard_key(cond, analyzer: Optional[Analyzer] = None):
    """A canonical key for a `x < c` guard, for predicate matching."""
    from ..arith.simplify import structural_key

    if analyzer is not None:
        cond = analyzer.simplify(cond)
    if isinstance(cond, IntImm):
        return None
    try:
        return structural_key(cond)
    except TypeError:
        return None


# ---------------------------------------------------------------------------
# producer/consumer coverage
# ---------------------------------------------------------------------------


def _concrete_hull(
    func: PrimFunc, realize: BlockRealize, region, analyzer_cache
) -> Optional[List[IntSet]]:
    """Fully-relaxed [min,max] hull of a block's access region."""
    loops = loops_above(func.body, realize)
    dom: Dict[Var, IntSet] = {}
    for lp in loops:
        extent = const_int_value(lp.extent)
        lo = const_int_value(lp.min)
        if extent is None or lo is None:
            return None
        dom[lp.loop_var] = IntSet.from_range(lo, extent)
    # Block iterators take the range of their bindings.
    block = realize.block
    for iv, binding in zip(block.iter_vars, realize.iter_values):
        dom[iv.var] = eval_int_set(binding, dom)
    hull = []
    for rng in region.region:
        lo_set = eval_int_set(rng.min, dom)
        hi_set = eval_int_set(rng.min + rng.extent - 1, dom)
        if lo_set.min_value is None or hi_set.max_value is None:
            return None
        hull.append(IntSet(lo_set.min_value, hi_set.max_value))
    return hull


def _check_producer_consumer(func: PrimFunc, realizes, ctx: DiagnosticContext) -> None:
    writes: Dict[int, Tuple[Buffer, List[List[IntSet]]]] = {}
    reads: Dict[int, List[Tuple[BlockRealize, List[IntSet]]]] = {}
    param_buffers = set(func.buffer_map.values())
    for realize in realizes:
        block = realize.block
        for region in block.writes:
            hull = _concrete_hull(func, realize, region, None)
            if hull is None:
                continue
            writes.setdefault(id(region.buffer), (region.buffer, []))[1].append(hull)
        for region in block.reads:
            if region.buffer in param_buffers:
                continue  # inputs are externally initialised
            hull = _concrete_hull(func, realize, region, None)
            if hull is None:
                continue
            reads.setdefault(id(region.buffer), []).append((realize, hull))
    for buf_id, consumer_list in reads.items():
        if buf_id not in writes:
            consumer = consumer_list[0][0]
            name = consumer.block.name_hint
            ctx.emit(
                "TIR201",
                f"{name}: reads a buffer that no block produces",
                block=name,
                stmt=consumer,
            )
            continue
        buffer, write_hulls = writes[buf_id]
        for d in range(buffer.ndim):
            w_lo = min(h[d].min_value for h in write_hulls)
            w_hi = max(h[d].max_value for h in write_hulls)
            for consumer, hull in consumer_list:
                if hull[d].min_value < w_lo or hull[d].max_value > w_hi:
                    name = consumer.block.name_hint
                    ctx.emit(
                        "TIR202",
                        f"{name}: reads {buffer.name} dim {d} over "
                        f"[{hull[d].min_value}, {hull[d].max_value}] but producers "
                        f"only cover [{w_lo}, {w_hi}]",
                        block=name,
                        stmt=consumer,
                    )


# ---------------------------------------------------------------------------
# intrinsic constraints
# ---------------------------------------------------------------------------


def _check_intrinsic_scopes(func: PrimFunc, realizes, ctx: DiagnosticContext) -> None:
    from ..intrin import get_intrin

    for realize in realizes:
        block = realize.block
        name = block.name_hint
        intrin_name = block.annotations.get("tensorize")
        if not intrin_name:
            continue
        intrin = get_intrin(intrin_name)
        operands = block.annotations.get("tensorize_operands", {})
        buffers = {}
        for region in list(block.reads) + list(block.writes):
            buffers[region.buffer.name] = region.buffer
        for role, required in intrin.operand_scopes.items():
            op_name = operands.get(role)
            if op_name is None or op_name not in buffers:
                ctx.emit(
                    "TIR351",
                    f"{name}: tensorized operand {role!r} not found",
                    block=name,
                    stmt=realize,
                )
                continue
            allowed = (required,) if isinstance(required, str) else tuple(required)
            if buffers[op_name].scope not in allowed:
                ctx.emit(
                    "TIR352",
                    f"{name}: intrinsic {intrin_name} requires operand "
                    f"{role} in scope {allowed}, but {op_name} is in "
                    f"{buffers[op_name].scope!r}",
                    block=name,
                    stmt=realize,
                )


# ---------------------------------------------------------------------------
# threading validation (GPU targets)
# ---------------------------------------------------------------------------


def _check_threading(func: PrimFunc, realizes, target, ctx: DiagnosticContext) -> None:
    from ..intrin import get_intrin
    from ..tir import SeqStmt

    # Each top-level nest under the root block is its own kernel launch:
    # thread-extent consistency and launch limits apply per kernel.
    root_body = func.body.block.body
    kernels = list(root_body.stmts) if isinstance(root_body, SeqStmt) else [root_body]
    for kernel in kernels:
        thread_extents: Dict[str, Set[int]] = {}
        thread_loops: Dict[str, For] = {}
        all_loops: List[For] = []

        def visit(stmt: Stmt) -> None:
            from .sref import children_of

            if isinstance(stmt, For):
                all_loops.append(stmt)
            for child in children_of(stmt):
                visit(child)

        visit(kernel)
        for lp in all_loops:
            if lp.kind == ForKind.THREAD_BINDING and lp.thread_tag != "vthread":
                extent = const_int_value(lp.extent)
                if extent is None:
                    ctx.emit(
                        "TIR301",
                        f"thread loop {lp.loop_var.name} has symbolic extent",
                        stmt=lp,
                    )
                    continue
                thread_extents.setdefault(lp.thread_tag, set()).add(extent)
                thread_loops.setdefault(lp.thread_tag, lp)

        # Thread binding consistency: loops on one axis must agree up to
        # masked subsets (a smaller extent that divides the launch extent
        # lowers to an `if (tid < n)` guard; anything else is flagged).
        for tag, extents in thread_extents.items():
            launch = max(extents)
            bad = sorted(e for e in extents if launch % e != 0)
            if bad:
                ctx.emit(
                    "TIR302",
                    f"inconsistent extents {sorted(extents)} for thread axis {tag}",
                    stmt=thread_loops.get(tag),
                )

        # Launch limits (per kernel: max extent per axis is the launch).
        n_threads = 1
        for tag in ("threadIdx.x", "threadIdx.y", "threadIdx.z"):
            if tag in thread_extents:
                extent = max(thread_extents[tag])
                limit = target.max_thread_extent(tag)
                if extent > limit:
                    ctx.emit(
                        "TIR303",
                        f"{tag} extent {extent} exceeds limit {limit}",
                        stmt=thread_loops.get(tag),
                    )
                n_threads *= extent
        if n_threads > target.max_threads_per_block:
            ctx.emit(
                "TIR304",
                f"{n_threads} threads per block exceeds limit "
                f"{target.max_threads_per_block}",
                stmt=kernel,
            )

    # Shared memory capacity (per-tile live footprint; the allocation is
    # declared full-size but lowering compacts it to the produced tile).
    shared_bytes = shared_footprint_bytes(func)
    if shared_bytes > target.shared_memory_per_block:
        ctx.emit(
            "TIR305",
            f"shared memory {shared_bytes}B exceeds capacity "
            f"{target.shared_memory_per_block}B",
        )

    # Execution scope: warp-level intrinsics must not sit inside a
    # threadIdx.x loop (the 32 lanes of the warp execute it together).
    for realize in realizes:
        intrin_name = realize.block.annotations.get("tensorize")
        if not intrin_name:
            continue
        intrin = get_intrin(intrin_name)
        if intrin.execution_scope != "warp":
            continue
        for lp in loops_above(func.body, realize):
            if lp.kind == ForKind.THREAD_BINDING and lp.thread_tag == "threadIdx.x":
                name = realize.block.name_hint
                ctx.emit(
                    "TIR306",
                    f"{name}: warp-scope intrinsic "
                    f"{intrin_name} may not be nested inside a threadIdx.x loop",
                    block=name,
                    stmt=lp,
                )
                break

    # Cooperative memory access: writers of a shared buffer must cover
    # the reads of all threads in the block (hull check over all axes
    # including thread loops — already concrete in _concrete_hull).
    shared_writes: Dict[int, Tuple[Buffer, List[List[IntSet]]]] = {}
    shared_reads: Dict[int, List[Tuple[BlockRealize, List[IntSet]]]] = {}
    for realize in realizes:
        block = realize.block
        for region in block.writes:
            if region.buffer.scope != "shared":
                continue
            hull = _concrete_hull(func, realize, region, None)
            if hull is not None:
                shared_writes.setdefault(id(region.buffer), (region.buffer, []))[1].append(hull)
        for region in block.reads:
            if region.buffer.scope != "shared":
                continue
            hull = _concrete_hull(func, realize, region, None)
            if hull is not None:
                shared_reads.setdefault(id(region.buffer), []).append(
                    (realize, hull)
                )
    for buf_id, consumer_list in shared_reads.items():
        if buf_id not in shared_writes:
            consumer = consumer_list[0][0]
            name = consumer.block.name_hint
            ctx.emit(
                "TIR307",
                f"{name}: reads a shared buffer no block fills "
                "(cooperative fetch missing)",
                block=name,
                stmt=consumer,
            )
