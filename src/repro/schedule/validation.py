"""Program validation (§3.3).

Three families of checks, exactly as the paper lays out:

* **Loop nest validation** — block iterator bindings must form an
  independent quasi-affine map of the enclosing loop iterators
  (pattern-matched by :func:`repro.arith.detect_iter_map`), stay inside
  the iterator domains (or be guarded by the realize predicate), and
  reduction iterators must not be driven by parallel/thread loops.
  Producer blocks must cover the regions consumers read.
* **Threading validation** — thread-extent consistency and launch
  limits, shared-memory capacity, cooperative-fetch coverage, and
  execution scope of tensor intrinsics.
* **Intrinsic constraints** — operand storage scopes required by a
  tensorized block's intrinsic.

``verify`` returns a list of human-readable problems (empty = valid);
the evolutionary search uses it to reject invalid mutants (§4.4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..arith import Analyzer, IntSet, detect_iter_map, eval_int_set
from ..tir import (
    Block,
    BlockRealize,
    Buffer,
    For,
    ForKind,
    IntImm,
    PrimFunc,
    Range,
    Stmt,
    Var,
    collect_vars,
    const_int_value,
)
from ..tir.expr import And, LT
from .sref import find_blocks, loops_above

__all__ = [
    "verify",
    "is_valid",
    "VerificationError",
    "assert_valid",
    "shared_footprint_bytes",
]


def shared_footprint_bytes(func: PrimFunc) -> int:
    """Live shared-memory footprint per thread block: for each shared
    buffer, the hull of the region written within one blockIdx iteration
    (what a compacting lowering would allocate)."""
    from ..tir import dtype as _dt

    footprint: Dict[int, int] = {}
    for realize in find_blocks(func.body):
        for region in realize.block.writes:
            buf = region.buffer
            if buf.scope != "shared":
                continue
            hull = _per_block_hull(func, realize, region)
            if hull is None:
                try:
                    elements = buf.numel()
                except ValueError:
                    continue
            else:
                elements = 1
                for iv in hull:
                    elements *= iv.extent() or 1
            nbytes = elements * _dt.bytes_of(buf.dtype)
            prev = footprint.get(id(buf))
            footprint[id(buf)] = nbytes if prev is None else max(prev, nbytes)
    return sum(footprint.values())


def _per_block_hull(func: PrimFunc, realize: BlockRealize, region):
    """Hull of the region one *instance group* of ``realize`` touches:
    the block's own loops (those its iterator bindings use) and thread
    loops are relaxed; all outer serial/blockIdx loops are pinned — a
    reused staging buffer's live tile, not its lifetime union."""
    loops = loops_above(func.body, realize)
    dom: Dict[Var, IntSet] = {}
    for lp in loops:
        extent = const_int_value(lp.extent)
        lo = const_int_value(lp.min)
        if extent is None or lo is None:
            return None
        is_thread = lp.kind == ForKind.THREAD_BINDING and (lp.thread_tag or "").startswith(
            "threadIdx"
        )
        # "Own" loops host only this block; loops shared with other
        # blocks (e.g. the reduction loop the staging sits under) are
        # pinned — the buffer is refilled there, not enlarged.
        exclusive = len(find_blocks(lp)) == 1
        if exclusive or is_thread:
            dom[lp.loop_var] = IntSet.from_range(lo, extent)
        else:
            dom[lp.loop_var] = IntSet.point(lo)
    block = realize.block
    for iv, binding in zip(block.iter_vars, realize.iter_values):
        dom[iv.var] = eval_int_set(binding, dom)
    hull = []
    for rng in region.region:
        lo_set = eval_int_set(rng.min, dom)
        hi_set = eval_int_set(rng.min + rng.extent - 1, dom)
        if lo_set.min_value is None or hi_set.max_value is None:
            return None
        hull.append(IntSet(lo_set.min_value, hi_set.max_value))
    return hull


class VerificationError(Exception):
    pass


def verify(func: PrimFunc, target=None) -> List[str]:
    """Validate ``func``; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    realizes = [r for r in find_blocks(func.body) if r is not func.body]
    _check_loop_nests(func, realizes, problems)
    _check_producer_consumer(func, realizes, problems)
    _check_execution_order(func, problems)
    _check_intrinsic_scopes(func, realizes, problems)
    if target is not None and getattr(target, "kind", None) == "gpu":
        _check_threading(func, realizes, target, problems)
    return problems


def _check_execution_order(func: PrimFunc, problems: List[str]) -> None:
    """A block must not read an intermediate buffer before any producer
    of that buffer has run.  Checked on the preorder (= first-execution)
    sequence of blocks: the first reader of an intermediate buffer must
    not precede its first writer."""
    first_write: Dict[int, int] = {}
    first_read: Dict[int, Tuple[int, str]] = {}
    params = set(func.buffer_map.values())
    order = [r for r in find_blocks(func.body) if r is not func.body]
    for idx, realize in enumerate(order):
        block = realize.block
        for region in block.writes:
            first_write.setdefault(id(region.buffer), idx)
        for region in block.reads:
            if region.buffer not in params:
                first_read.setdefault(id(region.buffer), (idx, block.name_hint))
    for buf_id, (ridx, reader) in first_read.items():
        widx = first_write.get(buf_id)
        if widx is not None and ridx < widx:
            problems.append(f"{reader}: reads a buffer before its producer runs")


def is_valid(func: PrimFunc, target=None) -> bool:
    return not verify(func, target)


def assert_valid(func: PrimFunc, target=None) -> None:
    problems = verify(func, target)
    if problems:
        raise VerificationError("; ".join(problems))


# ---------------------------------------------------------------------------
# loop nest validation
# ---------------------------------------------------------------------------


def _conjuncts(pred) -> List:
    if isinstance(pred, And):
        return _conjuncts(pred.a) + _conjuncts(pred.b)
    return [pred]


def _check_loop_nests(func: PrimFunc, realizes, problems: List[str]) -> None:
    from .sref import path_to

    for realize in realizes:
        block = realize.block
        loops = loops_above(func.body, realize)
        analyzer = Analyzer()
        extents: Dict[Var, int] = {}
        kinds: Dict[int, str] = {}
        ok = True
        # Iterators of enclosing blocks are legal inputs to the bindings:
        # the outer block's signature guarantees their domains.
        path = path_to(func.body, realize) or []
        for node in path[:-1]:
            if isinstance(node, BlockRealize):
                for iv in node.block.iter_vars:
                    ext = const_int_value(iv.dom.extent)
                    if ext is not None and const_int_value(iv.dom.min) == 0:
                        extents[iv.var] = ext
                        analyzer.bind(iv.var, Range(0, ext))
        for lp in loops:
            if const_int_value(lp.min) != 0:
                problems.append(f"{block.name_hint}: loop {lp.loop_var.name} min != 0")
                ok = False
                continue
            extent = const_int_value(lp.extent)
            if extent is None:
                problems.append(
                    f"{block.name_hint}: loop {lp.loop_var.name} has symbolic extent"
                )
                ok = False
                continue
            extents[lp.loop_var] = extent
            kinds[id(lp.loop_var)] = lp.kind
            analyzer.bind(lp.loop_var, Range(0, extent))
        if not ok:
            continue

        # 1) quasi-affine independent mapping of the bindings.  When a
        # non-divisible split leaves a guard predicate, the digit algebra
        # no longer matches the pattern matcher; fall back to domain
        # containment only (conservative, like the paper's warning path).
        has_predicate = const_int_value(realize.predicate) != 1
        if realize.iter_values:
            detected = detect_iter_map(
                list(realize.iter_values), extents, analyzer, require_bijective=False
            )
            if detected is None and not has_predicate:
                problems.append(
                    f"{block.name_hint}: iterator bindings are not an independent "
                    "quasi-affine map of the loop iterators"
                )
                continue

        # 2) domain containment (predicate-aware).
        guards = {
            _guard_key(c) for c in _conjuncts(realize.predicate) if _guard_key(c)
        }
        for iv, binding in zip(block.iter_vars, realize.iter_values):
            extent = const_int_value(iv.dom.extent)
            if extent is None:
                problems.append(f"{block.name_hint}: symbolic domain for {iv.var.name}")
                continue
            bound = analyzer.int_set(binding)
            if bound.is_bounded and bound.min_value >= 0 and bound.max_value < extent:
                continue
            key = _guard_key(LT(binding, IntImm(extent)), analyzer)
            if key is not None and key in {
                _guard_key(c, analyzer) for c in _conjuncts(realize.predicate)
            }:
                continue
            problems.append(
                f"{block.name_hint}: binding of {iv.var.name} can leave its "
                f"domain [0, {extent}) and is not guarded by the predicate"
            )

        # 3) reduction iterators must not bind parallel/thread loops.
        for iv, binding in zip(block.iter_vars, realize.iter_values):
            if not iv.is_reduce:
                continue
            for v in collect_vars(binding):
                kind = kinds.get(id(v))
                if kind in (ForKind.PARALLEL, ForKind.THREAD_BINDING):
                    lp = next(l for l in loops if l.loop_var is v)
                    if lp.thread_tag == "vthread":
                        continue
                    problems.append(
                        f"{block.name_hint}: reduction iterator {iv.var.name} is "
                        f"driven by {kind} loop {v.name} (non-atomic cross-thread "
                        "reduction)"
                    )


def _guard_key(cond, analyzer: Optional[Analyzer] = None):
    """A canonical key for a `x < c` guard, for predicate matching."""
    from ..arith.simplify import structural_key

    if analyzer is not None:
        cond = analyzer.simplify(cond)
    if isinstance(cond, IntImm):
        return None
    try:
        return structural_key(cond)
    except TypeError:
        return None


# ---------------------------------------------------------------------------
# producer/consumer coverage
# ---------------------------------------------------------------------------


def _concrete_hull(
    func: PrimFunc, realize: BlockRealize, region, analyzer_cache
) -> Optional[List[IntSet]]:
    """Fully-relaxed [min,max] hull of a block's access region."""
    loops = loops_above(func.body, realize)
    dom: Dict[Var, IntSet] = {}
    for lp in loops:
        extent = const_int_value(lp.extent)
        lo = const_int_value(lp.min)
        if extent is None or lo is None:
            return None
        dom[lp.loop_var] = IntSet.from_range(lo, extent)
    # Block iterators take the range of their bindings.
    block = realize.block
    for iv, binding in zip(block.iter_vars, realize.iter_values):
        dom[iv.var] = eval_int_set(binding, dom)
    hull = []
    for rng in region.region:
        lo_set = eval_int_set(rng.min, dom)
        hi_set = eval_int_set(rng.min + rng.extent - 1, dom)
        if lo_set.min_value is None or hi_set.max_value is None:
            return None
        hull.append(IntSet(lo_set.min_value, hi_set.max_value))
    return hull


def _check_producer_consumer(func: PrimFunc, realizes, problems: List[str]) -> None:
    writes: Dict[int, Tuple[Buffer, List[List[IntSet]]]] = {}
    reads: Dict[int, List[Tuple[str, List[IntSet]]]] = {}
    param_buffers = set(func.buffer_map.values())
    for realize in realizes:
        block = realize.block
        for region in block.writes:
            hull = _concrete_hull(func, realize, region, None)
            if hull is None:
                continue
            writes.setdefault(id(region.buffer), (region.buffer, []))[1].append(hull)
        for region in block.reads:
            if region.buffer in param_buffers:
                continue  # inputs are externally initialised
            hull = _concrete_hull(func, realize, region, None)
            if hull is None:
                continue
            reads.setdefault(id(region.buffer), []).append((block.name_hint, hull))
    for buf_id, consumer_list in reads.items():
        if buf_id not in writes:
            buffer_name = consumer_list[0][0]
            problems.append(
                f"{consumer_list[0][0]}: reads a buffer that no block produces"
            )
            continue
        buffer, write_hulls = writes[buf_id]
        for d in range(buffer.ndim):
            w_lo = min(h[d].min_value for h in write_hulls)
            w_hi = max(h[d].max_value for h in write_hulls)
            for consumer_name, hull in consumer_list:
                if hull[d].min_value < w_lo or hull[d].max_value > w_hi:
                    problems.append(
                        f"{consumer_name}: reads {buffer.name} dim {d} over "
                        f"[{hull[d].min_value}, {hull[d].max_value}] but producers "
                        f"only cover [{w_lo}, {w_hi}]"
                    )


# ---------------------------------------------------------------------------
# intrinsic constraints
# ---------------------------------------------------------------------------


def _check_intrinsic_scopes(func: PrimFunc, realizes, problems: List[str]) -> None:
    from ..intrin import get_intrin

    for realize in realizes:
        block = realize.block
        intrin_name = block.annotations.get("tensorize")
        if not intrin_name:
            continue
        intrin = get_intrin(intrin_name)
        operands = block.annotations.get("tensorize_operands", {})
        buffers = {}
        for region in list(block.reads) + list(block.writes):
            buffers[region.buffer.name] = region.buffer
        for role, required in intrin.operand_scopes.items():
            name = operands.get(role)
            if name is None or name not in buffers:
                problems.append(
                    f"{block.name_hint}: tensorized operand {role!r} not found"
                )
                continue
            allowed = (required,) if isinstance(required, str) else tuple(required)
            if buffers[name].scope not in allowed:
                problems.append(
                    f"{block.name_hint}: intrinsic {intrin_name} requires operand "
                    f"{role} in scope {allowed}, but {name} is in "
                    f"{buffers[name].scope!r}"
                )


# ---------------------------------------------------------------------------
# threading validation (GPU targets)
# ---------------------------------------------------------------------------


def _check_threading(func: PrimFunc, realizes, target, problems: List[str]) -> None:
    from ..intrin import get_intrin
    from ..tir import SeqStmt

    # Each top-level nest under the root block is its own kernel launch:
    # thread-extent consistency and launch limits apply per kernel.
    root_body = func.body.block.body
    kernels = list(root_body.stmts) if isinstance(root_body, SeqStmt) else [root_body]
    for kernel in kernels:
        thread_extents: Dict[str, Set[int]] = {}
        all_loops: List[For] = []

        def visit(stmt: Stmt) -> None:
            from .sref import children_of

            if isinstance(stmt, For):
                all_loops.append(stmt)
            for child in children_of(stmt):
                visit(child)

        visit(kernel)
        for lp in all_loops:
            if lp.kind == ForKind.THREAD_BINDING and lp.thread_tag != "vthread":
                extent = const_int_value(lp.extent)
                if extent is None:
                    problems.append(
                        f"thread loop {lp.loop_var.name} has symbolic extent"
                    )
                    continue
                thread_extents.setdefault(lp.thread_tag, set()).add(extent)

        # Thread binding consistency: loops on one axis must agree up to
        # masked subsets (a smaller extent that divides the launch extent
        # lowers to an `if (tid < n)` guard; anything else is flagged).
        for tag, extents in thread_extents.items():
            launch = max(extents)
            bad = sorted(e for e in extents if launch % e != 0)
            if bad:
                problems.append(
                    f"inconsistent extents {sorted(extents)} for thread axis {tag}"
                )

        # Launch limits (per kernel: max extent per axis is the launch).
        n_threads = 1
        for tag in ("threadIdx.x", "threadIdx.y", "threadIdx.z"):
            if tag in thread_extents:
                extent = max(thread_extents[tag])
                limit = target.max_thread_extent(tag)
                if extent > limit:
                    problems.append(f"{tag} extent {extent} exceeds limit {limit}")
                n_threads *= extent
        if n_threads > target.max_threads_per_block:
            problems.append(
                f"{n_threads} threads per block exceeds limit "
                f"{target.max_threads_per_block}"
            )

    # Shared memory capacity (per-tile live footprint; the allocation is
    # declared full-size but lowering compacts it to the produced tile).
    shared_bytes = shared_footprint_bytes(func)
    if shared_bytes > target.shared_memory_per_block:
        problems.append(
            f"shared memory {shared_bytes}B exceeds capacity "
            f"{target.shared_memory_per_block}B"
        )

    # Execution scope: warp-level intrinsics must not sit inside a
    # threadIdx.x loop (the 32 lanes of the warp execute it together).
    for realize in realizes:
        intrin_name = realize.block.annotations.get("tensorize")
        if not intrin_name:
            continue
        intrin = get_intrin(intrin_name)
        if intrin.execution_scope != "warp":
            continue
        for lp in loops_above(func.body, realize):
            if lp.kind == ForKind.THREAD_BINDING and lp.thread_tag == "threadIdx.x":
                problems.append(
                    f"{realize.block.name_hint}: warp-scope intrinsic "
                    f"{intrin_name} may not be nested inside a threadIdx.x loop"
                )
                break

    # Cooperative memory access: writers of a shared buffer must cover
    # the reads of all threads in the block (hull check over all axes
    # including thread loops — already concrete in _concrete_hull).
    shared_writes: Dict[int, Tuple[Buffer, List[List[IntSet]]]] = {}
    shared_reads: Dict[int, List[Tuple[str, List[IntSet]]]] = {}
    for realize in realizes:
        block = realize.block
        for region in block.writes:
            if region.buffer.scope != "shared":
                continue
            hull = _concrete_hull(func, realize, region, None)
            if hull is not None:
                shared_writes.setdefault(id(region.buffer), (region.buffer, []))[1].append(hull)
        for region in block.reads:
            if region.buffer.scope != "shared":
                continue
            hull = _concrete_hull(func, realize, region, None)
            if hull is not None:
                shared_reads.setdefault(id(region.buffer), []).append(
                    (block.name_hint, hull)
                )
    for buf_id, consumer_list in shared_reads.items():
        if buf_id not in shared_writes:
            problems.append(
                f"{consumer_list[0][0]}: reads a shared buffer no block fills "
                "(cooperative fetch missing)"
            )
