"""Tuning-as-a-service: the persistent schedule server (``repro.serve``).

The serving layer turns the batch tuning stack into a long-lived
service: a :class:`ScheduleServer` answers compile/tune requests for
``PrimFunc`` workloads — hits instantly from a persistent
:class:`~repro.meta.database.Database`, misses via batched, coalesced
:class:`~repro.meta.session.TuningSession` runs on a background worker
— and an in-process :class:`Client` (or the one-liner
``repro.compile``) is the application-facing surface.
"""

from .api import CompileRequest, CompileResponse, ServeConfig, ServerStats
from .client import Client, compile, default_client, shutdown_default_servers
from .server import ScheduleServer

__all__ = [
    "ScheduleServer",
    "Client",
    "ServeConfig",
    "CompileRequest",
    "CompileResponse",
    "ServerStats",
    "compile",
    "default_client",
    "shutdown_default_servers",
]
