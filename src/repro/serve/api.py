"""Request/response types and configuration for the schedule server.

The serve surface is deliberately small and typed: a
:class:`CompileRequest` names one ``PrimFunc`` workload, a
:class:`CompileResponse` carries the served program (plus provenance:
hit, miss, or coalesced-behind-a-miss), and :class:`ServeConfig`
bundles every knob a long-lived :class:`~repro.serve.server.ScheduleServer`
needs — the persistent database location, the tuning config used on
cache misses, and the miss-coalescing window.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional

from ..frontend.shapes import BucketSpec
from ..meta.config import TuneConfig
from ..tir import PrimFunc

__all__ = ["ServeConfig", "CompileRequest", "CompileResponse", "ServerStats"]


@dataclass(frozen=True)
class ServeConfig:
    """Settings for one :class:`~repro.serve.server.ScheduleServer`.

    * ``db_path`` — root directory of the persistent on-disk database
      (:class:`~repro.meta.database.PersistentDatabase`).  ``None`` runs
      on an in-memory :class:`~repro.meta.database.TuningDatabase` —
      useful for tests; restarts then start cold.
    * ``tune`` — the :class:`~repro.meta.TuneConfig` every cache-miss
      tuning session runs with.
    * ``batch_window_seconds`` — how long the miss worker waits after
      the first queued miss for more misses to share the session (the
      amortize-across-tenants knob).
    * ``max_batch`` — cap on unique workloads tuned per session run.
    * ``session_workers`` — tune-worker threads inside one miss session.
    * ``ttl_seconds`` / ``max_entries`` — eviction policy forwarded to
      the persistent database.
    * ``compile_programs`` — attach a runtime-compiled callable to every
      response (off for pure schedule-serving).
    * ``buckets`` — a :class:`~repro.frontend.shapes.BucketSpec` enabling
      shape-generic serving: requests whose dynamic dims fall in a
      declared bucket are answered from the bucket representative's
      record (adaptive §5.2 replay) before any exact lookup, and
      in-bucket misses coalesce into one tuning run at the
      representative shape.  ``None`` keeps exact-shape serving.
    """

    db_path: Optional[str] = None
    tune: TuneConfig = field(default_factory=lambda: TuneConfig(trials=16))
    batch_window_seconds: float = 0.02
    max_batch: int = 8
    session_workers: int = 1
    ttl_seconds: Optional[float] = None
    max_entries: Optional[int] = None
    compile_programs: bool = True
    buckets: Optional[BucketSpec] = None
    #: serving metrics (``repro.obs.metrics``): latency histograms per
    #: outcome, queue/batch occupancy, database + evaluator + cache
    #: instruments, and the :meth:`~repro.serve.server.ScheduleServer.health`
    #: surface.  Off turns every instrument into a no-op — the A/B the
    #: ``--serve-obs`` overhead bench measures.
    metrics: bool = True
    #: rolling-window size for recent-latency accounting: bounds
    #: ``ServerStats.hit_seconds`` and each latency histogram's window
    #: of raw observations (the ``health()`` p50/p95/p99 source).
    stats_window: int = 512

    def with_(self, **changes) -> "ServeConfig":
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class CompileRequest:
    """One compile/tune request as queued inside the server.

    ``request_id`` is the request-scoped trace id (``"req-000042"``):
    it stamps the request's telemetry spans, so
    ``telemetry.span_tree(request_id)`` recovers the full serve →
    session → evaluator trace for any response.
    """

    request_id: str
    func: PrimFunc
    key: str  # workload_key(func, target)
    submitted_at: float
    #: the bucket representative's workload key when the server runs
    #: with ``ServeConfig.buckets`` and this request's shape maps to a
    #: different representative — ``None`` for exact-shape requests.
    bucket_key: Optional[str] = None


@dataclass
class CompileResponse:
    """The served result for one request.

    ``source`` is the serving path taken: ``"hit"`` (answered from the
    database with zero search), ``"bucket-hit"`` (no record at this
    exact shape, but the shape-bucket representative's record replayed
    adaptively — still zero search), ``"miss"`` (this request triggered
    the tuning run) or ``"coalesced"`` (this request arrived while the
    same workload — or another shape in its bucket — was already
    queued/tuning and shared that run).  ``trials`` is the number of
    candidates measured *to serve this request* — by contract 0 for
    hits, bucket-hits and every coalesced waiter beyond the first.

    ``request_id`` is the request-scoped trace id minted at submit time;
    feed it to ``server.telemetry.span_tree(...)`` (or the Chrome-trace
    exporter, which carries it per span) to see where this response's
    latency went.
    """

    request_id: str
    key: str
    source: str  # "hit" | "bucket-hit" | "miss" | "coalesced"
    func: PrimFunc  # the scheduled (best) program
    script: str  # printed program text — the byte-identity unit
    cycles: float
    sketch: str
    trials: int
    wait_seconds: float
    compiled: Optional[object] = None  # runtime.CompiledFunc when requested

    def __call__(self, *args, **kwargs):
        if self.compiled is None:
            raise RuntimeError(
                "response carries no compiled function "
                "(ServeConfig.compile_programs=False)"
            )
        return self.compiled(*args, **kwargs)


@dataclass
class ServerStats:
    """A point-in-time snapshot of one server's request accounting."""

    requests: int = 0
    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    tune_runs: int = 0
    tuned_workloads: int = 0
    failures: int = 0
    #: requests served from a bucket representative's record (adaptive
    #: replay at an unseen in-bucket shape, zero search).
    bucket_hits: int = 0
    #: bucket replays that proved infeasible at the concrete shape and
    #: fell back to an exact lookup or a fresh tune (TIR702).
    replay_fallbacks: int = 0
    #: the most recent zero-search serve latencies, bounded to the
    #: server's ``ServeConfig.stats_window`` (a rolling window, not the
    #: full history — the metrics histograms keep the full
    #: distribution).
    hit_seconds: List[float] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        """Zero-search serves (exact + bucket) per request."""
        if not self.requests:
            return 0.0
        return (self.hits + self.bucket_hits) / self.requests

    @property
    def coalesce_factor(self) -> float:
        """Workloads tuned per miss-side request — how many tenants one
        tuning run served.  1.0 means no sharing happened."""
        miss_side = self.misses + self.coalesced
        return miss_side / self.tuned_workloads if self.tuned_workloads else 0.0

    def p50_hit_seconds(self) -> Optional[float]:
        if not self.hit_seconds:
            return None
        ordered = sorted(self.hit_seconds)
        return ordered[len(ordered) // 2]

    def to_json(self) -> dict:
        return {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "tune_runs": self.tune_runs,
            "tuned_workloads": self.tuned_workloads,
            "failures": self.failures,
            "bucket_hits": self.bucket_hits,
            "replay_fallbacks": self.replay_fallbacks,
            "hit_rate": round(self.hit_rate, 4),
            "coalesce_factor": round(self.coalesce_factor, 4),
            "p50_hit_seconds": self.p50_hit_seconds(),
        }
