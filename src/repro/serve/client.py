"""In-process client for the schedule server, and the default-client
registry behind ``repro.compile``.

A :class:`Client` is a thin, picklable-free handle on one
:class:`~repro.serve.server.ScheduleServer` — same process, same
database, but the only surface application code should touch:
``compile`` (sync), ``submit`` (async) and ``stats``.  The module also
keeps one lazily-created default server per (target, database-path)
pair so the one-liner ``repro.compile(func, target)`` behaves like a
process-wide compile cache: first call tunes, every later call for a
structurally identical workload is a database hit.
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import Future
from typing import Dict, Optional, Tuple

from ..sim import Target
from ..tir import PrimFunc
from .api import CompileResponse, ServeConfig
from .server import ScheduleServer

__all__ = ["Client", "default_client", "compile", "shutdown_default_servers"]


class Client:
    """Application-facing handle on a :class:`ScheduleServer`."""

    def __init__(self, server: ScheduleServer):
        self.server = server

    @property
    def target(self) -> Target:
        return self.server.target

    def compile(
        self, func: PrimFunc, timeout: Optional[float] = None
    ) -> CompileResponse:
        """Serve one workload: instant on hit, tuned-then-served on miss."""
        return self.server.compile(func, timeout=timeout)

    def submit(self, func: PrimFunc) -> "Future[CompileResponse]":
        """Async :meth:`compile`; the future resolves when served."""
        return self.server.submit(func)

    def stats(self):
        return self.server.stats()

    def health(self) -> dict:
        """The server's live health summary (rolling-window p50/p95/p99,
        error rate, hit rate, pending depth)."""
        return self.server.health()

    @property
    def metrics(self):
        """The server's :class:`repro.obs.metrics.MetricsRegistry`."""
        return self.server.metrics

    def close(self) -> None:
        self.server.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


_DEFAULT_LOCK = threading.Lock()
_DEFAULT_SERVERS: Dict[Tuple[str, Optional[str]], ScheduleServer] = {}


def default_client(
    target: Target, config: Optional[ServeConfig] = None
) -> Client:
    """The process-wide shared client for ``target`` (one server per
    (target, db_path); ``config`` only shapes the first construction)."""
    config = config or ServeConfig()
    key = (target.name, config.db_path)
    with _DEFAULT_LOCK:
        server = _DEFAULT_SERVERS.get(key)
        if server is None or server._closed:
            server = ScheduleServer(target, config)
            _DEFAULT_SERVERS[key] = server
    return Client(server)


def shutdown_default_servers() -> None:
    """Close every default server (tests, interpreter exit)."""
    with _DEFAULT_LOCK:
        servers = list(_DEFAULT_SERVERS.values())
        _DEFAULT_SERVERS.clear()
    for server in servers:
        server.close()


atexit.register(shutdown_default_servers)


def compile(  # noqa: A001 — deliberate: the serve-surface entry point
    func: PrimFunc,
    target: Target,
    *,
    config: Optional[ServeConfig] = None,
    client: Optional[Client] = None,
    timeout: Optional[float] = None,
) -> CompileResponse:
    """Compile one workload through the serving stack (``repro.compile``).

    Routes through ``client`` when given, else the process-wide default
    in-process client for ``target``: a database hit returns the stored
    best program (zero search), a miss tunes it once — with concurrent
    misses for the same workload coalesced into a single run — and
    every later call is a hit.  The response carries the scheduled
    program, its printed script, the predicted cycles, and (by default)
    a runtime-compiled callable.
    """
    client = client or default_client(target, config)
    return client.compile(func, timeout=timeout)
