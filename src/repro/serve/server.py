"""The persistent schedule server: lookup-first, tune-on-miss,
persist-forever.

A :class:`ScheduleServer` is the long-lived serving face of the tuning
stack.  Requests name a ``PrimFunc`` workload; the server answers

* **hits** synchronously from its :class:`~repro.meta.database.Database`
  — the stored decision vector is replayed through the sketch (zero
  search, zero measurements) and the program is returned immediately;
* **misses** asynchronously: the request parks on a future, a
  background worker drains queued misses in batches, and each batch
  runs one shared :class:`~repro.meta.session.TuningSession` against
  the server's database — so concurrent requests for the *same*
  workload coalesce into a single tuning run, and concurrent requests
  for *different* workloads share one session's budget and model.

With a :class:`~repro.meta.database.PersistentDatabase` behind it every
tuned entry is committed to disk the moment its task finishes; a server
restarted on the same directory serves byte-identical programs without
re-tuning.  All request accounting is exposed via :meth:`stats`
(hit/miss/coalesce counters, p50 hit latency) and mirrored into the
server's :class:`~repro.meta.telemetry.Telemetry` as per-request spans
and ``serve.*`` counters.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import cache as _cache
from ..diagnostics import DiagnosticContext
from ..meta.database import (
    Database,
    DatabaseEntry,
    PersistentDatabase,
    TuningDatabase,
    workload_key,
)
from ..meta.session import TuningSession
from ..meta.telemetry import Telemetry
from ..obs.metrics import MetricsRegistry
from ..sim import Target
from ..tir import PrimFunc
from ..tir.printer import script
from .api import CompileRequest, CompileResponse, ServeConfig, ServerStats

__all__ = ["ScheduleServer"]

#: hit latencies are 1-in-N sampled on the warm fast path (power of
#: two — the sampling test is a mask).  :meth:`ScheduleServer.health`
#: replicates each sampled hit N times when pooling windows so the
#: combined percentiles weight outcomes by true request volume.
_HIT_LATENCY_SAMPLE = 8


def _cache_hit_rates() -> Dict[str, float]:
    """Per-cache hit rate from the process-wide ``repro.cache`` registry
    — sampled at metric read time, so the gauges are always current."""
    out: Dict[str, float] = {}
    for name, stats in _cache.cache_stats().items():
        out[name] = float(stats.get("hit_rate", 0.0))
    return out


@dataclass
class _Pending:
    """One workload with an open tuning obligation and its waiters."""

    func: PrimFunc
    waiters: List[Tuple[Future, CompileRequest]] = field(default_factory=list)


class ScheduleServer:
    """Serve compiled schedules for ``PrimFunc`` workloads.

    >>> server = ScheduleServer(SimGPU(), ServeConfig(db_path="db/"))
    >>> resp = server.compile(ops.matmul(512, 512, 512))
    >>> resp.source, resp.trials   # ("miss", 16) first, ("hit", 0) after
    """

    def __init__(
        self,
        target: Target,
        config: Optional[ServeConfig] = None,
        *,
        database: Optional[Database] = None,
        telemetry: Optional[Telemetry] = None,
        recorder=None,
    ):
        self.target = target
        self.config = config or ServeConfig()
        if database is not None:
            self.database = database
        elif self.config.db_path:
            self.database = PersistentDatabase(
                self.config.db_path,
                ttl_seconds=self.config.ttl_seconds,
                max_entries=self.config.max_entries,
            )
        else:
            self.database = TuningDatabase()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.recorder = recorder
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._stats = ServerStats()
        #: recent zero-search serve latencies — a bounded rolling window
        #: (``ServeConfig.stats_window``), snapshot as a plain list by
        #: :meth:`stats`.  The latency *distribution* lives in the
        #: metrics histograms; this window only feeds the legacy
        #: ``p50_hit_seconds`` view.
        self._stats.hit_seconds = deque(maxlen=max(1, self.config.stats_window))
        self._started_unix = time.time()
        #: the serving metrics registry (``repro.obs.metrics``) — one
        #: per server; ``ServeConfig.metrics=False`` swaps every
        #: instrument for a no-op (the overhead-bench A/B switch).
        self.metrics = MetricsRegistry(enabled=self.config.metrics)
        window = self.config.stats_window
        self._m_requests = self.metrics.counter(
            "serve_requests_total", "compile responses served, by outcome",
            labels=("outcome",),
        )
        self._m_latency = self.metrics.histogram(
            "serve_latency_seconds",
            "request latency by outcome (hit outcome 1-in-8 sampled)",
            labels=("outcome",), window=window,
        )
        self._m_failures = self.metrics.counter(
            "serve_failures_total", "requests failed (tuning or replay)"
        )
        # Pre-resolved per-outcome children: the warm-hit path is
        # microsecond-class, so even the labels() dict lookup under the
        # family lock is measurable — resolve once, index a plain dict.
        _outcomes = ("hit", "bucket-hit", "miss", "coalesced")
        self._m_req_out = {
            o: self._m_requests.labels(outcome=o) for o in _outcomes
        }
        self._m_lat_out = {
            o: self._m_latency.labels(outcome=o) for o in _outcomes
        }
        #: staged response latencies, one deque per outcome.
        #: :meth:`_fold_serve_events` (a registry collector, so it runs
        #: before every snapshot read) fans them out in batches.  Floats
        #: are GC-untracked, so the staging buffer adds no collector
        #: pressure to the hot path (a staged tuple per response
        #: measurably did).  Hit/bucket-hit response *counts* never
        #: touch this at all — they are derived from
        #: :class:`ServerStats`, whose lock the fast path already pays
        #: for in both modes — and hit *latencies* are 1-in-8 sampled
        #: (the warm-hit path is ~30us; even one extra staged append
        #: per hit is measurable against the <2% overhead budget).
        #: ``None`` when metrics are disabled.
        self._m_events: Optional[Dict[str, deque]] = (
            {o: deque() for o in _outcomes} if self.metrics.enabled else None
        )
        #: serializes :meth:`_fold_serve_events` — the count-based
        #: drain is only safe with one folder at a time (see there).
        self._m_fold_lock = threading.Lock()
        self._m_hit_tick = 0  # hit-latency sampling counter
        #: response counts already folded into ``serve_requests_total``
        #: for the stats-derived outcomes.
        self._m_published = {"hit": 0, "bucket-hit": 0}
        self.metrics.register_collector(self._fold_serve_events)
        self._m_queue_wait = self.metrics.histogram(
            "serve_queue_wait_seconds",
            "miss time from submit to tuning-batch adoption", window=window,
        )
        self._m_batch_size = self.metrics.histogram(
            "serve_batch_size", "unique workloads per miss batch",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        )
        self._m_batch_occupancy = self.metrics.histogram(
            "serve_batch_window_occupancy",
            "fraction of max_batch filled when the window closed",
            buckets=(0.125, 0.25, 0.5, 0.75, 1.0),
        )
        self.metrics.gauge(
            "serve_pending_depth", "workloads awaiting tuning",
            fn=lambda: len(self._pending),
        )
        self.metrics.gauge(
            "serve_memo_entries", "entries in the served-program memo",
            fn=lambda: len(self._served),
        )
        self.metrics.gauge_fn(
            "cache_hit_rate", "memo cache hit rate by cache", _cache_hit_rates
        )
        # Persistent databases accept a metrics binding (duck-typed, no
        # obs dependency in the storage layer): get/put latency,
        # corrupt-line recoveries, evictions by reason.
        bind = getattr(self.database, "bind_metrics", None)
        if bind is not None:
            bind(self.metrics)
        #: served-program memo: key → (entry identity, scheduled func,
        #: script text, compiled callable).  Replaying a stored decision
        #: vector is deterministic, so repeat hits skip the rebuild and
        #: recompile entirely — this is what makes the warm hit path
        #: microsecond-class.  Invalidation is by entry identity: a
        #: better record landing for the key changes (cycles, sketch)
        #: and misses the memo.
        self._served: Dict[str, tuple] = {}
        self._served_max = 1024
        #: typed TIR7xx diagnostics from bucket canonicalization and
        #: cross-shape replay (TIR701 infeasible, TIR702 fallback,
        #: TIR703 out-of-bucket) — inspectable on a live server.
        self.diagnostics = DiagnosticContext()
        self._pending: Dict[str, _Pending] = {}
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._closed = False
        self._worker = threading.Thread(
            target=self._drain, name="serve-worker", daemon=True
        )
        self._worker.start()

    # -- the request path ----------------------------------------------
    def submit(self, func: PrimFunc) -> "Future[CompileResponse]":
        """Queue one compile request; returns a future.

        Hits resolve before this method returns; misses resolve when the
        background tuning session that adopts them finishes.  With
        ``ServeConfig.buckets`` set, the bucket representative's record
        is consulted *before* the exact lookup — an unseen in-bucket
        shape is served by adaptive replay with zero search — and
        in-bucket misses coalesce onto the representative's tuning run.
        """
        if self._closed:
            raise RuntimeError("ScheduleServer is closed")
        t0 = time.perf_counter()
        bucketed = None
        bucket_key: Optional[str] = None
        if self.config.buckets is not None:
            from ..frontend.shapes import canonicalize

            bucketed = canonicalize(func, self.config.buckets, ctx=self.diagnostics)
            if bucketed.bucketed:
                bucket_key = workload_key(bucketed.representative, self.target)
        request = CompileRequest(
            request_id=f"req-{next(self._ids):06d}",
            func=func,
            key=workload_key(func, self.target),
            submitted_at=t0,
            bucket_key=bucket_key,
        )
        future: "Future[CompileResponse]" = Future()
        # The request-scoped trace anchor: every span opened inside (and
        # the off-thread tuning batch, stamped separately) is reachable
        # via ``telemetry.span_tree(request.request_id)``.
        with self.telemetry.span(
            "serve-request", task=request.key, request=request.request_id
        ):
            bucket_failed = False
            if bucket_key is not None:
                entry = self.database.get(bucket_key)
                if entry is not None:
                    response = self._respond(request, entry, "bucket-hit", trials=0)
                    if response is not None:
                        elapsed = time.perf_counter() - t0
                        with self._lock:
                            self._stats.requests += 1
                            self._stats.bucket_hits += 1
                            self._stats.hit_seconds.append(elapsed)
                        self.telemetry.count("serve.bucket_hits")
                        future.set_result(response)
                        return future
                    # The representative's decisions are infeasible at
                    # this concrete shape (TIR701 in ``diagnostics``).
                    # The entry stays — it serves other shapes — but
                    # this request drops to the exact path, tuning its
                    # own shape on a miss.
                    bucket_failed = True
                    with self._lock:
                        self._stats.replay_fallbacks += 1
                    self.telemetry.count("serve.replay_fallbacks")
            entry = self.database.get(request.key)
            if entry is not None:
                response = self._respond(request, entry, "hit", trials=0)
                if response is not None:
                    elapsed = time.perf_counter() - t0
                    with self._lock:
                        self._stats.requests += 1
                        self._stats.hits += 1
                        self._stats.hit_seconds.append(elapsed)
                    self.telemetry.count("serve.hits")
                    future.set_result(response)
                    return future
                # The stored record could not be replayed (e.g. an
                # unknown sketch from a newer writer): drop it and tune.
                self.database.evict(request.key)
            # Miss.  In-bucket misses park on the *bucket* key with the
            # representative function, so two shapes of one bucket in a
            # batch window share a single tuning run; after a failed
            # bucket replay the request pends on its exact key instead.
            if bucket_key is not None and not bucket_failed:
                pend_key, pend_func = bucket_key, bucketed.representative
            else:
                pend_key, pend_func = request.key, func
            if bucket_failed:
                self.diagnostics.emit(
                    "TIR702",
                    f"bucket replay for {request.key} fell back to a fresh "
                    f"tune at the concrete shape",
                    func=func,
                )
            with self._lock:
                self._stats.requests += 1
                pending = self._pending.get(pend_key)
                if pending is not None:
                    pending.waiters.append((future, request))
                    self._stats.coalesced += 1
                    self.telemetry.count("serve.coalesced")
                    return future
                pending = _Pending(func=pend_func)
                pending.waiters.append((future, request))
                self._pending[pend_key] = pending
                self._stats.misses += 1
            self.telemetry.count("serve.misses")
            self._queue.put(pend_key)
        return future

    def compile(
        self, func: PrimFunc, timeout: Optional[float] = None
    ) -> CompileResponse:
        """Synchronous :meth:`submit` — block until served."""
        return self.submit(func).result(timeout=timeout)

    # -- the miss worker ------------------------------------------------
    def _drain(self) -> None:
        """Background loop: batch queued misses, tune, resolve waiters."""
        while True:
            key = self._queue.get()
            if key is None:
                return
            batch = [key]
            deadline = time.perf_counter() + self.config.batch_window_seconds
            stop = False
            while len(batch) < self.config.max_batch:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is None:
                    stop = True
                    break
                batch.append(nxt)
            try:
                self._tune_batch(batch)
            except Exception as err:  # noqa: BLE001 — the worker must survive
                self._fail_batch(batch, err)
            if stop:
                return

    def _tune_batch(self, keys: List[str]) -> None:
        """One shared tuning session for every queued miss in ``keys``."""
        t_adopt = time.perf_counter()
        with self._lock:
            funcs = {
                key: self._pending[key].func for key in keys if key in self._pending
            }
            owners = {
                key: self._pending[key].waiters[0][1]
                for key in funcs
                if self._pending[key].waiters
            }
        if not funcs:
            return
        self._m_batch_size.observe(len(funcs))
        self._m_batch_occupancy.observe(len(funcs) / max(1, self.config.max_batch))
        for request in owners.values():
            self._m_queue_wait.observe(t_adopt - request.submitted_at)
        # The batch span is stamped with the batch-owning request (the
        # first miss adopted), so that request's span tree carries the
        # whole tuning session; sibling misses in the batch get a
        # zero-length marker span each so their trees reference the
        # batch too.
        owner_ids = [r.request_id for r in owners.values()]
        with self.telemetry.span(
            "serve-tune-batch",
            task=keys[0],
            request=owner_ids[0] if owner_ids else None,
        ):
            for key, request in owners.items():
                if request.request_id != (owner_ids[0] if owner_ids else None):
                    self.telemetry.add(
                        "serve-batch-member", 0.0, key, request=request.request_id
                    )
            session = TuningSession(
                self.target,
                self.config.tune,
                database=self.database,
                workers=self.config.session_workers,
                telemetry=self.telemetry,
                provenance="serve",
                metrics=self.metrics,
            )
            for key, func in funcs.items():
                session.add(func, name=key)
            report = session.run()
        with self._lock:
            self._stats.tune_runs += 1
            self._stats.tuned_workloads += len(funcs)
        self.telemetry.count("serve.tune_runs")
        for key in funcs:
            entry = self.database.get(key)
            task = report.task(key)
            with self._lock:
                pending = self._pending.pop(key, None)
            if pending is None:  # pragma: no cover — defensive
                continue
            for index, (future, request) in enumerate(pending.waiters):
                if entry is None:
                    with self._lock:
                        self._stats.failures += 1
                    self._m_failures.inc()
                    future.set_exception(
                        RuntimeError(
                            f"tuning failed for workload {key}: "
                            f"{task.error or 'no database entry'}"
                        )
                    )
                    continue
                source = "miss" if index == 0 else "coalesced"
                trials = task.measured if index == 0 else 0
                response = self._respond(request, entry, source, trials=trials)
                if response is None and request.bucket_key == key:
                    # The freshly tuned representative's decisions do
                    # not adapt to this waiter's concrete shape: tune
                    # the concrete shape itself (TIR702).
                    fresh = self._fresh_tune(request)
                    if fresh is not None:
                        fresh_entry, measured = fresh
                        response = self._respond(
                            request, fresh_entry, source, trials=measured
                        )
                if response is None:
                    with self._lock:
                        self._stats.failures += 1
                    self._m_failures.inc()
                    future.set_exception(
                        RuntimeError(f"replay failed for workload {key}")
                    )
                else:
                    future.set_result(response)

    def _fail_batch(self, keys: List[str], err: Exception) -> None:
        for key in keys:
            with self._lock:
                pending = self._pending.pop(key, None)
            if pending is None:
                continue
            for future, _request in pending.waiters:
                with self._lock:
                    self._stats.failures += 1
                self._m_failures.inc()
                if not future.done():
                    future.set_exception(err)

    def _fresh_tune(self, request: CompileRequest) -> Optional[Tuple[DatabaseEntry, int]]:
        """Tune the request's concrete shape after an infeasible bucket
        replay; returns (entry, measured trials) or ``None``."""
        from ..meta.tune import tune

        self.diagnostics.emit(
            "TIR702",
            f"bucket replay for {request.key} fell back to a fresh tune "
            f"at the concrete shape",
            func=request.func,
        )
        with self._lock:
            self._stats.replay_fallbacks += 1
        self.telemetry.count("serve.replay_fallbacks")
        try:
            result = tune(
                request.func,
                self.target,
                self.config.tune,
                database=self.database,
                telemetry=self.telemetry,
                task=request.key,
            )
        except Exception:  # noqa: BLE001 — caller reports the failure
            return None
        entry = self.database.get(request.key)
        if entry is None:
            return None
        return entry, result.stats.measured

    # -- response construction ------------------------------------------
    def _respond(
        self,
        request: CompileRequest,
        entry: DatabaseEntry,
        source: str,
        trials: int,
    ) -> Optional[CompileResponse]:
        identity = (entry.cycles, entry.sketch, tuple(map(str, entry.decisions)))
        with self._lock:
            cached = self._served.get(request.key)
        if cached is not None and cached[0] == identity:
            _, best_func, text, compiled = cached
        else:
            # An entry recorded under a different key is the bucket
            # representative's: replay it adaptively at this request's
            # concrete shape (§5.2 forced-decision replay).
            mode = "adapt" if entry.key != request.key else "strict"
            sch = self.database.replay_entry(
                request.func, entry, decision_mode=mode, ctx=self.diagnostics
            )
            if sch is None:
                return None
            best_func = sch.func
            text = script(best_func)
            compiled = None
            if self.config.compile_programs:
                from ..runtime import compile_func

                compiled = compile_func(best_func)
            with self._lock:
                if len(self._served) >= self._served_max:
                    self._served.clear()
                self._served[request.key] = (identity, best_func, text, compiled)
        wait = time.perf_counter() - request.submitted_at
        if source != "hit":
            # Hit latency is covered by the synchronous serve-request
            # span; miss/coalesced waits happen off-thread, so they are
            # recorded at their true start for the exported timeline —
            # stamped with the waiter's request id so every coalesced
            # response has its own non-empty span tree.
            self.telemetry.add(
                "serve-wait", wait, request.key,
                start=request.submitted_at, request=request.request_id,
            )
        events = self._m_events
        if events is not None:
            if source == "hit":
                # The warm-hit fast path: counts come free from
                # ServerStats at fold time, so the only per-hit metrics
                # work is this 1-in-N latency sample.  The unsynchronized
                # tick just shifts *which* hit is sampled under races.
                self._m_hit_tick += 1
                stage = not (self._m_hit_tick & (_HIT_LATENCY_SAMPLE - 1))
            else:
                stage = True
            if stage:
                staged = events.get(source)
                if staged is None:
                    staged = events.setdefault(source, deque())
                staged.append(wait)
                # 1024 (not the registry's 4096) keeps each inline fold
                # ~250us, spreading the amortized cost evenly instead
                # of landing a rare millisecond pause on one request.
                if len(staged) >= 1024:
                    self._fold_serve_events()
        if self.recorder is not None:
            self.recorder.serve_request(request.key, source, trials, wait)
        return CompileResponse(
            request_id=request.request_id,
            key=request.key,
            source=source,
            func=best_func,
            script=text,
            cycles=entry.cycles,
            sketch=entry.sketch,
            trials=trials,
            wait_seconds=wait,
            compiled=compiled,
        )

    def _fold_serve_events(self) -> None:
        """Fold staged response events into the requests counter and
        latency histogram.

        Runs as a registry collector (before every snapshot read), from
        :meth:`health`, and inline when a staging buffer fills.  Two
        sources feed ``serve_requests_total``: hit/bucket-hit counts
        are *derived* from :class:`ServerStats` (exact, and free on the
        fast path — the stats increment is paid in both modes), while
        miss/coalesced responses are counted from their staged
        latencies (every one is staged; those paths are tuning-scale).
        The whole fold runs under ``_m_fold_lock``: the count-based
        drain reads ``len`` then pops that many items, so two
        concurrent folders could together pop more than were staged
        and raise ``IndexError`` — one folder at a time makes the
        read-then-pop window race-free (appends racing past ``len``
        are simply picked up by the next fold).  ``_m_fold_lock`` is
        acquired before the server lock, never the reverse.
        """
        events = self._m_events
        if events is None:
            return
        with self._m_fold_lock:
            with self._lock:
                derived = (
                    ("hit", self._stats.hits),
                    ("bucket-hit", self._stats.bucket_hits),
                )
                deltas = []
                for source, total in derived:
                    delta = total - self._m_published[source]
                    if delta > 0:
                        self._m_published[source] = total
                        deltas.append((source, delta))
            for source, delta in deltas:
                self._m_req_out[source].inc(delta)
            for source, staged in list(events.items()):
                pending = len(staged)
                if not pending:
                    continue
                waits = [staged.popleft() for _ in range(pending)]
                if source not in self._m_published:
                    counter = self._m_req_out.get(source)
                    if counter is None:  # an unanticipated outcome label
                        counter = self._m_requests.labels(outcome=source)
                    counter.inc(len(waits))
                hist = self._m_lat_out.get(source)
                if hist is None:
                    hist = self._m_latency.labels(outcome=source)
                hist.observe_many(waits)

    # -- introspection / lifecycle --------------------------------------
    def stats(self) -> ServerStats:
        """A snapshot copy of the request accounting."""
        with self._lock:
            return ServerStats(
                requests=self._stats.requests,
                hits=self._stats.hits,
                misses=self._stats.misses,
                coalesced=self._stats.coalesced,
                tune_runs=self._stats.tune_runs,
                tuned_workloads=self._stats.tuned_workloads,
                failures=self._stats.failures,
                bucket_hits=self._stats.bucket_hits,
                replay_fallbacks=self._stats.replay_fallbacks,
                hit_seconds=list(self._stats.hit_seconds),
            )

    def health(self) -> dict:
        """A point-in-time health summary for dashboards and probes.

        Latency percentiles come from the rolling windows of the
        ``serve_latency_seconds`` histograms (all outcomes combined) —
        the *same* observations the exported histograms hold.  Because
        hit latencies are 1-in-``_HIT_LATENCY_SAMPLE`` sampled while
        miss/coalesced latencies are fully staged, each sampled hit is
        replicated by the sampling factor before pooling, so the
        combined percentiles weight outcomes by true request volume
        instead of overweighting the slow tuning-scale paths.  With
        metrics disabled the zero-search window (``hit_seconds``)
        stands in.
        """
        with self._lock:
            requests = self._stats.requests
            failures = self._stats.failures
            hits = self._stats.hits
            bucket_hits = self._stats.bucket_hits
            pending = len(self._pending)
            fallback_window = list(self._stats.hit_seconds)
        window: List[float] = []
        if self.metrics.enabled:
            self._fold_serve_events()
            for key, child in self._m_latency.children().items():
                values = child.window_values()
                if key == ("hit",):
                    values = [
                        v for v in values for _ in range(_HIT_LATENCY_SAMPLE)
                    ]
                window.extend(values)
        else:
            window = fallback_window
        window.sort()

        def _q(q: float) -> Optional[float]:
            if not window:
                return None
            return window[min(len(window) - 1, int(q * len(window)))]

        return {
            "status": "closed" if self._closed else "ok",
            "uptime_seconds": time.time() - self._started_unix,
            "requests": requests,
            "failures": failures,
            "error_rate": failures / requests if requests else 0.0,
            "hit_rate": (hits + bucket_hits) / requests if requests else 0.0,
            "pending_workloads": pending,
            "window_size": len(window),
            "p50_seconds": _q(0.50),
            "p95_seconds": _q(0.95),
            "p99_seconds": _q(0.99),
            "metrics_enabled": self.metrics.enabled,
        }

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Stop the miss worker and fail any unresolved waiters.

        Idempotent.  Queued-but-untuned workloads get a
        ``RuntimeError`` so no client blocks forever on a dead server.
        """
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._worker.join(timeout=timeout)
        with self._lock:
            leftovers = list(self._pending.items())
            self._pending.clear()
        for _key, pending in leftovers:
            for future, _request in pending.waiters:
                if not future.done():
                    future.set_exception(RuntimeError("ScheduleServer closed"))
        if isinstance(self.database, PersistentDatabase):
            self.database.flush_lru()

    def __enter__(self) -> "ScheduleServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
