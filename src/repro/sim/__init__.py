"""Simulated hardware: target descriptions and the analytical
performance model (the reproduction's substitute for an RTX 3080 and a
Graviton2 — see DESIGN.md §2)."""

from .cost import CostModelError, PerfReport, estimate
from .target import SimCPU, SimGPU, Target

__all__ = ["Target", "SimGPU", "SimCPU", "estimate", "PerfReport", "CostModelError"]
