"""Analytical performance model for scheduled TensorIR programs.

This is the reproduction's stand-in for running on real hardware: a
roofline-style cycle estimator that walks a scheduled PrimFunc and
charges

* scalar arithmetic against the scalar pipelines,
* tensorized blocks against the tensor units (via each intrinsic's
  declared per-issue cost),
* buffer traffic against the memory level of each access's scope
  (with a coalescing/vectorisation efficiency factor), and
* parallelism against the machine's width (occupancy).

The model deliberately captures the first-order effects the paper's
evaluation turns on: tensor units are ~8x (GPU) / ~16x (CPU) faster than
scalar pipes, so tensorized programs shift from compute-bound to
memory-bound and data-movement scheduling decides the winner (§4.3).
Schedules that cache into shared memory at the right loop level reduce
the counted global traffic; vectorised, coalesced copies reduce the
per-byte cost; unrolled loops shed loop overhead — so every scheduling
decision the auto-scheduler searches over moves the estimate the way it
would move a real kernel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..tir import (
    BinaryOp,
    Block,
    BlockRealize,
    Buffer,
    BufferStore,
    Call,
    Cast,
    For,
    ForKind,
    IfThenElse,
    IntImm,
    LetStmt,
    Not,
    PrimExpr,
    PrimFunc,
    Select,
    SeqStmt,
    Stmt,
    Var,
    collect_vars,
    const_int_value,
    evaluate_expr,
)
from ..tir import dtype as _dt
from ..tir.expr import BufferLoad
from ..tir.stmt import Evaluate
from .. import cache as _cache
from .target import SimCPU, SimGPU, Target

__all__ = ["PerfReport", "estimate", "CostModelError"]


class CostModelError(Exception):
    pass


@dataclass
class PerfReport:
    """Cycle estimate with its roofline breakdown."""

    cycles: float
    seconds: float
    bound: str  # which term dominates: "scalar"|"tensor"|"global"|"shared"|...
    breakdown: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, float] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover
        us = self.seconds * 1e6
        return f"PerfReport({self.cycles:.0f} cycles, {us:.1f} us, {self.bound}-bound)"


class _Counters:
    def __init__(self):
        self.scalar_ops = 0.0
        self.tensor_busy = 0.0  # sum of per-issue cycles over all issues
        self.loop_iters = 0.0
        self.global_bytes = 0.0
        self.shared_bytes = 0.0
        self.buffer_bytes: Dict[int, Tuple[Buffer, float]] = {}
        self.block_extents: Dict[str, int] = {}
        self.thread_extents: Dict[str, int] = {}
        self.parallel = 1
        self.max_vthread = 1

    @property
    def blocks(self) -> int:
        total = 1
        for e in self.block_extents.values():
            total *= e
        return total

    @property
    def threads(self) -> int:
        total = 1
        for e in self.thread_extents.values():
            total *= e
        return total


_OP_COST = {"exp": 4.0, "log": 4.0, "sqrt": 2.0, "rsqrt": 2.0, "tanh": 6.0, "erf": 6.0, "sigmoid": 6.0, "pow": 6.0}


def _expr_flops(expr: PrimExpr) -> float:
    """Arithmetic operation count of one evaluation of ``expr``."""
    ops = 0.0
    stack = [expr]
    while stack:
        e = stack.pop()
        if isinstance(e, BinaryOp):
            ops += 1.0
            stack.append(e.a)
            stack.append(e.b)
        elif isinstance(e, Call):
            ops += _OP_COST.get(e.op, 2.0)
            stack.extend(e.args)
        elif isinstance(e, Select):
            ops += 1.0
            stack.extend((e.condition, e.true_value, e.false_value))
        elif isinstance(e, Cast):
            ops += 0.5
            stack.append(e.value)
        elif isinstance(e, Not):
            ops += 0.5
            stack.append(e.a)
        elif isinstance(e, BufferLoad):
            stack.extend(e.indices)
    return ops


def _collect_loads(expr: PrimExpr) -> List[BufferLoad]:
    loads = []
    stack = [expr]
    while stack:
        e = stack.pop()
        if isinstance(e, BufferLoad):
            loads.append(e)
            stack.extend(e.indices)
        elif isinstance(e, BinaryOp):
            stack.extend((e.a, e.b))
        elif isinstance(e, Call):
            stack.extend(e.args)
        elif isinstance(e, Select):
            stack.extend((e.condition, e.true_value, e.false_value))
        elif isinstance(e, (Cast, Not)):
            stack.append(e.value if isinstance(e, Cast) else e.a)
    return loads


class _Walker:
    def __init__(self, target: Target):
        self.target = target
        self.c = _Counters()
        #: extents of loops on the current path, by var identity.
        self.loop_extents: Dict[int, int] = {}
        self.innermost_var: Optional[Var] = None
        self.vector_width = 1
        #: substitution of block iterator vars by their binding exprs,
        #: used to trace coalescing through block boundaries.
        self.iter_binding: Dict[int, PrimExpr] = {}
        #: thread tags currently bound on the path: an inner loop bound
        #: to an already-active tag re-distributes over the same threads
        #: (cooperative fetch) instead of multiplying the work.
        self.active_tags: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def walk(self, stmt: Stmt, mult: float) -> None:
        if isinstance(stmt, SeqStmt):
            for s in stmt.stmts:
                self.walk(s, mult)
        elif isinstance(stmt, For):
            self._walk_for(stmt, mult)
        elif isinstance(stmt, BlockRealize):
            self._walk_block(stmt, mult)
        elif isinstance(stmt, BufferStore):
            self._charge_store(stmt, mult)
        elif isinstance(stmt, IfThenElse):
            self.c.scalar_ops += mult * _expr_flops(stmt.condition)
            self.walk(stmt.then_case, mult)
            if stmt.else_case is not None:
                self.walk(stmt.else_case, mult)
        elif isinstance(stmt, LetStmt):
            self.c.scalar_ops += mult * _expr_flops(stmt.value)
            self.walk(stmt.body, mult)
        elif isinstance(stmt, Evaluate):
            self.c.scalar_ops += mult * _expr_flops(stmt.value)
        else:
            from ..tir.stmt import AllocateConst

            if isinstance(stmt, AllocateConst):
                self.walk(stmt.body, mult)
            else:
                raise CostModelError(f"cannot cost {type(stmt).__name__}")

    def _walk_for(self, loop: For, mult: float) -> None:
        extent = const_int_value(loop.extent)
        if extent is None:
            raise CostModelError(f"symbolic loop extent on {loop.loop_var.name}")
        self.loop_extents[id(loop.loop_var)] = extent
        saved_inner = self.innermost_var
        saved_vec = self.vector_width
        new_mult = mult * extent
        if loop.kind == ForKind.SERIAL:
            self.c.loop_iters += new_mult
            self.innermost_var = loop.loop_var
        elif loop.kind == ForKind.UNROLLED:
            self.innermost_var = loop.loop_var  # unrolled: no iter overhead
        elif loop.kind == ForKind.VECTORIZED:
            self.innermost_var = loop.loop_var
            self.vector_width = max(self.vector_width, extent)
            self.c.loop_iters += mult
        elif loop.kind == ForKind.PARALLEL:
            self.c.parallel *= extent
            self.c.loop_iters += new_mult
        saved_tag_extent = None
        tag = loop.thread_tag
        if loop.kind == ForKind.THREAD_BINDING:
            if tag != "vthread" and self.active_tags.get(tag, 0) > 0:
                # Re-binding an active axis: the iterations distribute
                # over the already-launched threads (cooperative fetch),
                # so each thread runs ceil(extent / active) of them.
                active = self.active_tags[tag]
                new_mult = mult * max(1.0, math.ceil(extent / active))
            if tag.startswith("blockIdx"):
                prev = self.c.block_extents.get(tag, 1)
                self.c.block_extents[tag] = max(prev, extent)
            elif tag.startswith("threadIdx"):
                prev = self.c.thread_extents.get(tag, 1)
                self.c.thread_extents[tag] = max(prev, extent)
                # threadIdx.x is the coalescing axis.
                if tag == "threadIdx.x":
                    self.innermost_var = (
                        loop.loop_var if self.innermost_var is None else self.innermost_var
                    )
            else:  # vthread
                self.c.max_vthread = max(self.c.max_vthread, extent)
            if tag != "vthread":
                saved_tag_extent = self.active_tags.get(tag, 0)
                if saved_tag_extent == 0:
                    self.active_tags[tag] = extent
        self.walk(loop.body, new_mult)
        self.innermost_var = saved_inner
        self.vector_width = saved_vec
        if saved_tag_extent is not None:
            self.active_tags[tag] = saved_tag_extent
        del self.loop_extents[id(loop.loop_var)]

    def _walk_block(self, realize: BlockRealize, mult: float) -> None:
        block = realize.block
        if block.annotations.get("reshape"):
            # A row-major reshape relayout: free on real hardware (the
            # compiler elides it / weights are pre-packed offline).
            return
        for iv, binding in zip(block.iter_vars, realize.iter_values):
            self.iter_binding[id(iv.var)] = binding
        intrin_name = block.annotations.get("tensorize")
        if intrin_name:
            self._charge_tensorized(realize, mult, intrin_name)
        else:
            if block.init is not None:
                init_mult = mult / max(1.0, self._reduce_extent(realize))
                self.walk(block.init, init_mult)
            self.walk(block.body, mult)
        for iv in block.iter_vars:
            del self.iter_binding[id(iv.var)]

    def _reduce_extent(self, realize: BlockRealize) -> float:
        """Product of path-loop extents driving reduction iterators —
        the init statement runs on 1/this of the instances."""
        total = 1.0
        seen = set()
        for iv, binding in zip(realize.block.iter_vars, realize.iter_values):
            if not iv.is_reduce:
                continue
            for v in collect_vars(binding):
                if id(v) in self.loop_extents and id(v) not in seen:
                    seen.add(id(v))
                    total *= self.loop_extents[id(v)]
                elif id(v) in self.iter_binding and id(v) not in seen:
                    # an enclosing block's reduce iterator
                    seen.add(id(v))
        return total

    # -- tensorized blocks ------------------------------------------------
    def _charge_tensorized(self, realize: BlockRealize, mult: float, intrin_name: str) -> None:
        from ..intrin import get_intrin

        intrin = get_intrin(intrin_name)
        self.c.tensor_busy += mult * float(intrin.cost.get("cycles", 1.0))
        # Memory traffic for operands that live in addressable memory.
        block = realize.block
        for region in list(block.reads) + list(block.writes):
            scope = region.buffer.scope
            if scope.startswith("wmma") or scope == "local":
                continue
            elements = 1.0
            for rng in region.region:
                extent = const_int_value(rng.extent)
                if extent is None:
                    extent = 1
                elements *= extent
            nbytes = elements * _dt.bytes_of(region.buffer.dtype)
            self._add_traffic(region.buffer, mult * nbytes, efficiency=1.0)

    # -- scalar memory/compute ---------------------------------------------
    def _charge_store(self, store: BufferStore, mult: float) -> None:
        # SIMD width is bounded by the accumulator element width
        # (128-bit vectors: 4 lanes of int32/fp32, 8 of fp16).
        lanes = max(1, 128 // _dt.bits_of(store.buffer.dtype))
        vec = min(self.vector_width, lanes)
        flops = _expr_flops(store.value) + 1.0  # +1 for the store itself
        self.c.scalar_ops += mult * flops / vec if vec > 1 else mult * flops
        self._charge_access(store.buffer, store.indices, mult, is_store=True)
        for load in _collect_loads(store.value):
            self._charge_access(load.buffer, load.indices, mult, is_store=False)

    def _charge_access(self, buffer: Buffer, indices, mult: float, is_store: bool) -> None:
        scope = buffer.scope
        if scope.startswith("wmma") or scope == "local":
            return  # registers
        eff = self._access_efficiency(indices)
        nbytes = _dt.bytes_of(buffer.dtype)
        if not is_store:
            # Register reuse: a load invariant to the innermost loop is
            # hoisted out of it by any real backend — charge it once per
            # outer iteration, not once per instance.
            hoist = 1.0
            v = self.innermost_var
            if v is not None and not any(
                any(u is v for u in collect_vars(idx)) for idx in indices
            ):
                hoist = float(self.loop_extents.get(id(v), 1))
            mult = mult / max(hoist, 1.0)
        self._add_traffic(buffer, mult * nbytes, efficiency=eff)

    def _access_efficiency(self, indices) -> float:
        """1.0 for unit-stride (coalesced / vectorisable) accesses along
        the fastest axis, else a strided-transaction penalty."""
        if not indices:
            return 1.0
        v = self.innermost_var
        if v is None:
            return 1.0
        last = indices[-1]
        stride = _stride_of(last, v)
        if stride is None:
            # the fastest loop variable indexes a *higher* dimension →
            # large stride in memory.
            used_elsewhere = any(
                any(u is v for u in collect_vars(idx)) for idx in indices[:-1]
            )
            return 0.25 if used_elsewhere else 1.0
        if abs(stride) <= 1:
            return 1.0
        if abs(stride) <= 4:
            return 0.5
        return 0.25

    def _add_traffic(self, buffer: Buffer, nbytes: float, efficiency: float) -> None:
        cost_bytes = nbytes / max(efficiency, 1e-6)
        if buffer.scope == "shared":
            self.c.shared_bytes += cost_bytes
        else:
            self.c.global_bytes += cost_bytes
            key = id(buffer)
            prev = self.c.buffer_bytes.get(key)
            total = cost_bytes if prev is None else prev[1] + cost_bytes
            self.c.buffer_bytes[key] = (buffer, total)


def _stride_of(index: PrimExpr, var: Var) -> Optional[int]:
    """Coefficient of ``var`` in ``index`` (None if var is absent)."""
    if not any(v is var for v in collect_vars(index)):
        return None
    env0 = {v: 0 for v in collect_vars(index)}
    env1 = dict(env0)
    env1[var] = 1
    try:
        return int(evaluate_expr(index, env1) - evaluate_expr(index, env0))
    except Exception:  # noqa: BLE001 - non-affine: treat as strided
        return 8


# ---------------------------------------------------------------------------
# roofline combination
# ---------------------------------------------------------------------------


def _combine_gpu(c: _Counters, t: SimGPU) -> PerfReport:
    total_threads = c.blocks * c.threads
    occupancy = min(1.0, total_threads / (t.sm_count * t.full_occupancy_threads))
    occupancy = max(occupancy, 1.0 / (t.sm_count * t.full_occupancy_threads))
    sm_util = min(1.0, c.blocks / t.sm_count) if c.blocks else 1.0
    util = max(0.02, min(1.0, math.sqrt(occupancy * max(sm_util, occupancy))))

    scalar = (c.scalar_ops + 0.5 * c.loop_iters) / (
        t.scalar_flops_per_cycle * t.sm_count * util
    )
    tensor = c.tensor_busy / (t.tensor_units_per_sm * t.sm_count * util)
    # Global traffic: each buffer's first (compulsory) pass comes from
    # DRAM; re-reads of L2-resident buffers hit L2 bandwidth.
    mem_global = 0.0
    for buffer, traffic in c.buffer_bytes.values():
        try:
            footprint = buffer.nbytes()
        except ValueError:
            footprint = t.l2_capacity + 1
        compulsory = min(traffic, float(footprint))
        repeated = traffic - compulsory
        repeat_bw = t.l2_bytes_per_cycle if footprint <= t.l2_capacity else t.global_bytes_per_cycle
        mem_global += compulsory / t.global_bytes_per_cycle + repeated / repeat_bw
    mem_global /= max(util, 0.1)
    mem_shared = c.shared_bytes / (t.shared_bytes_per_cycle_per_sm * t.sm_count * util)

    terms = {
        "scalar": scalar,
        "tensor": tensor,
        "global": mem_global,
        "shared": mem_shared,
    }
    bound = max(terms, key=terms.get)
    peak = terms[bound]
    overlap_rest = 0.15 * (sum(terms.values()) - peak)
    cycles = t.kernel_launch_cycles + peak + overlap_rest
    return PerfReport(
        cycles=cycles,
        seconds=t.cycles_to_seconds(cycles),
        bound=bound,
        breakdown=dict(terms, launch=t.kernel_launch_cycles, occupancy=util),
        counts={
            "scalar_ops": c.scalar_ops,
            "tensor_busy": c.tensor_busy,
            "global_bytes": c.global_bytes,
            "shared_bytes": c.shared_bytes,
            "blocks": c.blocks,
            "threads_per_block": c.threads,
        },
    )


def _cpu_level_bw(t: SimCPU, footprint: int) -> float:
    if footprint <= t.l1_capacity:
        return t.l1_bytes_per_cycle
    if footprint <= t.l2_capacity:
        return t.l2_bytes_per_cycle
    return t.dram_bytes_per_cycle


def _combine_cpu(c: _Counters, t: SimCPU) -> PerfReport:
    cores_used = min(t.cores, max(1, c.parallel))
    util = cores_used / t.cores

    scalar = (c.scalar_ops + 0.5 * c.loop_iters) / (
        t.scalar_ops_per_cycle * t.cores * util
    )
    tensor = c.tensor_busy / max(cores_used, 1)
    mem = 0.0
    for buffer, traffic in c.buffer_bytes.values():
        try:
            footprint = buffer.nbytes()
        except ValueError:
            footprint = t.l2_capacity + 1
        mem += traffic / _cpu_level_bw(t, footprint)
    terms = {"scalar": scalar, "tensor": tensor, "memory": mem}
    bound = max(terms, key=terms.get)
    peak = terms[bound]
    overlap_rest = 0.15 * (sum(terms.values()) - peak)
    cycles = t.op_launch_cycles + peak + overlap_rest
    return PerfReport(
        cycles=cycles,
        seconds=t.cycles_to_seconds(cycles),
        bound=bound,
        breakdown=dict(terms, launch=t.op_launch_cycles, cores_used=cores_used),
        counts={
            "scalar_ops": c.scalar_ops,
            "tensor_busy": c.tensor_busy,
            "memory_bytes": sum(tr for _, tr in c.buffer_bytes.values()),
            "parallel": c.parallel,
        },
    )


#: memoized estimates keyed on (structural hash, target) — the estimate
#: depends only on program structure, never on names.  Stores a pristine
#: copy ("ok") or the error message ("err"); callers get fresh copies
#: because ``estimate`` results are mutated downstream (launch overhead).
_ESTIMATE_CACHE = _cache.MemoCache("sim.estimate", maxsize=4096)


def _copy_report(report: PerfReport) -> PerfReport:
    return PerfReport(
        cycles=report.cycles,
        seconds=report.seconds,
        bound=report.bound,
        breakdown=dict(report.breakdown),
        counts=dict(report.counts),
    )


def estimate(func: PrimFunc, target: Target) -> PerfReport:
    """Estimate the execution cost of ``func`` on ``target``.

    Deterministic in (structure of ``func``, ``target``), so results are
    memoized on :func:`repro.tir.structural_hash` — identical candidates
    re-surfacing during evolutionary search cost a hash, not a walk.
    """
    if not _cache.caches_enabled():
        return _estimate_impl(func, target)
    from ..tir.structural import structural_hash

    key = (structural_hash(func), getattr(target, "name", repr(target)))
    hit = _ESTIMATE_CACHE.lookup(key)
    if hit is not _cache.MISS:
        kind, payload = hit
        if kind == "err":
            raise CostModelError(payload)
        return _copy_report(payload)
    try:
        report = _estimate_impl(func, target)
    except CostModelError as err:
        _ESTIMATE_CACHE.put(key, ("err", str(err)))
        raise
    _ESTIMATE_CACHE.put(key, ("ok", _copy_report(report)))
    return report


def _estimate_impl(func: PrimFunc, target: Target) -> PerfReport:
    walker = _Walker(target)
    root = func.body.block
    walker.walk(root.body, 1.0)
    # Each top-level nest is its own kernel launch / op dispatch.
    body = root.body
    n_kernels = len(body.stmts) if isinstance(body, SeqStmt) else 1
    if isinstance(target, SimGPU):
        report = _combine_gpu(walker.c, target)
        extra = (n_kernels - 1) * target.kernel_launch_cycles
    elif isinstance(target, SimCPU):
        report = _combine_cpu(walker.c, target)
        extra = (n_kernels - 1) * target.op_launch_cycles
    else:
        raise CostModelError(f"no performance model for target {target!r}")
    if extra:
        report.cycles += extra
        report.seconds = target.cycles_to_seconds(report.cycles)
        report.breakdown["launch"] = report.breakdown.get("launch", 0.0) + extra
    return report
