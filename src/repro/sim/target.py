"""Simulated hardware targets.

The paper evaluates on an NVIDIA RTX 3080 (Tensor Cores, fp16) and an
AWS Graviton2 (ARM ``sdot``, int8).  This reproduction has neither, so
per the substitution rule we model both machines analytically:
first-order throughput numbers (scalar vs tensor-unit FLOP/cycle, memory
bandwidth per level, parallel width) and the constraint tables used by
threading validation.  Absolute numbers are loosely calibrated to the
real parts; the experiments only rely on the *ratios* (tensor : scalar
throughput, compute : bandwidth), which match the real machines' orders
of magnitude.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["Target", "SimGPU", "SimCPU"]


class Target:
    """Base class for simulated hardware targets."""

    kind = "abstract"
    name = "abstract"

    #: Tensor intrinsics natively available on this target.
    compute_intrins: tuple = ()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name}>"


class SimGPU(Target):
    """An RTX-3080-class simulated GPU.

    68 SMs at 1.7 GHz; each SM owns 128 fp32 lanes (FMA: 256 FLOP/cycle)
    and 4 tensor cores (512 fp16 FLOP/cycle each → 2048 FLOP/cycle/SM,
    an 8x throughput step over the scalar pipeline — the reason
    tensorization wins and data movement becomes the bottleneck, §4.3).
    """

    kind = "gpu"
    name = "sim-rtx3080"

    sm_count = 68
    clock_ghz = 1.7
    warp_size = 32

    # Launch / capacity constraints (threading validation, §3.3).
    max_threads_per_block = 1024
    shared_memory_per_block = 48 * 1024  # bytes
    max_vthread = 16

    # Throughput (per SM, per cycle).
    scalar_flops_per_cycle = 256.0  # fp32/fp16 CUDA-core FMA lanes
    tensor_flops_per_cycle = 2048.0  # 4 tensor cores x 512
    tensor_units_per_sm = 4

    # Memory system (bytes per cycle, whole chip).
    global_bytes_per_cycle = 440.0  # ~760 GB/s / 1.7 GHz
    shared_bytes_per_cycle_per_sm = 128.0
    l2_bytes_per_cycle = 1800.0
    l2_capacity = 5 * 1024 * 1024

    # Fixed overheads.
    kernel_launch_cycles = 4000.0  # ~2.4 us
    #: threads needed per SM for full latency hiding.
    full_occupancy_threads = 256

    compute_intrins = ("wmma_16x16x16_f16",)

    _THREAD_LIMITS = {
        "threadIdx.x": 1024,
        "threadIdx.y": 1024,
        "threadIdx.z": 64,
        "blockIdx.x": 2**31 - 1,
        "blockIdx.y": 65535,
        "blockIdx.z": 65535,
        "vthread": 16,
    }

    def max_thread_extent(self, tag: str) -> int:
        return self._THREAD_LIMITS.get(tag, 1024)

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.clock_ghz * 1e9)


class SimCPU(Target):
    """A Graviton2-class simulated ARM CPU.

    16 modelled cores at 2.5 GHz with 128-bit NEON.  The ``sdot``
    instruction performs 16 int8 MACs (32 ops) per issue, two issues per
    cycle per core — a 16x step over scalar int multiply-accumulate,
    which is the CPU analogue of the tensor-core gap.
    """

    kind = "cpu"
    name = "sim-graviton2"

    cores = 16
    clock_ghz = 2.5

    # Throughput (per core, per cycle).
    scalar_ops_per_cycle = 4.0  # superscalar integer/fp pipes
    vector_lanes_int8 = 16  # 128-bit NEON
    vector_lanes_fp32 = 4
    sdot_flops_per_cycle = 64.0  # 2 sdot issues x 32 ops

    # Memory (bytes per cycle, whole chip).
    dram_bytes_per_cycle = 80.0  # ~200 GB/s / 2.5 GHz
    l2_bytes_per_cycle = 512.0
    l2_capacity = 1024 * 1024  # per-core L2, modelled flat
    l1_bytes_per_cycle = 1024.0
    l1_capacity = 64 * 1024

    op_launch_cycles = 2000.0

    compute_intrins = ("sdot_4x4x4_i8",)

    # CPUs have no GPU-style thread axes; validation limits are moot but
    # provided for interface completeness.
    max_threads_per_block = 1
    shared_memory_per_block = 0

    def max_thread_extent(self, tag: str) -> int:
        return 1

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.clock_ghz * 1e9)
