"""TensorIR abstraction: buffers, loop nests and blocks (paper §3).

The package exposes the IR node classes, the imperative builder dialect,
the script printer, structural equality, functors and concrete
evaluation.
"""

from . import dtype
from .buffer import Buffer, BufferRegion, MemoryScope, decl_buffer
from .builder import BlockBuilder, IRBuilder, call
from .eval import evaluate_expr
from .expr import (
    Add,
    And,
    BinaryOp,
    BufferLoad,
    Call,
    Cast,
    EQ,
    FloatImm,
    FloorDiv,
    FloorMod,
    GE,
    GT,
    IntImm,
    IterVar,
    LE,
    LT,
    Max,
    Min,
    Mul,
    NE,
    Not,
    Or,
    PrimExpr,
    Range,
    Select,
    StringImm,
    Sub,
    TruncDiv,
    Var,
    all_of,
    as_expr,
    const,
    const_int_value,
    is_const_int,
    logical_and,
    logical_or,
    max_expr,
    min_expr,
    truncdiv,
)
from .function import IRModule, PrimFunc, make_root_block
from .functor import (
    ExprMutator,
    ExprVisitor,
    StmtMutator,
    StmtVisitor,
    collect_vars,
    post_order_visit,
    substitute,
)
from .parser import ParseError, parse_script
from .printer import expr_str, script
from .stmt import (
    AllocateConst,
    Block,
    BlockRealize,
    BufferStore,
    Evaluate,
    For,
    ForKind,
    IfThenElse,
    LetStmt,
    SeqStmt,
    Stmt,
    seq,
)
from .structural import assert_structural_equal, structural_equal

__all__ = [
    # dtype
    "dtype",
    # buffer
    "Buffer",
    "BufferRegion",
    "MemoryScope",
    "decl_buffer",
    # builder
    "IRBuilder",
    "BlockBuilder",
    "call",
    # eval
    "evaluate_expr",
    # expr
    "PrimExpr",
    "Var",
    "IntImm",
    "FloatImm",
    "StringImm",
    "Cast",
    "BinaryOp",
    "Add",
    "Sub",
    "Mul",
    "FloorDiv",
    "FloorMod",
    "TruncDiv",
    "Min",
    "Max",
    "EQ",
    "NE",
    "LT",
    "LE",
    "GT",
    "GE",
    "And",
    "Or",
    "Not",
    "Select",
    "BufferLoad",
    "Call",
    "Range",
    "IterVar",
    "const",
    "as_expr",
    "is_const_int",
    "const_int_value",
    "min_expr",
    "max_expr",
    "truncdiv",
    "logical_and",
    "logical_or",
    "all_of",
    # function
    "PrimFunc",
    "IRModule",
    "make_root_block",
    # functor
    "ExprVisitor",
    "ExprMutator",
    "StmtVisitor",
    "StmtMutator",
    "post_order_visit",
    "substitute",
    "collect_vars",
    # printer / parser
    "script",
    "expr_str",
    "parse_script",
    "ParseError",
    # stmt
    "Stmt",
    "BufferStore",
    "Evaluate",
    "SeqStmt",
    "IfThenElse",
    "LetStmt",
    "ForKind",
    "For",
    "Block",
    "BlockRealize",
    "AllocateConst",
    "seq",
    # structural
    "structural_equal",
    "assert_structural_equal",
]
