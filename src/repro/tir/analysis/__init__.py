"""Analyses over TensorIR: access regions, verification, feature helpers."""

from .regions import (
    SymInterval,
    detect_block_access_regions,
    eval_sym_interval,
    union_regions,
)

__all__ = [
    "SymInterval",
    "detect_block_access_regions",
    "eval_sym_interval",
    "union_regions",
]
