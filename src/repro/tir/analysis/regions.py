"""Access-region detection.

Computes the read/write :class:`~repro.tir.buffer.BufferRegion` sets of a
block body *in terms of the block iterator variables*: inner loop
variables are relaxed over their domains (symbolically), block iterators
stay free.  This produces exactly the signature information of Figure 5 —
e.g. the matmul body reads ``A[vy*4 : vy*4+4, vk*4 : vk*4+4]``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ...arith import Analyzer
from .. import dtype as _dt
from ..buffer import Buffer, BufferRegion
from ..expr import (
    Add,
    BufferLoad,
    Cast,
    FloorDiv,
    FloorMod,
    IntImm,
    Max,
    Min,
    Mul,
    PrimExpr,
    Range,
    Select,
    Sub,
    Var,
    as_expr,
    const,
    const_int_value,
)
from ..functor import StmtVisitor
from ..stmt import Block, BlockRealize, BufferStore, Evaluate, For, LetStmt, Stmt

__all__ = ["SymInterval", "eval_sym_interval", "detect_block_access_regions", "union_regions"]


class SymInterval:
    """A symbolic closed interval ``[min_expr, max_expr]``."""

    __slots__ = ("min", "max")

    def __init__(self, min_expr: PrimExpr, max_expr: PrimExpr):
        self.min = as_expr(min_expr)
        self.max = as_expr(max_expr)

    @staticmethod
    def point(expr: PrimExpr) -> "SymInterval":
        return SymInterval(expr, expr)

    @property
    def is_point(self) -> bool:
        return self.min is self.max

    def __repr__(self) -> str:  # pragma: no cover
        from ..printer import expr_str

        return f"SymInterval[{expr_str(self.min)}, {expr_str(self.max)}]"


def eval_sym_interval(
    expr: PrimExpr, dom: Mapping[Var, SymInterval], analyzer: Analyzer
) -> SymInterval:
    """Interval-evaluate ``expr``, relaxing variables found in ``dom``.

    Variables not in ``dom`` are treated as symbolic points (they appear
    in the resulting bounds).  Conservative for non-affine shapes.
    """
    if isinstance(expr, Var):
        return dom.get(expr, SymInterval.point(expr))
    if isinstance(expr, IntImm):
        return SymInterval.point(expr)
    if isinstance(expr, Cast):
        inner = eval_sym_interval(expr.value, dom, analyzer)
        return SymInterval(inner.min.astype(expr.dtype), inner.max.astype(expr.dtype))
    if isinstance(expr, Add):
        a = eval_sym_interval(expr.a, dom, analyzer)
        b = eval_sym_interval(expr.b, dom, analyzer)
        return SymInterval(analyzer.simplify(a.min + b.min), analyzer.simplify(a.max + b.max))
    if isinstance(expr, Sub):
        a = eval_sym_interval(expr.a, dom, analyzer)
        b = eval_sym_interval(expr.b, dom, analyzer)
        return SymInterval(analyzer.simplify(a.min - b.max), analyzer.simplify(a.max - b.min))
    if isinstance(expr, Mul):
        a = eval_sym_interval(expr.a, dom, analyzer)
        b = eval_sym_interval(expr.b, dom, analyzer)
        ca, cb = const_int_value(a.min) if a.is_point else None, None
        if b.is_point:
            cb = const_int_value(b.min)
        if cb is not None:
            lo, hi = (a.min * cb, a.max * cb) if cb >= 0 else (a.max * cb, a.min * cb)
            return SymInterval(analyzer.simplify(lo), analyzer.simplify(hi))
        if ca is not None:
            lo, hi = (b.min * ca, b.max * ca) if ca >= 0 else (b.max * ca, b.min * ca)
            return SymInterval(analyzer.simplify(lo), analyzer.simplify(hi))
        if a.is_point and b.is_point:
            prod = analyzer.simplify(a.min * b.min)
            return SymInterval(prod, prod)
        # Unknown-sign symbolic product: fall back to min/max of corners.
        corners = [a.min * b.min, a.min * b.max, a.max * b.min, a.max * b.max]
        lo = corners[0]
        hi = corners[0]
        for c in corners[1:]:
            lo = Min(lo, c)
            hi = Max(hi, c)
        return SymInterval(analyzer.simplify(lo), analyzer.simplify(hi))
    if isinstance(expr, FloorDiv):
        a = eval_sym_interval(expr.a, dom, analyzer)
        c = const_int_value(expr.b)
        if c is not None and c > 0:
            return SymInterval(analyzer.simplify(a.min // c), analyzer.simplify(a.max // c))
        if a.is_point:
            b = eval_sym_interval(expr.b, dom, analyzer)
            if b.is_point:
                v = analyzer.simplify(a.min // b.min)
                return SymInterval(v, v)
        raise _RelaxError("floordiv by symbolic divisor")
    if isinstance(expr, FloorMod):
        a = eval_sym_interval(expr.a, dom, analyzer)
        c = const_int_value(expr.b)
        if c is not None and c > 0:
            if a.is_point:
                v = analyzer.simplify(a.min % c)
                return SymInterval(v, v)
            # Check whether the numerator provably stays in one period.
            same_period = analyzer.can_prove(
                (a.min // c).equal(a.max // c)
            )
            if same_period:
                return SymInterval(
                    analyzer.simplify(a.min % c), analyzer.simplify(a.max % c)
                )
            return SymInterval(const(0), const(c - 1))
        raise _RelaxError("floormod by symbolic divisor")
    if isinstance(expr, Min):
        a = eval_sym_interval(expr.a, dom, analyzer)
        b = eval_sym_interval(expr.b, dom, analyzer)
        return SymInterval(
            analyzer.simplify(Min(a.min, b.min)), analyzer.simplify(Min(a.max, b.max))
        )
    if isinstance(expr, Max):
        a = eval_sym_interval(expr.a, dom, analyzer)
        b = eval_sym_interval(expr.b, dom, analyzer)
        return SymInterval(
            analyzer.simplify(Max(a.min, b.min)), analyzer.simplify(Max(a.max, b.max))
        )
    if isinstance(expr, Select):
        t = eval_sym_interval(expr.true_value, dom, analyzer)
        f = eval_sym_interval(expr.false_value, dom, analyzer)
        return SymInterval(
            analyzer.simplify(Min(t.min, f.min)), analyzer.simplify(Max(t.max, f.max))
        )
    raise _RelaxError(f"cannot relax {type(expr).__name__}")


class _RelaxError(Exception):
    pass


def _interval_to_range(interval: SymInterval, analyzer: Analyzer) -> Range:
    extent = analyzer.simplify(interval.max - interval.min + 1)
    return Range(interval.min, extent)


def _union_interval(a: SymInterval, b: SymInterval, analyzer: Analyzer) -> SymInterval:
    if analyzer.prove_equal(a.min, b.min) and analyzer.prove_equal(a.max, b.max):
        return a
    lo_diff_le = analyzer.can_prove(a.min <= b.min)
    lo = a.min if lo_diff_le else (b.min if analyzer.can_prove(b.min <= a.min) else Min(a.min, b.min))
    hi_ge = analyzer.can_prove(a.max >= b.max)
    hi = a.max if hi_ge else (b.max if analyzer.can_prove(b.max >= a.max) else Max(a.max, b.max))
    return SymInterval(analyzer.simplify(as_expr(lo)), analyzer.simplify(as_expr(hi)))


def union_regions(
    regions: Sequence[BufferRegion], analyzer: Optional[Analyzer] = None
) -> List[BufferRegion]:
    """Union regions buffer-by-buffer (interval hull per dimension)."""
    analyzer = analyzer or Analyzer()
    by_buffer: Dict[int, Tuple[Buffer, List[SymInterval]]] = {}
    order: List[int] = []
    for region in regions:
        key = id(region.buffer)
        intervals = [
            SymInterval(r.min, analyzer.simplify(r.min + r.extent - 1)) for r in region.region
        ]
        if key not in by_buffer:
            by_buffer[key] = (region.buffer, intervals)
            order.append(key)
        else:
            _, existing = by_buffer[key]
            merged = [
                _union_interval(e, n, analyzer) for e, n in zip(existing, intervals)
            ]
            by_buffer[key] = (region.buffer, merged)
    out = []
    for key in order:
        buf, intervals = by_buffer[key]
        out.append(BufferRegion(buf, [_interval_to_range(iv, analyzer) for iv in intervals]))
    return out


def clamp_read_regions(
    regions: Sequence[BufferRegion], analyzer: Optional[Analyzer] = None
) -> List[BufferRegion]:
    """Clip read regions to their buffers' bounds.

    Region detection cannot see through Select guards (padding blocks
    read conditionally); the actual reads never leave the buffer, so the
    clipped region is the faithful signature.
    """
    analyzer = analyzer or Analyzer()
    out = []
    for region in regions:
        in_bounds = True
        for rng, shape in zip(region.region, region.buffer.shape):
            end = analyzer.simplify(rng.min + rng.extent)
            if not analyzer.can_prove(end <= shape):
                in_bounds = False
                break
        if in_bounds:
            out.append(region)
        else:
            # Guarded access that interval analysis cannot tighten:
            # declare the whole buffer (sound, hull-friendly).
            out.append(region.buffer.full_region())
    return out


class _AccessCollector(StmtVisitor):
    """Collect buffer accesses of a block body, relaxing inner loops."""

    def __init__(self, analyzer: Analyzer):
        self.analyzer = analyzer
        self.dom: Dict[Var, SymInterval] = {}
        self.reads: List[BufferRegion] = []
        self.writes: List[BufferRegion] = []
        self.opaque = False

    def _relax_indices(self, buffer: Buffer, indices) -> Optional[BufferRegion]:
        try:
            intervals = [eval_sym_interval(i, self.dom, self.analyzer) for i in indices]
        except _RelaxError:
            return None
        return BufferRegion(
            buffer, [_interval_to_range(iv, self.analyzer) for iv in intervals]
        )

    def visit_buffer_load(self, expr: BufferLoad) -> None:
        super().visit_buffer_load(expr)
        region = self._relax_indices(expr.buffer, expr.indices)
        if region is None:
            self.reads.append(expr.buffer.full_region())
        else:
            self.reads.append(region)

    def visit_buffer_store(self, stmt: BufferStore) -> None:
        super().visit_buffer_store(stmt)
        region = self._relax_indices(stmt.buffer, stmt.indices)
        if region is None:
            self.writes.append(stmt.buffer.full_region())
        else:
            self.writes.append(region)

    def visit_for(self, stmt: For) -> None:
        lo = eval_sym_interval(stmt.min, self.dom, self.analyzer)
        hi = eval_sym_interval(stmt.min + stmt.extent - 1, self.dom, self.analyzer)
        self.dom[stmt.loop_var] = SymInterval(
            self.analyzer.simplify(lo.min), self.analyzer.simplify(hi.max)
        )
        self.visit(stmt.min)
        self.visit(stmt.extent)
        self.visit_stmt(stmt.body)
        del self.dom[stmt.loop_var]

    def visit_let(self, stmt: LetStmt) -> None:
        self.dom[stmt.var] = eval_sym_interval(stmt.value, self.dom, self.analyzer)
        self.visit(stmt.value)
        self.visit_stmt(stmt.body)
        del self.dom[stmt.var]

    def visit_block_realize(self, stmt: BlockRealize) -> None:
        # Nested block: trust its signature (that is the whole point of
        # the block isolation), substituted with the binding values.
        from ..functor import substitute

        for v in stmt.iter_values:
            self.visit(v)
        block = stmt.block
        vmap = {iv.var: val for iv, val in zip(block.iter_vars, stmt.iter_values)}
        local = set(block.alloc_buffers)
        for region in block.reads:
            if region.buffer in local:
                continue
            bound = substitute(region, vmap)
            self._append_relaxed(bound, self.reads)
        for region in block.writes:
            if region.buffer in local:
                continue
            bound = substitute(region, vmap)
            self._append_relaxed(bound, self.writes)

    def _append_relaxed(self, region: BufferRegion, sink: List[BufferRegion]) -> None:
        ranges = []
        for r in region.region:
            try:
                lo = eval_sym_interval(r.min, self.dom, self.analyzer)
                hi = eval_sym_interval(r.min + r.extent - 1, self.dom, self.analyzer)
            except _RelaxError:
                sink.append(region.buffer.full_region())
                return
            ranges.append(
                _interval_to_range(
                    SymInterval(
                        self.analyzer.simplify(lo.min), self.analyzer.simplify(hi.max)
                    ),
                    self.analyzer,
                )
            )
        sink.append(BufferRegion(region.buffer, ranges))


def detect_block_access_regions(
    block: Block, analyzer: Optional[Analyzer] = None
) -> Tuple[List[BufferRegion], List[BufferRegion]]:
    """Compute (reads, writes) of ``block`` in terms of its iterators.

    Buffers allocated inside the block are excluded (they are internal to
    the block instance).  The init statement's accesses count toward the
    block's signature as well.
    """
    analyzer = (analyzer or Analyzer()).copy()
    for iv in block.iter_vars:
        analyzer.bind(iv.var, iv.dom)
    collector = _AccessCollector(analyzer)
    if block.init is not None:
        collector.visit_stmt(block.init)
    collector.visit_stmt(block.body)
    local = set(block.alloc_buffers)
    reads = [r for r in collector.reads if r.buffer not in local]
    writes = [w for w in collector.writes if w.buffer not in local]
    # A reduction read of the write buffer (C[...] += ...) is implied by
    # the write; drop self-reads that are covered by a write region.
    reads = [r for r in reads if not _covered_self_read(r, writes, analyzer)]
    return union_regions(reads, analyzer), union_regions(writes, analyzer)


def _covered_self_read(
    read: BufferRegion, writes: Sequence[BufferRegion], analyzer: Analyzer
) -> bool:
    for w in writes:
        if w.buffer is not read.buffer:
            continue
        same = all(
            analyzer.prove_equal(rw.min, rr.min) and analyzer.prove_equal(rw.extent, rr.extent)
            for rw, rr in zip(w.region, read.region)
        )
        if same:
            return True
    return False
